/**
 * @file
 * Trace-layer throughput harness: how fast can a consumer drain a
 * dynamic instruction stream under the three delivery mechanisms?
 *
 *   single    legacy per-record regeneration (virtual next() per
 *             instruction, functional execution each time)
 *   chunked   chunked regeneration (Executor::fill, SoA batches)
 *   replay    cached replay (TraceCache hit → CachedTraceSource)
 *
 * Prints records/sec per kernel and the aggregate replay-vs-single
 * speedup. With --require-speedup=N the harness exits non-zero when
 * the aggregate speedup falls below N — scripts/check.sh uses that to
 * pin the cache's reason to exist (replay must beat single-record
 * regeneration by at least 3x). With --json=FILE the per-kernel rates
 * and the aggregate speedup are additionally written as one JSON
 * document — the CI bench job uploads these as artifacts so
 * throughput history survives the build.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "stats/table.hh"
#include "workload/executor.hh"
#include "workload/trace_cache.hh"
#include "workload/workload.hh"

using namespace gdiff;

namespace {

using Clock = std::chrono::steady_clock;

struct Run
{
    uint64_t records = 0;
    double seconds = 0;
    uint64_t checksum = 0; ///< defeats dead-code elimination
};

/** Drain @p src per-record up to @p budget records. */
Run
drainSingle(workload::TraceSource &src, uint64_t budget)
{
    Run run;
    workload::TraceRecord r;
    auto t0 = Clock::now();
    while (run.records < budget && src.next(r)) {
        run.checksum += static_cast<uint64_t>(r.value) ^ r.pc;
        ++run.records;
    }
    run.seconds = std::chrono::duration<double>(Clock::now() - t0)
                      .count();
    return run;
}

/** Drain @p src chunk-at-a-time (zero-copy) up to @p budget records. */
Run
drainChunked(workload::TraceSource &src, uint64_t budget)
{
    Run run;
    auto scratch = std::make_unique<workload::TraceChunk>();
    auto t0 = Clock::now();
    while (run.records < budget) {
        const workload::TraceChunk *chunk = src.fillRef(*scratch);
        if (!chunk)
            break;
        uint32_t n = chunk->size;
        if (run.records + n > budget)
            n = static_cast<uint32_t>(budget - run.records);
        for (uint32_t i = 0; i < n; ++i)
            run.checksum += static_cast<uint64_t>(chunk->value[i]) ^
                            chunk->pc[i];
        run.records += n;
    }
    run.seconds = std::chrono::duration<double>(Clock::now() - t0)
                      .count();
    return run;
}

double
rate(const Run &r)
{
    return r.seconds > 0 ? static_cast<double>(r.records) / r.seconds
                         : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    // --require-speedup and --json are this harness's own flags;
    // everything else goes through the shared BenchOptions parser.
    double requireSpeedup = 0.0;
    std::string jsonPath;
    std::vector<char *> rest = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--require-speedup=", 18) == 0)
            requireSpeedup = static_cast<double>(
                parseU64Flag("--require-speedup", argv[i] + 18));
        else if (std::strncmp(argv[i], "--json=", 7) == 0)
            jsonPath = argv[i] + 7;
        else
            rest.push_back(argv[i]);
    }
    bench::BenchOptions o = bench::BenchOptions::parse(
        static_cast<int>(rest.size()), rest.data());

    bench::banner("trace replay throughput",
                  "records/sec: per-record vs chunked generation vs "
                  "cached replay",
                  o);

    const std::vector<std::string> kernels = {"mcf", "gzip",
                                              "micro.stride"};
    const uint64_t budget = o.instructions;

    stats::Table t("trace delivery throughput (Mrec/s)", "kernel");
    t.addColumn("single");
    t.addColumn("chunked");
    t.addColumn("replay");
    t.addColumn("replay/single");

    workload::TraceCache cache;
    double totalSingle = 0, totalReplay = 0;
    uint64_t sink = 0;
    std::string jsonKernels;
    for (const auto &name : kernels) {
        auto single = workload::makeWorkload(name, o.seed).makeExecutor();
        Run s = drainSingle(*single, budget);

        auto chunked =
            workload::makeWorkload(name, o.seed).makeExecutor();
        Run c = drainChunked(*chunked, budget);

        // Materialize once (untimed), then time the cache hit path.
        cache.acquire(name, o.seed, budget);
        auto hit = cache.acquire(name, o.seed, budget);
        Run r = drainChunked(*hit.source, budget);
        sink += s.checksum + c.checksum + r.checksum;

        totalSingle += s.seconds;
        totalReplay += r.seconds;
        t.beginRow(name);
        t.cellDouble(rate(s) / 1e6, 2);
        t.cellDouble(rate(c) / 1e6, 2);
        t.cellDouble(rate(r) / 1e6, 2);
        t.cellDouble(r.seconds > 0 ? s.seconds / r.seconds : 0.0, 2);

        char row[256];
        std::snprintf(row, sizeof(row),
                      "%s\"%s\":{\"single_mrps\":%.3f,"
                      "\"chunked_mrps\":%.3f,\"replay_mrps\":%.3f}",
                      jsonKernels.empty() ? "" : ",", name.c_str(),
                      rate(s) / 1e6, rate(c) / 1e6, rate(r) / 1e6);
        jsonKernels += row;
    }
    bench::emit(t, o);

    double speedup =
        totalReplay > 0 ? totalSingle / totalReplay : 0.0;
    std::printf("aggregate replay speedup over single-record "
                "regeneration: %.2fx (checksum %llu)\n",
                speedup, static_cast<unsigned long long>(sink));
    if (!jsonPath.empty()) {
        std::FILE *jf = std::fopen(jsonPath.c_str(), "wb");
        if (!jf) {
            std::fprintf(stderr, "cannot create JSON file '%s'\n",
                         jsonPath.c_str());
            return 1;
        }
        std::fprintf(jf,
                     "{\"bench\":\"trace_replay_throughput\","
                     "\"instructions\":%llu,\"kernels\":{%s},"
                     "\"aggregate_replay_speedup\":%.3f}\n",
                     static_cast<unsigned long long>(budget),
                     jsonKernels.c_str(), speedup);
        std::fclose(jf);
    }
    if (requireSpeedup > 0 && speedup < requireSpeedup) {
        std::fprintf(stderr,
                     "FAIL: replay speedup %.2fx below required "
                     "%.2fx\n",
                     speedup, requireSpeedup);
        return 1;
    }
    return 0;
}
