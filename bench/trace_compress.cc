/**
 * @file
 * Trace format v3 compression harness: how much smaller is the
 * stride-delta-compressed format than raw v2, and what does the codec
 * cost on the encode and decode paths?
 *
 * For each kernel the harness materializes one stream, writes it as
 * v2 and as v3, and reports:
 *
 *   v2 MiB / v3 MiB / ratio    on-disk footprint (v2 ÷ v3)
 *   enc Mrec/s                 v3 encode throughput
 *   dec Mrec/s                 v3 decode throughput
 *   v2rd Mrec/s                v2 decode throughput (the baseline the
 *                              v3 reader must not fall behind)
 *
 * Gates (scripts/check.sh and CI):
 *   --require-ratio=N     every *stride-dominant* kernel (micro.stride,
 *                         micro.periodic) must compress at least Nx —
 *                         the paper's stride locality, applied to our
 *                         own storage (4x is the floor).
 *   --require-decode=F    aggregate v3 decode rate must be at least F
 *                         times the v2 read rate (1.0 = "compression
 *                         never makes reading slower").
 * With --json=FILE the per-kernel numbers are written as one JSON
 * document (uploaded from CI as BENCH_trace_v3.json).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "stats/table.hh"
#include "workload/trace_cache.hh"
#include "workload/trace_io.hh"
#include "workload/workload.hh"

using namespace gdiff;

namespace {

using Clock = std::chrono::steady_clock;

/// kernels whose value streams are stride-dominant (constant or
/// periodic per-PC strides); the compression and decode-throughput
/// gates apply to exactly these
const std::vector<std::string> strideKernels = {"micro.stride",
                                                "micro.periodic"};
/// mixed/irregular kernels (micro.affine is by construction a
/// *random-order* walk — global stride locality without local
/// strides), reported for context: no gates, raw fallback keeps
/// them near 1x at worst
const std::vector<std::string> contextKernels = {
    "micro.affine", "mcf", "gzip", "micro.random"};

long
fileBytes(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return -1;
    std::fseek(f, 0, SEEK_END);
    long n = std::ftell(f);
    std::fclose(f);
    return n;
}

/** Write @p trace to @p path in format @p version, timed. */
double
timedWrite(const workload::MaterializedTrace &trace,
           const std::string &path, uint32_t version)
{
    auto t0 = Clock::now();
    workload::TraceWriter writer(path, version);
    for (const auto &chunk : trace.chunks())
        writer.append(*chunk);
    writer.close();
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Drain @p path through TraceFileSource, timed. @return seconds. */
double
timedRead(const std::string &path, uint64_t *checksum)
{
    auto t0 = Clock::now();
    workload::TraceFileSource src(path);
    auto chunk = std::make_unique<workload::TraceChunk>();
    while (src.fill(*chunk)) {
        for (uint32_t i = 0; i < chunk->size; ++i)
            *checksum += static_cast<uint64_t>(chunk->value[i]) ^
                         chunk->effAddr[i];
    }
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

double
mrps(uint64_t records, double seconds)
{
    return seconds > 0
               ? static_cast<double>(records) / seconds / 1e6
               : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    double requireRatio = 0.0;
    double requireDecode = 0.0;
    std::string jsonPath;
    std::vector<char *> rest = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--require-ratio=", 16) == 0)
            requireRatio = std::atof(argv[i] + 16);
        else if (std::strncmp(argv[i], "--require-decode=", 17) == 0)
            requireDecode = std::atof(argv[i] + 17);
        else if (std::strncmp(argv[i], "--json=", 7) == 0)
            jsonPath = argv[i] + 7;
        else
            rest.push_back(argv[i]);
    }
    bench::BenchOptions o = bench::BenchOptions::parse(
        static_cast<int>(rest.size()), rest.data());

    bench::banner("trace format v3 compression",
                  "on-disk footprint and codec throughput, v3 "
                  "(stride-delta) vs v2 (raw columns)",
                  o);

    std::vector<std::string> kernels = strideKernels;
    kernels.insert(kernels.end(), contextKernels.begin(),
                   contextKernels.end());

    stats::Table t("trace compression (v2 vs v3)", "kernel");
    t.addColumn("v2 MiB");
    t.addColumn("v3 MiB");
    t.addColumn("ratio");
    t.addColumn("enc Mrec/s");
    t.addColumn("dec Mrec/s");
    t.addColumn("v2rd Mrec/s");

    const uint64_t budget = o.instructions;
    double minStrideRatio = -1.0;
    double totalV3Read = 0, totalV2Read = 0;
    uint64_t sink = 0;
    std::string jsonKernels;
    bool gateFail = false;

    for (const auto &name : kernels) {
        auto trace =
            workload::MaterializedTrace::generate(name, o.seed,
                                                  budget);
        std::string v2Path =
            formatString("bench_compress_%s.v2.gdtr", name.c_str());
        std::string v3Path =
            formatString("bench_compress_%s.v3.gdtr", name.c_str());

        timedWrite(*trace, v2Path, workload::traceVersionV2);
        double encSec =
            timedWrite(*trace, v3Path, workload::traceVersionV3);

        long v2Bytes = fileBytes(v2Path);
        long v3Bytes = fileBytes(v3Path);
        double ratio = v3Bytes > 0 ? static_cast<double>(v2Bytes) /
                                         static_cast<double>(v3Bytes)
                                   : 0.0;

        double v2Sec = timedRead(v2Path, &sink);
        double decSec = timedRead(v3Path, &sink);
        std::remove(v2Path.c_str());
        std::remove(v3Path.c_str());

        uint64_t records = trace->records();

        bool strideDominant = false;
        for (const auto &k : strideKernels)
            strideDominant = strideDominant || k == name;
        if (strideDominant) {
            // Both gates are scoped to the stride-dominant kernels:
            // that is where the format's thesis must hold.
            totalV3Read += decSec;
            totalV2Read += v2Sec;
            if (minStrideRatio < 0 || ratio < minStrideRatio)
                minStrideRatio = ratio;
        }

        t.beginRow(name);
        t.cellDouble(static_cast<double>(v2Bytes) / (1 << 20), 2);
        t.cellDouble(static_cast<double>(v3Bytes) / (1 << 20), 2);
        t.cellDouble(ratio, 2);
        t.cellDouble(mrps(records, encSec), 2);
        t.cellDouble(mrps(records, decSec), 2);
        t.cellDouble(mrps(records, v2Sec), 2);

        char row[320];
        std::snprintf(
            row, sizeof(row),
            "%s\"%s\":{\"v2_bytes\":%ld,\"v3_bytes\":%ld,"
            "\"ratio\":%.3f,\"encode_mrps\":%.3f,"
            "\"decode_mrps\":%.3f,\"v2_read_mrps\":%.3f}",
            jsonKernels.empty() ? "" : ",", name.c_str(), v2Bytes,
            v3Bytes, ratio, mrps(records, encSec),
            mrps(records, decSec), mrps(records, v2Sec));
        jsonKernels += row;
    }
    bench::emit(t, o);

    double decodeVsV2 =
        totalV3Read > 0 ? totalV2Read / totalV3Read : 0.0;
    std::printf("min stride-dominant compression ratio: %.2fx; "
                "v3 decode vs v2 read (stride-dominant): %.2fx "
                "(checksum %llu)\n",
                minStrideRatio, decodeVsV2,
                static_cast<unsigned long long>(sink));

    if (!jsonPath.empty()) {
        std::FILE *jf = std::fopen(jsonPath.c_str(), "wb");
        if (!jf) {
            std::fprintf(stderr, "cannot create JSON file '%s'\n",
                         jsonPath.c_str());
            return 1;
        }
        std::fprintf(jf,
                     "{\"bench\":\"trace_compress\","
                     "\"instructions\":%llu,\"kernels\":{%s},"
                     "\"min_stride_ratio\":%.3f,"
                     "\"decode_vs_v2_read\":%.3f}\n",
                     static_cast<unsigned long long>(budget),
                     jsonKernels.c_str(), minStrideRatio,
                     decodeVsV2);
        std::fclose(jf);
    }

    if (requireRatio > 0 && minStrideRatio < requireRatio) {
        std::fprintf(stderr,
                     "FAIL: stride-dominant compression ratio %.2fx "
                     "below required %.2fx\n",
                     minStrideRatio, requireRatio);
        gateFail = true;
    }
    if (requireDecode > 0 && decodeVsV2 < requireDecode) {
        std::fprintf(stderr,
                     "FAIL: v3 decode %.2fx of v2 read, below "
                     "required %.2fx\n",
                     decodeVsV2, requireDecode);
        gateFail = true;
    }
    return gateFail ? 1 : 0;
}
