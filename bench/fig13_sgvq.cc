/**
 * @file
 * Paper Fig. 13: gdiff with the *speculative* global value queue
 * (SGVQ, queue size 32) in the OOO pipeline, vs the local stride
 * predictor. The SGVQ is updated with execution results in completion
 * order, so cache-miss-induced scheduling variation perturbs the
 * queue and the learned distances — the reason this scheme falls
 * short (paper: gdiff 74% accuracy / 49% coverage vs local stride's
 * 89% / 55%), motivating the HGVQ of Fig. 16.
 */

#include "bench/bench_util.hh"

#include "pipeline/ooo_model.hh"
#include "predictors/stride.hh"
#include "workload/workload.hh"

using namespace gdiff;

int
main(int argc, char **argv)
{
    auto opt = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 13",
                  "gdiff with the speculative GVQ (completion-order "
                  "updates, queue size 32) vs local stride",
                  opt);

    stats::Table t("Fig. 13 — SGVQ accuracy / coverage", "benchmark");
    t.addColumn("gdiff acc");
    t.addColumn("l_stride acc");
    t.addColumn("gdiff cov");
    t.addColumn("l_stride cov");

    double sums[4] = {0, 0, 0, 0};
    size_t n = 0;
    for (const auto &name : workload::specWorkloadNames()) {
        core::GDiffConfig gcfg;
        gcfg.order = 32;
        gcfg.tableEntries = 8192;
        pipeline::SgvqScheme sgvq(gcfg);
        {
            workload::Workload w =
                workload::makeWorkload(name, opt.seed);
            auto exec = w.makeExecutor();
            pipeline::OooPipeline pipe(
                pipeline::PipelineConfig::paper(), sgvq);
            pipe.run(*exec, opt.instructions, opt.warmup);
        }

        pipeline::LocalScheme lstride(
            std::make_unique<predictors::StridePredictor>(8192),
            "l_stride");
        {
            workload::Workload w =
                workload::makeWorkload(name, opt.seed);
            auto exec = w.makeExecutor();
            pipeline::OooPipeline pipe(
                pipeline::PipelineConfig::paper(), lstride);
            pipe.run(*exec, opt.instructions, opt.warmup);
        }

        double vals[4] = {sgvq.gatedAccuracy().value(),
                          lstride.gatedAccuracy().value(),
                          sgvq.coverage().value(),
                          lstride.coverage().value()};
        t.beginRow(name);
        for (int i = 0; i < 4; ++i) {
            t.cellPercent(vals[i]);
            sums[i] += vals[i];
        }
        ++n;
    }
    t.beginRow("average");
    for (double s : sums)
        t.cellPercent(s / static_cast<double>(n));
    bench::emit(t, opt);
    std::printf("paper averages: gdiff(SGVQ) 74%% acc / 49%% cov — "
                "*below* local stride (89%% / 55%%) because execution "
                "variation corrupts the speculative queue\n");
    return 0;
}
