/**
 * @file
 * Paper Fig. 16: confidence-gated prediction accuracy and coverage in
 * the OOO pipeline for gdiff with the hybrid global value queue
 * (HGVQ, queue size 32) vs the local stride and local context (DFCM)
 * predictors. All predictors predict at dispatch and update at
 * writeback.
 *
 * Paper averages: gdiff 91% accuracy / 64% coverage, local stride
 * 89% / 55%, local context similar accuracy but smaller coverage.
 */

#include "bench/bench_util.hh"

#include "pipeline/ooo_model.hh"
#include "predictors/fcm.hh"
#include "predictors/stride.hh"
#include "workload/workload.hh"

using namespace gdiff;

namespace {

void
runScheme(const std::string &name, const bench::BenchOptions &opt,
          pipeline::VpScheme &scheme, double &acc, double &cov)
{
    workload::Workload w = workload::makeWorkload(name, opt.seed);
    auto exec = w.makeExecutor();
    pipeline::OooPipeline pipe(pipeline::PipelineConfig::paper(),
                               scheme);
    pipeline::PipelineStats s =
        pipe.run(*exec, opt.instructions, opt.warmup);
    acc = s.gatedAccuracy.value();
    cov = s.coverage.value();
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 16",
                  "gdiff with HGVQ vs local predictors in the OOO "
                  "pipeline (queue size 32, confidence-gated)",
                  opt);

    stats::Table t("Fig. 16 — pipeline accuracy / coverage",
                   "benchmark");
    t.addColumn("gdiff acc");
    t.addColumn("l_stride acc");
    t.addColumn("l_context acc");
    t.addColumn("gdiff cov");
    t.addColumn("l_stride cov");
    t.addColumn("l_context cov");

    double sums[6] = {0, 0, 0, 0, 0, 0};
    size_t n = 0;
    for (const auto &name : workload::specWorkloadNames()) {
        core::GDiffConfig gcfg;
        gcfg.order = 32;
        gcfg.tableEntries = 8192;
        pipeline::HgvqScheme hgvq(gcfg);
        double acc_g, cov_g;
        runScheme(name, opt, hgvq, acc_g, cov_g);

        pipeline::LocalScheme lstride(
            std::make_unique<predictors::StridePredictor>(8192),
            "l_stride");
        double acc_s, cov_s;
        runScheme(name, opt, lstride, acc_s, cov_s);

        predictors::FcmConfig fcfg;
        fcfg.level1Entries = 8192;
        pipeline::LocalScheme lctx(
            std::make_unique<predictors::DfcmPredictor>(fcfg),
            "l_context");
        double acc_c, cov_c;
        runScheme(name, opt, lctx, acc_c, cov_c);

        t.beginRow(name);
        double vals[6] = {acc_g, acc_s, acc_c, cov_g, cov_s, cov_c};
        for (int i = 0; i < 6; ++i) {
            t.cellPercent(vals[i]);
            sums[i] += vals[i];
        }
        ++n;
    }
    t.beginRow("average");
    for (double s : sums)
        t.cellPercent(s / static_cast<double>(n));
    bench::emit(t, opt);
    std::printf("paper averages: gdiff 91%% acc / 64%% cov; local "
                "stride 89%% / 55%%; local context: similar accuracy, "
                "smaller coverage\n");
    return 0;
}
