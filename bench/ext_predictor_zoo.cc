/**
 * @file
 * Ablation: the full predictor zoo on the Fig. 8 harness — last
 * value, last-4, local stride, FCM, DFCM, PI (the order-1 global
 * context predictor of Nakra et al. that the paper cites as prior
 * art) and gdiff. Places the paper's three headliners in the wider
 * design space: computational vs context, local vs global history.
 */

#include "bench/bench_util.hh"

#include "core/gdiff.hh"
#include "predictors/fcm.hh"
#include "predictors/gfcm.hh"
#include "predictors/hybrid.hh"
#include "predictors/last_value.hh"
#include "predictors/pi.hh"
#include "predictors/stride.hh"
#include "sim/profile.hh"
#include "workload/workload.hh"

using namespace gdiff;

int
main(int argc, char **argv)
{
    auto opt = bench::BenchOptions::parse(argc, argv);
    bench::banner("Ablation: predictor zoo",
                  "profile accuracy of nine predictors, all value "
                  "producers, unlimited tables",
                  opt);

    stats::Table t("predictor zoo — profile accuracy", "benchmark");
    const char *cols[] = {"last", "last4", "stride", "fcm",  "dfcm",
                          "hybrid", "pi",  "gfcm",   "gdiff"};
    for (const char *c : cols)
        t.addColumn(c);

    double sums[9] = {0};
    size_t n = 0;
    for (const auto &name : workload::specWorkloadNames()) {
        workload::Workload w = workload::makeWorkload(name, opt.seed);
        auto exec = w.makeExecutor();

        predictors::LastValuePredictor last(0);
        predictors::LastNValuePredictor last4(4, 0);
        predictors::StridePredictor stride(0);
        predictors::FcmConfig fcfg;
        fcfg.level1Entries = 0;
        predictors::FcmPredictor fcm(fcfg);
        predictors::DfcmPredictor dfcm(fcfg);
        predictors::HybridLocalPredictor hybrid(0);
        predictors::PiPredictor pi(0);
        predictors::GFcmPredictor gfcm;
        core::GDiffConfig gcfg;
        gcfg.order = 8;
        gcfg.tableEntries = 0;
        core::GDiffPredictor gd(gcfg);

        sim::ProfileConfig pcfg;
        pcfg.maxInstructions = opt.instructions;
        pcfg.warmupInstructions = opt.warmup;
        sim::ValueProfileRunner runner(pcfg);
        runner.addPredictor(last);
        runner.addPredictor(last4);
        runner.addPredictor(stride);
        runner.addPredictor(fcm);
        runner.addPredictor(dfcm);
        runner.addPredictor(hybrid);
        runner.addPredictor(pi);
        runner.addPredictor(gfcm);
        runner.addPredictor(gd);
        runner.run(*exec);

        t.beginRow(name);
        for (int i = 0; i < 9; ++i) {
            double a = runner.results()[static_cast<size_t>(i)]
                           .accuracyAll.value();
            t.cellPercent(a);
            sums[i] += a;
        }
        ++n;
    }
    t.beginRow("average");
    for (double s : sums)
        t.cellPercent(s / static_cast<double>(n));
    bench::emit(t, opt);
    std::printf("gdiff (global computational) should lead — even over "
                "the stride+DFCM hybrid, the strongest local combo: "
                "global information is not recoverable by combining "
                "local models\n");
    return 0;
}
