/**
 * @file
 * Ablation: what fills the hybrid queue's speculative slots (§5)?
 *
 * The paper fills HGVQ slots with local-stride predictions. This
 * bench compares that against filling with zero (i.e., only real
 * writebacks carry information) and with the last committed value,
 * isolating how much of the HGVQ's power comes from the *quality* of
 * the speculative filler.
 */

#include "bench/bench_util.hh"

#include "pipeline/ooo_model.hh"
#include "predictors/last_value.hh"
#include "workload/workload.hh"

using namespace gdiff;

namespace {

/** HgvqScheme variant with a pluggable filler policy. */
class FillerHgvq : public pipeline::VpScheme
{
  public:
    enum class Filler { Zero, LastValue, Stride };

    FillerHgvq(Filler filler, unsigned order)
        : filler(filler), gd([&] {
              core::GDiffConfig c;
              c.order = order;
              c.tableEntries = 8192;
              return c;
          }()),
          queue(order, order + 256), lastValue(8192), stride(8192)
    {}

    std::string
    name() const override
    {
        switch (filler) {
          case Filler::Zero: return "hgvq/zero";
          case Filler::LastValue: return "hgvq/last";
          case Filler::Stride: return "hgvq/stride";
        }
        return "hgvq";
    }

  protected:
    bool
    doPredict(uint64_t pc, unsigned ahead, int64_t &value,
              uint64_t &token) override
    {
        bool predicted = gd.predictWithWindow(
            pc, queue.windowAtDispatch(), value);
        int64_t fill = 0;
        switch (filler) {
          case Filler::Zero:
            break;
          case Filler::LastValue:
            lastValue.predict(pc, fill);
            break;
          case Filler::Stride:
            stride.predictAhead(pc, ahead, fill);
            break;
        }
        token = queue.pushSpeculative(fill);
        return predicted;
    }

    void
    doWriteback(uint64_t pc, const pipeline::VpDecision &d,
                int64_t actual) override
    {
        queue.commitSlot(d.token, actual);
        gd.trainWithWindow(pc, queue.windowBeforeSlot(d.token),
                           actual);
        lastValue.update(pc, actual);
        stride.update(pc, actual);
    }

  private:
    Filler filler;
    core::GDiffPredictor gd;
    core::HybridGvq queue;
    predictors::LastValuePredictor lastValue;
    predictors::StridePredictor stride;
};

} // namespace

int
main(int argc, char **argv)
{
    auto opt = bench::BenchOptions::parse(argc, argv);
    bench::banner("Ablation: HGVQ filler",
                  "what the hybrid queue's speculative slots hold "
                  "(gdiff component only, no local fallback)",
                  opt);

    stats::Table t("HGVQ filler policy (averages over kernels)",
                   "filler");
    t.addColumn("accuracy");
    t.addColumn("coverage");

    const FillerHgvq::Filler fillers[] = {
        FillerHgvq::Filler::Zero, FillerHgvq::Filler::LastValue,
        FillerHgvq::Filler::Stride};
    const char *names[] = {"zero", "last value", "local stride (paper)"};

    for (size_t f = 0; f < 3; ++f) {
        double acc = 0, cov = 0;
        size_t n = 0;
        for (const auto &name : workload::specWorkloadNames()) {
            workload::Workload w =
                workload::makeWorkload(name, opt.seed);
            auto exec = w.makeExecutor();
            FillerHgvq scheme(fillers[f], 32);
            pipeline::OooPipeline pipe(
                pipeline::PipelineConfig::paper(), scheme);
            pipe.run(*exec, opt.instructions, opt.warmup);
            acc += scheme.gatedAccuracy().value();
            cov += scheme.coverage().value();
            ++n;
        }
        t.beginRow(names[f]);
        t.cellPercent(acc / static_cast<double>(n));
        t.cellPercent(cov / static_cast<double>(n));
    }
    bench::emit(t, opt);
    std::printf("the paper's choice (local stride) should dominate: "
                "better fillers mean more of the dispatch-order "
                "window is trustworthy\n");
    return 0;
}
