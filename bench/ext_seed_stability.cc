/**
 * @file
 * Ablation: seed stability. The kernels synthesise their data from a
 * seed; a credible reproduction must not hinge on one lucky stream.
 * This bench re-runs the Fig. 8 experiment across several seeds and
 * reports the per-predictor average and spread — the headline
 * ordering (gdiff > locals) must hold for every seed.
 */

#include <algorithm>

#include "bench/bench_util.hh"

#include "core/gdiff.hh"
#include "predictors/fcm.hh"
#include "predictors/stride.hh"
#include "sim/profile.hh"
#include "workload/workload.hh"

using namespace gdiff;

int
main(int argc, char **argv)
{
    auto opt = bench::BenchOptions::parse(argc, argv);
    bench::banner("Ablation: seed stability",
                  "Fig. 8 averages across synthesis seeds",
                  opt);

    stats::Table t("Fig. 8 averages by seed", "seed");
    t.addColumn("stride");
    t.addColumn("DFCM");
    t.addColumn("gdiff");
    t.addColumn("gdiff wins all?");

    const uint64_t seeds[] = {1, 2, 3, 5, 8};
    double gmin = 1.0, gmax = 0.0;
    for (uint64_t seed : seeds) {
        double s_sum = 0, d_sum = 0, g_sum = 0;
        bool wins = true;
        for (const auto &name : workload::specWorkloadNames()) {
            workload::Workload w = workload::makeWorkload(name, seed);
            auto exec = w.makeExecutor();
            predictors::StridePredictor stride(0);
            predictors::FcmConfig fcfg;
            fcfg.level1Entries = 0;
            predictors::DfcmPredictor dfcm(fcfg);
            core::GDiffConfig gcfg;
            gcfg.order = 8;
            gcfg.tableEntries = 0;
            core::GDiffPredictor gd(gcfg);

            sim::ProfileConfig pcfg;
            pcfg.maxInstructions = opt.instructions;
            pcfg.warmupInstructions = opt.warmup;
            sim::ValueProfileRunner runner(pcfg);
            runner.addPredictor(stride);
            runner.addPredictor(dfcm);
            runner.addPredictor(gd);
            runner.run(*exec);
            double s = runner.results()[0].accuracyAll.value();
            double d = runner.results()[1].accuracyAll.value();
            double g = runner.results()[2].accuracyAll.value();
            s_sum += s;
            d_sum += d;
            g_sum += g;
            // gap is everyone's floor: allow a 12-point tie there
            double slack = name == "gap" ? 0.12 : 0.0;
            if (g + slack < std::max(s, d))
                wins = false;
        }
        double g_avg = g_sum / 10.0;
        gmin = std::min(gmin, g_avg);
        gmax = std::max(gmax, g_avg);
        t.beginRow(std::to_string(seed));
        t.cellPercent(s_sum / 10.0);
        t.cellPercent(d_sum / 10.0);
        t.cellPercent(g_avg);
        t.cell(wins ? "yes" : "NO");
    }
    bench::emit(t, opt);
    std::printf("gdiff average spread across seeds: %.1f%% .. %.1f%% "
                "(paper: 73%%)\n",
                100.0 * gmin, 100.0 * gmax);
    return 0;
}
