/**
 * @file
 * Paper Figs. 1-2: the motivating example. A load in parser produces
 * a value sequence that looks like random noise — no computational or
 * context locality — yet it is a register spill/fill reload whose
 * value was produced by a correlated load a few dynamic instructions
 * earlier, making it ~100% predictable from the global value history.
 *
 * This bench prints the first values of the fill load's stream (the
 * paper's Fig. 1 plot data) and the per-predictor accuracy on exactly
 * that static instruction (paper quotes 4% for local stride, 2% for
 * DFCM, and perfect predictability from the correlated load).
 */

#include <deque>

#include "bench/bench_util.hh"

#include "core/gdiff.hh"
#include "predictors/fcm.hh"
#include "predictors/stride.hh"
#include "workload/workload.hh"

using namespace gdiff;

int
main(int argc, char **argv)
{
    auto opt = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 1",
                  "a hard-to-predict value sequence from parser "
                  "(the spill/fill reload of Fig. 2)",
                  opt);

    workload::Workload w = workload::makeWorkload("parser", opt.seed);
    uint64_t fill_pc = w.markerPc("fill_load");
    auto exec = w.makeExecutor();

    predictors::StridePredictor stride(0);
    predictors::DfcmPredictor dfcm;
    core::GDiffConfig gcfg;
    gcfg.order = 8;
    gcfg.tableEntries = 0;
    core::GDiffPredictor gd(gcfg);

    uint64_t fill_count = 0, stride_ok = 0, dfcm_ok = 0, gdiff_ok = 0;
    std::deque<int64_t> first_values;

    workload::TraceRecord r;
    uint64_t executed = 0;
    while (executed < opt.instructions && exec->next(r)) {
        ++executed;
        if (!r.producesValue())
            continue;
        bool is_fill = (r.pc == fill_pc);
        int64_t guess;
        if (stride.predict(r.pc, guess) && guess == r.value && is_fill)
            ++stride_ok;
        stride.update(r.pc, r.value);
        if (dfcm.predict(r.pc, guess) && guess == r.value && is_fill)
            ++dfcm_ok;
        dfcm.update(r.pc, r.value);
        if (gd.predict(r.pc, guess) && guess == r.value && is_fill)
            ++gdiff_ok;
        gd.update(r.pc, r.value);
        if (is_fill) {
            ++fill_count;
            if (first_values.size() < 64)
                first_values.push_back(r.value);
        }
    }

    std::printf("the fill load's value sequence (first %zu values — "
                "paper Fig. 1 plots 100 of these):\n  ",
                first_values.size());
    for (size_t i = 0; i < first_values.size(); ++i) {
        std::printf("%lld%s", static_cast<long long>(first_values[i]),
                    (i + 1) % 8 == 0 ? "\n  " : " ");
    }
    std::printf("\n");

    auto pct = [&](uint64_t ok) {
        return fill_count ? static_cast<double>(ok) /
                                static_cast<double>(fill_count)
                          : 0.0;
    };
    stats::Table t("Fig. 1 — accuracy on the fill load alone",
                   "predictor");
    t.addColumn("measured");
    t.addColumn("paper");
    t.beginRow("local stride");
    t.cellPercent(pct(stride_ok));
    t.cell("4%");
    t.beginRow("local DFCM");
    t.cellPercent(pct(dfcm_ok));
    t.cell("2%");
    t.beginRow("gdiff (global)");
    t.cellPercent(pct(gdiff_ok));
    t.cell("~100%");
    bench::emit(t, opt);
    return 0;
}
