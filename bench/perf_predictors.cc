/**
 * @file
 * google-benchmark microbenchmarks: per-operation cost of each
 * predictor's predict+update path. A software proxy for the paper's
 * hardware-cost discussion — gdiff's n parallel difference
 * comparators show up here as an O(order) update.
 *
 * Two entry points share this binary:
 *
 *  - the usual google-benchmark mode (BM_* entries, --benchmark_*
 *    flags), now including BM_*_Batch variants that drive the fused
 *    predictUpdateBatch() path chunk-at-a-time;
 *
 *  - a standalone batch-vs-scalar gate, selected by
 *    --require-batch-speedup=N and/or --json=FILE (both stripped
 *    before benchmark initialization, mirroring
 *    trace_replay_throughput's --require-speedup). It replays one
 *    stream per family through the virtual record-at-a-time loop and
 *    through predictUpdateBatch() in 4096-lane blocks, best of 3
 *    trials each, verifies the two paths produce bit-identical
 *    prediction checksums, writes per-family records/sec JSON, and
 *    exits non-zero when a gated family (stride, fcm, gdiff) falls
 *    below the required speedup — scripts/check.sh pins the batch
 *    protocol's reason to exist with it.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/reference.hh"
#include "core/gdiff.hh"
#include "core/gdiff2.hh"
#include "predictors/fcm.hh"
#include "predictors/gfcm.hh"
#include "predictors/hybrid.hh"
#include "predictors/last_value.hh"
#include "predictors/markov.hh"
#include "predictors/pi.hh"
#include "predictors/stride.hh"
#include "predictors/value_predictor.hh"
#include "util/random.hh"
#include "util/simd.hh"

using namespace gdiff;

namespace {

/** A reusable synthetic stream: 64 PCs, mixed strided/noisy values. */
struct Stream
{
    static constexpr size_t size = 4096;
    uint64_t pcs[size];
    int64_t values[size];

    Stream()
    {
        Xorshift64Star rng(42);
        int64_t counters[64] = {};
        for (size_t i = 0; i < size; ++i) {
            unsigned k = static_cast<unsigned>(rng.below(64));
            pcs[i] = 0x400000 + k * 4;
            if (k < 40) {
                counters[k] += static_cast<int64_t>(k) + 1;
                values[i] = counters[k]; // strided
            } else {
                values[i] = static_cast<int64_t>(rng.next() >> 8);
            }
        }
    }
};

const Stream &
stream()
{
    static Stream s;
    return s;
}

template <typename P>
void
runPredictor(benchmark::State &state, P &p)
{
    const Stream &s = stream();
    size_t i = 0;
    for (auto _ : state) {
        int64_t guess = 0;
        benchmark::DoNotOptimize(p.predict(s.pcs[i], guess));
        p.update(s.pcs[i], s.values[i]);
        i = (i + 1) % Stream::size;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

/** Batch counterpart: one fused 4096-lane call per iteration. */
template <typename P>
void
runPredictorBatch(benchmark::State &state, P &p)
{
    const Stream &s = stream();
    predictors::PredictionBatch out;
    for (auto _ : state) {
        out.reset(Stream::size);
        p.predictUpdateBatch(s.pcs, s.values, Stream::size, out);
        benchmark::DoNotOptimize(out.value.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * Stream::size);
}

void
BM_LastValue(benchmark::State &state)
{
    predictors::LastValuePredictor p(8192);
    runPredictor(state, p);
}
BENCHMARK(BM_LastValue);

void
BM_LastValue_Batch(benchmark::State &state)
{
    predictors::LastValuePredictor p(8192);
    runPredictorBatch(state, p);
}
BENCHMARK(BM_LastValue_Batch);

void
BM_Stride(benchmark::State &state)
{
    predictors::StridePredictor p(8192);
    runPredictor(state, p);
}
BENCHMARK(BM_Stride);

void
BM_Stride_Batch(benchmark::State &state)
{
    predictors::StridePredictor p(8192);
    runPredictorBatch(state, p);
}
BENCHMARK(BM_Stride_Batch);

void
BM_Dfcm(benchmark::State &state)
{
    predictors::FcmConfig cfg;
    cfg.level1Entries = 8192;
    predictors::DfcmPredictor p(cfg);
    runPredictor(state, p);
}
BENCHMARK(BM_Dfcm);

void
BM_Dfcm_Batch(benchmark::State &state)
{
    predictors::FcmConfig cfg;
    cfg.level1Entries = 8192;
    predictors::DfcmPredictor p(cfg);
    runPredictorBatch(state, p);
}
BENCHMARK(BM_Dfcm_Batch);

void
BM_GDiff(benchmark::State &state)
{
    core::GDiffConfig cfg;
    cfg.order = static_cast<unsigned>(state.range(0));
    cfg.tableEntries = 8192;
    core::GDiffPredictor p(cfg);
    runPredictor(state, p);
}
BENCHMARK(BM_GDiff)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void
BM_GDiff_Batch(benchmark::State &state)
{
    core::GDiffConfig cfg;
    cfg.order = static_cast<unsigned>(state.range(0));
    cfg.tableEntries = 8192;
    core::GDiffPredictor p(cfg);
    runPredictorBatch(state, p);
}
BENCHMARK(BM_GDiff_Batch)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void
BM_Markov(benchmark::State &state)
{
    predictors::MarkovPredictor p(256 * 1024, 4);
    const Stream &s = stream();
    size_t i = 0;
    for (auto _ : state) {
        uint64_t guess = 0;
        benchmark::DoNotOptimize(p.predict(guess));
        p.update(static_cast<uint64_t>(s.values[i]) & ~7ull);
        i = (i + 1) % Stream::size;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Markov);

void
BM_Markov_Batch(benchmark::State &state)
{
    predictors::MarkovPredictor p(256 * 1024, 4);
    const Stream &s = stream();
    std::vector<uint64_t> addrs(Stream::size);
    for (size_t i = 0; i < Stream::size; ++i)
        addrs[i] = static_cast<uint64_t>(s.values[i]) & ~7ull;
    std::vector<uint8_t> hits(Stream::size);
    std::vector<uint64_t> guesses(Stream::size);
    for (auto _ : state) {
        p.predictUpdateBatch(addrs.data(), Stream::size, hits.data(),
                             guesses.data());
        benchmark::DoNotOptimize(hits.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * Stream::size);
}
BENCHMARK(BM_Markov_Batch);

// ------------------------------------------- batch-vs-scalar gate

using Clock = std::chrono::steady_clock;

/** Gate-mode stream: larger and wider so table effects are real. */
struct GateStream
{
    std::vector<uint64_t> pcs;
    std::vector<int64_t> values;

    explicit GateStream(size_t records, uint64_t seed)
    {
        Xorshift64Star rng(seed);
        std::vector<int64_t> counters(256, 0);
        pcs.resize(records);
        values.resize(records);
        for (size_t i = 0; i < records; ++i) {
            unsigned k = static_cast<unsigned>(rng.below(256));
            pcs[i] = 0x400000 + k * 4;
            if (k < 160) {
                counters[k] += static_cast<int64_t>(k) + 1;
                values[i] = counters[k];
            } else {
                values[i] = static_cast<int64_t>(rng.next() >> 8);
            }
        }
    }
};

struct GateRun
{
    double seconds = 0;
    uint64_t checksum = 0; ///< prediction digest: identity guard + DCE
};

/**
 * Gate-mode factory: production-scale *limited* tables (8192 first-
 * level entries, as the BM_* entries use), unlike check's unlimited
 * map-backed makeProduction() — the gate measures the deployed
 * configuration, where table access is an array index and the batch
 * protocol's savings (devirtualization, single fused lookup, SIMD
 * hashing) are the dominant term.
 */
std::unique_ptr<predictors::ValuePredictor>
makeGateFamily(const std::string &name)
{
    constexpr size_t kEntries = 8192;
    if (name == "last_value")
        return std::make_unique<predictors::LastValuePredictor>(
            kEntries);
    if (name == "last_n")
        return std::make_unique<predictors::LastNValuePredictor>(
            4, kEntries);
    if (name == "stride")
        return std::make_unique<predictors::StridePredictor>(
            kEntries);
    if (name == "pi")
        return std::make_unique<predictors::PiPredictor>(kEntries);
    if (name == "fcm" || name == "dfcm") {
        predictors::FcmConfig cfg;
        cfg.level1Entries = kEntries;
        if (name == "dfcm")
            return std::make_unique<predictors::DfcmPredictor>(cfg);
        return std::make_unique<predictors::FcmPredictor>(cfg);
    }
    if (name == "gfcm")
        return std::make_unique<predictors::GFcmPredictor>(
            predictors::GFcmConfig());
    if (name == "hybrid")
        return std::make_unique<predictors::HybridLocalPredictor>(
            kEntries);
    if (name == "gdiff") {
        core::GDiffConfig cfg;
        cfg.tableEntries = kEntries;
        return std::make_unique<core::GDiffPredictor>(cfg);
    }
    core::GDiff2Config cfg;
    cfg.tableEntries = kEntries;
    return std::make_unique<core::GDiff2Predictor>(cfg);
}

GateRun
runScalar(predictors::ValuePredictor &p, const GateStream &s)
{
    GateRun run;
    auto t0 = Clock::now();
    for (size_t i = 0; i < s.pcs.size(); ++i) {
        int64_t guess = 0;
        if (p.predict(s.pcs[i], guess))
            run.checksum += static_cast<uint64_t>(guess) * 3 + 1;
        p.update(s.pcs[i], s.values[i]);
    }
    run.seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return run;
}

GateRun
runBatch(predictors::ValuePredictor &p, const GateStream &s)
{
    constexpr uint32_t kLanes = 4096;
    GateRun run;
    predictors::PredictionBatch out;
    auto t0 = Clock::now();
    size_t base = 0;
    while (base < s.pcs.size()) {
        uint32_t n = static_cast<uint32_t>(
            std::min<size_t>(kLanes, s.pcs.size() - base));
        out.reset(n);
        p.predictUpdateBatch(s.pcs.data() + base,
                             s.values.data() + base, n, out);
        for (uint32_t l = 0; l < n; ++l) {
            // Branchless consumption: predicted is 0/1 and value is
            // always initialised (reset() zeroes it), so a mask-add
            // avoids the data-dependent branch the scalar bool+ref
            // API forces on mixed hit/miss streams. Same sum.
            const uint64_t m =
                0 - static_cast<uint64_t>(out.predicted[l]);
            run.checksum +=
                (static_cast<uint64_t>(out.value[l]) * 3 + 1) & m;
        }
        base += n;
    }
    run.seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return run;
}

/**
 * Standalone gate: per family, best-of-N scalar vs best-of-N batch
 * over the same stream, with checksum identity enforced.
 * @return process exit code.
 */
int
runBatchGate(double require_speedup, const std::string &json_path)
{
    constexpr size_t kRecords = 1 << 18;
    // Scalar and batch trials alternate, and the speedup uses each
    // side's best: on a virtualised host a steal-time window must
    // then swallow the whole run — not one lucky side — to skew the
    // ratio. Seven short trials beat three long ones for that.
    // Each trial also regenerates the stream under a fresh seed:
    // replaying one fixed sequence lets the host branch predictor
    // memorise the scalar path's data-dependent branches across
    // trials, flattering best-of-N scalar numbers in a way no real
    // workload repeats. Within a trial both sides consume the
    // identical stream and their checksums must match.
    constexpr int kTrials = 7;
    // Families gated at the required speedup; the rest are reported.
    static const char *const kGated[] = {"stride", "fcm", "gdiff"};

    std::vector<GateStream> streams;
    streams.reserve(kTrials);
    for (int t = 0; t < kTrials; ++t)
        streams.emplace_back(kRecords, 42 + static_cast<uint64_t>(t));
    // Untimed warmup stream (disjoint seed): faults in the freshly
    // allocated tables' pages and warms caches before the clock
    // starts, so trials measure steady-state throughput rather than
    // first-touch costs — without handing the timed stream to the
    // host branch predictor ahead of time.
    GateStream warm(kRecords / 4, 7);
    std::printf("batch-vs-scalar gate: %zu records, 4096-lane "
                "blocks, best of %d (fresh stream per trial), "
                "dispatch %s\n",
                kRecords, kTrials, simd::activeName());
    std::printf("%-12s %14s %14s %9s\n", "family", "scalar Mrec/s",
                "batch Mrec/s", "speedup");

    std::string jsonRows;
    int failures = 0;
    for (const auto &family : check::batchFamilyNames()) {
        double bestScalar = 0, bestBatch = 0;
        bool sumsMatch = true;
        for (int t = 0; t < kTrials; ++t) {
            const GateStream &s = streams[t];
            auto sp = makeGateFamily(family);
            runScalar(*sp, warm);
            GateRun sr = runScalar(*sp, s);
            double mrps = sr.seconds > 0
                              ? kRecords / sr.seconds / 1e6
                              : 0;
            if (mrps > bestScalar)
                bestScalar = mrps;

            auto bp = makeGateFamily(family);
            runBatch(*bp, warm);
            GateRun br = runBatch(*bp, s);
            mrps = br.seconds > 0 ? kRecords / br.seconds / 1e6 : 0;
            if (mrps > bestBatch)
                bestBatch = mrps;

            if (sr.checksum != br.checksum) {
                std::fprintf(
                    stderr,
                    "FAIL: %s scalar/batch prediction checksums "
                    "differ on trial %d (%llu vs %llu)\n",
                    family.c_str(), t,
                    static_cast<unsigned long long>(sr.checksum),
                    static_cast<unsigned long long>(br.checksum));
                sumsMatch = false;
                break;
            }
        }
        if (!sumsMatch) {
            ++failures;
            continue;
        }
        double speedup = bestScalar > 0 ? bestBatch / bestScalar : 0;
        std::printf("%-12s %14.2f %14.2f %8.2fx\n", family.c_str(),
                    bestScalar, bestBatch, speedup);

        char row[256];
        std::snprintf(row, sizeof(row),
                      "%s\"%s\":{\"scalar_mrps\":%.3f,"
                      "\"batch_mrps\":%.3f,\"speedup\":%.3f}",
                      jsonRows.empty() ? "" : ",", family.c_str(),
                      bestScalar, bestBatch, speedup);
        jsonRows += row;

        bool gated = false;
        for (const char *g : kGated)
            gated = gated || family == g;
        if (gated && require_speedup > 0 &&
            speedup < require_speedup) {
            std::fprintf(stderr,
                         "FAIL: %s batch speedup %.2fx below "
                         "required %.2fx\n",
                         family.c_str(), speedup, require_speedup);
            ++failures;
        }
    }

    if (!json_path.empty()) {
        std::FILE *jf = std::fopen(json_path.c_str(), "wb");
        if (!jf) {
            std::fprintf(stderr, "cannot create JSON file '%s'\n",
                         json_path.c_str());
            return 1;
        }
        std::fprintf(jf,
                     "{\"bench\":\"perf_predictors_batch\","
                     "\"records\":%zu,\"simd\":\"%s\","
                     "\"families\":{%s}}\n",
                     kRecords, simd::activeName(), jsonRows.c_str());
        std::fclose(jf);
    }
    return failures ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // --require-batch-speedup and --json are this harness's own
    // flags; strip them before google-benchmark sees the rest.
    double requireSpeedup = 0.0;
    std::string jsonPath;
    std::vector<char *> rest = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--require-batch-speedup=", 24) ==
            0)
            requireSpeedup = std::strtod(argv[i] + 24, nullptr);
        else if (std::strncmp(argv[i], "--json=", 7) == 0)
            jsonPath = argv[i] + 7;
        else
            rest.push_back(argv[i]);
    }
    if (requireSpeedup > 0 || !jsonPath.empty())
        return runBatchGate(requireSpeedup, jsonPath);

    int restc = static_cast<int>(rest.size());
    benchmark::Initialize(&restc, rest.data());
    if (benchmark::ReportUnrecognizedArguments(restc, rest.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
