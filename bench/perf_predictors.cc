/**
 * @file
 * google-benchmark microbenchmarks: per-operation cost of each
 * predictor's predict+update path. A software proxy for the paper's
 * hardware-cost discussion — gdiff's n parallel difference
 * comparators show up here as an O(order) update.
 */

#include <benchmark/benchmark.h>

#include "core/gdiff.hh"
#include "predictors/fcm.hh"
#include "predictors/last_value.hh"
#include "predictors/markov.hh"
#include "predictors/stride.hh"
#include "util/random.hh"

using namespace gdiff;

namespace {

/** A reusable synthetic stream: 64 PCs, mixed strided/noisy values. */
struct Stream
{
    static constexpr size_t size = 4096;
    uint64_t pcs[size];
    int64_t values[size];

    Stream()
    {
        Xorshift64Star rng(42);
        int64_t counters[64] = {};
        for (size_t i = 0; i < size; ++i) {
            unsigned k = static_cast<unsigned>(rng.below(64));
            pcs[i] = 0x400000 + k * 4;
            if (k < 40) {
                counters[k] += static_cast<int64_t>(k) + 1;
                values[i] = counters[k]; // strided
            } else {
                values[i] = static_cast<int64_t>(rng.next() >> 8);
            }
        }
    }
};

const Stream &
stream()
{
    static Stream s;
    return s;
}

template <typename P>
void
runPredictor(benchmark::State &state, P &p)
{
    const Stream &s = stream();
    size_t i = 0;
    for (auto _ : state) {
        int64_t guess = 0;
        benchmark::DoNotOptimize(p.predict(s.pcs[i], guess));
        p.update(s.pcs[i], s.values[i]);
        i = (i + 1) % Stream::size;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_LastValue(benchmark::State &state)
{
    predictors::LastValuePredictor p(8192);
    runPredictor(state, p);
}
BENCHMARK(BM_LastValue);

void
BM_Stride(benchmark::State &state)
{
    predictors::StridePredictor p(8192);
    runPredictor(state, p);
}
BENCHMARK(BM_Stride);

void
BM_Dfcm(benchmark::State &state)
{
    predictors::FcmConfig cfg;
    cfg.level1Entries = 8192;
    predictors::DfcmPredictor p(cfg);
    runPredictor(state, p);
}
BENCHMARK(BM_Dfcm);

void
BM_GDiff(benchmark::State &state)
{
    core::GDiffConfig cfg;
    cfg.order = static_cast<unsigned>(state.range(0));
    cfg.tableEntries = 8192;
    core::GDiffPredictor p(cfg);
    runPredictor(state, p);
}
BENCHMARK(BM_GDiff)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void
BM_Markov(benchmark::State &state)
{
    predictors::MarkovPredictor p(256 * 1024, 4);
    const Stream &s = stream();
    size_t i = 0;
    for (auto _ : state) {
        uint64_t guess = 0;
        benchmark::DoNotOptimize(p.predict(guess));
        p.update(static_cast<uint64_t>(s.values[i]) & ~7ull);
        i = (i + 1) % Stream::size;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Markov);

} // namespace

BENCHMARK_MAIN();
