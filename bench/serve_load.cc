/**
 * @file
 * serve_load — concurrent-client load generator for the gdiffd
 * daemon.
 *
 * Starts an in-process serve::Daemon and hammers it with N concurrent
 * clients (default 4) submitting the *same* sweep grid, twice:
 *
 *   wave 1  cold cache — the daemon materializes each distinct
 *           (workload, seed, budget) trace exactly once, however many
 *           clients race for it;
 *   wave 2  warm cache — every job must replay; the harness FAILS if
 *           the daemon's generation count moved at all.
 *
 * Every client's result set must be bit-identical (deterministic
 * JSON, order-independent) to every other client's — concurrency must
 * not leak into the metrics. Throughput (jobs/sec) and request/job
 * latency percentiles (from the daemon's obs histograms) are printed
 * and, with --json=FILE, written as one JSON document for the CI
 * bench artifact (BENCH_serve.json).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "obs/obs.hh"
#include "runner/sinks.hh"
#include "serve/client.hh"
#include "serve/daemon.hh"
#include "util/parse.hh"

using namespace gdiff;

namespace {

using Clock = std::chrono::steady_clock;

struct ClientRun
{
    std::vector<std::string> lines; ///< deterministic JSON, sorted
    serve::SweepOutcome outcome;
    bool ok = false;
    std::string error;
};

/** Connect, submit @p grid, stream everything, sort the payloads. */
ClientRun
runClient(const std::string &socketPath, const std::string &grid,
          uint64_t instructions, uint64_t warmup,
          const std::string &name)
{
    ClientRun run;
    serve::Client client;
    if (!client.connect(socketPath, &run.error))
        return run;
    serve::SubmitRequest req;
    req.grid = grid;
    req.client = name;
    req.instructions = instructions;
    req.warmup = warmup;
    if (!client.submit(req, &run.error))
        return run;
    run.ok = client.streamResults(
        [&](const runner::JobRecord &rec) {
            run.lines.push_back(
                runner::JsonlSink::deterministicJson(rec));
        },
        &run.outcome, &run.error);
    std::sort(run.lines.begin(), run.lines.end());
    return run;
}

/** One wave of @p clients concurrent submissions of @p grid. */
std::vector<ClientRun>
runWave(const std::string &socketPath, const std::string &grid,
        uint64_t instructions, uint64_t warmup, unsigned clients,
        const char *wave)
{
    std::vector<ClientRun> runs(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (unsigned c = 0; c < clients; ++c)
        threads.emplace_back([&, c] {
            runs[c] = runClient(socketPath, grid, instructions,
                                warmup,
                                std::string(wave) + "_client" +
                                    std::to_string(c));
        });
    for (auto &t : threads)
        t.join();
    return runs;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string grid =
        "workload=mcf,gzip;predictor=stride,gdiff;order=4,8";
    uint64_t instructions = 200'000;
    uint64_t warmup = 20'000;
    unsigned clients = 4;
    unsigned workers = 0;
    std::string jsonPath;
    std::string socketPath;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--grid=", 7) == 0)
            grid = a + 7;
        else if (std::strncmp(a, "--instructions=", 15) == 0)
            instructions = parseU64Flag("--instructions", a + 15);
        else if (std::strncmp(a, "--warmup=", 9) == 0)
            warmup = parseU64Flag("--warmup", a + 9, true);
        else if (std::strncmp(a, "--clients=", 10) == 0)
            clients = static_cast<unsigned>(
                parseU64Flag("--clients", a + 10));
        else if (std::strncmp(a, "--workers=", 10) == 0)
            workers = static_cast<unsigned>(
                parseU64Flag("--workers", a + 10, true));
        else if (std::strncmp(a, "--json=", 7) == 0)
            jsonPath = a + 7;
        else if (std::strncmp(a, "--socket=", 9) == 0)
            socketPath = a + 9;
        else {
            std::fprintf(
                stderr,
                "usage: %s [--grid=G] [--instructions=N] "
                "[--warmup=N] [--clients=N] [--workers=N] "
                "[--json=FILE] [--socket=PATH]\n",
                argv[0]);
            return 2;
        }
    }
    if (socketPath.empty())
        socketPath = "/tmp/gdiff_serve_load." +
                     std::to_string(getpid()) + ".sock";

    // The latency report comes from the daemon's obs histograms.
    obs::setEnabled(true);

    serve::DaemonConfig cfg;
    cfg.socketPath = socketPath;
    cfg.workers = workers;
    serve::Daemon daemon(cfg);
    std::string error;
    if (!daemon.start(&error)) {
        std::fprintf(stderr, "serve_load: %s\n", error.c_str());
        return 1;
    }
    std::printf("serve_load: %u clients x grid '%s' against %u "
                "workers\n",
                clients, grid.c_str(), daemon.workers());

    bool failed = false;

    // -------- wave 1: cold cache, N racing clients
    auto t0 = Clock::now();
    std::vector<ClientRun> wave1 = runWave(
        socketPath, grid, instructions, warmup, clients, "cold");
    double wave1Seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();

    size_t totalJobs = 0;
    for (unsigned c = 0; c < clients; ++c) {
        const ClientRun &r = wave1[c];
        if (!r.ok) {
            std::fprintf(stderr,
                         "serve_load: FAIL: cold client %u: %s\n", c,
                         r.error.c_str());
            failed = true;
            continue;
        }
        totalJobs += r.outcome.jobs;
        if (r.lines != wave1[0].lines) {
            std::fprintf(stderr,
                         "serve_load: FAIL: cold client %u results "
                         "differ from client 0\n",
                         c);
            failed = true;
        }
    }
    serve::DaemonStats afterCold = daemon.stats();
    double jobsPerSec = wave1Seconds > 0
                            ? static_cast<double>(totalJobs) /
                                  wave1Seconds
                            : 0.0;
    std::printf("serve_load: wave 1 (cold): %zu jobs in %.2fs = "
                "%.1f jobs/sec; %llu traces generated\n",
                totalJobs, wave1Seconds, jobsPerSec,
                static_cast<unsigned long long>(
                    afterCold.traceCache.generations));

    // -------- wave 2: warm cache — generations must not move
    std::vector<ClientRun> wave2 = runWave(
        socketPath, grid, instructions, warmup, clients, "warm");
    serve::DaemonStats afterWarm = daemon.stats();
    for (unsigned c = 0; c < clients; ++c) {
        const ClientRun &r = wave2[c];
        if (!r.ok) {
            std::fprintf(stderr,
                         "serve_load: FAIL: warm client %u: %s\n", c,
                         r.error.c_str());
            failed = true;
            continue;
        }
        if (r.lines != wave1[0].lines) {
            std::fprintf(stderr,
                         "serve_load: FAIL: warm client %u results "
                         "differ from cold client 0\n",
                         c);
            failed = true;
        }
    }
    uint64_t newGenerations = afterWarm.traceCache.generations -
                              afterCold.traceCache.generations;
    if (newGenerations != 0) {
        std::fprintf(stderr,
                     "serve_load: FAIL: warm wave generated %llu "
                     "traces; the shared cache should have served "
                     "every job\n",
                     static_cast<unsigned long long>(newGenerations));
        failed = true;
    }
    std::printf("serve_load: wave 2 (warm): %llu new generations "
                "(want 0), cache: %llu hits, %zu traces resident\n",
                static_cast<unsigned long long>(newGenerations),
                static_cast<unsigned long long>(
                    afterWarm.traceCache.hits),
                afterWarm.traceCache.entries);

    // -------- latency percentiles from the daemon's obs histograms
    double requestP50 = 0, requestP99 = 0, jobP50 = 0, jobP99 = 0;
    uint64_t requestCount = 0, jobCount = 0;
    obs::Snapshot snap = obs::snapshot();
    auto h = snap.histograms.find("serve.request_us");
    if (h != snap.histograms.end()) {
        requestCount = h->second.samples();
        requestP50 = h->second.percentile(0.50) / 1e3;
        requestP99 = h->second.percentile(0.99) / 1e3;
    }
    h = snap.histograms.find("serve.job_us");
    if (h != snap.histograms.end()) {
        jobCount = h->second.samples();
        jobP50 = h->second.percentile(0.50) / 1e3;
        jobP99 = h->second.percentile(0.99) / 1e3;
    }
    std::printf("serve_load: request latency p50 %.2fms p99 %.2fms "
                "(%llu sweeps); job latency p50 %.2fms p99 %.2fms "
                "(%llu jobs)\n",
                requestP50, requestP99,
                static_cast<unsigned long long>(requestCount), jobP50,
                jobP99, static_cast<unsigned long long>(jobCount));

    daemon.requestDrain();
    daemon.waitUntilDrained();

    if (!jsonPath.empty()) {
        std::FILE *jf = std::fopen(jsonPath.c_str(), "wb");
        if (!jf) {
            std::fprintf(stderr, "cannot create JSON file '%s'\n",
                         jsonPath.c_str());
            return 1;
        }
        std::fprintf(
            jf,
            "{\"bench\":\"serve_load\",\"clients\":%u,"
            "\"workers\":%u,\"grid\":\"%s\","
            "\"jobs_wave1\":%zu,\"wave1_seconds\":%.3f,"
            "\"jobs_per_sec\":%.2f,"
            "\"request_p50_ms\":%.3f,\"request_p99_ms\":%.3f,"
            "\"job_p50_ms\":%.3f,\"job_p99_ms\":%.3f,"
            "\"generations_cold\":%llu,\"generations_warm_delta\":"
            "%llu,\"cache_hits\":%llu,\"bit_identical\":%s}\n",
            clients, daemon.workers(), grid.c_str(), totalJobs,
            wave1Seconds, jobsPerSec, requestP50, requestP99, jobP50,
            jobP99,
            static_cast<unsigned long long>(
                afterCold.traceCache.generations),
            static_cast<unsigned long long>(newGenerations),
            static_cast<unsigned long long>(
                afterWarm.traceCache.hits),
            failed ? "false" : "true");
        std::fclose(jf);
    }
    if (failed) {
        std::fprintf(stderr, "serve_load: FAILED\n");
        return 1;
    }
    std::printf("serve_load: OK\n");
    return 0;
}
