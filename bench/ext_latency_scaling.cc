/**
 * @file
 * Ablation: memory-latency scaling — the paper's §8 future-work
 * question ("how to interact with the deeper pipeline to convert the
 * newly discovered predictability into higher speedups"), posed for
 * the memory side: as the D-cache miss penalty grows from the paper's
 * 14 cycles toward modern main-memory latencies, how does the value
 * of gdiff(HGVQ) speculation scale on the memory-bound kernel (mcf)?
 */

#include "bench/bench_util.hh"

#include "pipeline/ooo_model.hh"
#include "predictors/stride.hh"
#include "workload/workload.hh"

using namespace gdiff;

namespace {

double
runIpc(const bench::BenchOptions &opt, unsigned miss_penalty,
       pipeline::VpScheme &scheme)
{
    workload::Workload w = workload::makeWorkload("mcf", opt.seed);
    auto exec = w.makeExecutor();
    pipeline::PipelineConfig cfg = pipeline::PipelineConfig::paper();
    cfg.dcache.missPenalty = miss_penalty;
    pipeline::OooPipeline pipe(cfg, scheme);
    return pipe.run(*exec, opt.instructions, opt.warmup).ipc;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = bench::BenchOptions::parse(argc, argv);
    bench::banner("Ablation: miss-penalty scaling",
                  "mcf speedup from value speculation vs D$ miss "
                  "penalty (paper Table 1 uses 14 cycles)",
                  opt);

    stats::Table t("mcf: speedup vs miss penalty", "penalty");
    t.addColumn("base IPC");
    t.addColumn("l_stride");
    t.addColumn("gdiff(HGVQ)");

    for (unsigned penalty : {14u, 30u, 60u, 120u, 240u}) {
        pipeline::NoPrediction base;
        double ipc0 = runIpc(opt, penalty, base);

        pipeline::LocalScheme ls(
            std::make_unique<predictors::StridePredictor>(8192),
            "l_stride");
        double ipc_s = runIpc(opt, penalty, ls);

        core::GDiffConfig gcfg;
        gcfg.order = 32;
        gcfg.tableEntries = 8192;
        pipeline::HgvqScheme hgvq(gcfg);
        double ipc_g = runIpc(opt, penalty, hgvq);

        t.beginRow(std::to_string(penalty) + " cycles");
        t.cellDouble(ipc0, 3);
        t.cellPercent(ipc_s / ipc0 - 1.0);
        t.cellPercent(ipc_g / ipc0 - 1.0);
    }
    bench::emit(t, opt);
    std::printf("the deeper the memory, the more a predicted missing "
                "load is worth — the §8 trend, quantified\n");
    return 0;
}
