/**
 * @file
 * Ablation: toward the paper's Equation 1. Compares single-term gdiff
 * (Eq. 2) against the two-term extension (x = w[j] ± w[k] + a0) on
 * the Fig. 8 harness, and reports how often the selected form is a
 * pair — quantifying how much of the "general computational locality"
 * the paper leaves on the table lives at two-term order.
 */

#include "bench/bench_util.hh"

#include "core/gdiff.hh"
#include "core/gdiff2.hh"
#include "sim/profile.hh"
#include "workload/workload.hh"

using namespace gdiff;

int
main(int argc, char **argv)
{
    auto opt = bench::BenchOptions::parse(argc, argv);
    bench::banner("Ablation: general form (Eq. 1)",
                  "single-term gdiff vs the two-term extension, "
                  "profile mode, queue size 8",
                  opt);

    stats::Table t("single- vs two-term gdiff", "benchmark");
    t.addColumn("gdiff");
    t.addColumn("gdiff2");
    t.addColumn("gain");
    t.addColumn("pair forms");

    double sum1 = 0, sum2 = 0;
    size_t n = 0;
    for (const auto &name : workload::specWorkloadNames()) {
        workload::Workload w = workload::makeWorkload(name, opt.seed);
        auto exec = w.makeExecutor();

        core::GDiffConfig c1;
        c1.order = 8;
        c1.tableEntries = 0;
        core::GDiffPredictor g1(c1);
        core::GDiff2Config c2;
        c2.order = 8;
        c2.tableEntries = 0;
        core::GDiff2Predictor g2(c2);

        sim::ProfileConfig pcfg;
        pcfg.maxInstructions = opt.instructions;
        pcfg.warmupInstructions = opt.warmup;
        sim::ValueProfileRunner runner(pcfg);
        runner.addPredictor(g1);
        runner.addPredictor(g2);
        runner.run(*exec);

        double a1 = runner.results()[0].accuracyAll.value();
        double a2 = runner.results()[1].accuracyAll.value();
        t.beginRow(name);
        t.cellPercent(a1);
        t.cellPercent(a2);
        t.cellPercent(a2 - a1);
        t.cellPercent(g2.pairSelectionRate());
        sum1 += a1;
        sum2 += a2;
        ++n;
    }
    t.beginRow("average");
    t.cellPercent(sum1 / static_cast<double>(n));
    t.cellPercent(sum2 / static_cast<double>(n));
    t.cellPercent((sum2 - sum1) / static_cast<double>(n));
    t.cell("-");
    bench::emit(t, opt);
    std::printf("the two-term form subsumes Eq. 2 and adds the "
                "difference-of-two-values patterns of the paper's "
                "Fig. 3; its cost is O(order^2) comparators — the "
                "complexity the paper cites for the general form\n");
    return 0;
}
