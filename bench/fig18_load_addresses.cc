/**
 * @file
 * Paper Fig. 18: predictability of the load-address stream (§6).
 *
 * gdiff is fed only load addresses, detecting global stride locality
 * in the address stream; it is compared against a local stride
 * predictor (both 4K-entry tagless tables, confidence-gated) and a
 * first-order Markov predictor (4-way tagged, 256K entries, coverage
 * gated by tag match; a 2M-entry variant is also reported, as in the
 * paper's discussion). Part (a) covers all loads; part (b) only loads
 * that miss in the D-cache.
 *
 * Paper averages: (a) gdiff 86% acc / 63% cov; local stride 86% / 55%;
 * Markov 33% acc / 87% cov. (b) gdiff 53% / 33%; local stride 55% /
 * 25%; Markov 20% / 69% (2M: 33% / 92%).
 *
 * Methodology note: the paper predicts at dispatch and updates at
 * address generation in the pipeline; the dispatch-to-agen distance
 * is short, so we replay the address stream in architectural order
 * (see DESIGN.md).
 */

#include "bench/bench_util.hh"

#include "core/gdiff.hh"
#include "predictors/markov.hh"
#include "predictors/stride.hh"
#include "sim/profile.hh"
#include "workload/workload.hh"

using namespace gdiff;

int
main(int argc, char **argv)
{
    auto opt = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 18",
                  "load-address predictability: local stride vs gdiff "
                  "vs first-order Markov",
                  opt);

    stats::Table ta("Fig. 18a — all load addresses", "benchmark");
    stats::Table tb("Fig. 18b — addresses of missing loads",
                    "benchmark");
    for (auto *t : {&ta, &tb}) {
        t->addColumn("ls cov");
        t->addColumn("ls acc");
        t->addColumn("gs cov");
        t->addColumn("gs acc");
        t->addColumn("markov cov");
        t->addColumn("markov acc");
        t->addColumn("markov2M cov");
        t->addColumn("markov2M acc");
    }

    double sa[8] = {0}, sb[8] = {0};
    size_t n = 0;
    for (const auto &name : workload::specWorkloadNames()) {
        // Two passes: one with the 256K Markov, one with the 2M —
        // PC-indexed predictors only run in the first pass.
        predictors::StridePredictor ls(4096);
        core::GDiffConfig gcfg;
        gcfg.order = 8;
        gcfg.tableEntries = 4096;
        core::GDiffPredictor gs(gcfg);
        predictors::MarkovPredictor mk_all(256 * 1024, 4);
        predictors::MarkovPredictor mk_miss(256 * 1024, 4);

        sim::ProfileConfig pcfg;
        pcfg.maxInstructions = opt.instructions;
        pcfg.warmupInstructions = opt.warmup;
        sim::AddressProfileRunner runner(pcfg);
        runner.addPredictor(ls);
        runner.addPredictor(gs);
        runner.setMarkov(mk_all, mk_miss);
        {
            workload::Workload w =
                workload::makeWorkload(name, opt.seed);
            auto exec = w.makeExecutor();
            runner.run(*exec);
        }

        predictors::MarkovPredictor mk2_all(2 * 1024 * 1024, 4);
        predictors::MarkovPredictor mk2_miss(2 * 1024 * 1024, 4);
        sim::AddressProfileRunner runner2(pcfg);
        predictors::StridePredictor dummy(64);
        runner2.addPredictor(dummy);
        runner2.setMarkov(mk2_all, mk2_miss);
        {
            workload::Workload w =
                workload::makeWorkload(name, opt.seed);
            auto exec = w.makeExecutor();
            runner2.run(*exec);
        }

        const auto &r = runner.results();
        const auto &r2 = runner2.results();
        const sim::AddressSeries &s_ls = r[0];
        const sim::AddressSeries &s_gs = r[1];
        const sim::AddressSeries &s_mk = r[2];
        const sim::AddressSeries &s_mk2 = r2.back();

        double va[8] = {
            s_ls.coverageAll.value(), s_ls.accuracyAll.value(),
            s_gs.coverageAll.value(), s_gs.accuracyAll.value(),
            s_mk.coverageAll.value(), s_mk.accuracyAll.value(),
            s_mk2.coverageAll.value(), s_mk2.accuracyAll.value()};
        double vb[8] = {
            s_ls.coverageMiss.value(), s_ls.accuracyMiss.value(),
            s_gs.coverageMiss.value(), s_gs.accuracyMiss.value(),
            s_mk.coverageMiss.value(), s_mk.accuracyMiss.value(),
            s_mk2.coverageMiss.value(), s_mk2.accuracyMiss.value()};

        ta.beginRow(name);
        tb.beginRow(name);
        for (int i = 0; i < 8; ++i) {
            ta.cellPercent(va[i]);
            tb.cellPercent(vb[i]);
            sa[i] += va[i];
            sb[i] += vb[i];
        }
        ++n;
    }
    ta.beginRow("average");
    tb.beginRow("average");
    for (int i = 0; i < 8; ++i) {
        ta.cellPercent(sa[i] / static_cast<double>(n));
        tb.cellPercent(sb[i] / static_cast<double>(n));
    }
    bench::emit(ta, opt);
    bench::emit(tb, opt);
    std::printf(
        "paper averages — (a) gdiff 63%% cov / 86%% acc beats local "
        "stride 55%% / 86%%; Markov: high coverage, low accuracy.\n"
        "(b) missing loads: gdiff 33%% cov / 53%% acc; local stride "
        "25%% / 55%%; Markov 69%% cov / 20%% acc (2M: 92%% / 33%%).\n");
    return 0;
}
