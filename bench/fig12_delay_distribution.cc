/**
 * @file
 * Paper Fig. 12: the distribution of value delays — the number of
 * values written back between an instruction's dispatch and its own
 * writeback — measured on the vortex kernel in the OOO pipeline.
 *
 * The paper observes that the delay is usually modest (average ≈ 5),
 * which is what makes speculative-value queues viable at all.
 */

#include "bench/bench_util.hh"

#include "pipeline/ooo_model.hh"
#include "workload/workload.hh"

using namespace gdiff;

int
main(int argc, char **argv)
{
    auto opt = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 12",
                  "value delay distribution (vortex, OOO pipeline)",
                  opt);

    workload::Workload w = workload::makeWorkload("vortex", opt.seed);
    auto exec = w.makeExecutor();
    pipeline::NoPrediction scheme;
    pipeline::OooPipeline pipe(pipeline::PipelineConfig::paper(),
                               scheme);
    pipeline::PipelineStats s =
        pipe.run(*exec, opt.instructions, opt.warmup);

    stats::Table t("Fig. 12 — value delay distribution (vortex)",
                   "delay");
    t.addColumn("fraction");
    for (size_t d = 0; d <= 24; ++d) {
        t.beginRow(std::to_string(d));
        t.cellPercent(s.valueDelay.fraction(d), 2);
    }
    t.beginRow(">24");
    double tail = 0;
    for (size_t d = 25; d < s.valueDelay.numBuckets(); ++d)
        tail += s.valueDelay.fraction(d);
    tail += static_cast<double>(s.valueDelay.overflow()) /
            static_cast<double>(s.valueDelay.samples());
    t.cellPercent(tail, 2);
    bench::emit(t, opt);

    std::printf("measured average value delay: %.2f (paper: "
                "approximately 5, with most delays small)\n",
                s.valueDelay.mean());

    // The other nine kernels' averages, for context.
    std::printf("\naverage value delay per kernel:\n");
    for (const auto &name : workload::specWorkloadNames()) {
        workload::Workload w2 = workload::makeWorkload(name, opt.seed);
        auto exec2 = w2.makeExecutor();
        pipeline::NoPrediction scheme2;
        pipeline::OooPipeline pipe2(pipeline::PipelineConfig::paper(),
                                    scheme2);
        pipeline::PipelineStats s2 =
            pipe2.run(*exec2, opt.instructions / 2, opt.warmup / 2);
        std::printf("  %-8s %6.2f\n", name.c_str(),
                    s2.valueDelay.mean());
    }
    return 0;
}
