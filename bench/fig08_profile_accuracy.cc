/**
 * @file
 * Paper Fig. 8: profile-mode (zero value delay) prediction accuracy
 * over all value-producing instructions — local stride vs local DFCM
 * vs gdiff with an 8-entry GVQ — with unlimited prediction tables.
 *
 * Paper-reported averages: stride 57%, DFCM 64%, gdiff 73%; mcf is
 * gdiff's best (86%) and gap is everyone's worst (~40%).
 */

#include "bench/bench_util.hh"

#include "core/gdiff.hh"
#include "predictors/fcm.hh"
#include "predictors/stride.hh"
#include "sim/profile.hh"
#include "workload/workload.hh"

using namespace gdiff;

namespace {

/// Paper Fig. 8 gdiff accuracies (read off the figure; the text gives
/// mcf = 86% and the 73% average exactly).
double
paperGdiff(const std::string &name)
{
    if (name == "bzip2") return 0.75;
    if (name == "gap") return 0.40;
    if (name == "gcc") return 0.66;
    if (name == "gzip") return 0.73;
    if (name == "mcf") return 0.86;
    if (name == "parser") return 0.79;
    if (name == "perl") return 0.72;
    if (name == "twolf") return 0.76;
    if (name == "vortex") return 0.77;
    if (name == "vpr") return 0.72;
    return 0.73;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 8",
                  "profile accuracy, all value producers "
                  "(unlimited tables, gdiff queue size 8)",
                  opt);

    stats::Table t("Fig. 8 — value prediction accuracy", "benchmark");
    t.addColumn("stride");
    t.addColumn("DFCM");
    t.addColumn("gdiff(q=8)");
    t.addColumn("paper gdiff");

    double sum_stride = 0, sum_dfcm = 0, sum_gdiff = 0;
    const auto &names = workload::specWorkloadNames();
    for (const auto &name : names) {
        workload::Workload w = workload::makeWorkload(name, opt.seed);
        auto exec = w.makeExecutor();

        predictors::StridePredictor stride(0);
        predictors::FcmConfig fcfg;
        fcfg.level1Entries = 0;
        predictors::DfcmPredictor dfcm(fcfg);
        core::GDiffConfig gcfg;
        gcfg.order = 8;
        gcfg.tableEntries = 0;
        core::GDiffPredictor gd(gcfg);

        sim::ProfileConfig pcfg;
        pcfg.maxInstructions = opt.instructions;
        pcfg.warmupInstructions = opt.warmup;
        sim::ValueProfileRunner runner(pcfg);
        runner.addPredictor(stride);
        runner.addPredictor(dfcm);
        runner.addPredictor(gd);
        runner.run(*exec);

        const auto &r = runner.results();
        t.beginRow(name);
        t.cellPercent(r[0].accuracyAll.value());
        t.cellPercent(r[1].accuracyAll.value());
        t.cellPercent(r[2].accuracyAll.value());
        t.cellPercent(paperGdiff(name));
        sum_stride += r[0].accuracyAll.value();
        sum_dfcm += r[1].accuracyAll.value();
        sum_gdiff += r[2].accuracyAll.value();
    }
    double n = static_cast<double>(names.size());
    t.beginRow("average");
    t.cellPercent(sum_stride / n);
    t.cellPercent(sum_dfcm / n);
    t.cellPercent(sum_gdiff / n);
    t.cellPercent(0.73);

    bench::emit(t, opt);
    std::printf("paper averages: stride 57%%, DFCM 64%%, gdiff 73%%\n");
    return 0;
}
