/**
 * @file
 * Paper Fig. 8: profile-mode (zero value delay) prediction accuracy
 * over all value-producing instructions — local stride vs local DFCM
 * vs gdiff with an 8-entry GVQ — with unlimited prediction tables.
 *
 * Paper-reported averages: stride 57%, DFCM 64%, gdiff 73%; mcf is
 * gdiff's best (86%) and gap is everyone's worst (~40%).
 *
 * The (workload × predictor) grid runs through the sweep runner
 * (src/runner): 30 independent profile simulations, parallelised by
 * `--threads=N` with identical per-cell numbers at any thread count.
 */

#include "bench/bench_util.hh"

#include "runner/runner.hh"
#include "workload/workload.hh"

using namespace gdiff;

namespace {

/// Paper Fig. 8 gdiff accuracies (read off the figure; the text gives
/// mcf = 86% and the 73% average exactly).
double
paperGdiff(const std::string &name)
{
    if (name == "bzip2") return 0.75;
    if (name == "gap") return 0.40;
    if (name == "gcc") return 0.66;
    if (name == "gzip") return 0.73;
    if (name == "mcf") return 0.86;
    if (name == "parser") return 0.79;
    if (name == "perl") return 0.72;
    if (name == "twolf") return 0.76;
    if (name == "vortex") return 0.77;
    if (name == "vpr") return 0.72;
    return 0.73;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 8",
                  "profile accuracy, all value producers "
                  "(unlimited tables, gdiff queue size 8)",
                  opt);

    runner::SweepSpec spec;
    spec.mode = runner::JobMode::Profile;
    spec.predictors = {"stride", "dfcm", "gdiff"};
    spec.orders = {8};  // the paper's 8-entry GVQ
    spec.tables = {0};  // unlimited tables
    spec.seeds = {opt.seed};
    spec.defaultInstructions = opt.instructions;
    spec.warmup = opt.warmup;

    runner::SweepRunner sweep(spec);
    runner::CollectingSink results;
    sweep.addSink(results);
    runner::SweepOptions ropt;
    ropt.threads = opt.threads;
    sweep.run(ropt);

    auto accuracy = [&](const std::string &workload,
                        const std::string &predictor) {
        for (const auto &r : results.records())
            if (r.spec.workload == workload &&
                r.spec.predictor == predictor)
                return r.result.metric("accuracy");
        panic("missing sweep cell %s/%s", workload.c_str(),
              predictor.c_str());
    };

    stats::Table t("Fig. 8 — value prediction accuracy", "benchmark");
    t.addColumn("stride");
    t.addColumn("DFCM");
    t.addColumn("gdiff(q=8)");
    t.addColumn("paper gdiff");

    double sum_stride = 0, sum_dfcm = 0, sum_gdiff = 0;
    const auto &names = workload::specWorkloadNames();
    for (const auto &name : names) {
        double acc_s = accuracy(name, "stride");
        double acc_d = accuracy(name, "dfcm");
        double acc_g = accuracy(name, "gdiff");
        t.beginRow(name);
        t.cellPercent(acc_s);
        t.cellPercent(acc_d);
        t.cellPercent(acc_g);
        t.cellPercent(paperGdiff(name));
        sum_stride += acc_s;
        sum_dfcm += acc_d;
        sum_gdiff += acc_g;
    }
    double n = static_cast<double>(names.size());
    t.beginRow("average");
    t.cellPercent(sum_stride / n);
    t.cellPercent(sum_dfcm / n);
    t.cellPercent(sum_gdiff / n);
    t.cellPercent(0.73);

    bench::emit(t, opt);
    std::printf("paper averages: stride 57%%, DFCM 64%%, gdiff 73%%\n");
    return 0;
}
