/**
 * @file
 * Sampled-vs-full simulation harness: how much wall clock does the
 * stratified sampler (src/sample/) save over a full pipeline run, and
 * does its confidence interval actually cover the full run's IPC?
 *
 * For each kernel the harness materializes the trace once (so neither
 * side pays generation), times one full baseline pipeline run, times
 * one sampled run of the same spec at a small budget, and reports:
 *
 *   full IPC / sampled IPC     the two point estimates
 *   ci_lo / ci_hi              the sampled 95% interval
 *   full s / sampled s         wall seconds, trace already resident
 *   speedup                    full s / sampled s
 *   cover                      full IPC inside the 1.5x-widened
 *                              interval (the same bias check the slow
 *                              test battery applies: nominal-level
 *                              misses are sampling noise, many-sigma
 *                              misses are bugs)
 *
 * Gates (scripts/check.sh and CI):
 *   --require-speedup=F   every kernel's speedup must reach F.
 *   --require-ci          every kernel's full-run IPC must fall in
 *                         the widened sampled interval.
 * Extra knobs:
 *   --budget=N            sampled record budget (default
 *                         max(instructions/100, 4 windows)).
 *   --sample-threads=N    workers for window measurement (default 1,
 *                         so the gated speedup is pure work
 *                         reduction, not parallelism).
 *   --reps=N              timing repetitions per side; the fastest
 *                         rep counts (default 2 — one-shot wall
 *                         clock is too noisy for a hard gate).
 * With --json=FILE the numbers are written as one JSON document
 * (uploaded from CI as BENCH_sampled.json).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "runner/runner.hh"
#include "sample/sample.hh"
#include "stats/table.hh"
#include "workload/trace_cache.hh"

using namespace gdiff;

namespace {

using Clock = std::chrono::steady_clock;

const std::vector<std::string> kKernels = {"mcf", "gzip"};

constexpr uint64_t kWindow = 4096;

double
seconds(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    double requireSpeedup = 0.0;
    bool requireCi = false;
    uint64_t budgetFlag = 0;
    unsigned sampleThreads = 1;
    int reps = 2;
    std::string jsonPath;
    std::vector<char *> rest = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--require-speedup=", 18) == 0)
            requireSpeedup = std::atof(argv[i] + 18);
        else if (std::strcmp(argv[i], "--require-ci") == 0)
            requireCi = true;
        else if (std::strncmp(argv[i], "--budget=", 9) == 0)
            budgetFlag = std::strtoull(argv[i] + 9, nullptr, 10);
        else if (std::strncmp(argv[i], "--sample-threads=", 17) == 0)
            sampleThreads = static_cast<unsigned>(
                std::strtoul(argv[i] + 17, nullptr, 10));
        else if (std::strncmp(argv[i], "--reps=", 7) == 0)
            reps = std::max(1, std::atoi(argv[i] + 7));
        else if (std::strncmp(argv[i], "--json=", 7) == 0)
            jsonPath = argv[i] + 7;
        else
            rest.push_back(argv[i]);
    }
    bench::BenchOptions o = bench::BenchOptions::parse(
        static_cast<int>(rest.size()), rest.data());

    const uint64_t budget =
        budgetFlag ? budgetFlag
                   : std::max<uint64_t>(o.instructions / 100,
                                        4 * kWindow);

    bench::banner("sampled vs full simulation",
                  "stratified sampling speedup and interval coverage "
                  "(baseline pipeline)",
                  o);
    std::printf("sampled budget: %llu records (%llu-record windows, "
                "%u measurement threads)\n\n",
                static_cast<unsigned long long>(budget),
                static_cast<unsigned long long>(kWindow),
                sampleThreads == 0 ? 1 : sampleThreads);

    stats::Table t("sampled vs full (baseline pipeline)", "kernel");
    t.addColumn("full IPC");
    t.addColumn("sampled IPC");
    t.addColumn("ci_lo");
    t.addColumn("ci_hi");
    t.addColumn("full s");
    t.addColumn("sampled s");
    t.addColumn("speedup");
    t.addColumn("cover");

    workload::TraceCache cache;
    double minSpeedup = -1.0;
    bool allCovered = true;
    std::string jsonKernels;

    for (const auto &name : kKernels) {
        runner::JobSpec spec;
        spec.mode = runner::JobMode::Pipeline;
        spec.workload = name;
        spec.scheme = "baseline";
        spec.order = 32;
        spec.tableEntries = 8192;
        spec.seed = o.seed;
        spec.instructions = o.instructions;
        spec.warmup = o.warmup;

        // Materialize the shared trace outside both timed sections:
        // the comparison is simulation cost, not kernel execution.
        cache.acquire(name, spec.seed,
                      spec.warmup + spec.instructions);

        runner::JobSpec sampled = spec;
        sampled.sampleBudget = budget;
        sampled.sampleWindow = kWindow;
        sampled.sampleSeed = 1;

        // Fastest of `reps` runs per side: both runs are
        // deterministic, so reps only strip scheduler noise from the
        // wall-clock ratio the gate divides.
        runner::JobResult full, sr;
        double fullSec = -1.0, sampledSec = -1.0;
        for (int rep = 0; rep < reps; ++rep) {
            Clock::time_point t0 = Clock::now();
            full = runner::runJob(spec, &cache);
            double s = seconds(t0);
            if (fullSec < 0 || s < fullSec)
                fullSec = s;
            t0 = Clock::now();
            sr = sample::runSampledJob(sampled, &cache,
                                       sampleThreads);
            s = seconds(t0);
            if (sampledSec < 0 || s < sampledSec)
                sampledSec = s;
        }

        double fullIpc = full.metric("ipc");
        double ipc = sr.metric("ipc");
        double ciLo = sr.metric("ipc_ci_lo");
        double ciHi = sr.metric("ipc_ci_hi");
        // Same 1.5x widening as the slow statistical battery: this
        // is a bias alarm, not a calibration check (the coverage
        // battery owns calibration), so nominal-level misses must
        // not fail a deterministic gate.
        double wideLo = ipc - 1.5 * (ipc - ciLo);
        double wideHi = ipc + 1.5 * (ciHi - ipc);
        bool covered = wideLo <= fullIpc && fullIpc <= wideHi;
        double speedup = sampledSec > 0 ? fullSec / sampledSec : 0.0;

        if (minSpeedup < 0 || speedup < minSpeedup)
            minSpeedup = speedup;
        allCovered = allCovered && covered;

        t.beginRow(name);
        t.cellDouble(fullIpc, 4);
        t.cellDouble(ipc, 4);
        t.cellDouble(ciLo, 4);
        t.cellDouble(ciHi, 4);
        t.cellDouble(fullSec, 3);
        t.cellDouble(sampledSec, 3);
        t.cellDouble(speedup, 2);
        t.cellDouble(covered ? 1 : 0, 0);

        char row[512];
        std::snprintf(
            row, sizeof(row),
            "%s\"%s\":{\"full_ipc\":%.6f,\"sampled_ipc\":%.6f,"
            "\"ci_lo\":%.6f,\"ci_hi\":%.6f,"
            "\"windows\":%g,\"strata\":%g,"
            "\"full_sec\":%.4f,\"sampled_sec\":%.4f,"
            "\"speedup\":%.3f,\"covered\":%s}",
            jsonKernels.empty() ? "" : ",", name.c_str(), fullIpc,
            ipc, ciLo, ciHi, sr.metric("sample_windows"),
            sr.metric("sample_strata"), fullSec, sampledSec, speedup,
            covered ? "true" : "false");
        jsonKernels += row;
    }
    bench::emit(t, o);

    std::printf("min speedup: %.2fx; widened-interval coverage: %s\n",
                minSpeedup, allCovered ? "all kernels" : "MISSED");

    if (!jsonPath.empty()) {
        std::FILE *jf = std::fopen(jsonPath.c_str(), "wb");
        if (!jf) {
            std::fprintf(stderr, "cannot create JSON file '%s'\n",
                         jsonPath.c_str());
            return 1;
        }
        std::fprintf(jf,
                     "{\"bench\":\"sampled_vs_full\","
                     "\"instructions\":%llu,\"warmup\":%llu,"
                     "\"budget\":%llu,\"window\":%llu,"
                     "\"sample_threads\":%u,\"kernels\":{%s},"
                     "\"min_speedup\":%.3f,\"all_covered\":%s}\n",
                     static_cast<unsigned long long>(o.instructions),
                     static_cast<unsigned long long>(o.warmup),
                     static_cast<unsigned long long>(budget),
                     static_cast<unsigned long long>(kWindow),
                     sampleThreads == 0 ? 1 : sampleThreads,
                     jsonKernels.c_str(), minSpeedup,
                     allCovered ? "true" : "false");
        std::fclose(jf);
    }

    bool gateFail = false;
    if (requireSpeedup > 0 && minSpeedup < requireSpeedup) {
        std::fprintf(stderr,
                     "FAIL: sampled speedup %.2fx below required "
                     "%.2fx\n",
                     minSpeedup, requireSpeedup);
        gateFail = true;
    }
    if (requireCi && !allCovered) {
        std::fprintf(stderr,
                     "FAIL: a full-run IPC fell outside the widened "
                     "sampled interval (see table)\n");
        gateFail = true;
    }
    return gateFail ? 1 : 0;
}
