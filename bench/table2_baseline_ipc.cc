/**
 * @file
 * Paper Table 2: baseline IPC of the 4-wide, 64-entry-window machine
 * (no value speculation), plus the machine-behaviour diagnostics that
 * explain each kernel's character (D-cache and I-cache miss rates,
 * branch accuracy).
 *
 * Note: the numeric cells of Table 2 did not survive in the available
 * text of the paper, so this bench reports our measured baseline and
 * the qualitative checks the paper's prose implies — most
 * importantly, mcf must be the slowest, memory-bound kernel (the
 * paper quotes a 44.08% L1 D-cache miss rate for mcf).
 */

#include "bench/bench_util.hh"

#include "pipeline/ooo_model.hh"
#include "workload/workload.hh"

using namespace gdiff;

int
main(int argc, char **argv)
{
    auto opt = bench::BenchOptions::parse(argc, argv);
    bench::banner("Table 2",
                  "baseline IPC (4-wide, 64-entry window, no value "
                  "speculation)",
                  opt);

    stats::Table t("Table 2 — baseline machine", "benchmark");
    t.addColumn("IPC");
    t.addColumn("D$ miss");
    t.addColumn("I$ miss");
    t.addColumn("bpred acc");
    t.addColumn("redirect cyc");
    t.addColumn("ROB-stall cyc");

    double worst_ipc = 1e9;
    std::string worst;
    double mcf_ipc = 0, mcf_dmiss = 0;
    for (const auto &name : workload::specWorkloadNames()) {
        workload::Workload w = workload::makeWorkload(name, opt.seed);
        auto exec = w.makeExecutor();
        pipeline::NoPrediction scheme;
        pipeline::OooPipeline pipe(pipeline::PipelineConfig::paper(),
                                   scheme);
        pipeline::PipelineStats s =
            pipe.run(*exec, opt.instructions, opt.warmup);

        t.beginRow(name);
        t.cellDouble(s.ipc, 3);
        t.cellPercent(s.dcacheMissRate);
        t.cellPercent(s.icacheMissRate);
        t.cellPercent(s.branchAccuracy);
        // bubbles as a fraction of measured cycles
        t.cellPercent(static_cast<double>(s.redirectBubbleCycles) /
                      static_cast<double>(s.cycles));
        t.cellPercent(static_cast<double>(s.robStallCycles) /
                      static_cast<double>(s.cycles));
        if (s.ipc < worst_ipc) {
            worst_ipc = s.ipc;
            worst = name;
        }
        if (name == "mcf") {
            mcf_ipc = s.ipc;
            mcf_dmiss = s.dcacheMissRate;
        }
    }
    bench::emit(t, opt);

    std::printf("qualitative checks vs the paper: mcf is memory-bound "
                "(measured D$ miss %.1f%%, paper quotes 44.1%%); "
                "slowest kernel: %s (IPC %.3f; mcf IPC %.3f)\n",
                100.0 * mcf_dmiss, worst.c_str(), worst_ipc, mcf_ipc);
    return 0;
}
