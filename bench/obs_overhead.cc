/**
 * @file
 * Observability overhead gate: the whole point of src/obs is that
 * instrumentation at chunk/job granularity costs almost nothing, so
 * this harness measures exactly that claim and — with
 * --require-overhead=PCT — fails when enabling collection slows the
 * instrumented hot path by more than PCT percent. scripts/check.sh
 * and the CI bench job pin it at 3%.
 *
 * Method: drain the profile runner (the most finely instrumented
 * loop) over a cached, pre-materialized trace, so the work measured
 * is pure simulation with zero generation noise. Each mode runs
 * several times interleaved and keeps its minimum, the standard
 * trick for squeezing scheduler noise out of a wall-clock ratio.
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hh"

#include "core/gdiff.hh"
#include "obs/obs.hh"
#include "sim/profile.hh"
#include "workload/trace_cache.hh"

using namespace gdiff;

namespace {

using Clock = std::chrono::steady_clock;

/** One timed profile run over a cached trace replay. */
double
timedRun(workload::TraceCache &cache, const std::string &kernel,
         const bench::BenchOptions &o)
{
    auto acq =
        cache.acquire(kernel, o.seed, o.warmup + o.instructions);

    core::GDiffConfig gcfg;
    gcfg.order = 8;
    gcfg.tableEntries = 8192;
    core::GDiffPredictor pred(gcfg);

    sim::ProfileConfig pcfg;
    pcfg.maxInstructions = o.instructions;
    pcfg.warmupInstructions = o.warmup;
    sim::ValueProfileRunner runner(pcfg);
    runner.addPredictor(pred);

    auto t0 = Clock::now();
    runner.run(*acq.source);
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    // --require-overhead is this harness's own flag; everything else
    // goes through the shared BenchOptions parser.
    double requirePct = 0.0;
    std::vector<char *> rest = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--require-overhead=", 19) == 0)
            requirePct = static_cast<double>(
                parseU64Flag("--require-overhead", argv[i] + 19));
        else
            rest.push_back(argv[i]);
    }
    bench::BenchOptions o = bench::BenchOptions::parse(
        static_cast<int>(rest.size()), rest.data());

    bench::banner("obs overhead",
                  "profile-loop wall time with instrumentation off "
                  "vs on",
                  o);
    if (!GDIFF_OBS_ENABLED)
        std::printf("note: compiled with GDIFF_OBS=OFF — the 'on' "
                    "column measures the compiled-out macros\n");

    const std::vector<std::string> kernels = {"mcf", "parser",
                                              "gzip"};
    constexpr int kRepeats = 5;

    // Materialize every trace up front (untimed) so both modes replay
    // identical frozen streams.
    workload::TraceCache cache;
    for (const auto &k : kernels)
        cache.acquire(k, o.seed, o.warmup + o.instructions);

    stats::Table t("obs overhead per kernel (min-of-" +
                       std::to_string(kRepeats) + " seconds)",
                   "kernel");
    t.addColumn("obs off");
    t.addColumn("obs on");
    t.addColumn("overhead %");

    double sumOff = 0, sumOn = 0;
    for (const auto &k : kernels) {
        double off = 1e100, on = 1e100;
        for (int r = 0; r < kRepeats; ++r) {
            obs::setEnabled(false);
            off = std::min(off, timedRun(cache, k, o));
            obs::setEnabled(true);
            on = std::min(on, timedRun(cache, k, o));
        }
        obs::setEnabled(false);
        obs::reset();
        sumOff += off;
        sumOn += on;
        t.beginRow(k);
        t.cellDouble(off, 4);
        t.cellDouble(on, 4);
        t.cellDouble(100.0 * (on - off) / off, 2);
    }
    bench::emit(t, o);

    double pct = 100.0 * (sumOn - sumOff) / sumOff;
    std::printf("aggregate obs overhead: %.2f%% (off %.4fs, on "
                "%.4fs)\n",
                pct, sumOff, sumOn);
    if (requirePct > 0 && pct > requirePct) {
        std::fprintf(stderr,
                     "FAIL: obs overhead %.2f%% above required "
                     "%.2f%%\n",
                     pct, requirePct);
        return 1;
    }
    return 0;
}
