/**
 * @file
 * Paper Fig. 19: speedup of value speculation over the baseline
 * 4-wide, 64-entry-window machine, for the local stride predictor,
 * the local context predictor (DFCM) and the gdiff(HGVQ) predictor.
 *
 * Paper-reported shape: gdiff wins overall (19.2% harmonic-mean
 * speedup vs 15% for local stride); mcf shows the largest gdiff
 * speedup (53% over baseline, 17% over local stride) because gdiff
 * predicts many missing loads; local context trails because of its
 * small coverage.
 *
 * The (workload × scheme) grid runs through the sweep runner
 * (src/runner), so `--threads=N` parallelises the 40 independent
 * simulations; per-cell results are identical at any thread count.
 */

#include <cmath>

#include "bench/bench_util.hh"

#include "runner/runner.hh"
#include "workload/workload.hh"

using namespace gdiff;

int
main(int argc, char **argv)
{
    auto opt = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 19",
                  "value-speculation speedups over the baseline "
                  "(4-wide, 64-entry window)",
                  opt);

    runner::SweepSpec spec;
    spec.mode = runner::JobMode::Pipeline;
    spec.schemes = {"baseline", "l_stride", "l_context", "hgvq"};
    spec.orders = {32};           // paper order for pipeline studies
    spec.tables = {8192};
    spec.seeds = {opt.seed};
    spec.defaultInstructions = opt.instructions;
    spec.warmup = opt.warmup;

    runner::SweepRunner sweep(spec);
    runner::CollectingSink results;
    sweep.addSink(results);
    runner::SweepOptions ropt;
    ropt.threads = opt.threads;
    sweep.run(ropt);

    // Index results by (workload, scheme) for table assembly.
    auto metric = [&](const std::string &workload,
                      const std::string &scheme,
                      const std::string &name) {
        for (const auto &r : results.records())
            if (r.spec.workload == workload &&
                r.spec.scheme == scheme)
                return r.result.metric(name);
        panic("missing sweep cell %s/%s", workload.c_str(),
              scheme.c_str());
    };

    stats::Table t("Fig. 19 — speedups over baseline", "benchmark");
    t.addColumn("base IPC");
    t.addColumn("l_stride");
    t.addColumn("l_context");
    t.addColumn("gdiff(HGVQ)");
    t.addColumn("gdiff miss-ld cov");
    t.addColumn("gdiff miss-ld acc");

    double inv_sum_s = 0, inv_sum_c = 0, inv_sum_g = 0;
    size_t n = 0;
    for (const auto &name : workload::specWorkloadNames()) {
        double ipc0 = metric(name, "baseline", "ipc");
        double ipc_s = metric(name, "l_stride", "ipc");
        double ipc_c = metric(name, "l_context", "ipc");
        double ipc_g = metric(name, "hgvq", "ipc");

        auto speedup = [&](double ipc) { return ipc / ipc0 - 1.0; };
        t.beginRow(name);
        t.cellDouble(ipc0, 3);
        t.cellPercent(speedup(ipc_s));
        t.cellPercent(speedup(ipc_c));
        t.cellPercent(speedup(ipc_g));
        t.cellPercent(metric(name, "hgvq", "miss_load_coverage"));
        t.cellPercent(metric(name, "hgvq", "miss_load_accuracy"));

        inv_sum_s += ipc0 / ipc_s;
        inv_sum_c += ipc0 / ipc_c;
        inv_sum_g += ipc0 / ipc_g;
        ++n;
    }

    // Harmonic-mean speedups, as the paper's H_mean column.
    auto hmean = [&](double inv_sum) {
        return static_cast<double>(n) / inv_sum - 1.0;
    };
    t.beginRow("H_mean");
    t.cell("-");
    t.cellPercent(hmean(inv_sum_s));
    t.cellPercent(hmean(inv_sum_c));
    t.cellPercent(hmean(inv_sum_g));
    t.cell("-");
    t.cell("-");

    bench::emit(t, opt);
    std::printf("paper: gdiff 19.2%% average speedup (4%% over local "
                "stride's 15%%); mcf largest (53%% / +17%% over local "
                "stride); local context trails on coverage\n");
    return 0;
}
