/**
 * @file
 * Paper Fig. 19: speedup of value speculation over the baseline
 * 4-wide, 64-entry-window machine, for the local stride predictor,
 * the local context predictor (DFCM) and the gdiff(HGVQ) predictor.
 *
 * Paper-reported shape: gdiff wins overall (19.2% harmonic-mean
 * speedup vs 15% for local stride); mcf shows the largest gdiff
 * speedup (53% over baseline, 17% over local stride) because gdiff
 * predicts many missing loads; local context trails because of its
 * small coverage.
 */

#include <cmath>

#include "bench/bench_util.hh"

#include "pipeline/ooo_model.hh"
#include "predictors/fcm.hh"
#include "predictors/stride.hh"
#include "workload/workload.hh"

using namespace gdiff;

namespace {

double
runIpc(const std::string &name, const bench::BenchOptions &opt,
       pipeline::VpScheme &scheme, pipeline::PipelineStats *out = nullptr)
{
    workload::Workload w = workload::makeWorkload(name, opt.seed);
    auto exec = w.makeExecutor();
    pipeline::OooPipeline pipe(pipeline::PipelineConfig::paper(),
                               scheme);
    pipeline::PipelineStats s =
        pipe.run(*exec, opt.instructions, opt.warmup);
    if (out)
        *out = s;
    return s.ipc;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 19",
                  "value-speculation speedups over the baseline "
                  "(4-wide, 64-entry window)",
                  opt);

    stats::Table t("Fig. 19 — speedups over baseline", "benchmark");
    t.addColumn("base IPC");
    t.addColumn("l_stride");
    t.addColumn("l_context");
    t.addColumn("gdiff(HGVQ)");
    t.addColumn("gdiff miss-ld cov");
    t.addColumn("gdiff miss-ld acc");

    double inv_sum_s = 0, inv_sum_c = 0, inv_sum_g = 0;
    size_t n = 0;
    for (const auto &name : workload::specWorkloadNames()) {
        pipeline::NoPrediction base;
        double ipc0 = runIpc(name, opt, base);

        pipeline::LocalScheme lstride(
            std::make_unique<predictors::StridePredictor>(8192),
            "l_stride");
        double ipc_s = runIpc(name, opt, lstride);

        predictors::FcmConfig fcfg;
        fcfg.level1Entries = 8192;
        pipeline::LocalScheme lctx(
            std::make_unique<predictors::DfcmPredictor>(fcfg),
            "l_context");
        double ipc_c = runIpc(name, opt, lctx);

        core::GDiffConfig gcfg;
        gcfg.order = 32;
        gcfg.tableEntries = 8192;
        pipeline::HgvqScheme hgvq(gcfg);
        pipeline::PipelineStats gs;
        double ipc_g = runIpc(name, opt, hgvq, &gs);

        auto speedup = [&](double ipc) { return ipc / ipc0 - 1.0; };
        t.beginRow(name);
        t.cellDouble(ipc0, 3);
        t.cellPercent(speedup(ipc_s));
        t.cellPercent(speedup(ipc_c));
        t.cellPercent(speedup(ipc_g));
        t.cellPercent(gs.missLoadCoverage.value());
        t.cellPercent(gs.missLoadAccuracy.value());

        inv_sum_s += ipc0 / ipc_s;
        inv_sum_c += ipc0 / ipc_c;
        inv_sum_g += ipc0 / ipc_g;
        ++n;
    }

    // Harmonic-mean speedups, as the paper's H_mean column.
    auto hmean = [&](double inv_sum) {
        return static_cast<double>(n) / inv_sum - 1.0;
    };
    t.beginRow("H_mean");
    t.cell("-");
    t.cellPercent(hmean(inv_sum_s));
    t.cellPercent(hmean(inv_sum_c));
    t.cellPercent(hmean(inv_sum_g));
    t.cell("-");
    t.cell("-");

    bench::emit(t, opt);
    std::printf("paper: gdiff 19.2%% average speedup (4%% over local "
                "stride's 15%%); mcf largest (53%% / +17%% over local "
                "stride); local context trails on coverage\n");
    return 0;
}
