/**
 * @file
 * Correlation-distance analysis — the study the paper's §3 delegates
 * to its companion thesis ("a detailed classification of dependencies
 * between correlated instructions and a distribution of correlation
 * distance are discussed in [2]").
 *
 * For every *correct* gdiff prediction we record the selected
 * distance, and classify the correlated pair:
 *
 *   direct    — the correlate is the producer of one of the predicted
 *               instruction's source registers (a define-use pair, as
 *               in the paper's Fig. 3 explicit-use cases);
 *   memory    — the predicted instruction is a load whose address was
 *               last stored by the window position it correlates
 *               with, or equals the correlate's value exactly (the
 *               spill/fill implicit-use case);
 *   distant   — everything else (loop-carried strides, allocation
 *               affinity, coincidence).
 */

#include "bench/bench_util.hh"

#include <deque>

#include "core/gdiff.hh"
#include "workload/workload.hh"

using namespace gdiff;

int
main(int argc, char **argv)
{
    auto opt = bench::BenchOptions::parse(argc, argv);
    bench::banner("Analysis: correlation distance",
                  "selected-distance distribution and dependence "
                  "classes of correct gdiff predictions (queue 8)",
                  opt);

    stats::Table t("correct predictions by selected distance",
                   "benchmark");
    for (unsigned d = 0; d < 8; ++d)
        t.addColumn("d=" + std::to_string(d));
    t.addColumn("direct");
    t.addColumn("mem");
    t.addColumn("distant");

    for (const auto &name : workload::specWorkloadNames()) {
        workload::Workload w = workload::makeWorkload(name, opt.seed);
        auto exec = w.makeExecutor();

        core::GDiffConfig gcfg;
        gcfg.order = 8;
        gcfg.tableEntries = 0;
        core::GDiffPredictor gd(gcfg);

        // Parallel model of the GVQ: which dynamic instruction
        // produced each window slot, and what it wrote where.
        struct Producer
        {
            uint64_t seq = 0;
            isa::Reg rd = 0;
            int64_t value = 0;
        };
        std::deque<Producer> window; // newest at front
        std::array<uint64_t, isa::numRegs> lastWriter{};
        uint64_t dist_counts[8] = {0};
        uint64_t direct = 0, memory = 0, distant = 0;
        uint64_t correct_total = 0;

        workload::TraceRecord r;
        uint64_t executed = 0;
        uint64_t budget = opt.instructions + opt.warmup;
        while (executed < budget && exec->next(r)) {
            ++executed;
            if (!r.producesValue())
                continue;
            bool measured = executed > opt.warmup;
            int64_t guess;
            bool predicted = gd.predict(r.pc, guess);
            int d = gd.selectedDistance(r.pc);
            if (measured && predicted && guess == r.value && d >= 0 &&
                d < 8 && static_cast<size_t>(d) < window.size()) {
                ++correct_total;
                ++dist_counts[d];
                const Producer &corr =
                    window[static_cast<size_t>(d)];
                bool is_direct =
                    (r.inst.readsRs1() &&
                     lastWriter[r.inst.rs1] == corr.seq) ||
                    (r.inst.readsRs2() &&
                     lastWriter[r.inst.rs2] == corr.seq);
                if (is_direct)
                    ++direct;
                else if (r.isLoad() && r.value == corr.value)
                    ++memory; // spill/fill style value round-trip
                else
                    ++distant;
            }
            gd.update(r.pc, r.value);
            window.push_front(Producer{r.seq, r.inst.rd, r.value});
            if (window.size() > 8)
                window.pop_back();
            lastWriter[r.inst.rd] = r.seq;
        }

        t.beginRow(name);
        for (unsigned d = 0; d < 8; ++d) {
            t.cellPercent(correct_total
                              ? static_cast<double>(dist_counts[d]) /
                                    static_cast<double>(correct_total)
                              : 0.0);
        }
        auto frac = [&](uint64_t n) {
            return correct_total ? static_cast<double>(n) /
                                       static_cast<double>(correct_total)
                                 : 0.0;
        };
        t.cellPercent(frac(direct));
        t.cellPercent(frac(memory));
        t.cellPercent(frac(distant));
    }
    bench::emit(t, opt);
    std::printf("short distances dominate (the §3.1 value-delay "
                "problem in one chart); direct define-use pairs and "
                "through-memory round trips carry most of the "
                "correct predictions\n");
    return 0;
}
