/**
 * @file
 * Paper Fig. 10: profile-mode gdiff prediction accuracy (queue size
 * 8) under value delays T ∈ {0, 2, 4, 8, 16} — the predictor cannot
 * see the T most recently produced values.
 *
 * Paper shape: average accuracy falls from 73% (T=0) to 52% (T=16);
 * gap is the exception, peaking at a *non-zero* delay because its
 * only correlations sit just beyond an 8-entry window (§3.1).
 */

#include "bench/bench_util.hh"

#include "core/gdiff.hh"
#include "sim/profile.hh"
#include "workload/workload.hh"

using namespace gdiff;

int
main(int argc, char **argv)
{
    auto opt = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 10",
                  "gdiff accuracy vs value delay (profile mode, "
                  "queue size 8)",
                  opt);

    const unsigned delays[] = {0, 2, 4, 8, 16};

    stats::Table t("Fig. 10 — gdiff accuracy vs value delay",
                   "benchmark");
    for (unsigned d : delays)
        t.addColumn("T=" + std::to_string(d));

    std::vector<double> sums(std::size(delays), 0.0);
    size_t n = 0;
    std::string gap_peak;
    double gap_best = -1, gap_t0 = 0;
    for (const auto &name : workload::specWorkloadNames()) {
        t.beginRow(name);
        for (size_t i = 0; i < std::size(delays); ++i) {
            workload::Workload w =
                workload::makeWorkload(name, opt.seed);
            auto exec = w.makeExecutor();
            core::GDiffConfig gcfg;
            gcfg.order = 8;
            gcfg.tableEntries = 0;
            gcfg.valueDelay = delays[i];
            core::GDiffPredictor gd(gcfg);

            sim::ProfileConfig pcfg;
            pcfg.maxInstructions = opt.instructions;
            pcfg.warmupInstructions = opt.warmup;
            sim::ValueProfileRunner runner(pcfg);
            runner.addPredictor(gd);
            runner.run(*exec);
            double acc = runner.results()[0].accuracyAll.value();
            t.cellPercent(acc);
            sums[i] += acc;
            if (name == "gap") {
                if (delays[i] == 0)
                    gap_t0 = acc;
                if (acc > gap_best) {
                    gap_best = acc;
                    gap_peak = "T=" + std::to_string(delays[i]);
                }
            }
        }
        ++n;
    }
    t.beginRow("average");
    for (double s : sums)
        t.cellPercent(s / static_cast<double>(n));
    bench::emit(t, opt);

    std::printf("paper: average falls 73%% -> 52%% as T goes 0 -> 16; "
                "gap peaks at non-zero delay.\n");
    std::printf("measured gap anomaly: best accuracy %.1f%% at %s "
                "(T=0: %.1f%%)\n",
                100.0 * gap_best, gap_peak.c_str(), 100.0 * gap_t0);
    return 0;
}
