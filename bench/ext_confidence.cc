/**
 * @file
 * Ablation: confidence policy sweep for the gdiff(HGVQ) pipeline
 * scheme — justifying the paper's 3-bit +2/-1 threshold-4 mechanism
 * (§4) by comparing against slower-rising and faster-falling
 * policies. The trade is the usual one: stricter policies buy
 * accuracy with coverage.
 */

#include "bench/bench_util.hh"

#include "pipeline/ooo_model.hh"
#include "workload/workload.hh"

using namespace gdiff;

namespace {

struct Policy
{
    const char *name;
    predictors::ConfidenceConfig cfg;
};

/** HgvqScheme with a custom confidence policy. */
class TunedHgvq : public pipeline::HgvqScheme
{
  public:
    TunedHgvq(const core::GDiffConfig &g,
              const predictors::ConfidenceConfig &c)
        : pipeline::HgvqScheme(g, 8192, c)
    {}
};

} // namespace

int
main(int argc, char **argv)
{
    auto opt = bench::BenchOptions::parse(argc, argv);
    bench::banner("Ablation: confidence policy",
                  "gdiff(HGVQ) accuracy/coverage under different "
                  "confidence counters",
                  opt);

    Policy policies[] = {
        {"+2/-1 t4 (paper)", {3, 2, 1, 4, 0}},
        {"+1/-1 t4", {3, 1, 1, 4, 0}},
        {"+1/-2 t4", {3, 1, 2, 4, 0}},
        {"+2/-1 t6", {3, 2, 1, 6, 0}},
        {"+3/-4 t7 (strict)", {3, 3, 4, 7, 0}},
    };

    stats::Table t("confidence policy sweep (averages over kernels)",
                   "policy");
    t.addColumn("accuracy");
    t.addColumn("coverage");

    for (const auto &p : policies) {
        double acc = 0, cov = 0;
        size_t n = 0;
        for (const auto &name : workload::specWorkloadNames()) {
            workload::Workload w =
                workload::makeWorkload(name, opt.seed);
            auto exec = w.makeExecutor();
            core::GDiffConfig gcfg;
            gcfg.order = 32;
            gcfg.tableEntries = 8192;
            TunedHgvq scheme(gcfg, p.cfg);
            pipeline::OooPipeline pipe(
                pipeline::PipelineConfig::paper(), scheme);
            pipe.run(*exec, opt.instructions, opt.warmup);
            acc += scheme.gatedAccuracy().value();
            cov += scheme.coverage().value();
            ++n;
        }
        t.beginRow(p.name);
        t.cellPercent(acc / static_cast<double>(n));
        t.cellPercent(cov / static_cast<double>(n));
    }
    bench::emit(t, opt);
    std::printf("stricter policies trade coverage for accuracy; the "
                "paper's +2/-1 at threshold 4 sits at the "
                "coverage-friendly end\n");
    return 0;
}
