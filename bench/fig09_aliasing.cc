/**
 * @file
 * Paper Fig. 9: aliasing in the tagless gdiff prediction table —
 * conflict rate (lookups landing on an entry last used by a
 * different PC) as the table shrinks, and the accuracy cost relative
 * to an unlimited table.
 *
 * Scale note (see DESIGN.md): our synthetic kernels have static
 * footprints of a few hundred to a few thousand instructions, versus
 * tens of thousands for compiled SPECint2000, so the absolute table
 * sizes at which aliasing appears are proportionally smaller. The
 * *shape* — negligible loss at the paper's chosen size, growing
 * conflict rates as the table shrinks below the footprint — is what
 * this bench reproduces; we sweep down to 64 entries accordingly.
 */

#include "bench/bench_util.hh"

#include "core/gdiff.hh"
#include "sim/profile.hh"
#include "workload/workload.hh"

using namespace gdiff;

namespace {

struct Point
{
    double conflictRate;
    double accuracy;
};

Point
runPoint(const std::string &name, const bench::BenchOptions &opt,
         size_t entries)
{
    workload::Workload w = workload::makeWorkload(name, opt.seed);
    auto exec = w.makeExecutor();
    core::GDiffConfig gcfg;
    gcfg.order = 8;
    gcfg.tableEntries = entries;
    core::GDiffPredictor gd(gcfg);

    sim::ProfileConfig pcfg;
    pcfg.maxInstructions = opt.instructions;
    pcfg.warmupInstructions = opt.warmup;
    sim::ValueProfileRunner runner(pcfg);
    runner.addPredictor(gd);
    runner.run(*exec);
    return Point{gd.tableConflictRate(),
                 runner.results()[0].accuracyAll.value()};
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 9",
                  "aliasing effect of the tagless prediction table "
                  "(gdiff, queue size 8)",
                  opt);

    const size_t sizes[] = {0, 8192, 2048, 512, 256, 128, 64};

    stats::Table conflicts("Fig. 9 — conflict rate by table size",
                           "benchmark");
    stats::Table accloss("Fig. 9b — accuracy loss vs unlimited table",
                         "benchmark");
    for (size_t s : sizes) {
        std::string h = s == 0 ? "unlimited" : std::to_string(s);
        conflicts.addColumn(h);
        if (s != 0)
            accloss.addColumn(h);
    }

    for (const auto &name : workload::specWorkloadNames()) {
        conflicts.beginRow(name);
        accloss.beginRow(name);
        double unlimited_acc = 0;
        for (size_t s : sizes) {
            Point p = runPoint(name, opt, s);
            conflicts.cellPercent(p.conflictRate);
            if (s == 0)
                unlimited_acc = p.accuracy;
            else
                accloss.cellPercent(unlimited_acc - p.accuracy);
        }
    }
    bench::emit(conflicts, opt);
    bench::emit(accloss, opt);
    std::printf("paper: an 8K-entry table costs < 1%% accuracy vs "
                "unlimited; conflicts grow as the table shrinks below "
                "the static footprint\n");
    return 0;
}
