/**
 * @file
 * Shared helpers for the figure/table benchmark harnesses.
 *
 * Every bench binary accepts:
 *   --instructions=N   measured dynamic instructions per kernel
 *   --warmup=N         warmup instructions per kernel
 *   --seed=N           workload synthesis seed
 *   --threads=N        worker threads for harnesses that sweep their
 *                      grid through the runner (default: hardware
 *                      concurrency)
 *   --csv              additionally emit CSV after each table
 *
 * and prints the regenerated figure/table rows next to the paper's
 * reported numbers where the paper gives them. Numeric values are
 * parsed strictly (util/parse.hh): trailing garbage or a zero budget
 * is fatal instead of silently truncated.
 */

#ifndef GDIFF_BENCH_BENCH_UTIL_HH
#define GDIFF_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "stats/table.hh"
#include "util/parse.hh"

namespace gdiff {
namespace bench {

/** Command-line options common to all bench harnesses. */
struct BenchOptions
{
    uint64_t instructions = 2'000'000;
    uint64_t warmup = 200'000;
    uint64_t seed = 1;
    unsigned threads = 0; ///< 0 = hardware concurrency
    bool csv = false;

    /** Parse argv; unrecognised flags abort with a usage message. */
    static BenchOptions
    parse(int argc, char **argv)
    {
        BenchOptions o;
        for (int i = 1; i < argc; ++i) {
            const char *a = argv[i];
            if (std::strncmp(a, "--instructions=", 15) == 0) {
                o.instructions =
                    parseU64Flag("--instructions", a + 15);
            } else if (std::strncmp(a, "--warmup=", 9) == 0) {
                o.warmup = parseU64Flag("--warmup", a + 9, true);
            } else if (std::strncmp(a, "--seed=", 7) == 0) {
                o.seed = parseU64Flag("--seed", a + 7, true);
            } else if (std::strncmp(a, "--threads=", 10) == 0) {
                o.threads = static_cast<unsigned>(
                    parseU64Flag("--threads", a + 10));
            } else if (std::strcmp(a, "--csv") == 0) {
                o.csv = true;
            } else {
                std::fprintf(stderr,
                             "usage: %s [--instructions=N] "
                             "[--warmup=N] [--seed=N] [--threads=N] "
                             "[--csv]\n",
                             argv[0]);
                std::exit(2);
            }
        }
        return o;
    }
};

/** Print the table (and CSV if requested) to stdout. */
inline void
emit(const stats::Table &t, const BenchOptions &o)
{
    t.print(std::cout);
    if (o.csv) {
        t.printCsv(std::cout);
        std::cout << '\n';
    }
}

/** Print the standard bench banner. */
inline void
banner(const char *experiment, const char *what, const BenchOptions &o)
{
    std::printf("%s — %s\n", experiment, what);
    std::printf("(measuring %llu instructions/kernel after %llu "
                "warmup; seed %llu; synthetic SPECint2000-like "
                "kernels, see DESIGN.md)\n\n",
                static_cast<unsigned long long>(o.instructions),
                static_cast<unsigned long long>(o.warmup),
                static_cast<unsigned long long>(o.seed));
}

} // namespace bench
} // namespace gdiff

#endif // GDIFF_BENCH_BENCH_UTIL_HH
