/**
 * @file
 * Ablation: gdiff queue size (order) sweep — 4 / 8 / 16 / 32 / 64 —
 * in profile mode with unlimited tables.
 *
 * Reproduces the paper's §3 anecdote: gap's accuracy is poor with an
 * 8-entry queue because its correlations sit just beyond it, and
 * "if the global value queue is increased in size to 32 ... the
 * prediction accuracy for gap increases to 59.7%". Elsewhere the
 * sweep shows diminishing returns past the paper's chosen sizes.
 */

#include "bench/bench_util.hh"

#include "core/gdiff.hh"
#include "sim/profile.hh"
#include "workload/workload.hh"

using namespace gdiff;

int
main(int argc, char **argv)
{
    auto opt = bench::BenchOptions::parse(argc, argv);
    bench::banner("Ablation: queue size",
                  "gdiff accuracy vs GVQ order (profile mode, "
                  "unlimited tables)",
                  opt);

    const unsigned orders[] = {4, 8, 16, 32, 64};

    stats::Table t("gdiff accuracy vs queue size", "benchmark");
    for (unsigned o : orders)
        t.addColumn("q=" + std::to_string(o));

    std::vector<double> sums(std::size(orders), 0.0);
    double gap_q8 = 0, gap_q32 = 0;
    size_t n = 0;
    for (const auto &name : workload::specWorkloadNames()) {
        t.beginRow(name);
        for (size_t i = 0; i < std::size(orders); ++i) {
            workload::Workload w =
                workload::makeWorkload(name, opt.seed);
            auto exec = w.makeExecutor();
            core::GDiffConfig gcfg;
            gcfg.order = orders[i];
            gcfg.tableEntries = 0;
            core::GDiffPredictor gd(gcfg);

            sim::ProfileConfig pcfg;
            pcfg.maxInstructions = opt.instructions;
            pcfg.warmupInstructions = opt.warmup;
            sim::ValueProfileRunner runner(pcfg);
            runner.addPredictor(gd);
            runner.run(*exec);
            double acc = runner.results()[0].accuracyAll.value();
            t.cellPercent(acc);
            sums[i] += acc;
            if (name == "gap" && orders[i] == 8)
                gap_q8 = acc;
            if (name == "gap" && orders[i] == 32)
                gap_q32 = acc;
        }
        ++n;
    }
    t.beginRow("average");
    for (double s : sums)
        t.cellPercent(s / static_cast<double>(n));
    bench::emit(t, opt);

    std::printf("paper §3: gap improves sharply from q=8 to q=32 "
                "(to 59.7%%). measured: gap %.1f%% -> %.1f%%\n",
                100.0 * gap_q8, 100.0 * gap_q32);
    return 0;
}
