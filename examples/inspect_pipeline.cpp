/**
 * @file
 * inspect_pipeline — per-instruction value-speculation report from
 * inside the OOO pipeline.
 *
 * Runs one kernel under the gdiff(HGVQ) scheme and under the local
 * stride scheme, and prints per-PC confidence-gated coverage and
 * accuracy for each. This is the microscope for the pipeline figures
 * (13/16/19): it shows which static instructions are confidently
 * mispredicted and which carry the coverage.
 *
 * Usage: inspect_pipeline [workload] [instructions] [order]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "pipeline/ooo_model.hh"
#include "predictors/stride.hh"
#include "workload/workload.hh"

using namespace gdiff;

namespace {

struct PcStats
{
    uint64_t count = 0;
    uint64_t confident = 0;
    uint64_t confidentCorrect = 0;
    std::string disasm;
};

/**
 * A shim scheme that wraps another scheme and records per-PC
 * outcomes. Demonstrates how the VpScheme interface composes.
 */
class RecordingScheme : public pipeline::VpScheme
{
  public:
    RecordingScheme(pipeline::VpScheme &inner,
                    std::map<uint64_t, PcStats> &stats)
        : inner(inner), stats(stats)
    {}

    std::string name() const override { return inner.name(); }

  protected:
    bool
    doPredict(uint64_t pc, unsigned, int64_t &value,
              uint64_t &token) override
    {
        pipeline::VpDecision d = inner.predictAtDispatch(pc);
        value = d.value;
        token = tokens.size();
        tokens.push_back(d);
        return d.predicted;
    }

    void
    doWriteback(uint64_t pc, const pipeline::VpDecision &d,
                int64_t actual) override
    {
        // d.token always indexes the inner decision captured at
        // dispatch (doPredict sets it unconditionally).
        const pipeline::VpDecision &inner_d = tokens[d.token];
        PcStats &s = stats[pc];
        ++s.count;
        if (inner_d.confident) {
            ++s.confident;
            if (inner_d.value == actual)
                ++s.confidentCorrect;
        }
        inner.writeback(pc, inner_d, actual);
    }

  private:
    pipeline::VpScheme &inner;
    std::map<uint64_t, PcStats> &stats;
    std::vector<pipeline::VpDecision> tokens;
};

void
runOne(const std::string &name, uint64_t budget,
       pipeline::VpScheme &scheme, std::map<uint64_t, PcStats> &stats)
{
    workload::Workload w = workload::makeWorkload(name, 1);
    auto exec = w.makeExecutor();
    RecordingScheme rec(scheme, stats);
    pipeline::OooPipeline pipe(pipeline::PipelineConfig::paper(), rec);
    pipe.run(*exec, budget, budget / 5);

    // attach disassembly
    for (auto &[pc, s] : stats) {
        uint32_t idx = isa::pcToIndex(pc);
        if (idx < w.program.size())
            s.disasm = w.program.at(idx).toString();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "gzip";
    uint64_t budget = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                               : 300'000;
    unsigned order = argc > 3
                         ? static_cast<unsigned>(std::atoi(argv[3]))
                         : 32;

    core::GDiffConfig gcfg;
    gcfg.order = order;
    gcfg.tableEntries = 8192;
    pipeline::HgvqScheme hgvq(gcfg);
    std::map<uint64_t, PcStats> g_stats;
    runOne(name, budget, hgvq, g_stats);

    pipeline::LocalScheme lstride(
        std::make_unique<predictors::StridePredictor>(8192),
        "l_stride");
    std::map<uint64_t, PcStats> s_stats;
    runOne(name, budget, lstride, s_stats);

    std::vector<std::pair<uint64_t, PcStats>> rows(g_stats.begin(),
                                                   g_stats.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.second.count > b.second.count;
              });

    std::printf("pipeline value speculation for '%s' "
                "(gdiff HGVQ order %u vs local stride)\n\n",
                name.c_str(), order);
    std::printf("%-10s %-26s %9s | %7s %7s | %7s %7s\n", "pc",
                "instruction", "count", "g.cov", "g.acc", "s.cov",
                "s.acc");
    for (const auto &[pc, g] : rows) {
        if (g.count < 200)
            continue;
        const PcStats &s = s_stats[pc];
        auto pct = [](uint64_t num, uint64_t den) {
            return den ? 100.0 * static_cast<double>(num) /
                             static_cast<double>(den)
                       : 0.0;
        };
        std::printf("0x%-8llx %-26s %9llu | %6.1f%% %6.1f%% | %6.1f%% "
                    "%6.1f%%\n",
                    static_cast<unsigned long long>(pc),
                    g.disasm.c_str(),
                    static_cast<unsigned long long>(g.count),
                    pct(g.confident, g.count),
                    pct(g.confidentCorrect, g.confident),
                    pct(s.confident, s.count),
                    pct(s.confidentCorrect, s.confident));
    }
    return 0;
}
