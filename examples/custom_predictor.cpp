/**
 * @file
 * custom_predictor — extending the library with your own predictor
 * in ~40 lines, and racing it on the paper's harness.
 *
 * The example implements a "global last value" toy predictor (every
 * instruction predicts the most recent value produced by anyone —
 * the degenerate distance-0, diff-0 corner of gdiff's design space)
 * and compares it against gdiff on two kernels. The point is the
 * workflow: implement predictors::ValuePredictor, hand it to a
 * runner, read the numbers.
 */

#include <cstdio>

#include "core/gdiff.hh"
#include "predictors/value_predictor.hh"
#include "sim/profile.hh"
#include "workload/workload.hh"

using namespace gdiff;

namespace {

/** Predicts the most recent globally produced value, always. */
class GlobalLastValue : public predictors::ValuePredictor
{
  public:
    std::string name() const override { return "glast"; }

    bool
    predict(uint64_t, int64_t &value) override
    {
        if (!seen)
            return false;
        value = last;
        return true;
    }

    void
    update(uint64_t, int64_t actual) override
    {
        last = actual;
        seen = true;
    }

  private:
    int64_t last = 0;
    bool seen = false;
};

} // namespace

int
main()
{
    std::printf("custom predictor vs gdiff (profile mode)\n\n");
    std::printf("%-8s | %8s %8s\n", "kernel", "glast", "gdiff");
    for (const std::string name : {"parser", "mcf", "bzip2"}) {
        workload::Workload w = workload::makeWorkload(name, 1);
        auto exec = w.makeExecutor();

        GlobalLastValue glast;
        core::GDiffConfig gcfg;
        gcfg.order = 8;
        gcfg.tableEntries = 0;
        core::GDiffPredictor gd(gcfg);

        sim::ProfileConfig pcfg;
        pcfg.maxInstructions = 300'000;
        pcfg.warmupInstructions = 50'000;
        sim::ValueProfileRunner runner(pcfg);
        runner.addPredictor(glast);
        runner.addPredictor(gd);
        runner.run(*exec);

        std::printf("%-8s | %7.2f%% %7.2f%%\n", name.c_str(),
                    100.0 * runner.results()[0].accuracyAll.value(),
                    100.0 * runner.results()[1].accuracyAll.value());
    }
    std::printf(
        "\nglast is gdiff pinned to distance 0 with diff 0 — almost "
        "never right,\nwhich is exactly why gdiff *selects* the "
        "distance and *learns* the diff.\n");
    return 0;
}
