# spill_fill.s — the paper's Fig. 2 idiom as a standalone assembly
# workload: a hard-to-predict value is spilled to the frame and
# reloaded shortly after. Feed it to gdiffsim:
#
#   gdiffsim --program=examples/spill_fill.s --predictors=stride,gdiff
#
# The reload (and the values derived from it) are invisible to local
# predictors but exactly predictable from the global value queue:
# expect the local predictors near 0% and gdiff at 3 of the 5
# value producers (60%), all at 100% gated accuracy.

.reg s6 2862933555777941757   # LCG multiplier
.reg s7 88172645463325253     # odd LCG state
.reg s8 0x7fff0000            # frame pointer

top:
    mul  s7, s7, s6           # LCG state (hard for everyone)
    srli t1, s7, 16           # the hard-to-predict value
    sd   t1, 0(s8)            # spill
    addi t2, t1, 40           # derived value (global stride food)
    ld   t3, 0(s8)            # FILL: the Fig. 2 reload
    addi t4, t3, 8            # chain off the reload
    j    top
