/**
 * @file
 * gdiffmine — the predictor disagreement miner (src/check/mine.hh).
 *
 * Searches for value streams on which two predictors disagree as
 * often as possible, shrinks every hit to a minimal witness, and
 * clusters the witnesses into a per-pair blind-spot report:
 *
 *   gdiffmine --seed=1
 *   gdiffmine --target=gdiff-vs-gfcm --target=gdiff@1-vs-gdiff@4
 *   gdiffmine --target=gdiff@8-vs-ref:gdiff@8 --restarts=16 --threads=8
 *
 * Reports are bit-identical for a given --seed at any --threads, and
 * the final "report digest" line makes two runs byte-comparable.
 * --artifacts writes each cluster's exemplar as a replayable trace
 * artifact that `gdifffuzz --replay` accepts; --jsonl appends one
 * JSON object per cluster for downstream tooling.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "check/mine.hh"
#include "check/shrink.hh"
#include "util/logging.hh"
#include "util/parse.hh"

using namespace gdiff;

namespace {

struct Options
{
    std::vector<std::string> targets;
    uint64_t seed = 1;
    uint64_t records = 4096;
    unsigned rounds = 32;
    unsigned restarts = 8;
    unsigned threads = 1;
    uint64_t shrinkTrials = 20'000;
    std::string artifactDir;
    std::string jsonlPath;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --target=L-vs-R  pair to mine; each side is\n"
        "                   [ref:]family[@order]. Repeatable.\n"
        "                   (default: gdiff-vs-gfcm and\n"
        "                   gdiff@1-vs-gdiff@4)\n"
        "  --seed=S         root seed; fixes the whole search\n"
        "  --records=N      records per candidate stream (default "
        "4096)\n"
        "  --rounds=N       hill-climb steps per restart (default 32)\n"
        "  --restarts=N     independent search starts (default 8)\n"
        "  --threads=N      workers for the restarts (default 1;\n"
        "                   reports are thread-count-invariant)\n"
        "  --shrink-trials=N  ddmin budget per witness (default "
        "20000)\n"
        "  --artifacts=DIR  write each cluster exemplar as a\n"
        "                   replayable trace artifact under DIR\n"
        "  --jsonl=FILE     append one JSON object per cluster\n",
        argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto take = [&](const char *key, std::string &dest) {
            std::string prefix = std::string(key) + "=";
            if (a.rfind(prefix, 0) == 0) {
                dest = a.substr(prefix.size());
                return true;
            }
            if (a == key && i + 1 < argc) {
                dest = argv[++i];
                return true;
            }
            return false;
        };
        std::string v;
        if (take("--target", v)) {
            o.targets.push_back(v);
        } else if (take("--seed", v)) {
            o.seed = parseU64Flag("--seed", v.c_str(), true);
        } else if (take("--records", v)) {
            o.records = parseU64Flag("--records", v.c_str());
        } else if (take("--rounds", v)) {
            o.rounds = static_cast<unsigned>(
                parseU64Flag("--rounds", v.c_str()));
        } else if (take("--restarts", v)) {
            o.restarts = static_cast<unsigned>(
                parseU64Flag("--restarts", v.c_str()));
        } else if (take("--threads", v)) {
            o.threads = static_cast<unsigned>(
                parseU64Flag("--threads", v.c_str()));
        } else if (take("--shrink-trials", v)) {
            o.shrinkTrials =
                parseU64Flag("--shrink-trials", v.c_str());
        } else if (take("--artifacts", o.artifactDir)) {
        } else if (take("--jsonl", o.jsonlPath)) {
        } else {
            usage(argv[0]);
        }
    }
    if (o.targets.empty())
        o.targets = check::defaultMineTargets();
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);

    std::FILE *jsonl = nullptr;
    if (!o.jsonlPath.empty()) {
        jsonl = std::fopen(o.jsonlPath.c_str(), "ab");
        if (!jsonl)
            fatal("cannot open JSONL file '%s'", o.jsonlPath.c_str());
    }

    int barren = 0;
    for (const std::string &spec : o.targets) {
        check::MineConfig cfg;
        std::string error;
        if (!check::parseMineTarget(spec, cfg.target, error)) {
            std::fprintf(stderr, "gdiffmine: %s\n", error.c_str());
            return 2;
        }
        cfg.seed = o.seed;
        cfg.records = o.records;
        cfg.rounds = o.rounds;
        cfg.restarts = o.restarts;
        cfg.threads = o.threads;
        cfg.shrinkTrials = o.shrinkTrials;

        check::MineReport report = check::mineDisagreements(cfg);
        std::printf("gdiffmine: %s: %zu witness(es) in %zu "
                    "cluster(s)\n",
                    report.targetName.c_str(),
                    report.witnesses.size(), report.clusters.size());
        check::printMineReport(report, std::cout);
        if (report.clusters.empty())
            ++barren;

        if (jsonl) {
            std::string lines = check::mineReportJsonl(report);
            std::fwrite(lines.data(), 1, lines.size(), jsonl);
            std::fflush(jsonl);
        }
        if (!o.artifactDir.empty()) {
            for (size_t c = 0; c < report.clusters.size(); ++c) {
                const check::MinedWitness &ex =
                    report.witnesses[report.clusters[c]
                                         .members.front()];
                std::string path =
                    o.artifactDir + "/" +
                    check::mineArtifactName(report.targetName, c);
                check::writeReproArtifact(path, ex.stream);
                std::printf("gdiffmine: cluster %zu exemplar written "
                            "to %s\n",
                            c, path.c_str());
            }
        }
    }
    if (jsonl)
        std::fclose(jsonl);

    if (barren) {
        std::printf("gdiffmine: %d target(s) yielded no "
                    "disagreement\n",
                    barren);
        return 1;
    }
    std::printf("gdiffmine: done\n");
    return 0;
}
