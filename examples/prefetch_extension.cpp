/**
 * @file
 * prefetch_extension — the paper's future-work direction (§8):
 * using the global stride locality that gdiff detects in the load
 * address stream to drive a data prefetcher.
 *
 * For each load, three D-caches are maintained side by side:
 *   - no prefetch (baseline),
 *   - a per-PC stride prefetcher (prefetch last + stride),
 *   - a gdiff address prefetcher (prefetch the gdiff prediction of
 *     this load's next address, derived from the global address
 *     queue).
 *
 * The report shows the miss-rate reduction each prefetcher buys on
 * every kernel — mcf and twolf, whose address streams are globally
 * but not locally strided, are where gdiff prefetching pulls ahead.
 *
 * Usage: prefetch_extension [instructions]
 */

#include <cstdio>
#include <cstdlib>

#include "core/gdiff.hh"
#include "mem/cache.hh"
#include "predictors/stride.hh"
#include "workload/workload.hh"

using namespace gdiff;

int
main(int argc, char **argv)
{
    uint64_t budget = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                               : 400'000;

    std::printf("gdiff-driven prefetching (paper §8 future work)\n");
    std::printf("%-8s %10s | %9s %9s %9s\n", "kernel", "loads",
                "no-pf", "stride-pf", "gdiff-pf");

    for (const auto &name : workload::specWorkloadNames()) {
        workload::Workload w = workload::makeWorkload(name, 1);
        auto exec = w.makeExecutor();

        mem::Cache base(mem::CacheConfig::paperDCache());
        mem::Cache with_stride(mem::CacheConfig::paperDCache());
        mem::Cache with_gdiff(mem::CacheConfig::paperDCache());

        predictors::StridePredictor stride(8192);
        core::GDiffConfig gcfg;
        gcfg.order = 8;
        gcfg.tableEntries = 8192;
        core::GDiffPredictor gd(gcfg);

        uint64_t loads = 0;
        uint64_t miss_base = 0, miss_stride = 0, miss_gdiff = 0;
        workload::TraceRecord r;
        uint64_t executed = 0;
        while (executed < budget && exec->next(r)) {
            ++executed;
            if (r.isStore()) {
                base.access(r.effAddr);
                with_stride.access(r.effAddr);
                with_gdiff.access(r.effAddr);
                continue;
            }
            if (!r.isLoad())
                continue;
            ++loads;

            // Predict this load's address at dispatch and issue the
            // line early (idealised timeliness: the early issue wins
            // the whole miss latency). A correct prediction turns a
            // demand miss into a hit; a wrong one pollutes.
            int64_t guess;
            if (stride.predict(r.pc, guess))
                with_stride.access(static_cast<uint64_t>(guess));
            if (gd.predict(r.pc, guess))
                with_gdiff.access(static_cast<uint64_t>(guess));

            miss_base += !base.access(r.effAddr);
            miss_stride += !with_stride.access(r.effAddr);
            miss_gdiff += !with_gdiff.access(r.effAddr);

            int64_t addr = static_cast<int64_t>(r.effAddr);
            stride.update(r.pc, addr);
            gd.update(r.pc, addr);
        }

        auto pct = [&](uint64_t m) {
            return loads ? 100.0 * static_cast<double>(m) /
                               static_cast<double>(loads)
                         : 0.0;
        };
        std::printf("%-8s %10llu | %8.2f%% %8.2f%% %8.2f%%\n",
                    name.c_str(),
                    static_cast<unsigned long long>(loads),
                    pct(miss_base), pct(miss_stride), pct(miss_gdiff));
    }
    std::printf("\n(demand-miss rates; wrong prefetches still "
                "pollute the cache — the trade the paper's §6/§8 "
                "discussion anticipates)\n");
    return 0;
}
