/**
 * @file
 * tracecheck — structural validator for Chrome trace-event JSON files
 * produced by `gdiffrun --trace-out` (src/obs/trace_export).
 *
 *   tracecheck sweep_trace.json --min-spans=5
 *
 * Checks, in order:
 *  - the file parses as one JSON object with a "traceEvents" array;
 *  - every event carries name/ph/pid/tid, and complete ("X") events
 *    carry non-negative ts/dur;
 *  - every "job" span is annotated with the job identity ("job") and
 *    how the trace cache served it ("trace": replay or generate);
 *  - at least --min-spans complete events exist (default 1).
 *
 * Exit status 0 with a one-line summary on success; 1 with the first
 * failure's reason otherwise. The CLI contract tests run this against
 * a fresh sweep's output, and it doubles as a debugging aid whenever
 * Perfetto refuses a file.
 */

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "util/json.hh"
#include "util/parse.hh"

using namespace gdiff;

namespace {

int
fail(const std::string &path, const std::string &why)
{
    std::fprintf(stderr, "tracecheck: %s: %s\n", path.c_str(),
                 why.c_str());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    uint64_t minSpans = 1;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--min-spans=", 0) == 0) {
            minSpans = parseU64Flag("--min-spans",
                                    a.c_str() + 12, true);
        } else if (!a.empty() && a[0] != '-' && path.empty()) {
            path = a;
        } else {
            std::fprintf(stderr,
                         "usage: %s FILE [--min-spans=N]\n", argv[0]);
            return 2;
        }
    }
    if (path.empty()) {
        std::fprintf(stderr, "usage: %s FILE [--min-spans=N]\n",
                     argv[0]);
        return 2;
    }

    std::ifstream is(path);
    if (!is.good())
        return fail(path, "cannot open file");
    std::stringstream ss;
    ss << is.rdbuf();

    json::Value root;
    std::string error;
    if (!json::parse(ss.str(), root, &error))
        return fail(path, "not valid JSON: " + error);
    if (!root.isObject())
        return fail(path, "root is not a JSON object");
    const json::Value *events = root.find("traceEvents");
    if (!events || !events->isArray())
        return fail(path, "missing \"traceEvents\" array");

    uint64_t spans = 0;
    std::set<double> tids;
    for (size_t i = 0; i < events->array.size(); ++i) {
        const json::Value &ev = events->array[i];
        std::string where = "event " + std::to_string(i);
        for (const char *key : {"name", "ph", "pid", "tid"})
            if (!ev.find(key))
                return fail(path, where + " lacks \"" + key + "\"");
        const std::string &ph = ev.at("ph").asString();
        if (ph != "X") {
            if (ph != "M" && ph != "i")
                return fail(path,
                            where + " has unknown phase '" + ph + "'");
            continue;
        }
        ++spans;
        tids.insert(ev.at("tid").asNumber());
        const json::Value *ts = ev.find("ts");
        const json::Value *dur = ev.find("dur");
        if (!ts || !ts->isNumber() || ts->asNumber() < 0)
            return fail(path, where + " lacks a non-negative ts");
        if (!dur || !dur->isNumber() || dur->asNumber() < 0)
            return fail(path, where + " lacks a non-negative dur");
        if (ev.at("name").asString() == "job") {
            const json::Value *args = ev.find("args");
            if (!args || !args->find("job"))
                return fail(path, where +
                                      " (a job span) lacks the job "
                                      "identity in args");
            const json::Value *trace = args->find("trace");
            if (!trace || (trace->asString() != "replay" &&
                           trace->asString() != "generate"))
                return fail(path,
                            where + " (a job span) lacks the "
                                    "replay/generate annotation");
        }
    }
    if (spans < minSpans)
        return fail(path, "only " + std::to_string(spans) +
                              " complete spans, expected >= " +
                              std::to_string(minSpans));

    std::printf("tracecheck: %s: ok — %llu spans across %zu threads, "
                "%zu events total\n",
                path.c_str(), static_cast<unsigned long long>(spans),
                tids.size(), events->array.size());
    return 0;
}
