/**
 * @file
 * Quickstart: assemble a tiny program with the public API, execute
 * it, and watch the gdiff predictor discover a global-stride
 * correlation that a local stride predictor cannot see.
 *
 * The program mimics the paper's motivating example (Fig. 2): a value
 * is produced by a "hard" load, spilled to memory, and reloaded a few
 * instructions later. The reload is locally unpredictable but exactly
 * predictable from the global value history.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/gdiff.hh"
#include "isa/program_builder.hh"
#include "predictors/stride.hh"
#include "sim/profile.hh"
#include "workload/executor.hh"

using namespace gdiff;
using namespace gdiff::isa;
using namespace gdiff::isa::reg;

int
main()
{
    // ---- 1. assemble a tiny kernel -----------------------------------
    // Walk a table of noisy values; spill each value to the frame and
    // reload it shortly afterwards.
    ProgramBuilder b("quickstart");
    Label top = b.newLabel();
    Label wrap = b.newLabel();
    Label resume = b.newLabel();

    b.bind(top);
    b.load(t1, s1, 0);     // noisy value (hard to predict locally)
    b.addi(s1, s1, 8);     // table walker (easy: stride 8)
    b.store(t1, s8, 0);    // spill
    b.addi(t2, t1, 40);    // derived value (global stride food)
    b.load(t3, s8, 0);     // FILL: reload of the spilled value
    b.bge(s1, a2, wrap);
    b.bind(resume);
    b.jump(top);

    b.bind(wrap);
    b.addi(s1, a1, 0);
    b.jump(resume);

    Program prog = b.build();
    std::printf("assembled '%s' (%zu instructions):\n%s\n",
                prog.name().c_str(), prog.size(),
                prog.disassemble().c_str());

    // ---- 2. lay out data and build an executor ------------------------
    workload::Executor exec(prog);
    constexpr uint64_t table_base = 0x10000000;
    constexpr int64_t table_words = 4096;
    uint64_t h = 88172645463325252ull;
    for (int64_t i = 0; i < table_words; ++i) {
        h ^= h << 13;
        h ^= h >> 7;
        h ^= h << 17; // xorshift noise
        exec.memory().write64(table_base + static_cast<uint64_t>(i) * 8,
                              static_cast<int64_t>(h >> 16));
    }
    exec.setReg(s1, static_cast<int64_t>(table_base));
    exec.setReg(a1, static_cast<int64_t>(table_base));
    exec.setReg(a2, static_cast<int64_t>(table_base + table_words * 8));
    exec.setReg(s8, 0x7fff0000);

    // ---- 3. race gdiff against a local stride predictor ---------------
    predictors::StridePredictor stride(0);
    core::GDiffConfig gcfg;
    gcfg.order = 8;
    gcfg.tableEntries = 0;
    core::GDiffPredictor gd(gcfg);

    sim::ProfileConfig pcfg;
    pcfg.maxInstructions = 300'000;
    pcfg.warmupInstructions = 30'000;
    sim::ValueProfileRunner runner(pcfg);
    runner.addPredictor(stride);
    runner.addPredictor(gd);
    runner.run(exec);

    const auto &r = runner.results();
    std::printf("prediction accuracy over all value producers:\n");
    for (const auto &s : r) {
        std::printf("  %-8s %5.1f%%  (confident coverage %5.1f%% at "
                    "%5.1f%% accuracy)\n",
                    s.name.c_str(), 100.0 * s.accuracyAll.value(),
                    100.0 * s.coverage.value(),
                    100.0 * s.accuracyGated.value());
    }
    std::printf("\nThe spill/fill reload and the derived value are "
                "invisible to the local\nstride predictor but exactly "
                "predictable from the global value queue —\nthe "
                "paper's global stride locality.\n");
    return 0;
}
