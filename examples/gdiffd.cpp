/**
 * @file
 * gdiffd — the persistent sweep daemon.
 *
 * Runs the src/serve daemon in the foreground: binds a Unix-domain
 * socket, accepts gdiffctl clients, and executes their sweep grids on
 * a shared worker pool with one trace cache spanning every request.
 * SIGTERM/SIGINT (or a client "shutdown" request) trigger a graceful
 * drain: queued and running jobs finish and stream out before exit.
 *
 *   gdiffd --socket /tmp/gdiffd.sock --workers 4 &
 *   gdiffctl --socket /tmp/gdiffd.sock submit \
 *       --grid 'workload=mcf;predictor=stride,gdiff'
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <unistd.h>

#include "obs/obs.hh"
#include "sample/sample.hh"
#include "serve/daemon.hh"
#include "util/parse.hh"

using namespace gdiff;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [options]\n"
        "\n"
        "options:\n"
        "  --socket=PATH       Unix-domain socket to listen on "
        "(required)\n"
        "  --workers=N         job worker threads (default: hardware "
        "concurrency)\n"
        "  --queue-cap=N       max queued jobs across all clients "
        "before\n"
        "                      submits are rejected (default 1024)\n"
        "  --trace-cache-mb=N  cap the shared trace cache at N MiB\n"
        "  --trace-cache-dir=DIR  persist generated traces under DIR\n"
        "                      so a restarted daemon replays them from\n"
        "                      disk (GDIFF_TRACE_CACHE_DIR sets the\n"
        "                      default)\n"
        "  --trace-cache-disk-mb=N  cap the persistent tier at N MiB\n"
        "                      (default 2048)\n",
        argv0);
    std::exit(2);
}

// Self-pipe: the handler may only make async-signal-safe calls, so it
// writes one byte and the watcher thread does the real drain work.
int signalPipe[2] = {-1, -1};

void
onSignal(int)
{
    char byte = 1;
    // The pipe can't meaningfully fail here; a full pipe means a
    // drain is already pending.
    [[maybe_unused]] ssize_t n = write(signalPipe[1], &byte, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    serve::DaemonConfig cfg;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto take = [&](const char *key, std::string &dest) {
            std::string prefix = std::string(key) + "=";
            if (a.rfind(prefix, 0) == 0) {
                dest = a.substr(prefix.size());
                return true;
            }
            if (a == key && i + 1 < argc) {
                dest = argv[++i];
                return true;
            }
            return false;
        };
        std::string v;
        if (take("--socket", cfg.socketPath)) {
        } else if (take("--workers", v)) {
            cfg.workers = static_cast<unsigned>(
                parseU64Flag("--workers", v.c_str(), true));
        } else if (take("--queue-cap", v)) {
            cfg.maxQueuedJobs = static_cast<size_t>(
                parseU64Flag("--queue-cap", v.c_str()));
        } else if (take("--trace-cache-mb", v)) {
            cfg.traceCacheBytes =
                static_cast<size_t>(parseU64Flag("--trace-cache-mb",
                                                 v.c_str(), true)) *
                (size_t(1) << 20);
        } else if (take("--trace-cache-dir", cfg.traceCacheDir)) {
        } else if (take("--trace-cache-disk-mb", v)) {
            cfg.traceCacheDiskBytes =
                static_cast<size_t>(
                    parseU64Flag("--trace-cache-disk-mb", v.c_str(),
                                 true)) *
                (size_t(1) << 20);
        } else {
            usage(argv[0]);
        }
    }
    if (cfg.socketPath.empty())
        usage(argv[0]);

    // The status endpoint serves latency percentiles out of the obs
    // histograms, so instrumentation is always on in the daemon.
    obs::setEnabled(true);

    // Clients may submit grids with a sample budget.
    sample::install();

    if (pipe(signalPipe) != 0) {
        std::perror("gdiffd: pipe");
        return 1;
    }
    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    signal(SIGPIPE, SIG_IGN);

    serve::Daemon daemon(cfg);
    std::string error;
    if (!daemon.start(&error)) {
        std::fprintf(stderr, "gdiffd: %s\n", error.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "gdiffd: listening on %s (%u workers, queue cap "
                 "%zu)\n",
                 daemon.socketPath().c_str(), daemon.workers(),
                 cfg.maxQueuedJobs);

    std::thread signalWatcher([&] {
        char byte;
        if (read(signalPipe[0], &byte, 1) == 1) {
            std::fprintf(stderr,
                         "gdiffd: signal received, draining\n");
            daemon.requestDrain();
        }
    });

    // Blocks until a drain is requested — by a signal or by a client
    // shutdown frame — and fully completed.
    daemon.waitUntilDrained();

    // A client-initiated shutdown leaves the watcher blocked on the
    // pipe; feed it a byte so it can exit (requestDrain is idempotent).
    onSignal(0);
    signalWatcher.join();
    close(signalPipe[0]);
    close(signalPipe[1]);

    serve::DaemonStats st = daemon.stats();
    std::fprintf(stderr,
                 "gdiffd: drained: %llu jobs completed, %llu dropped, "
                 "%llu sweeps accepted, %llu rejected\n",
                 static_cast<unsigned long long>(st.completedJobs),
                 static_cast<unsigned long long>(st.droppedJobs),
                 static_cast<unsigned long long>(st.acceptedSweeps),
                 static_cast<unsigned long long>(st.rejectedSweeps));
    return 0;
}
