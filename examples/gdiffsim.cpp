/**
 * @file
 * gdiffsim — the command-line simulator a downstream user drives.
 *
 * Three modes over any built-in kernel or recorded trace file:
 *
 *   profile   architectural-order value prediction (Fig. 8 style)
 *   address   load-address prediction with D-cache miss split (§6)
 *   pipeline  full OOO run with a value-speculation scheme (§4-§7)
 *
 * Examples:
 *   gdiffsim --workload=mcf --predictors=stride,dfcm,gdiff
 *   gdiffsim --workload=parser --mode=address
 *   gdiffsim --workload=mcf --mode=pipeline --scheme=hgvq
 *   gdiffsim --workload=gzip --record=gzip.trc --instructions=2000000
 *   gdiffsim --trace=gzip.trc --predictors=gdiff2 --order=8
 *   gdiffsim --program=examples/spill_fill.s --predictors=stride,gdiff
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/gdiff.hh"
#include "core/gdiff2.hh"
#include "pipeline/ooo_model.hh"
#include "predictors/fcm.hh"
#include "predictors/gfcm.hh"
#include "predictors/hybrid.hh"
#include "predictors/last_value.hh"
#include "predictors/markov.hh"
#include "predictors/pi.hh"
#include "predictors/stride.hh"
#include "sim/profile.hh"
#include "workload/assembler.hh"
#include "workload/trace_io.hh"
#include "workload/workload.hh"

using namespace gdiff;

namespace {

struct Options
{
    std::string workload = "parser";
    std::string program;      // assemble a .s file instead of a kernel
    std::string trace;        // replay file instead of a kernel
    std::string record;       // write the stream here and exit
    std::string mode = "profile";
    std::string scheme = "hgvq";
    std::vector<std::string> predictors = {"stride", "dfcm", "gdiff"};
    unsigned order = 8;
    size_t tableEntries = 8192;
    uint64_t instructions = 1'000'000;
    uint64_t warmup = 100'000;
    uint64_t seed = 1;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--workload=NAME | --program=FILE.s | --trace=FILE]\n"
        "  [--mode=profile|"
        "address|pipeline]\n"
        "  [--predictors=a,b,...] (last,lastn,stride,fcm,dfcm,hybrid,pi,gfcm,"
        "gdiff,gdiff2)\n"
        "  [--scheme=baseline|l_stride|l_context|sgvq|hgvq] (pipeline "
        "mode)\n"
        "  [--order=N] [--table=N] [--instructions=N] [--warmup=N]\n"
        "  [--seed=N] [--record=FILE]\n"
        "workloads:",
        argv0);
    for (const auto &n : workload::specWorkloadNames())
        std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "\n");
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto take = [&](const char *key, std::string &out) {
            std::string prefix = std::string(key) + "=";
            if (a.rfind(prefix, 0) == 0) {
                out = a.substr(prefix.size());
                return true;
            }
            return false;
        };
        std::string v;
        if (take("--workload", o.workload)) {
        } else if (take("--program", o.program)) {
        } else if (take("--trace", o.trace)) {
        } else if (take("--record", o.record)) {
        } else if (take("--mode", o.mode)) {
        } else if (take("--scheme", o.scheme)) {
        } else if (take("--predictors", v)) {
            o.predictors.clear();
            std::stringstream ss(v);
            std::string item;
            while (std::getline(ss, item, ','))
                o.predictors.push_back(item);
        } else if (take("--order", v)) {
            o.order = static_cast<unsigned>(std::strtoul(
                v.c_str(), nullptr, 10));
        } else if (take("--table", v)) {
            o.tableEntries = std::strtoull(v.c_str(), nullptr, 10);
        } else if (take("--instructions", v)) {
            o.instructions = std::strtoull(v.c_str(), nullptr, 10);
        } else if (take("--warmup", v)) {
            o.warmup = std::strtoull(v.c_str(), nullptr, 10);
        } else if (take("--seed", v)) {
            o.seed = std::strtoull(v.c_str(), nullptr, 10);
        } else {
            usage(argv[0]);
        }
    }
    return o;
}

std::unique_ptr<workload::TraceSource>
makeSource(const Options &o)
{
    if (!o.trace.empty())
        return std::make_unique<workload::TraceFileSource>(o.trace);
    if (!o.program.empty()) {
        workload::Workload w =
            workload::assembleWorkloadFile(o.program);
        return w.makeExecutor();
    }
    workload::Workload w = workload::makeWorkload(o.workload, o.seed);
    return w.makeExecutor();
}

std::unique_ptr<predictors::ValuePredictor>
makePredictor(const std::string &name, const Options &o)
{
    if (name == "last")
        return std::make_unique<predictors::LastValuePredictor>(
            o.tableEntries);
    if (name == "lastn")
        return std::make_unique<predictors::LastNValuePredictor>(
            4, o.tableEntries);
    if (name == "stride")
        return std::make_unique<predictors::StridePredictor>(
            o.tableEntries);
    if (name == "fcm" || name == "dfcm") {
        predictors::FcmConfig cfg;
        cfg.level1Entries = o.tableEntries;
        if (name == "fcm")
            return std::make_unique<predictors::FcmPredictor>(cfg);
        return std::make_unique<predictors::DfcmPredictor>(cfg);
    }
    if (name == "pi")
        return std::make_unique<predictors::PiPredictor>(
            o.tableEntries);
    if (name == "gfcm")
        return std::make_unique<predictors::GFcmPredictor>();
    if (name == "hybrid")
        return std::make_unique<predictors::HybridLocalPredictor>(
            o.tableEntries);
    if (name == "gdiff") {
        core::GDiffConfig cfg;
        cfg.order = o.order;
        cfg.tableEntries = o.tableEntries;
        return std::make_unique<core::GDiffPredictor>(cfg);
    }
    if (name == "gdiff2") {
        core::GDiff2Config cfg;
        cfg.order = o.order;
        cfg.tableEntries = o.tableEntries;
        return std::make_unique<core::GDiff2Predictor>(cfg);
    }
    fatal("unknown predictor '%s'", name.c_str());
}

int
runRecord(const Options &o)
{
    auto src = makeSource(o);
    workload::TraceWriter writer(o.record);
    workload::TraceRecord r;
    while (writer.written() < o.instructions && src->next(r))
        writer.append(r);
    writer.close();
    std::printf("wrote %llu records to %s\n",
                static_cast<unsigned long long>(o.instructions),
                o.record.c_str());
    return 0;
}

int
runProfile(const Options &o)
{
    auto src = makeSource(o);
    std::vector<std::unique_ptr<predictors::ValuePredictor>> preds;
    sim::ProfileConfig pcfg;
    pcfg.maxInstructions = o.instructions;
    pcfg.warmupInstructions = o.warmup;
    sim::ValueProfileRunner runner(pcfg);
    for (const auto &n : o.predictors) {
        preds.push_back(makePredictor(n, o));
        runner.addPredictor(*preds.back());
    }
    runner.run(*src);
    std::printf("%-10s %10s %10s %10s\n", "predictor", "accuracy",
                "coverage", "gated-acc");
    for (const auto &s : runner.results()) {
        std::printf("%-10s %9.2f%% %9.2f%% %9.2f%%\n", s.name.c_str(),
                    100.0 * s.accuracyAll.value(),
                    100.0 * s.coverage.value(),
                    100.0 * s.accuracyGated.value());
    }
    return 0;
}

int
runAddress(const Options &o)
{
    auto src = makeSource(o);
    std::vector<std::unique_ptr<predictors::ValuePredictor>> preds;
    sim::ProfileConfig pcfg;
    pcfg.maxInstructions = o.instructions;
    pcfg.warmupInstructions = o.warmup;
    sim::AddressProfileRunner runner(pcfg);
    for (const auto &n : o.predictors) {
        preds.push_back(makePredictor(n, o));
        runner.addPredictor(*preds.back());
    }
    predictors::MarkovPredictor mk_all(256 * 1024, 4);
    predictors::MarkovPredictor mk_miss(256 * 1024, 4);
    runner.setMarkov(mk_all, mk_miss);
    runner.run(*src);
    std::printf("D-cache miss rate: %.2f%%\n",
                100.0 * runner.dcacheMissRate());
    std::printf("%-10s %9s %9s | %9s %9s (missing loads)\n",
                "predictor", "cov", "acc", "cov", "acc");
    for (const auto &s : runner.results()) {
        std::printf("%-10s %8.2f%% %8.2f%% | %8.2f%% %8.2f%%\n",
                    s.name.c_str(), 100.0 * s.coverageAll.value(),
                    100.0 * s.accuracyAll.value(),
                    100.0 * s.coverageMiss.value(),
                    100.0 * s.accuracyMiss.value());
    }
    return 0;
}

int
runPipeline(const Options &o)
{
    auto src = makeSource(o);
    std::unique_ptr<pipeline::VpScheme> scheme;
    if (o.scheme == "baseline") {
        scheme = std::make_unique<pipeline::NoPrediction>();
    } else if (o.scheme == "l_stride") {
        scheme = std::make_unique<pipeline::LocalScheme>(
            std::make_unique<predictors::StridePredictor>(
                o.tableEntries),
            "l_stride");
    } else if (o.scheme == "l_context") {
        predictors::FcmConfig cfg;
        cfg.level1Entries = o.tableEntries;
        scheme = std::make_unique<pipeline::LocalScheme>(
            std::make_unique<predictors::DfcmPredictor>(cfg),
            "l_context");
    } else if (o.scheme == "sgvq" || o.scheme == "hgvq") {
        core::GDiffConfig cfg;
        cfg.order = o.order > 8 ? o.order : 32;
        cfg.tableEntries = o.tableEntries;
        if (o.scheme == "sgvq")
            scheme = std::make_unique<pipeline::SgvqScheme>(cfg);
        else
            scheme = std::make_unique<pipeline::HgvqScheme>(cfg);
    } else {
        fatal("unknown scheme '%s'", o.scheme.c_str());
    }

    pipeline::OooPipeline pipe(pipeline::PipelineConfig::paper(),
                               *scheme);
    pipeline::PipelineStats s =
        pipe.run(*src, o.instructions, o.warmup);
    std::printf("scheme           %s\n", scheme->name().c_str());
    std::printf("instructions     %llu\n",
                static_cast<unsigned long long>(s.instructions));
    std::printf("cycles           %llu\n",
                static_cast<unsigned long long>(s.cycles));
    std::printf("IPC              %.3f\n", s.ipc);
    std::printf("D$ miss rate     %.2f%%\n",
                100.0 * s.dcacheMissRate);
    std::printf("branch accuracy  %.2f%%\n",
                100.0 * s.branchAccuracy);
    std::printf("vp coverage      %.2f%%\n",
                100.0 * s.coverage.value());
    std::printf("vp accuracy      %.2f%%\n",
                100.0 * s.gatedAccuracy.value());
    std::printf("miss-load cov    %.2f%%\n",
                100.0 * s.missLoadCoverage.value());
    std::printf("miss-load acc    %.2f%%\n",
                100.0 * s.missLoadAccuracy.value());
    std::printf("avg value delay  %.2f\n", s.valueDelay.mean());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);
    if (!o.record.empty())
        return runRecord(o);
    if (o.mode == "profile")
        return runProfile(o);
    if (o.mode == "address")
        return runAddress(o);
    if (o.mode == "pipeline")
        return runPipeline(o);
    usage(argv[0]);
}
