/**
 * @file
 * gdiffsim — the command-line simulator a downstream user drives.
 *
 * Three modes over any built-in kernel or recorded trace file:
 *
 *   profile   architectural-order value prediction (Fig. 8 style)
 *   address   load-address prediction with D-cache miss split (§6)
 *   pipeline  full OOO run with a value-speculation scheme (§4-§7)
 *
 * Examples:
 *   gdiffsim --workload=mcf --predictors=stride,dfcm,gdiff
 *   gdiffsim --workload=parser --mode=address
 *   gdiffsim --workload=mcf --mode=pipeline --scheme=hgvq
 *   gdiffsim --workload=gzip --record=gzip.trc --instructions=2000000
 *   gdiffsim --trace=gzip.trc --predictors=gdiff2 --order=8
 *   gdiffsim --program=examples/spill_fill.s --predictors=stride,gdiff
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "pipeline/ooo_model.hh"
#include "predictors/markov.hh"
#include "runner/factory.hh"
#include "sim/profile.hh"
#include "util/parse.hh"
#include "workload/assembler.hh"
#include "workload/trace_io.hh"
#include "workload/workload.hh"

using namespace gdiff;

namespace {

struct Options
{
    std::string workload = "parser";
    std::string program;      // assemble a .s file instead of a kernel
    std::string trace;        // replay file instead of a kernel
    std::string record;       // write the stream here and exit
    std::string mode = "profile";
    std::string scheme = "hgvq";
    std::vector<std::string> predictors = {"stride", "dfcm", "gdiff"};
    unsigned order = 8;
    size_t tableEntries = 8192;
    uint64_t instructions = 1'000'000;
    uint64_t warmup = 100'000;
    uint64_t seed = 1;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--workload=NAME | --program=FILE.s | --trace=FILE]\n"
        "  [--mode=profile|"
        "address|pipeline]\n"
        "  [--predictors=a,b,...] (last,lastn,stride,fcm,dfcm,hybrid,pi,gfcm,"
        "gdiff,gdiff2)\n"
        "  [--scheme=baseline|l_stride|l_context|sgvq|hgvq] (pipeline "
        "mode)\n"
        "  [--order=N] [--table=N] [--instructions=N] [--warmup=N]\n"
        "  [--seed=N] [--record=FILE]\n"
        "workloads:",
        argv0);
    for (const auto &n : workload::specWorkloadNames())
        std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "\n");
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto take = [&](const char *key, std::string &out) {
            std::string prefix = std::string(key) + "=";
            if (a.rfind(prefix, 0) == 0) {
                out = a.substr(prefix.size());
                return true;
            }
            return false;
        };
        std::string v;
        if (take("--workload", o.workload)) {
        } else if (take("--program", o.program)) {
        } else if (take("--trace", o.trace)) {
        } else if (take("--record", o.record)) {
        } else if (take("--mode", o.mode)) {
        } else if (take("--scheme", o.scheme)) {
        } else if (take("--predictors", v)) {
            o.predictors.clear();
            std::stringstream ss(v);
            std::string item;
            while (std::getline(ss, item, ','))
                o.predictors.push_back(item);
        } else if (take("--order", v)) {
            o.order = static_cast<unsigned>(
                parseU64Flag("--order", v.c_str()));
        } else if (take("--table", v)) {
            // 0 = unlimited tables
            o.tableEntries =
                parseU64Flag("--table", v.c_str(), true);
        } else if (take("--instructions", v)) {
            o.instructions =
                parseU64Flag("--instructions", v.c_str());
        } else if (take("--warmup", v)) {
            o.warmup = parseU64Flag("--warmup", v.c_str(), true);
        } else if (take("--seed", v)) {
            o.seed = parseU64Flag("--seed", v.c_str(), true);
        } else {
            usage(argv[0]);
        }
    }
    return o;
}

std::unique_ptr<workload::TraceSource>
makeSource(const Options &o)
{
    if (!o.trace.empty())
        return std::make_unique<workload::TraceFileSource>(o.trace);
    if (!o.program.empty()) {
        workload::Workload w =
            workload::assembleWorkloadFile(o.program);
        return w.makeExecutor();
    }
    workload::Workload w = workload::makeWorkload(o.workload, o.seed);
    return w.makeExecutor();
}

std::unique_ptr<predictors::ValuePredictor>
makePredictor(const std::string &name, const Options &o)
{
    return runner::makePredictor(name, o.order, o.tableEntries);
}

int
runRecord(const Options &o)
{
    auto src = makeSource(o);
    workload::TraceWriter writer(o.record);
    // Record chunk-at-a-time: each full chunk lands as one on-disk
    // block, the final partial chunk is trimmed to the budget.
    auto chunk = std::make_unique<workload::TraceChunk>();
    while (writer.written() < o.instructions && src->fill(*chunk)) {
        uint64_t remaining = o.instructions - writer.written();
        if (chunk->size > remaining)
            chunk->size = static_cast<uint32_t>(remaining);
        writer.append(*chunk);
    }
    uint64_t written = writer.written();
    writer.close();
    std::printf("wrote %llu records to %s\n",
                static_cast<unsigned long long>(written),
                o.record.c_str());
    return 0;
}

int
runProfile(const Options &o)
{
    auto src = makeSource(o);
    std::vector<std::unique_ptr<predictors::ValuePredictor>> preds;
    sim::ProfileConfig pcfg;
    pcfg.maxInstructions = o.instructions;
    pcfg.warmupInstructions = o.warmup;
    sim::ValueProfileRunner runner(pcfg);
    for (const auto &n : o.predictors) {
        preds.push_back(makePredictor(n, o));
        runner.addPredictor(*preds.back());
    }
    runner.run(*src);
    std::printf("%-10s %10s %10s %10s\n", "predictor", "accuracy",
                "coverage", "gated-acc");
    for (const auto &s : runner.results()) {
        std::printf("%-10s %9.2f%% %9.2f%% %9.2f%%\n", s.name.c_str(),
                    100.0 * s.accuracyAll.value(),
                    100.0 * s.coverage.value(),
                    100.0 * s.accuracyGated.value());
    }
    return 0;
}

int
runAddress(const Options &o)
{
    auto src = makeSource(o);
    std::vector<std::unique_ptr<predictors::ValuePredictor>> preds;
    sim::ProfileConfig pcfg;
    pcfg.maxInstructions = o.instructions;
    pcfg.warmupInstructions = o.warmup;
    sim::AddressProfileRunner runner(pcfg);
    for (const auto &n : o.predictors) {
        preds.push_back(makePredictor(n, o));
        runner.addPredictor(*preds.back());
    }
    predictors::MarkovPredictor mk_all(256 * 1024, 4);
    predictors::MarkovPredictor mk_miss(256 * 1024, 4);
    runner.setMarkov(mk_all, mk_miss);
    runner.run(*src);
    std::printf("D-cache miss rate: %.2f%%\n",
                100.0 * runner.dcacheMissRate());
    std::printf("%-10s %9s %9s | %9s %9s (missing loads)\n",
                "predictor", "cov", "acc", "cov", "acc");
    for (const auto &s : runner.results()) {
        std::printf("%-10s %8.2f%% %8.2f%% | %8.2f%% %8.2f%%\n",
                    s.name.c_str(), 100.0 * s.coverageAll.value(),
                    100.0 * s.accuracyAll.value(),
                    100.0 * s.coverageMiss.value(),
                    100.0 * s.accuracyMiss.value());
    }
    return 0;
}

int
runPipeline(const Options &o)
{
    auto src = makeSource(o);
    // The gdiff schemes default to the paper's pipeline order of 32
    // unless the user asked for a larger window explicitly.
    unsigned order = o.order > 8 ? o.order : 32;
    std::unique_ptr<pipeline::VpScheme> scheme =
        runner::makeScheme(o.scheme, order, o.tableEntries);

    pipeline::OooPipeline pipe(pipeline::PipelineConfig::paper(),
                               *scheme);
    pipeline::PipelineStats s =
        pipe.run(*src, o.instructions, o.warmup);
    std::printf("scheme           %s\n", scheme->name().c_str());
    std::printf("instructions     %llu\n",
                static_cast<unsigned long long>(s.instructions));
    std::printf("cycles           %llu\n",
                static_cast<unsigned long long>(s.cycles));
    std::printf("IPC              %.3f\n", s.ipc);
    std::printf("D$ miss rate     %.2f%%\n",
                100.0 * s.dcacheMissRate);
    std::printf("branch accuracy  %.2f%%\n",
                100.0 * s.branchAccuracy);
    std::printf("vp coverage      %.2f%%\n",
                100.0 * s.coverage.value());
    std::printf("vp accuracy      %.2f%%\n",
                100.0 * s.gatedAccuracy.value());
    std::printf("miss-load cov    %.2f%%\n",
                100.0 * s.missLoadCoverage.value());
    std::printf("miss-load acc    %.2f%%\n",
                100.0 * s.missLoadAccuracy.value());
    std::printf("avg value delay  %.2f\n", s.valueDelay.mean());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);
    if (!o.record.empty())
        return runRecord(o);
    if (o.mode == "profile")
        return runProfile(o);
    if (o.mode == "address")
        return runAddress(o);
    if (o.mode == "pipeline")
        return runPipeline(o);
    usage(argv[0]);
}
