/**
 * @file
 * gdiffcmp — the metric-surface snapshot differ (src/check/snapshot).
 *
 * Compares two sweep snapshots written by `gdiffrun --snapshot` and
 * reports every config one side lacks plus every metric that moved
 * beyond its tolerance:
 *
 *   gdiffcmp old.snap new.snap
 *   gdiffcmp --tolerance=1e-9 --tolerance=ipc=1e-6 old.snap new.snap
 *
 * Exit codes are CI-friendly: 0 = snapshots match, 1 = differences,
 * 2 = unreadable/corrupt input or bad usage. Sampled metrics (those
 * with *_ci_lo/*_ci_hi interval columns) only count as different when
 * the two 95% intervals don't overlap, so re-sampled sweeps don't
 * trip the gate on estimator noise (suppress with --no-intervals).
 *
 * --perturb=metric=delta rewrites a snapshot with the metric shifted
 * (digest recomputed) — the self-test CI uses it to prove the differ
 * sees an injected 1e-6 change.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "check/snapshot.hh"
#include "util/logging.hh"

using namespace gdiff;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options] old.snap new.snap\n"
        "       %s --perturb=METRIC=DELTA in.snap out.snap\n"
        "  --tolerance=X        default per-metric tolerance "
        "(default 0)\n"
        "  --tolerance=METRIC=X override for one metric; "
        "repeatable\n"
        "  --no-intervals       report deltas even when confidence\n"
        "                       intervals overlap\n"
        "exit: 0 match, 1 differences, 2 error\n",
        argv0, argv0);
    std::exit(2);
}

/** Load a snapshot or exit 2 with the typed status. */
check::Snapshot
load(const std::string &path)
{
    check::Snapshot snap;
    check::SnapshotResult r = check::readSnapshot(path, snap);
    if (!r.ok()) {
        std::fprintf(stderr, "gdiffcmp: %s: %s\n",
                     check::snapshotStatusName(r.status),
                     r.message.c_str());
        std::exit(2);
    }
    return snap;
}

int
perturb(const std::string &spec, const std::string &inPath,
        const std::string &outPath)
{
    size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0)
        usage("gdiffcmp");
    std::string metric = spec.substr(0, eq);
    double delta = std::atof(spec.c_str() + eq + 1);

    check::Snapshot snap = load(inPath);
    size_t touched = 0;
    for (auto &job : snap.jobs)
        for (auto &[name, value] : job.result.metrics)
            if (name == metric) {
                value += delta;
                ++touched;
            }
    check::SnapshotResult r = check::writeSnapshot(snap, outPath);
    if (!r.ok()) {
        std::fprintf(stderr, "gdiffcmp: %s: %s\n",
                     check::snapshotStatusName(r.status),
                     r.message.c_str());
        return 2;
    }
    std::printf("gdiffcmp: perturbed %zu occurrence(s) of %s by %g "
                "into %s\n",
                touched, metric.c_str(), delta, outPath.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    check::SnapshotDiffOptions opts;
    std::string perturbSpec;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--tolerance=", 0) == 0) {
            std::string v = a.substr(12);
            size_t eq = v.find('=');
            if (eq == std::string::npos)
                opts.defaultTolerance = std::atof(v.c_str());
            else
                opts.metricTolerance[v.substr(0, eq)] =
                    std::atof(v.c_str() + eq + 1);
        } else if (a.rfind("--perturb=", 0) == 0) {
            perturbSpec = a.substr(10);
        } else if (a == "--no-intervals") {
            opts.useIntervals = false;
        } else if (!a.empty() && a[0] == '-') {
            usage(argv[0]);
        } else {
            paths.push_back(a);
        }
    }
    if (paths.size() != 2)
        usage(argv[0]);

    if (!perturbSpec.empty())
        return perturb(perturbSpec, paths[0], paths[1]);

    check::Snapshot oldSnap = load(paths[0]);
    check::Snapshot newSnap = load(paths[1]);
    std::printf("gdiffcmp: %s (%zu configs) vs %s (%zu configs)\n",
                paths[0].c_str(), oldSnap.jobs.size(),
                paths[1].c_str(), newSnap.jobs.size());
    check::SnapshotDiff diff =
        check::diffSnapshots(oldSnap, newSnap, opts);
    check::printSnapshotDiff(diff, std::cout);
    return diff.empty() ? 0 : 1;
}
