/**
 * @file
 * inspect_stream — per-instruction value-predictability report.
 *
 * For a chosen workload kernel this tool replays the value stream and
 * prints, for every static value-producing instruction, its dynamic
 * count and the accuracy of the three headline predictors (local
 * stride, DFCM, gdiff). This is the microscope used to understand
 * *why* a kernel's aggregate numbers look the way they do — e.g.,
 * which parser instruction is the paper's Fig. 1 hard load.
 *
 * Usage: inspect_stream [workload] [instructions]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/gdiff.hh"
#include "predictors/fcm.hh"
#include "predictors/stride.hh"
#include "workload/workload.hh"

using namespace gdiff;

namespace {

struct PcStats
{
    uint64_t count = 0;
    uint64_t strideOk = 0;
    uint64_t dfcmOk = 0;
    uint64_t gdiffOk = 0;
    std::string disasm;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "parser";
    uint64_t budget = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                               : 500'000;

    workload::Workload w = workload::makeWorkload(name, 1);
    auto exec = w.makeExecutor();

    predictors::StridePredictor stride(0);
    predictors::DfcmPredictor dfcm;
    core::GDiffConfig gcfg;
    gcfg.order = 8;
    gcfg.tableEntries = 0;
    core::GDiffPredictor gd(gcfg);

    std::map<uint64_t, PcStats> stats;
    workload::TraceRecord r;
    uint64_t executed = 0;
    while (executed < budget && exec->next(r)) {
        ++executed;
        if (!r.producesValue())
            continue;
        PcStats &s = stats[r.pc];
        if (s.count == 0)
            s.disasm = r.inst.toString();
        ++s.count;
        int64_t guess;
        if (stride.predict(r.pc, guess) && guess == r.value)
            ++s.strideOk;
        stride.update(r.pc, r.value);
        if (dfcm.predict(r.pc, guess) && guess == r.value)
            ++s.dfcmOk;
        dfcm.update(r.pc, r.value);
        if (gd.predict(r.pc, guess) && guess == r.value)
            ++s.gdiffOk;
        gd.update(r.pc, r.value);
    }

    // Sort by dynamic count, heaviest first.
    std::vector<std::pair<uint64_t, PcStats>> rows(stats.begin(),
                                                   stats.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.second.count > b.second.count;
              });

    std::printf("per-PC value predictability for '%s' "
                "(%llu instructions)\n\n",
                name.c_str(),
                static_cast<unsigned long long>(executed));
    std::printf("%-10s %-28s %10s %8s %8s %8s\n", "pc", "instruction",
                "count", "stride", "dfcm", "gdiff");
    for (const auto &[pc, s] : rows) {
        if (s.count < 100)
            continue;
        auto pct = [&](uint64_t ok) {
            return 100.0 * static_cast<double>(ok) /
                   static_cast<double>(s.count);
        };
        std::printf("0x%-8llx %-28s %10llu %7.1f%% %7.1f%% %7.1f%%\n",
                    static_cast<unsigned long long>(pc),
                    s.disasm.c_str(),
                    static_cast<unsigned long long>(s.count),
                    pct(s.strideOk), pct(s.dfcmOk), pct(s.gdiffOk));
    }

    // Named markers help map PCs back to kernel source comments.
    if (!w.markers.empty()) {
        std::printf("\nmarkers:\n");
        for (const auto &[mname, mpc] : w.markers)
            std::printf("  %-16s 0x%llx\n", mname.c_str(),
                        static_cast<unsigned long long>(mpc));
    }
    return 0;
}
