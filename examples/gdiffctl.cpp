/**
 * @file
 * gdiffctl — client CLI for the gdiffd daemon.
 *
 * Speaks the serve/protocol.hh framing over the daemon's Unix-domain
 * socket and feeds the streamed job records through the same sinks
 * gdiffrun uses, so daemon-side and in-process sweeps produce
 * byte-comparable outputs:
 *
 *   gdiffctl --socket /tmp/gdiffd.sock submit \
 *       --grid 'workload=mcf;predictor=stride,gdiff;order=4,8' \
 *       --out results.jsonl
 *   gdiffctl --socket /tmp/gdiffd.sock status
 *   gdiffctl --socket /tmp/gdiffd.sock ping
 *   gdiffctl --socket /tmp/gdiffd.sock shutdown
 */

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "runner/sinks.hh"
#include "serve/client.hh"
#include "util/parse.hh"

using namespace gdiff;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH <command> [options]\n"
        "\n"
        "commands:\n"
        "  submit   submit a sweep and stream its results\n"
        "  status   print the daemon's scheduler/cache/latency "
        "snapshot\n"
        "  ping     liveness probe\n"
        "  shutdown ask the daemon to drain and exit\n"
        "\n"
        "submit options:\n"
        "  --grid='key=v1,v2;...' sweep grid (gdiffrun syntax, "
        "required)\n"
        "  --instructions=N       override measured instructions per "
        "job\n"
        "  --warmup=N             override warmup instructions per "
        "job\n"
        "  --sample-budget=N      sampled simulation: timing-simulate\n"
        "                         only N measured records per job "
        "(95%% CIs)\n"
        "  --sample-windows=N     records per measured window "
        "(default 4096)\n"
        "  --sample-seed=N        window-selection seed (default 1)\n"
        "  --client=NAME          client name for fairness/obs "
        "attribution\n"
        "  --out=FILE             JSON-lines results\n"
        "  --csv=FILE             CSV results\n"
        "  --no-table             suppress the human-readable table\n"
        "  --deterministic        strip timing metadata from --out "
        "lines\n",
        argv0);
    std::exit(2);
}

int
runSubmit(serve::Client &client, const serve::SubmitRequest &req,
          const std::string &out, const std::string &csv, bool noTable,
          bool deterministic)
{
    std::string error;
    if (!client.submit(req, &error)) {
        std::fprintf(stderr, "gdiffctl: %s\n", error.c_str());
        return 1;
    }

    std::vector<std::unique_ptr<runner::ResultSink>> sinks;
    if (!noTable)
        sinks.push_back(std::make_unique<runner::TableSink>(
            std::cout, "sweep over " + req.grid));
    if (!out.empty())
        sinks.push_back(std::make_unique<runner::JsonlSink>(
            out, false, deterministic));
    if (!csv.empty())
        sinks.push_back(std::make_unique<runner::CsvSink>(csv));

    serve::SweepOutcome outcome;
    bool ok = client.streamResults(
        [&](const runner::JobRecord &rec) {
            for (auto &s : sinks)
                s->onJob(rec);
        },
        &outcome, &error);
    // Flush whatever arrived even on a truncated stream, mirroring
    // what an interrupted gdiffrun does.
    for (auto &s : sinks)
        s->finish();
    if (!ok) {
        std::fprintf(stderr, "gdiffctl: %s\n", error.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "gdiffctl: sweep %llu: %zu jobs in %.2fs "
                 "(%zu traces generated, %zu replayed from the daemon "
                 "cache)\n",
                 static_cast<unsigned long long>(outcome.sweep),
                 outcome.jobs, outcome.wallSeconds, outcome.generated,
                 outcome.replayed);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath;
    std::string command;
    serve::SubmitRequest req;
    std::string out, csv;
    bool noTable = false;
    bool deterministic = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto take = [&](const char *key, std::string &dest) {
            std::string prefix = std::string(key) + "=";
            if (a.rfind(prefix, 0) == 0) {
                dest = a.substr(prefix.size());
                return true;
            }
            if (a == key && i + 1 < argc) {
                dest = argv[++i];
                return true;
            }
            return false;
        };
        std::string v;
        if (take("--socket", socketPath)) {
        } else if (take("--grid", req.grid)) {
        } else if (take("--client", req.client)) {
        } else if (take("--out", out)) {
        } else if (take("--csv", csv)) {
        } else if (take("--instructions", v)) {
            req.instructions = parseU64Flag("--instructions",
                                            v.c_str());
        } else if (take("--warmup", v)) {
            req.warmup = parseU64Flag("--warmup", v.c_str(), true);
        } else if (take("--sample-budget", v)) {
            req.sampleBudget =
                parseU64Flag("--sample-budget", v.c_str(), true);
        } else if (take("--sample-windows", v)) {
            req.sampleWindow =
                parseU64Flag("--sample-windows", v.c_str());
        } else if (take("--sample-seed", v)) {
            req.sampleSeed =
                parseU64Flag("--sample-seed", v.c_str(), true);
        } else if (a == "--no-table") {
            noTable = true;
        } else if (a == "--deterministic") {
            deterministic = true;
        } else if (!a.empty() && a[0] != '-' && command.empty()) {
            command = a;
        } else {
            usage(argv[0]);
        }
    }
    if (socketPath.empty() || command.empty())
        usage(argv[0]);

    serve::Client client;
    std::string error;
    if (!client.connect(socketPath, &error)) {
        std::fprintf(stderr, "gdiffctl: %s\n", error.c_str());
        return 1;
    }

    if (command == "submit") {
        if (req.grid.empty())
            usage(argv[0]);
        return runSubmit(client, req, out, csv, noTable,
                         deterministic);
    }
    if (command == "status") {
        std::string statusJson;
        if (!client.status(&statusJson, &error)) {
            std::fprintf(stderr, "gdiffctl: %s\n", error.c_str());
            return 1;
        }
        std::printf("%s\n", statusJson.c_str());
        return 0;
    }
    if (command == "ping") {
        if (!client.ping(&error)) {
            std::fprintf(stderr, "gdiffctl: %s\n", error.c_str());
            return 1;
        }
        std::printf("pong\n");
        return 0;
    }
    if (command == "shutdown") {
        if (!client.shutdown(&error)) {
            std::fprintf(stderr, "gdiffctl: %s\n", error.c_str());
            return 1;
        }
        std::fprintf(stderr, "gdiffctl: daemon is draining\n");
        return 0;
    }
    std::fprintf(stderr, "gdiffctl: unknown command '%s'\n",
                 command.c_str());
    return 2;
}
