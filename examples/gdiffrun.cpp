/**
 * @file
 * gdiffrun — the parallel experiment-sweep driver.
 *
 * Expands a cartesian experiment grid into independent jobs and runs
 * them across a thread pool, streaming structured results:
 *
 *   gdiffrun --grid 'workload=mcf,parser,gzip;predictor=stride,dfcm,gdiff;order=4,8' \
 *            --threads=8 --out results.jsonl
 *
 *   gdiffrun --grid 'workload=mcf;scheme=baseline,l_stride,hgvq;order=32' \
 *            --threads=4 --csv speedups.csv
 *
 * Per-job metrics are bit-identical whatever the thread count (see
 * src/runner/runner.hh for the determinism contract). With
 * --manifest, a killed sweep resumes where it stopped: completed jobs
 * are journaled and skipped on rerun, and --out switches to append
 * mode so the JSON-lines file accumulates across runs.
 */

#include <atomic>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "check/snapshot.hh"
#include "obs/obs.hh"
#include "obs/trace_export.hh"
#include "runner/factory.hh"
#include "runner/runner.hh"
#include "sample/sample.hh"
#include "util/logging.hh"
#include "util/parse.hh"
#include "workload/trace_cache.hh"
#include "workload/workload.hh"

using namespace gdiff;

namespace {

struct Options
{
    std::string grid;
    std::string out;      // JSON-lines path
    std::string csv;      // CSV path
    std::string snapshot; // metric-surface snapshot path
    std::string snapshotNote; // freeform label stored in the snapshot
    std::string manifest; // resume manifest path
    unsigned threads = 0; // 0 = hardware concurrency
    uint64_t instructions = 1'000'000;
    uint64_t warmup = 100'000;
    uint64_t sampleBudget = 0; // 0 = full-trace simulation
    uint64_t sampleWindow = 4096;
    uint64_t sampleSeed = 1;
    bool instructionsSet = false;
    bool noTable = false;
    bool useTraceCache = true;
    size_t traceCacheBytes = 0; // 0 = keep the cache's default cap
    std::string traceCacheDir; // persistent tier root; empty = env/none
    size_t traceCacheDiskBytes = 0; // 0 = the tier's default cap
    bool list = false;
    bool deterministic = false; // jsonl without timing metadata
    std::string traceOut;   // Chrome trace-event JSON path
    bool obsSummary = false; // print the obs stage/counter tables
};

/**
 * SIGINT/SIGTERM request a graceful stop: the sweep stops dispatching
 * new jobs, in-flight jobs finish and reach the sinks, and the
 * manifest stays consistent for a resumed run. A handler may only
 * touch lock-free state, hence the bare atomic flag.
 */
std::atomic<bool> stopRequested{false};

void
onStopSignal(int)
{
    stopRequested.store(true, std::memory_order_relaxed);
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --grid 'key=v1,v2;key=...' [options]\n"
        "\n"
        "grid axes: workload, predictor (profile mode), scheme\n"
        "  (pipeline mode), order, table, seed, instructions, mode\n"
        "options:\n"
        "  --threads=N      worker threads (default: hardware "
        "concurrency)\n"
        "  --out=FILE       JSON-lines results (appended when "
        "resuming)\n"
        "  --csv=FILE       CSV results\n"
        "  --snapshot=FILE  freeze the sweep's full metric surface as\n"
        "                   a content-digested snapshot; diff two\n"
        "                   snapshots with gdiffcmp\n"
        "  --snapshot-note=TEXT  label stored in the snapshot (e.g. a\n"
        "                   commit id)\n"
        "  --manifest=FILE  resume journal: completed jobs are "
        "skipped on rerun\n"
        "  --instructions=N measured instructions per job "
        "(default 1000000)\n"
        "  --warmup=N       warmup instructions per job "
        "(default 100000)\n"
        "  --sample-budget=N  sampled simulation: timing-simulate only\n"
        "                   N of the measured records, spread over\n"
        "                   stratified windows; results carry 95%% CIs\n"
        "                   (*_ci_lo/*_ci_hi columns)\n"
        "  --sample-windows=N  records per measured window "
        "(default 4096)\n"
        "  --sample-seed=N  window-selection seed (default 1)\n"
        "  --no-table       suppress the human-readable table\n"
        "  --deterministic  strip timing metadata from --out lines so\n"
        "                   runs can be compared with sort + cmp\n"
        "  --no-trace-cache regenerate every job's trace instead of\n"
        "                   replaying the shared cached copy\n"
        "  --trace-cache-mb=N  cap the shared trace cache at N MiB\n"
        "  --trace-cache-dir=DIR  persist generated traces under DIR\n"
        "                   and replay them across runs/processes\n"
        "                   (GDIFF_TRACE_CACHE_DIR sets the default)\n"
        "  --trace-cache-disk-mb=N  cap the persistent tier at N MiB\n"
        "                   (default 2048)\n"
        "  --trace-out=FILE write a Chrome trace-event JSON timeline\n"
        "                   of the sweep (load in Perfetto or\n"
        "                   chrome://tracing)\n"
        "  --obs-summary    print per-stage timing and counter tables\n"
        "                   after the sweep\n"
        "  --list           print registered workloads, predictors\n"
        "                   and schemes, then exit\n"
        "workloads:",
        argv0);
    for (const auto &n : workload::specWorkloadNames())
        std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "\n");
    std::exit(2);
}

/** --list: the registered grid vocabulary, one axis per line. */
void
printRegistry()
{
    std::printf("workloads:");
    for (const auto &n : workload::specWorkloadNames())
        std::printf(" %s", n.c_str());
    std::printf("\npredictors:");
    for (const auto &n : runner::predictorNames())
        std::printf(" %s", n.c_str());
    std::printf("\nschemes:");
    for (const auto &n : runner::schemeNames())
        std::printf(" %s", n.c_str());
    std::printf("\nmodes: profile pipeline\n");
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        // Accept both --flag=value and --flag value.
        auto take = [&](const char *key, std::string &dest) {
            std::string prefix = std::string(key) + "=";
            if (a.rfind(prefix, 0) == 0) {
                dest = a.substr(prefix.size());
                return true;
            }
            if (a == key && i + 1 < argc) {
                dest = argv[++i];
                return true;
            }
            return false;
        };
        std::string v;
        if (take("--grid", o.grid)) {
        } else if (take("--out", o.out)) {
        } else if (take("--csv", o.csv)) {
        } else if (take("--snapshot", o.snapshot)) {
        } else if (take("--snapshot-note", o.snapshotNote)) {
        } else if (take("--manifest", o.manifest)) {
        } else if (take("--threads", v)) {
            o.threads =
                static_cast<unsigned>(parseU64Flag("--threads",
                                                   v.c_str()));
        } else if (take("--instructions", v)) {
            o.instructions = parseU64Flag("--instructions", v.c_str());
            o.instructionsSet = true;
        } else if (take("--warmup", v)) {
            o.warmup = parseU64Flag("--warmup", v.c_str(), true);
        } else if (take("--sample-budget", v)) {
            o.sampleBudget =
                parseU64Flag("--sample-budget", v.c_str(), true);
        } else if (take("--sample-windows", v)) {
            o.sampleWindow =
                parseU64Flag("--sample-windows", v.c_str());
        } else if (take("--sample-seed", v)) {
            o.sampleSeed =
                parseU64Flag("--sample-seed", v.c_str(), true);
        } else if (take("--trace-cache-mb", v)) {
            o.traceCacheBytes =
                static_cast<size_t>(
                    parseU64Flag("--trace-cache-mb", v.c_str(), true)) *
                (size_t(1) << 20);
        } else if (take("--trace-cache-dir", o.traceCacheDir)) {
        } else if (take("--trace-cache-disk-mb", v)) {
            o.traceCacheDiskBytes =
                static_cast<size_t>(parseU64Flag("--trace-cache-disk-mb",
                                                 v.c_str(), true)) *
                (size_t(1) << 20);
        } else if (take("--trace-out", o.traceOut)) {
        } else if (a == "--obs-summary") {
            o.obsSummary = true;
        } else if (a == "--no-table") {
            o.noTable = true;
        } else if (a == "--deterministic") {
            o.deterministic = true;
        } else if (a == "--no-trace-cache") {
            o.useTraceCache = false;
        } else if (a == "--list") {
            o.list = true;
        } else {
            usage(argv[0]);
        }
    }
    if (!o.list && o.grid.empty())
        usage(argv[0]);
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);
    if (o.list) {
        printRegistry();
        return 0;
    }

    // Instrumentation is opt-in: either obs flag switches the runtime
    // gate on for the whole sweep. Validate the trace path before any
    // simulation runs so a typo'd directory fails in milliseconds, not
    // after the sweep.
    if (!o.traceOut.empty() || o.obsSummary) {
        if (!GDIFF_OBS_ENABLED)
            warn("observability was compiled out (GDIFF_OBS=OFF); "
                 "--trace-out/--obs-summary will report nothing");
        obs::setEnabled(true);
    }
    if (!o.traceOut.empty()) {
        std::FILE *probe = std::fopen(o.traceOut.c_str(), "wb");
        if (!probe)
            fatal("cannot create trace file '%s'", o.traceOut.c_str());
        std::fclose(probe);
    }

    sample::install();

    runner::SweepSpec spec = runner::SweepSpec::parseGrid(o.grid);
    spec.defaultInstructions = o.instructions;
    if (o.instructionsSet)
        spec.instructionWindows.clear(); // CLI flag overrides the axis
    spec.warmup = o.warmup;
    spec.sampleBudget = o.sampleBudget;
    spec.sampleWindow = o.sampleWindow;
    spec.sampleSeed = o.sampleSeed;

    runner::SweepRunner sweep(spec);

    // Resuming implies appending: the jsonl file already holds the
    // manifest-recorded jobs from the previous run.
    bool resuming = !o.manifest.empty();
    std::vector<std::unique_ptr<runner::ResultSink>> sinks;
    if (!o.noTable)
        sinks.push_back(std::make_unique<runner::TableSink>(
            std::cout, "sweep over " + o.grid));
    if (!o.out.empty())
        sinks.push_back(std::make_unique<runner::JsonlSink>(
            o.out, resuming, o.deterministic));
    if (!o.csv.empty())
        sinks.push_back(std::make_unique<runner::CsvSink>(o.csv));
    check::SnapshotSink *snapshotSink = nullptr;
    if (!o.snapshot.empty()) {
        auto sink = std::make_unique<check::SnapshotSink>(
            o.snapshot, "gdiffrun", o.snapshotNote);
        snapshotSink = sink.get();
        sinks.push_back(std::move(sink));
    }
    for (auto &s : sinks)
        sweep.addSink(*s);

    runner::SweepOptions ropt;
    ropt.threads = o.threads;
    ropt.manifestPath = o.manifest;
    ropt.useTraceCache = o.useTraceCache;
    ropt.traceCacheBytes = o.traceCacheBytes;
    ropt.traceCacheDir = o.traceCacheDir;
    ropt.traceCacheDiskBytes = o.traceCacheDiskBytes;
    ropt.cancel = &stopRequested;

    struct sigaction sa = {};
    sa.sa_handler = onStopSignal;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);

    std::fprintf(stderr, "gdiffrun: %zu jobs, %u threads\n",
                 sweep.jobs().size(),
                 ropt.threads == 0 ? runner::defaultThreads()
                                   : ropt.threads);
    runner::SweepSummary s = sweep.run(ropt);
    std::fprintf(stderr,
                 "gdiffrun: ran %zu jobs (%zu resumed/skipped) in "
                 "%.2fs\n",
                 s.ranJobs, s.skippedJobs, s.wallSeconds);
    if (o.useTraceCache && s.ranJobs > 0) {
        std::fprintf(stderr,
                     "gdiffrun: trace cache: %zu generated (%.2fs), "
                     "%zu replayed\n",
                     s.generatedTraces, s.generateSeconds,
                     s.replayedJobs);
        workload::TraceCache::Stats cs =
            workload::TraceCache::global().snapshot();
        std::fprintf(stderr,
                     "gdiffrun: trace cache: %" PRIu64 " hits, %" PRIu64
                     " misses, %" PRIu64 " evictions, %.1f MiB resident "
                     "(%zu traces)\n",
                     cs.hits, cs.misses, cs.evictions,
                     static_cast<double>(cs.residentBytes) /
                         (1 << 20),
                     cs.entries);
        if (cs.diskEnabled) {
            std::fprintf(
                stderr,
                "gdiffrun: trace disk cache (%s): %" PRIu64
                " hits, %" PRIu64 " misses, %" PRIu64
                " stores, %" PRIu64 " evictions, %" PRIu64
                " corrupt-recovered\n",
                workload::TraceCache::global().diskRoot().c_str(),
                cs.diskHits, cs.diskMisses, cs.diskStores,
                cs.diskEvictions, cs.diskCorruptRecoveries);
        }
    }
    if (s.canceledJobs > 0) {
        std::fprintf(stderr,
                     "gdiffrun: interrupted: %zu jobs canceled before "
                     "dispatch; completed jobs were flushed%s\n",
                     s.canceledJobs,
                     o.manifest.empty()
                         ? ""
                         : " and journaled (rerun with the same "
                           "--manifest to resume)");
    }

    if (!o.traceOut.empty() || o.obsSummary) {
        obs::Snapshot snap = obs::snapshot();
        if (o.obsSummary)
            obs::printSummary(std::cout, snap);
        if (!o.traceOut.empty()) {
            if (!obs::writeChromeTrace(o.traceOut, snap))
                return 1;
            std::fprintf(stderr,
                         "gdiffrun: wrote %zu trace spans to %s\n",
                         snap.spans.size(), o.traceOut.c_str());
        }
    }
    if (snapshotSink) {
        if (!snapshotSink->writeResult().ok())
            return 1;
        std::fprintf(stderr, "gdiffrun: wrote snapshot %s\n",
                     o.snapshot.c_str());
    }

    // The conventional 128+SIGINT code tells callers (and scripts)
    // that the sweep was cut short, not that it failed.
    return s.canceledJobs > 0 ? 130 : 0;
}
