/**
 * @file
 * gdifffuzz — the differential fuzzing driver (src/check/).
 *
 * Three things happen per run, all deterministic in --seed:
 *
 *  1. A fuzzed (pc, value) stream is generated and every requested
 *     production predictor is diffed prediction-by-prediction against
 *     its naive reference oracle:
 *
 *       gdifffuzz --cases=100000 --seed=1
 *
 *  2. Fuzzed synthetic-ISA programs are assembled, executed, and run
 *     through the OOO timing pipeline with the invariant checker
 *     enabled (in-order retire, ROB occupancy, issue/retire bandwidth,
 *     selective-reissue containment, IPC bound).
 *
 *  3. Any divergence is minimized with delta debugging and written as
 *     a trace-io v2 repro artifact (gdifffuzz_<pair>_seed<seed>.gdtr)
 *     that --replay accepts back.
 *
 * --mutate corrupts each oracle on purpose and *expects* the harness
 * to catch and shrink the divergence — a self-test that the checking
 * machinery is alive.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "check/differ.hh"
#include "check/fuzzer.hh"
#include "check/reference.hh"
#include "check/shrink.hh"
#include "pipeline/ooo_model.hh"
#include "runner/factory.hh"
#include "util/logging.hh"
#include "util/parse.hh"

using namespace gdiff;

namespace {

struct Options
{
    uint64_t cases = 10'000;
    uint64_t seed = 1;
    unsigned order = 0; // 0 = per-pair default
    std::vector<std::string> pairs;
    bool mutate = false;
    bool batch = false;
    std::string replay;
    std::string outDir = ".";
    bool pipelinePhase = true;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --cases=N      records per fuzzed stream (default 10000)\n"
        "  --seed=S       RNG seed; fixes every input (default 1)\n"
        "  --pairs=a,b    predictor pairs to diff (default: all)\n"
        "  --order=N      history/window order (0 = pair default)\n"
        "  --mutate       corrupt each oracle on purpose; expect the\n"
        "                 harness to catch and shrink the divergence\n"
        "  --batch        also replay the stream scalar-vs-batch\n"
        "                 through every batched predictor family\n"
        "  --replay=FILE  diff a repro artifact instead of fuzzing\n"
        "  --out-dir=DIR  where repro artifacts go (default .)\n"
        "  --no-pipeline  skip the pipeline invariant phase\n"
        "pairs:",
        argv0);
    for (const auto &n : check::pairNames())
        std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "\n");
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto take = [&](const char *key, std::string &dest) {
            std::string prefix = std::string(key) + "=";
            if (a.rfind(prefix, 0) == 0) {
                dest = a.substr(prefix.size());
                return true;
            }
            if (a == key && i + 1 < argc) {
                dest = argv[++i];
                return true;
            }
            return false;
        };
        std::string v;
        if (take("--cases", v)) {
            o.cases = parseU64Flag("--cases", v.c_str());
        } else if (take("--seed", v)) {
            o.seed = parseU64Flag("--seed", v.c_str(), true);
        } else if (take("--order", v)) {
            o.order = static_cast<unsigned>(
                parseU64Flag("--order", v.c_str(), true));
        } else if (take("--pairs", v)) {
            std::string cur;
            for (char c : v + ",") {
                if (c == ',') {
                    if (!cur.empty())
                        o.pairs.push_back(cur);
                    cur.clear();
                } else {
                    cur += c;
                }
            }
        } else if (take("--replay", o.replay)) {
        } else if (take("--out-dir", o.outDir)) {
        } else if (a == "--mutate") {
            o.mutate = true;
        } else if (a == "--batch") {
            o.batch = true;
        } else if (a == "--no-pipeline") {
            o.pipelinePhase = false;
        } else {
            usage(argv[0]);
        }
    }
    if (o.pairs.empty())
        o.pairs = check::pairNames();
    return o;
}

/** Build the (fresh) pair for one diff trial. */
check::PredictorPair
freshPair(const Options &o, const std::string &name)
{
    check::PredictorPair pair = check::makePair(name, o.order);
    if (o.mutate) {
        // Corrupt early so minimized repros stay tiny: the predicate
        // needs at least corruptAfter updates to reproduce.
        pair.oracle = std::make_unique<check::CorruptedOracle>(
            std::move(pair.oracle), 8);
    }
    return pair;
}

/**
 * Diff one pair over the stream; on divergence, shrink and persist a
 * repro artifact. @return true if the pair is clean.
 */
bool
diffPair(const Options &o, const std::string &name,
         const std::vector<check::FuzzRecord> &stream)
{
    check::PredictorPair pair = freshPair(o, name);
    auto divergence =
        check::diffStream(*pair.production, *pair.oracle, stream);
    if (!divergence) {
        std::printf("gdifffuzz: %-10s ok (%zu records)\n",
                    name.c_str(), stream.size());
        return true;
    }

    std::printf("gdifffuzz: %-10s DIVERGED: %s\n", name.c_str(),
                divergence->describe().c_str());

    auto still_fails = [&](const std::vector<check::FuzzRecord> &s) {
        check::PredictorPair trial = freshPair(o, name);
        return check::diffStream(*trial.production, *trial.oracle, s)
            .has_value();
    };
    std::vector<check::FuzzRecord> shrunk =
        check::shrinkStream(stream, still_fails);
    std::string path =
        o.outDir + "/" + check::reproArtifactName(name, o.seed);
    check::writeReproArtifact(path, shrunk);
    std::printf("gdifffuzz: %-10s shrunk %zu -> %zu records, repro "
                "written to %s\n",
                name.c_str(), stream.size(), shrunk.size(),
                path.c_str());
    return false;
}

/**
 * Replay the stream scalar-vs-batch through one predictor family, at
 * a couple of deliberately awkward chunk sizes (a small prime that
 * never fills a SIMD register cleanly, and a large power of two that
 * crosses every internal buffer boundary). On divergence, shrink with
 * the same ddmin machinery and write a batch-<family> repro artifact
 * that --replay --batch accepts back. @return true if clean.
 */
bool
diffBatchFamily(const Options &o, const std::string &name,
                const std::vector<check::FuzzRecord> &stream)
{
    static const uint32_t kLanes[] = {7, 1024};
    for (uint32_t lanes : kLanes) {
        auto scalar = check::makeProduction(name, o.order);
        auto batch = check::makeProduction(name, o.order);
        auto divergence =
            check::diffScalarVsBatch(*scalar, *batch, stream, lanes);
        if (!divergence)
            continue;

        std::printf("gdifffuzz: batch %-10s DIVERGED (%u lanes): %s\n",
                    name.c_str(), lanes,
                    divergence->describe().c_str());

        auto still_fails =
            [&](const std::vector<check::FuzzRecord> &s) {
                auto s2 = check::makeProduction(name, o.order);
                auto b2 = check::makeProduction(name, o.order);
                return check::diffScalarVsBatch(*s2, *b2, s, lanes)
                    .has_value();
            };
        std::vector<check::FuzzRecord> shrunk =
            check::shrinkStream(stream, still_fails);
        std::string path =
            o.outDir + "/" +
            check::reproArtifactName("batch-" + name, o.seed);
        check::writeReproArtifact(path, shrunk);
        std::printf("gdifffuzz: batch %-10s shrunk %zu -> %zu "
                    "records, repro written to %s\n",
                    name.c_str(), stream.size(), shrunk.size(),
                    path.c_str());
        return false;
    }
    std::printf("gdifffuzz: batch %-10s ok (%zu records x %zu chunk "
                "sizes)\n",
                name.c_str(), stream.size(),
                sizeof(kLanes) / sizeof(kLanes[0]));
    return true;
}

/**
 * Run fuzzed programs through the pipeline with invariant checks.
 * @return the number of invariant violations observed.
 */
uint64_t
pipelinePhase(const Options &o)
{
    // A few programs, scaled with --cases but bounded: each one runs
    // its full dynamic trace through the timing model.
    unsigned programs = static_cast<unsigned>(
        std::min<uint64_t>(4, 1 + o.cases / 25'000));
    static const char *const schemes[] = {"baseline", "l_stride",
                                          "hgvq"};
    uint64_t violations = 0;
    for (unsigned p = 0; p < programs; ++p) {
        check::FuzzProgramConfig pcfg;
        pcfg.seed = o.seed + p;
        workload::Workload w = check::fuzzProgram(pcfg);
        for (const char *scheme_name : schemes) {
            auto scheme = runner::makeScheme(scheme_name, 8, 0);
            pipeline::PipelineConfig cfg;
            cfg.check.enabled = true;
            pipeline::OooPipeline pipe(cfg, *scheme);
            auto exec = w.makeExecutor();
            pipeline::PipelineStats stats =
                pipe.run(*exec, 1'000'000'000);
            violations += stats.checkViolations;
            if (stats.checkViolations) {
                std::printf("gdifffuzz: pipeline seed %" PRIu64
                            " scheme %s: %" PRIu64 " invariant "
                            "violations\n",
                            pcfg.seed, scheme_name,
                            stats.checkViolations);
                for (const auto &r : stats.checkReports)
                    std::printf("gdifffuzz:   %s\n", r.c_str());
            }
        }
    }
    if (violations == 0) {
        std::printf("gdifffuzz: pipeline   ok (%u programs x %zu "
                    "schemes, invariants hold)\n",
                    programs, sizeof(schemes) / sizeof(schemes[0]));
    }
    return violations;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);

    std::vector<check::FuzzRecord> stream;
    if (!o.replay.empty()) {
        // Replay paths are untrusted (arbitrary files, artifacts from
        // other trace-cache configs): report the typed status instead
        // of dying inside the trace reader.
        workload::TraceIoResult io;
        if (!check::readReproArtifactOr(o.replay, stream, &io)) {
            std::fprintf(stderr,
                         "gdifffuzz: cannot replay %s: %s (%s)\n",
                         o.replay.c_str(),
                         workload::traceIoStatusName(io.status),
                         io.message.c_str());
            return 2;
        }
        std::printf("gdifffuzz: replaying %zu records from %s\n",
                    stream.size(), o.replay.c_str());
    } else {
        check::FuzzStreamConfig cfg;
        cfg.seed = o.seed;
        cfg.records = o.cases;
        stream = check::fuzzValueStream(cfg);
    }
    std::printf("gdifffuzz: stream digest 0x%016" PRIx64
                " (%zu records, seed %" PRIu64 ")\n",
                check::streamDigest(stream), stream.size(), o.seed);

    int failures = 0;
    for (const auto &name : o.pairs) {
        bool clean = diffPair(o, name, stream);
        if (o.mutate) {
            // Self-test: the corrupted oracle MUST be caught.
            if (clean) {
                std::printf("gdifffuzz: %-10s mutation NOT detected "
                            "— the harness is broken\n",
                            name.c_str());
                ++failures;
            }
        } else if (!clean) {
            ++failures;
        }
    }

    if (o.batch) {
        for (const auto &family : check::batchFamilyNames())
            failures += !diffBatchFamily(o, family, stream);
    }

    if (o.pipelinePhase && o.replay.empty())
        failures += pipelinePhase(o) != 0;

    if (failures) {
        std::printf("gdifffuzz: FAILED (%d)\n", failures);
        return 1;
    }
    std::printf("gdifffuzz: all checks passed\n");
    return 0;
}
