#include "pipeline/vp_scheme.hh"

namespace gdiff {
namespace pipeline {

// ------------------------------------------------------------ VpScheme

VpScheme::VpScheme(const predictors::ConfidenceConfig &conf_cfg)
    : conf(conf_cfg)
{
}

VpDecision
VpScheme::predictAtDispatch(uint64_t pc)
{
    VpDecision d;
    uint32_t &outstanding = inflight[pc];
    d.predicted = doPredict(pc, outstanding, d.value, d.token);
    d.confident = d.predicted && conf.confident(pc);
    cov.record(d.confident);
    ++outstanding;
    return d;
}

void
VpScheme::writeback(uint64_t pc, const VpDecision &d, int64_t actual)
{
    auto it = inflight.find(pc);
    if (it != inflight.end() && it->second > 0)
        --it->second;
    if (d.predicted) {
        bool correct = (d.value == actual);
        accRaw.record(correct);
        if (d.confident)
            accGated.record(correct);
        conf.train(pc, correct);
    }
    doWriteback(pc, d, actual);
}

void
VpScheme::writebackBatch(const WritebackItem *items, uint32_t n)
{
    // Phase 1 — bookkeeping. Within a drain batch nothing reads the
    // in-flight counts or the confidence table (both are next read at
    // predictAtDispatch), so applying every item's bookkeeping before
    // any scheme training is indistinguishable from the interleaved
    // scalar order.
    for (uint32_t l = 0; l < n; ++l) {
        const WritebackItem &it = items[l];
        auto inf = inflight.find(it.pc);
        if (inf != inflight.end() && inf->second > 0)
            --inf->second;
        if (it.decision.predicted) {
            bool correct = (it.decision.value == it.actual);
            accRaw.record(correct);
            if (it.decision.confident)
                accGated.record(correct);
            conf.train(it.pc, correct);
        }
    }
    // Phase 2 — scheme training, in completion order.
    doWritebackBatch(items, n);
}

void
VpScheme::doWritebackBatch(const WritebackItem *items, uint32_t n)
{
    for (uint32_t l = 0; l < n; ++l)
        doWriteback(items[l].pc, items[l].decision, items[l].actual);
}

// --------------------------------------------------------- LocalScheme

LocalScheme::LocalScheme(
    std::unique_ptr<predictors::ValuePredictor> predictor,
    std::string display)
    : inner(std::move(predictor)), display(std::move(display))
{
}

bool
LocalScheme::doPredict(uint64_t pc, unsigned ahead, int64_t &value,
                       uint64_t &token)
{
    token = 0;
    return inner->predictAhead(pc, ahead, value);
}

void
LocalScheme::doWriteback(uint64_t pc, const VpDecision &, int64_t actual)
{
    inner->update(pc, actual);
}

void
LocalScheme::doWritebackBatch(const WritebackItem *items, uint32_t n)
{
    pcScratch.resize(n);
    actualScratch.resize(n);
    for (uint32_t l = 0; l < n; ++l) {
        pcScratch[l] = items[l].pc;
        actualScratch[l] = items[l].actual;
    }
    inner->updateBatch(pcScratch.data(), actualScratch.data(), n);
}

// ---------------------------------------------------------- SgvqScheme

SgvqScheme::SgvqScheme(const core::GDiffConfig &gdiff_cfg)
    : gd(gdiff_cfg), queue(gdiff_cfg.order, 0)
{
}

bool
SgvqScheme::doPredict(uint64_t pc, unsigned, int64_t &value,
                      uint64_t &token)
{
    token = 0;
    return gd.predictWithWindow(pc, queue.visibleWindow(), value);
}

void
SgvqScheme::doWriteback(uint64_t pc, const VpDecision &, int64_t actual)
{
    // Writebacks arrive in completion order: the queue sees the
    // execution-order value sequence, with all its cache-miss-induced
    // variation (the paper's §4 problem).
    gd.trainWithWindow(pc, queue.visibleWindow(), actual);
    queue.push(actual);
}

// ---------------------------------------------------------- HgvqScheme

HgvqScheme::HgvqScheme(const core::GDiffConfig &gdiff_cfg,
                       size_t local_entries,
                       const predictors::ConfidenceConfig &conf_cfg)
    : VpScheme(conf_cfg), gd(gdiff_cfg),
      queue(gdiff_cfg.order,
            static_cast<size_t>(gdiff_cfg.order) + 256),
      localStride(local_entries)
{
}

bool
HgvqScheme::doPredict(uint64_t pc, unsigned ahead, int64_t &value,
                      uint64_t &token)
{
    Candidates c;

    // gdiff candidate: from the dispatch-ordered window, *before*
    // pushing this instruction's own slot.
    c.haveGdiff =
        gd.predictWithWindow(pc, queue.windowAtDispatch(), c.gdiffValue);

    // Local-stride candidate (in-flight-compensated): fills this
    // instruction's queue slot (overwritten with the real result at
    // writeback) and competes as a prediction source — the scheme
    // integrates local and global stride locality (paper §5).
    c.haveFiller =
        localStride.predictAhead(pc, ahead, c.fillerValue);

    token = queue.pushSpeculative(c.haveFiller ? c.fillerValue : 0);
    inFlightCandidates.emplace(token, c);

    // Per-PC component choice: take the candidate whose component
    // confidence is currently higher (gdiff wins ties — it is the
    // added capability under study).
    if (c.haveGdiff &&
        (!c.haveFiller ||
         gdiffConf.level(pc) >= fillerConf.level(pc))) {
        value = c.gdiffValue;
        return true;
    }
    if (c.haveFiller) {
        value = c.fillerValue;
        return true;
    }
    return false;
}

void
HgvqScheme::doWriteback(uint64_t pc, const VpDecision &d, int64_t actual)
{
    queue.commitSlot(d.token, actual);
    // Train against the dispatch-ordered window anchored at this
    // instruction's own slot: execution variation cannot perturb it.
    gd.trainWithWindow(pc, queue.windowBeforeSlot(d.token), actual);
    localStride.update(pc, actual);

    auto it = inFlightCandidates.find(d.token);
    if (it != inFlightCandidates.end()) {
        const Candidates &c = it->second;
        if (c.haveGdiff)
            gdiffConf.train(pc, c.gdiffValue == actual);
        if (c.haveFiller)
            fillerConf.train(pc, c.fillerValue == actual);
        inFlightCandidates.erase(it);
    }
}

} // namespace pipeline
} // namespace gdiff
