#include "pipeline/ooo_model.hh"

#include <algorithm>
#include <cinttypes>
#include <deque>
#include <memory>

#include "obs/obs.hh"
#include "util/logging.hh"

namespace gdiff {
namespace pipeline {

using isa::Opcode;

namespace {

/// issue-bandwidth ring size (must exceed any plausible scheduling
/// horizon; the ROB bounds lookahead well below this)
constexpr size_t issueRingSize = 1 << 16;

} // anonymous namespace

OooPipeline::OooPipeline(const PipelineConfig &config, VpScheme &s)
    : cfg(config), scheme(s), bpred(config), icache(config.icache),
      dcache(config.dcache), issueCount(issueRingSize, 0),
      issueTag(issueRingSize, ~uint64_t(0))
{
}

void
OooPipeline::drainWritebacksBefore(uint64_t cycle, PipelineStats &stats)
{
    // Collect the completion-order run, then train the scheme with
    // one batched call (schemes wrapping batch-capable predictors
    // update chunk-at-a-time).
    drainScratch.clear();
    while (!pending.empty() && pending.top().completeCycle < cycle) {
        const PendingWriteback wb = pending.top();
        pending.pop();
        ++producerWritebacks;
        if (wb.measured) {
            stats.valueDelay.record(producerWritebacks -
                                    wb.producedAtDispatch);
        }
        drainScratch.push_back({wb.pc, wb.decision, wb.value});
    }
    if (!drainScratch.empty()) {
        scheme.writebackBatch(
            drainScratch.data(),
            static_cast<uint32_t>(drainScratch.size()));
    }
}

uint64_t
OooPipeline::allocateIssueSlot(uint64_t earliest)
{
    uint64_t cycle = earliest;
    for (;;) {
        size_t idx = static_cast<size_t>(cycle & (issueRingSize - 1));
        if (issueTag[idx] != cycle) {
            issueTag[idx] = cycle;
            issueCount[idx] = 0;
        }
        if (issueCount[idx] < cfg.issueWidth) {
            ++issueCount[idx];
            return cycle;
        }
        ++cycle;
    }
}

PipelineStats
OooPipeline::run(workload::TraceSource &src, uint64_t max_instructions,
                 uint64_t warmup, bool measureFromRetire,
                 uint64_t functionalWarmup)
{
    if (max_instructions == 0) {
        fatal("pipeline run length is 0 instructions: nothing would "
              "be measured");
    }
    PipelineStats stats;

    // Per-register availability, for real results and for the
    // speculation-aware view consumers use.
    std::vector<uint64_t> regReady(isa::numRegs, 0);
    std::vector<uint64_t> regReadySpec(isa::numRegs, 0);
    // Store-to-load dependence through memory.
    std::unordered_map<uint64_t, uint64_t> memReady;

    // ROB occupancy: retire cycles of the last robSize instructions.
    std::vector<uint64_t> robRetire(cfg.robSize, 0);

    uint64_t front_cycle = 1;       // front-end dispatch cursor
    unsigned dispatched_in_cycle = 0;
    uint64_t last_fetch_line = ~uint64_t(0);
    uint64_t last_retire_cycle = 0;
    unsigned retired_in_cycle = 0;

    uint64_t seq = 0;
    uint64_t measured = 0;
    uint64_t first_measured_cycle = 0;
    uint64_t last_cycle = 0;
    uint64_t budget = functionalWarmup + warmup + max_instructions;

    // ---- invariant checker (cfg.check.enabled): a second set of
    // books, kept with independent structures and cross-checked
    // against the cycle numbers the model computes ----------------
    const CheckConfig &chk = cfg.check;
    std::deque<uint64_t> chkRobWindow; // retire cycles, oldest first
    uint64_t chkPrevRetire = 0;        // in-order retire watermark
    uint64_t chkRetireCycle = 0;       // current retire cycle...
    unsigned chkRetireCount = 0;       // ...and retires charged to it
    std::unordered_map<uint64_t, unsigned> chkIssuePerCycle;
    auto violate = [&](const std::string &msg) {
        ++stats.checkViolations;
        if (stats.checkReports.size() < chk.maxReports)
            stats.checkReports.push_back(msg);
        if (chk.failFast)
            panic("pipeline invariant violated: %s", msg.c_str());
    };

    // Chunk-granularity obs split: trace delivery (fill) vs the cycle
    // loop itself. Accumulated locally, folded into the thread
    // registry once per run.
    const bool obsOn = GDIFF_OBS_ENABLED && obs::enabled();
    uint64_t obsFillNs = 0, obsSimNs = 0, obsChunks = 0, obsT = 0;

    auto scratch = std::make_unique<workload::TraceChunk>();
    while (seq < budget) {
      if (obsOn)
          obsT = obs::nowNs();
      const workload::TraceChunk *chunk = src.fillRef(*scratch);
      if (obsOn) {
          uint64_t t = obs::nowNs();
          obsFillNs += t - obsT;
          obsT = t;
          ++obsChunks;
      }
      if (!chunk)
          break;
      uint32_t chunk_n = static_cast<uint32_t>(
          std::min<uint64_t>(chunk->size, budget - seq));
      for (uint32_t ci = 0; ci < chunk_n; ++ci) {
        // ---- functional-warmup phase: persistent state (caches,
        // branch predictor, VP tables) trains in program order with
        // no cycle modelling. Timing state is untouched, so the
        // timed phase below starts from cycle zero as usual.
        if (seq < functionalWarmup) {
            uint64_t fline = chunk->pc[ci] >> 6;
            if (fline != last_fetch_line) {
                last_fetch_line = fline;
                icache.access(chunk->pc[ci]);
            }
            if (chunk->producesValue(ci)) {
                // Program-order training; the completion-order
                // subtleties of the timed path only matter for delay
                // measurement, not table state.
                VpDecision d = scheme.predictAtDispatch(chunk->pc[ci]);
                scheme.writeback(chunk->pc[ci], d, chunk->value[ci]);
            }
            if (chunk->isLoad(ci) || chunk->isStore(ci))
                dcache.access(chunk->effAddr[ci]);
            if (chunk->isControl(ci) || chunk->isCondBranch(ci))
                bpred.predictAndTrain(chunk->record(ci));
            ++seq;
            continue;
        }

        const workload::TraceRecord r = chunk->record(ci);
        bool measure = seq >= functionalWarmup + warmup;

        // ---- front end ------------------------------------------------
        uint64_t line = r.pc >> 6;
        if (line != last_fetch_line) {
            last_fetch_line = line;
            if (!icache.access(r.pc)) {
                front_cycle += cfg.icache.missPenalty;
                dispatched_in_cycle = 0;
                if (measure)
                    stats.icacheBubbleCycles += cfg.icache.missPenalty;
            }
        }
        if (dispatched_in_cycle >= cfg.dispatchWidth) {
            ++front_cycle;
            dispatched_in_cycle = 0;
        }

        // ---- dispatch (ROB backpressure) -------------------------------
        uint64_t rob_free =
            robRetire[seq % cfg.robSize]; // retire of (seq - robSize)
        uint64_t dispatch_cycle =
            std::max(front_cycle + cfg.frontendDepth, rob_free);
        if (dispatch_cycle > front_cycle + cfg.frontendDepth) {
            // stall backpressures the front end
            if (measure) {
                stats.robStallCycles +=
                    dispatch_cycle - (front_cycle + cfg.frontendDepth);
            }
            front_cycle = dispatch_cycle - cfg.frontendDepth;
            dispatched_in_cycle = 0;
        }
        ++dispatched_in_cycle;

        if (chk.enabled && chkRobWindow.size() >= cfg.robSize &&
            dispatch_cycle < chkRobWindow.front()) {
            // The ROB holds at most robSize instructions: seq cannot
            // dispatch before seq - robSize has retired.
            violate(formatString(
                "ROB occupancy exceeded: seq %" PRIu64
                " dispatches at cycle %" PRIu64 " but seq %" PRIu64
                " only retires at cycle %" PRIu64,
                seq, dispatch_cycle, seq - cfg.robSize,
                chkRobWindow.front()));
        }

        // ---- writebacks that architecturally precede this dispatch ----
        drainWritebacksBefore(dispatch_cycle, stats);

        // ---- value prediction at dispatch ------------------------------
        VpDecision decision;
        bool produces = r.producesValue();
        if (produces)
            decision = scheme.predictAtDispatch(r.pc);

        // ---- operand readiness -----------------------------------------
        uint64_t ready = dispatch_cycle + 1;
        if (r.inst.readsRs1())
            ready = std::max(ready, regReadySpec[r.inst.rs1]);
        if (r.inst.readsRs2())
            ready = std::max(ready, regReadySpec[r.inst.rs2]);
        if (r.isLoad()) {
            auto it = memReady.find(r.effAddr);
            if (it != memReady.end())
                ready = std::max(ready, it->second);
        }

        // ---- issue and execute ------------------------------------------
        uint64_t issue_cycle = allocateIssueSlot(ready);
        unsigned latency = cfg.aluLatency;
        bool dmiss = false;
        switch (r.inst.op) {
          case Opcode::Mul:
            latency = cfg.mulLatency;
            break;
          case Opcode::Div:
          case Opcode::Rem:
            latency = cfg.divLatency;
            break;
          case Opcode::Load:
            dmiss = !dcache.access(r.effAddr);
            latency = cfg.agenLatency + dcache.latency(!dmiss);
            break;
          case Opcode::Store:
            // address generation; data commits from the store queue
            dcache.access(r.effAddr);
            latency = cfg.agenLatency;
            break;
          default:
            break;
        }
        uint64_t complete_cycle = issue_cycle + latency;

        if (chk.enabled) {
            if (issue_cycle <= dispatch_cycle) {
                violate(formatString(
                    "issue before dispatch: seq %" PRIu64
                    " issues at cycle %" PRIu64
                    " but dispatches at cycle %" PRIu64,
                    seq, issue_cycle, dispatch_cycle));
            }
            if (complete_cycle < issue_cycle) {
                violate(formatString(
                    "completion precedes issue: seq %" PRIu64
                    " completes at cycle %" PRIu64
                    ", issues at cycle %" PRIu64,
                    seq, complete_cycle, issue_cycle));
            }
            // Independent issue-bandwidth books: the ring in
            // allocateIssueSlot must never oversubscribe a cycle.
            if (++chkIssuePerCycle[issue_cycle] > cfg.issueWidth) {
                violate(formatString(
                    "issue width exceeded at cycle %" PRIu64
                    " (seq %" PRIu64 ")",
                    issue_cycle, seq));
            }
            if ((seq & 0xfff) == 0) {
                // Dispatch is non-decreasing and issue follows it, so
                // cycles before the current dispatch are settled.
                for (auto it = chkIssuePerCycle.begin();
                     it != chkIssuePerCycle.end();) {
                    it = it->first < dispatch_cycle
                             ? chkIssuePerCycle.erase(it)
                             : std::next(it);
                }
            }
        }

        // ---- control flow ------------------------------------------------
        if (r.isControl() || r.isCondBranch()) {
            bool correct = bpred.predictAndTrain(r);
            if (!correct) {
                uint64_t redirected = std::max(
                    front_cycle,
                    complete_cycle + cfg.redirectPenalty);
                if (measure)
                    stats.redirectBubbleCycles +=
                        redirected - front_cycle;
                front_cycle = redirected;
                dispatched_in_cycle = 0;
                last_fetch_line = ~uint64_t(0);
            }
        }

        // ---- architectural effects --------------------------------------
        if (isa::writesRegister(r.inst.op) &&
            r.inst.rd != isa::reg::zero) {
            regReady[r.inst.rd] = complete_cycle;
            uint64_t spec = complete_cycle;
            if (decision.confident) {
                spec = (decision.value == r.value)
                           ? dispatch_cycle + 1     // dependence broken
                           : complete_cycle + 1;    // selective reissue
            }
            regReadySpec[r.inst.rd] = spec;

            if (chk.enabled && decision.confident &&
                decision.value != r.value && spec <= complete_cycle) {
                // Selective reissue: a consumer must never see the
                // mispredicted value as ready before the producer's
                // real execution has completed.
                violate(formatString(
                    "value misprediction leak: seq %" PRIu64
                    " pc 0x%" PRIx64 " marks r%u ready at cycle %"
                    PRIu64 " but completes at cycle %" PRIu64,
                    seq, r.pc, static_cast<unsigned>(r.inst.rd),
                    spec, complete_cycle));
            }
        }
        if (r.isStore())
            memReady[r.effAddr] = complete_cycle;

        // ---- retire (in order, retireWidth per cycle) ---------------------
        uint64_t retire_cycle =
            std::max(complete_cycle + 1, last_retire_cycle);
        if (retire_cycle == last_retire_cycle &&
            retired_in_cycle >= cfg.retireWidth) {
            ++retire_cycle;
        }
        if (retire_cycle != last_retire_cycle) {
            last_retire_cycle = retire_cycle;
            retired_in_cycle = 0;
        }
        ++retired_in_cycle;
        robRetire[seq % cfg.robSize] = retire_cycle;

        if (chk.enabled) {
            if (retire_cycle < chkPrevRetire) {
                violate(formatString(
                    "out-of-order retire: seq %" PRIu64
                    " retires at cycle %" PRIu64
                    " before its predecessor's cycle %" PRIu64,
                    seq, retire_cycle, chkPrevRetire));
            }
            if (retire_cycle <= complete_cycle) {
                violate(formatString(
                    "retire before completion: seq %" PRIu64
                    " retires at cycle %" PRIu64
                    ", completes at cycle %" PRIu64,
                    seq, retire_cycle, complete_cycle));
            }
            // Independent retire-bandwidth books.
            if (retire_cycle != chkRetireCycle) {
                chkRetireCycle = retire_cycle;
                chkRetireCount = 0;
            }
            if (++chkRetireCount > cfg.retireWidth) {
                violate(formatString(
                    "retire width exceeded at cycle %" PRIu64
                    " (seq %" PRIu64 ")",
                    retire_cycle, seq));
            }
            chkPrevRetire = retire_cycle;
            chkRobWindow.push_back(retire_cycle);
            if (chkRobWindow.size() > cfg.robSize)
                chkRobWindow.pop_front();
        }

        // ---- predictor writeback event ------------------------------------
        if (produces) {
            PendingWriteback wb;
            wb.completeCycle = complete_cycle;
            wb.seq = seq;
            wb.pc = r.pc;
            wb.value = r.value;
            wb.decision = decision;
            wb.producedAtDispatch = producerWritebacks;
            wb.measured = measure;
            pending.push(wb);
        }

        // ---- statistics ------------------------------------------------------
        if (measure) {
            if (measured == 0)
                first_measured_cycle =
                    measureFromRetire && warmup > 0 ? last_cycle
                                                    : dispatch_cycle;
            ++measured;
            if (r.isLoad() && dmiss) {
                stats.missLoadCoverage.record(decision.confident);
                if (decision.confident) {
                    stats.missLoadAccuracy.record(decision.value ==
                                                  r.value);
                }
            }
        }
        last_cycle = std::max(last_cycle, retire_cycle);
        ++seq;
      }
      if (obsOn)
          obsSimNs += obs::nowNs() - obsT;
    }

    if (obsOn) {
        obs::Registry &reg = obs::Registry::local();
        reg.addTimer("pipeline.fill", obsFillNs, obsChunks);
        reg.addTimer("pipeline.sim", obsSimNs, obsChunks);
    }

    drainWritebacksBefore(~uint64_t(0), stats);

    stats.instructions = measured;
    stats.cycles = last_cycle > first_measured_cycle
                       ? last_cycle - first_measured_cycle
                       : 1;
    stats.ipc = static_cast<double>(stats.instructions) /
                static_cast<double>(stats.cycles);
    if (chk.enabled && measured > 0 &&
        stats.ipc > static_cast<double>(cfg.retireWidth) + 1e-9) {
        violate(formatString(
            "IPC %.4f exceeds retire width %u", stats.ipc,
            cfg.retireWidth));
    }
    stats.dcacheMissRate = dcache.missRate();
    stats.icacheMissRate = icache.missRate();
    stats.branchAccuracy = bpred.overallAccuracy().value();
    stats.coverage = scheme.coverage();
    stats.gatedAccuracy = scheme.gatedAccuracy();
    return stats;
}

} // namespace pipeline
} // namespace gdiff
