/**
 * @file
 * Value-speculation schemes pluggable into the OOO timing model.
 *
 * A scheme answers dispatch-time prediction queries and is trained at
 * writeback time (in completion order, exactly as the hardware would
 * be). The base class owns the paper's 3-bit confidence mechanism and
 * the coverage/accuracy bookkeeping used by Figs. 13 and 16:
 *
 *  - coverage  = confident predictions / value-producing instructions
 *  - accuracy  = correct confident predictions / confident predictions
 *
 * Provided schemes:
 *  - NoPrediction          — the baseline machine
 *  - LocalScheme           — wraps any local ValuePredictor (stride,
 *                            DFCM) with dispatch/writeback timing
 *  - SgvqScheme (paper §4) — gdiff over a speculative GVQ pushed in
 *                            completion order
 *  - HgvqScheme (paper §5) — gdiff over the hybrid GVQ: slots pushed
 *                            in dispatch order with local-stride
 *                            values, overwritten at writeback
 */

#ifndef GDIFF_PIPELINE_VP_SCHEME_HH
#define GDIFF_PIPELINE_VP_SCHEME_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/gdiff.hh"
#include "core/gvq.hh"
#include "predictors/confidence.hh"
#include "predictors/stride.hh"
#include "predictors/value_predictor.hh"
#include "stats/counter.hh"

namespace gdiff {
namespace pipeline {

/** Outcome of a dispatch-time prediction query. */
struct VpDecision
{
    bool predicted = false; ///< the predictor produced a value
    bool confident = false; ///< passes the confidence gate
    int64_t value = 0;      ///< the predicted value
    uint64_t token = 0;     ///< scheme-private (e.g. HGVQ slot id)
};

/** One completed instruction handed to a batched writeback drain. */
struct WritebackItem
{
    uint64_t pc = 0;
    VpDecision decision;
    int64_t actual = 0;
};

/** Base class: confidence gating + statistics. */
class VpScheme
{
  public:
    explicit VpScheme(const predictors::ConfidenceConfig &conf_cfg =
                          predictors::ConfidenceConfig());
    virtual ~VpScheme() = default;

    /** @return scheme display name. */
    virtual std::string name() const = 0;

    /**
     * Dispatch-time query for a value-producing instruction.
     * Records coverage statistics.
     */
    VpDecision predictAtDispatch(uint64_t pc);

    /**
     * Writeback-time training, called in completion order.
     * Records accuracy statistics and trains confidence.
     */
    void writeback(uint64_t pc, const VpDecision &d, int64_t actual);

    /**
     * Batched writeback drain: items are a contiguous run of
     * completion-order writebacks with no interleaved dispatches, so
     * the per-item bookkeeping (in-flight counts, accuracy stats,
     * confidence training — none of it read again until the next
     * dispatch) can run as one pass, followed by one scheme-level
     * training pass (doWritebackBatch). Equivalent to calling
     * writeback() per item in order.
     */
    void writebackBatch(const WritebackItem *items, uint32_t n);

    /// @name Statistics (paper Figs. 13/16 metrics)
    /// @{
    const stats::Ratio &coverage() const { return cov; }
    const stats::Ratio &gatedAccuracy() const { return accGated; }
    const stats::Ratio &rawAccuracy() const { return accRaw; }
    /// @}

  protected:
    /**
     * Scheme-specific prediction.
     * @param ahead in-flight instances of this PC (dispatched, not
     *              yet written back) — the table staleness local
     *              computational predictors extrapolate across.
     * @return true if predicted.
     */
    virtual bool doPredict(uint64_t pc, unsigned ahead, int64_t &value,
                           uint64_t &token) = 0;

    /** Scheme-specific training at writeback. */
    virtual void doWriteback(uint64_t pc, const VpDecision &d,
                             int64_t actual) = 0;

    /**
     * Scheme-specific batched training. Default: doWriteback per
     * item, in order. Schemes wrapping a batch-capable predictor
     * override this to train chunk-at-a-time.
     */
    virtual void doWritebackBatch(const WritebackItem *items,
                                  uint32_t n);

  private:
    predictors::ConfidenceTable conf;
    std::unordered_map<uint64_t, uint32_t> inflight;
    stats::Ratio cov;
    stats::Ratio accGated;
    stats::Ratio accRaw;
};

/** Baseline: never predicts. */
class NoPrediction : public VpScheme
{
  public:
    std::string name() const override { return "baseline"; }

  protected:
    bool
    doPredict(uint64_t, unsigned, int64_t &, uint64_t &) override
    {
        return false;
    }

    void doWriteback(uint64_t, const VpDecision &, int64_t) override {}
};

/** Wraps a local predictor (stride / DFCM) into the scheme protocol. */
class LocalScheme : public VpScheme
{
  public:
    /**
     * @param predictor owning pointer to the wrapped local predictor.
     * @param display   scheme name for reports.
     */
    LocalScheme(std::unique_ptr<predictors::ValuePredictor> predictor,
                std::string display);

    std::string name() const override { return display; }

  protected:
    bool doPredict(uint64_t pc, unsigned ahead, int64_t &value,
                   uint64_t &token) override;
    void doWriteback(uint64_t pc, const VpDecision &d,
                     int64_t actual) override;
    void doWritebackBatch(const WritebackItem *items,
                          uint32_t n) override;

  private:
    std::unique_ptr<predictors::ValuePredictor> inner;
    std::string display;
    std::vector<uint64_t> pcScratch;    ///< batch training lanes
    std::vector<int64_t> actualScratch; ///< batch training lanes
};

/** gdiff over the speculative GVQ (paper §4, Fig. 13). */
class SgvqScheme : public VpScheme
{
  public:
    /** @param gdiff_cfg gdiff configuration (paper: order 32, 8K
     * table for the pipeline studies). */
    explicit SgvqScheme(const core::GDiffConfig &gdiff_cfg);

    std::string name() const override { return "gdiff(SGVQ)"; }

  protected:
    bool doPredict(uint64_t pc, unsigned ahead, int64_t &value,
                   uint64_t &token) override;
    void doWriteback(uint64_t pc, const VpDecision &d,
                     int64_t actual) override;

  private:
    core::GDiffPredictor gd;
    core::GlobalValueQueue queue;
};

/**
 * gdiff over the hybrid GVQ (paper §5, Fig. 16).
 *
 * Slots are pushed at dispatch with in-flight-compensated
 * local-stride fillers and overwritten with real results at
 * writeback; gdiff's table trains against dispatch-anchored windows.
 * Prediction selects per PC between the gdiff (distance) candidate
 * and the local-stride candidate by component confidence — the
 * "efficient integration of two types of value localities" of §5,
 * realised as a standard hybrid chooser (see DESIGN.md §6.3).
 */
class HgvqScheme : public VpScheme
{
  public:
    /**
     * @param gdiff_cfg     gdiff configuration (paper: order 32).
     * @param local_entries local-stride filler table entries.
     * @param conf_cfg      confidence policy (paper default).
     */
    explicit HgvqScheme(const core::GDiffConfig &gdiff_cfg,
                        size_t local_entries = 8192,
                        const predictors::ConfidenceConfig &conf_cfg =
                            predictors::ConfidenceConfig());

    std::string name() const override { return "gdiff(HGVQ)"; }

  protected:
    bool doPredict(uint64_t pc, unsigned ahead, int64_t &value,
                   uint64_t &token) override;
    void doWriteback(uint64_t pc, const VpDecision &d,
                     int64_t actual) override;

  private:
    /** Both candidate predictions captured at dispatch, keyed by the
     * HGVQ slot id, so each component trains on its own outcome. */
    struct Candidates
    {
        int64_t gdiffValue = 0;
        int64_t fillerValue = 0;
        bool haveGdiff = false;
        bool haveFiller = false;
    };

    core::GDiffPredictor gd;
    core::HybridGvq queue;
    predictors::StridePredictor localStride;
    /// per-component selection confidence (the hybrid chooser)
    predictors::ConfidenceTable gdiffConf;
    predictors::ConfidenceTable fillerConf;
    std::unordered_map<uint64_t, Candidates> inFlightCandidates;
};

} // namespace pipeline
} // namespace gdiff

#endif // GDIFF_PIPELINE_VP_SCHEME_HH
