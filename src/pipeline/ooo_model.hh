/**
 * @file
 * Trace-driven out-of-order superscalar timing model.
 *
 * The model processes the dynamic trace in program order and computes
 * per-instruction dispatch/issue/complete/retire cycles from the
 * machine constraints (paper Table 1): front-end width and I-cache
 * behaviour, branch/indirect misprediction redirects, ROB occupancy,
 * issue bandwidth, operand readiness through registers and memory,
 * and D-cache latency. Predictor training happens in *completion*
 * order via a pending-writeback queue, which is what exposes value
 * delay (Fig. 12) and SGVQ execution variation (Fig. 13) exactly as
 * the paper describes.
 *
 * Value speculation follows the paper's aggressive machine model
 * (§7, after Sazeides' "great latency" model): a confident prediction
 * lets consumers issue one cycle after the producer's dispatch;
 * verification happens when the producer executes; on a value
 * misprediction only the dependent instructions reissue, modelled as
 * operand availability at the producer's completion plus one cycle.
 */

#ifndef GDIFF_PIPELINE_OOO_MODEL_HH
#define GDIFF_PIPELINE_OOO_MODEL_HH

#include <cstdint>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/cache.hh"
#include "pipeline/branch_pred.hh"
#include "pipeline/config.hh"
#include "pipeline/vp_scheme.hh"
#include "stats/counter.hh"
#include "stats/histogram.hh"
#include "workload/trace.hh"

namespace gdiff {
namespace pipeline {

/** Results of one pipeline run. */
struct PipelineStats
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    double ipc = 0.0;

    /// value-delay distribution: producer writebacks between an
    /// instruction's dispatch and its own writeback (paper Fig. 12)
    stats::Histogram valueDelay{64};

    /// confident predictions among *missing* loads (paper §7 notes
    /// these drive mcf's speedup)
    stats::Ratio missLoadCoverage;
    stats::Ratio missLoadAccuracy;

    double dcacheMissRate = 0.0;
    double icacheMissRate = 0.0;
    double branchAccuracy = 0.0;

    /// @name Front-end cycle accounting (approximate attribution)
    /// @{
    uint64_t icacheBubbleCycles = 0;   ///< I-cache miss bubbles
    uint64_t redirectBubbleCycles = 0; ///< mispredict redirects
    uint64_t robStallCycles = 0;       ///< dispatch held by the ROB
    /// @}

    /// copied from the scheme after the run
    stats::Ratio coverage;
    stats::Ratio gatedAccuracy;

    /// @name Invariant checker results (cfg.check.enabled only)
    /// @{
    uint64_t checkViolations = 0;            ///< total violations
    std::vector<std::string> checkReports;   ///< first maxReports
    /// @}
};

/** The timing model. */
class OooPipeline
{
  public:
    /**
     * @param config machine parameters.
     * @param scheme value-speculation scheme (externally owned).
     */
    OooPipeline(const PipelineConfig &config, VpScheme &scheme);

    /**
     * Run the trace through the machine.
     *
     * @param src    dynamic instruction source.
     * @param max_instructions measured instructions.
     * @param warmup instructions executed before measurement starts
     *               (caches/predictors train; stats not recorded).
     * @param measureFromRetire count measured cycles from the retire
     *               watermark of the last warmup instruction instead
     *               of the first measured instruction's dispatch
     *               cycle. The default charges the window the full
     *               dispatch-to-retire latency of its first
     *               instruction — negligible over a long run but a
     *               fixed ~ROB-drain overcount for the short windows
     *               of sampled simulation, whose cycle counts must
     *               tile: summed retire-to-retire windows telescope
     *               to the continuous run's total. No effect when
     *               warmup is 0.
     * @param functionalWarmup records consumed *before* the detailed
     *               warmup with no cycle modelling at all: caches,
     *               the branch predictor, and the VP scheme's tables
     *               train in program order at a fraction of a timed
     *               record's cost. This is the long-history half of
     *               SMARTS-style warming for sampled windows
     *               (src/sample/): structures like a large D-cache
     *               converge over tens of thousands of records, far
     *               more than detailed warmup can affordably replay.
     * @return the collected statistics.
     */
    PipelineStats run(workload::TraceSource &src,
                      uint64_t max_instructions,
                      uint64_t warmup = 0,
                      bool measureFromRetire = false,
                      uint64_t functionalWarmup = 0);

  private:
    struct PendingWriteback
    {
        uint64_t completeCycle = 0;
        uint64_t seq = 0;
        uint64_t pc = 0;
        int64_t value = 0;
        VpDecision decision;
        uint64_t producedAtDispatch = 0;
        bool measured = false;

        bool
        operator>(const PendingWriteback &o) const
        {
            // Completion-time order; sequence breaks ties so equal-
            // cycle writebacks drain in program order.
            return completeCycle != o.completeCycle
                       ? completeCycle > o.completeCycle
                       : seq > o.seq;
        }
    };

    /** Apply all pending writebacks strictly before the cycle. */
    void drainWritebacksBefore(uint64_t cycle, PipelineStats &stats);

    /** @return first cycle >= earliest with a free issue slot, and
     * consume the slot. */
    uint64_t allocateIssueSlot(uint64_t earliest);

    PipelineConfig cfg;
    VpScheme &scheme;
    BranchPredictor bpred;
    mem::Cache icache;
    mem::Cache dcache;

    // issue-bandwidth ring: slot counts tagged by cycle
    std::vector<uint32_t> issueCount;
    std::vector<uint64_t> issueTag;

    std::priority_queue<PendingWriteback,
                        std::vector<PendingWriteback>,
                        std::greater<PendingWriteback>>
        pending;

    std::vector<WritebackItem> drainScratch; ///< batched drain run

    uint64_t producerWritebacks = 0; ///< count of applied producer wbs
};

} // namespace pipeline
} // namespace gdiff

#endif // GDIFF_PIPELINE_OOO_MODEL_HH
