/**
 * @file
 * Pipeline configuration (paper Table 1).
 *
 * The timing model is a trace-driven dependence-graph simulator of a
 * MIPS R10000-like out-of-order superscalar: 4-wide fetch/dispatch/
 * issue/retire, a 64-entry reorder buffer (the paper uses ROB size ==
 * issue window), 4 fully symmetric function units, and the paper's
 * cache latencies.
 */

#ifndef GDIFF_PIPELINE_CONFIG_HH
#define GDIFF_PIPELINE_CONFIG_HH

#include "mem/cache.hh"

namespace gdiff {
namespace pipeline {

/**
 * Runtime invariant checking (the pipeline half of the src/check/
 * differential-testing subsystem).
 *
 * When enabled, the timing model runs a second, independent set of
 * books — an explicit ROB window, retire-bandwidth counters, per-cycle
 * issue counts — and cross-checks them against the cycle numbers the
 * model computes. Violations are counted and the first few described
 * in PipelineStats::checkReports.
 */
struct CheckConfig
{
    /// enable per-instruction pipeline invariant checks (slower)
    bool enabled = false;
    /// panic() on the first violation instead of recording it
    bool failFast = false;
    /// cap on stored violation report strings
    unsigned maxReports = 16;
};

/** Machine parameters, defaulted to the paper's Table 1. */
struct PipelineConfig
{
    unsigned fetchWidth = 4;
    unsigned dispatchWidth = 4;
    unsigned issueWidth = 4;
    unsigned retireWidth = 4;
    unsigned robSize = 64;
    unsigned numFus = 4; ///< fully symmetric
    unsigned dcachePorts = 4;

    /// pipeline depth from fetch to dispatch (frontend stages)
    unsigned frontendDepth = 2;
    /// extra cycles to redirect the front end after a mispredict, on
    /// top of waiting for the branch to execute
    unsigned redirectPenalty = 2;

    /// ALU latency (integer ops)
    unsigned aluLatency = 1;
    /// address generation latency for loads/stores
    unsigned agenLatency = 1;
    /// multiplier latency (MIPS R10000: 5-6 cycles for mult)
    unsigned mulLatency = 5;
    /// divide latency
    unsigned divLatency = 20;

    mem::CacheConfig icache = mem::CacheConfig::paperICache();
    mem::CacheConfig dcache = mem::CacheConfig::paperDCache();

    /// branch predictor: gshare history bits / table entries
    unsigned gshareHistoryBits = 12;
    /// branch target buffer entries (for indirect jumps)
    size_t btbEntries = 2048;
    /// return address stack depth
    unsigned rasDepth = 16;

    /// invariant checking (off by default: zero-cost for normal runs)
    CheckConfig check;

    /** @return the paper's Table 1 configuration. */
    static PipelineConfig
    paper()
    {
        return PipelineConfig();
    }
};

} // namespace pipeline
} // namespace gdiff

#endif // GDIFF_PIPELINE_CONFIG_HH
