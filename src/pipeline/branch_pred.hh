/**
 * @file
 * Front-end control-flow prediction: gshare direction predictor, a
 * last-target BTB for indirect jumps, and a return address stack.
 *
 * The timing model is trace driven, so prediction outcomes only
 * decide whether the front end takes a redirect bubble; wrong-path
 * instructions are not simulated (see DESIGN.md for the deviation
 * note — wrong-path values never enter the speculative GVQ, so our
 * SGVQ execution variation comes from cache-miss reordering alone).
 */

#ifndef GDIFF_PIPELINE_BRANCH_PRED_HH
#define GDIFF_PIPELINE_BRANCH_PRED_HH

#include <cstdint>
#include <vector>

#include "pipeline/config.hh"
#include "stats/counter.hh"
#include "workload/trace.hh"

namespace gdiff {
namespace pipeline {

/** gshare + BTB + RAS front-end predictor. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const PipelineConfig &config);

    /**
     * Predict and train on one control-flow instruction.
     *
     * @param r the dynamic instruction (must be a control transfer or
     *          conditional branch).
     * @return true if both direction and target were predicted
     *         correctly (no front-end redirect needed).
     */
    bool predictAndTrain(const workload::TraceRecord &r);

    /** @return conditional-branch direction accuracy. */
    const stats::Ratio &directionAccuracy() const { return dirAcc; }

    /** @return indirect-target (jr/jalr) prediction accuracy. */
    const stats::Ratio &indirectAccuracy() const { return indAcc; }

    /** @return overall redirect-free rate over all control ops. */
    const stats::Ratio &overallAccuracy() const { return allAcc; }

  private:
    unsigned historyBits;
    uint64_t history = 0;
    std::vector<uint8_t> counters; ///< 2-bit gshare counters

    struct BtbEntry
    {
        uint64_t tag = 0;
        uint64_t target = 0;
        bool valid = false;
    };
    std::vector<BtbEntry> btb;

    std::vector<uint64_t> ras;
    unsigned rasDepth;

    stats::Ratio dirAcc;
    stats::Ratio indAcc;
    stats::Ratio allAcc;
};

} // namespace pipeline
} // namespace gdiff

#endif // GDIFF_PIPELINE_BRANCH_PRED_HH
