#include "pipeline/branch_pred.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace gdiff {
namespace pipeline {

using isa::Opcode;

BranchPredictor::BranchPredictor(const PipelineConfig &config)
    : historyBits(config.gshareHistoryBits),
      counters(size_t(1) << config.gshareHistoryBits, 1),
      btb(config.btbEntries), rasDepth(config.rasDepth)
{
    GDIFF_ASSERT(isPowerOfTwo(config.btbEntries),
                 "BTB entries must be a power of two");
}

bool
BranchPredictor::predictAndTrain(const workload::TraceRecord &r)
{
    const Opcode op = r.inst.op;
    bool correct = true;

    if (isa::isCondBranch(op)) {
        size_t idx = static_cast<size_t>(
            (mix64(r.pc >> 2) ^ history) & mask(historyBits));
        uint8_t &ctr = counters[idx];
        bool predict_taken = ctr >= 2;
        correct = (predict_taken == r.taken);
        if (r.taken) {
            if (ctr < 3)
                ++ctr;
        } else {
            if (ctr > 0)
                --ctr;
        }
        history = ((history << 1) | (r.taken ? 1 : 0)) &
                  mask(historyBits);
        dirAcc.record(correct);
    } else if (op == Opcode::Jump) {
        correct = true; // direct, target known at decode
    } else if (op == Opcode::Jal) {
        correct = true;
        if (ras.size() >= rasDepth)
            ras.erase(ras.begin());
        ras.push_back(r.pc + isa::instBytes);
    } else if (op == Opcode::Jalr) {
        // Indirect call: last-target BTB.
        size_t idx = static_cast<size_t>(mix64(r.pc >> 2) &
                                         (btb.size() - 1));
        BtbEntry &e = btb[idx];
        correct = e.valid && e.tag == r.pc && e.target == r.nextPc;
        e.valid = true;
        e.tag = r.pc;
        e.target = r.nextPc;
        indAcc.record(correct);
        if (ras.size() >= rasDepth)
            ras.erase(ras.begin());
        ras.push_back(r.pc + isa::instBytes);
    } else if (op == Opcode::Jr) {
        // Treat as a return: pop the RAS.
        if (!ras.empty()) {
            correct = (ras.back() == r.nextPc);
            ras.pop_back();
        } else {
            correct = false;
        }
        indAcc.record(correct);
    }

    allAcc.record(correct);
    return correct;
}

} // namespace pipeline
} // namespace gdiff
