#include "obs/trace_export.hh"

#include <cinttypes>
#include <fstream>
#include <set>

#include "util/json.hh"
#include "util/logging.hh"

namespace gdiff {
namespace obs {

namespace {

/** Timestamps: the trace format's ts/dur are microseconds; emit with
 * nanosecond precision so sub-microsecond spans stay visible. */
void
emitMicros(std::ostream &os, uint64_t ns)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                  static_cast<unsigned>(ns % 1000));
    os << buf;
}

void
emitArgs(std::ostream &os,
         const std::vector<std::pair<std::string, std::string>> &args)
{
    os << "{";
    bool first = true;
    for (const auto &[key, value] : args) {
        if (!first)
            os << ",";
        first = false;
        os << '"' << json::escape(key) << "\":\""
           << json::escape(value) << '"';
    }
    os << "}";
}

} // anonymous namespace

void
writeChromeTrace(std::ostream &os, const Snapshot &snap)
{
    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };

    // Thread-name metadata rows, one per tid that recorded a span.
    std::set<uint32_t> tids;
    for (const SpanEvent &ev : snap.spans)
        tids.insert(ev.tid);
    for (uint32_t tid : tids) {
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
           << "\"tid\":" << tid << ",\"args\":{\"name\":\""
           << (tid == 0 ? "main" : "worker-" + std::to_string(tid))
           << "\"}}";
    }

    uint64_t lastNs = 0;
    for (const SpanEvent &ev : snap.spans) {
        sep();
        os << "{\"name\":\"" << json::escape(ev.name)
           << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << ev.tid
           << ",\"ts\":";
        emitMicros(os, ev.startNs);
        os << ",\"dur\":";
        emitMicros(os, ev.durNs);
        if (!ev.args.empty()) {
            os << ",\"args\":";
            emitArgs(os, ev.args);
        }
        os << "}";
        lastNs = std::max(lastNs, ev.startNs + ev.durNs);
    }

    // Final counter totals as one instant event, so the cache
    // hit/miss counts ride inside the trace file too.
    if (!snap.counters.empty()) {
        sep();
        os << "{\"name\":\"obs.counters\",\"ph\":\"i\",\"s\":\"g\","
           << "\"pid\":1,\"tid\":0,\"ts\":";
        emitMicros(os, lastNs);
        os << ",\"args\":{";
        bool firstArg = true;
        for (const auto &[name, value] : snap.counters) {
            if (!firstArg)
                os << ",";
            firstArg = false;
            os << '"' << json::escape(name) << "\":" << value;
        }
        os << "}}";
    }

    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool
writeChromeTrace(const std::string &path, const Snapshot &snap)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os.is_open()) {
        warn("cannot create trace file '%s'", path.c_str());
        return false;
    }
    writeChromeTrace(os, snap);
    return os.good();
}

} // namespace obs
} // namespace gdiff
