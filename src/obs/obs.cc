#include "obs/obs.hh"

#include <algorithm>
#include <chrono>
#include <memory>

#include "stats/table.hh"
#include "util/logging.hh"

namespace gdiff {
namespace obs {

namespace detail {
std::atomic<bool> gEnabled{false};
} // namespace detail

void
setEnabled(bool on)
{
#if GDIFF_OBS_ENABLED
    if (on)
        nowNs(); // pin the epoch before any worker thread races to it
    detail::gEnabled.store(on, std::memory_order_relaxed);
#else
    (void)on;
#endif
}

uint64_t
nowNs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - epoch)
            .count());
}

// ------------------------------------------------- global registry set

namespace {

/**
 * Registries are heap-allocated and owned by this process-wide list so
 * they outlive their threads: snapshot() after a worker joins still
 * sees everything the worker recorded. The list only grows (one entry
 * per thread that ever touched obs), which is bounded by thread count.
 */
struct RegistryList
{
    std::mutex mu;
    std::vector<std::unique_ptr<Registry>> all;
};

RegistryList &
registryList()
{
    static RegistryList *list = new RegistryList; // never destroyed:
    // worker threads may outlive static destruction order otherwise
    return *list;
}

} // anonymous namespace

Registry::Registry() = default;

Registry &
Registry::local()
{
    thread_local Registry *mine = [] {
        RegistryList &list = registryList();
        std::lock_guard<std::mutex> guard(list.mu);
        list.all.push_back(std::unique_ptr<Registry>(new Registry));
        Registry *r = list.all.back().get();
        r->threadId = static_cast<uint32_t>(list.all.size() - 1);
        return r;
    }();
    return *mine;
}

std::atomic<uint64_t> *
Registry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> guard(mu);
    auto it = counters.find(name);
    if (it == counters.end())
        it = counters.try_emplace(std::string(name)).first;
    return &it->second;
}

void
Registry::addCount(std::string_view name, uint64_t n)
{
    counter(name)->fetch_add(n, std::memory_order_relaxed);
}

void
Registry::addTimer(std::string_view name, uint64_t ns, uint64_t calls)
{
    std::lock_guard<std::mutex> guard(mu);
    auto it = timers.find(name);
    if (it == timers.end())
        it = timers.try_emplace(std::string(name)).first;
    it->second.calls += calls;
    it->second.totalNs += ns;
}

uint64_t
Registry::timerNs(std::string_view name) const
{
    std::lock_guard<std::mutex> guard(mu);
    auto it = timers.find(name);
    return it == timers.end() ? 0 : it->second.totalNs;
}

stats::Histogram *
Registry::histogram(std::string_view name, size_t numBuckets)
{
    std::lock_guard<std::mutex> guard(mu);
    auto it = histograms.find(name);
    if (it == histograms.end()) {
        it = histograms
                 .emplace(std::string(name),
                          stats::Histogram(numBuckets))
                 .first;
    }
    return &it->second;
}

void
Registry::addSpan(std::string name, uint64_t startNs, uint64_t durNs,
                  std::vector<std::pair<std::string, std::string>> args)
{
    std::lock_guard<std::mutex> guard(mu);
    if (spans.size() >= maxSpans) {
        ++spansDropped;
        return;
    }
    SpanEvent ev;
    ev.name = std::move(name);
    ev.startNs = startNs;
    ev.durNs = durNs;
    ev.tid = threadId;
    ev.args = std::move(args);
    spans.push_back(std::move(ev));
}

// ------------------------------------------------------ aggregation

Snapshot
snapshot()
{
    Snapshot snap;
    RegistryList &list = registryList();
    std::lock_guard<std::mutex> listGuard(list.mu);
    for (const auto &reg : list.all) {
        std::lock_guard<std::mutex> guard(reg->mu);
        for (const auto &[name, value] : reg->counters) {
            snap.counters[name] +=
                value.load(std::memory_order_relaxed);
        }
        if (reg->spansDropped > 0)
            snap.counters["obs.spans_dropped"] += reg->spansDropped;
        for (const auto &[name, stat] : reg->timers) {
            TimerStat &dst = snap.timers[name];
            dst.calls += stat.calls;
            dst.totalNs += stat.totalNs;
        }
        for (const auto &[name, hist] : reg->histograms) {
            auto it = snap.histograms.find(name);
            if (it == snap.histograms.end())
                snap.histograms.emplace(name, hist);
            else
                it->second.merge(hist);
        }
        snap.spans.insert(snap.spans.end(), reg->spans.begin(),
                          reg->spans.end());
    }
    return snap;
}

void
reset()
{
    RegistryList &list = registryList();
    std::lock_guard<std::mutex> listGuard(list.mu);
    for (const auto &reg : list.all) {
        std::lock_guard<std::mutex> guard(reg->mu);
        for (auto &[name, value] : reg->counters) {
            (void)name;
            value.store(0, std::memory_order_relaxed);
        }
        reg->timers.clear();
        reg->histograms.clear();
        reg->spans.clear();
        reg->spansDropped = 0;
    }
}

void
printSummary(std::ostream &os)
{
    printSummary(os, snapshot());
}

void
printSummary(std::ostream &os, const Snapshot &snap)
{
    stats::Table stages("obs stage summary", "stage");
    stages.addColumn("calls");
    stages.addColumn("total s");
    stages.addColumn("mean us");
    for (const auto &[name, stat] : snap.timers) {
        stages.beginRow(name);
        stages.cellInt(static_cast<long long>(stat.calls));
        stages.cellDouble(stat.seconds(), 3);
        stages.cellDouble(stat.calls > 0
                              ? static_cast<double>(stat.totalNs) /
                                    static_cast<double>(stat.calls) /
                                    1e3
                              : 0.0,
                          1);
    }
    stages.print(os);

    if (!snap.counters.empty()) {
        stats::Table counts("obs counters", "counter");
        counts.addColumn("value");
        for (const auto &[name, value] : snap.counters) {
            counts.beginRow(name);
            counts.cellInt(static_cast<long long>(value));
        }
        counts.print(os);
    }

    if (!snap.histograms.empty()) {
        stats::Table hists("obs histograms", "histogram");
        hists.addColumn("samples");
        hists.addColumn("mean");
        hists.addColumn("p50");
        hists.addColumn("p95");
        hists.addColumn("max");
        for (const auto &[name, h] : snap.histograms) {
            hists.beginRow(name);
            hists.cellInt(static_cast<long long>(h.samples()));
            hists.cellDouble(h.mean(), 1);
            hists.cellInt(static_cast<long long>(h.percentile(0.50)));
            hists.cellInt(static_cast<long long>(h.percentile(0.95)));
            hists.cellInt(static_cast<long long>(h.maxSample()));
        }
        hists.print(os);
    }
}

} // namespace obs
} // namespace gdiff
