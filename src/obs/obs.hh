/**
 * @file
 * Low-overhead observability: scoped timers, thread-local counter,
 * timer, and histogram registries, and span recording for the Chrome
 * trace-event exporter (obs/trace_export.hh).
 *
 * Design rules (see docs/INTERNALS.md §8):
 *  - Everything is off by default. The master switch is a relaxed
 *    atomic read (`obs::enabled()`); a disabled call site costs one
 *    predictable branch and touches no registry state — no
 *    allocations, no map lookups, no clock reads.
 *  - Hot paths instrument at *chunk or job granularity*, never per
 *    instruction: accumulate locally, then make one registry call.
 *  - Registries are thread-local and mutated only by their owning
 *    thread; `snapshot()` merges every thread's registry into one
 *    view at aggregation points (sweep end, test assertions).
 *    Registries outlive their threads, so short-lived worker threads
 *    can be merged after they join.
 *  - Compiling with -DGDIFF_OBS_DISABLE turns the macros into
 *    no-tokens and pins enabled() to false; the API itself stays
 *    available so callers need no ifdefs.
 */

#ifndef GDIFF_OBS_OBS_HH
#define GDIFF_OBS_OBS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/histogram.hh"

namespace gdiff {
namespace obs {

/// Compile-time master switch: define GDIFF_OBS_DISABLE to compile
/// every GDIFF_OBS_* macro out entirely.
#ifdef GDIFF_OBS_DISABLE
#define GDIFF_OBS_ENABLED 0
#else
#define GDIFF_OBS_ENABLED 1
#endif

namespace detail {
extern std::atomic<bool> gEnabled;
} // namespace detail

/** @return true when instrumentation is collecting. */
inline bool
enabled()
{
#if GDIFF_OBS_ENABLED
    return detail::gEnabled.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

/**
 * Turn collection on or off at runtime. A no-op (always off) when the
 * library was compiled with GDIFF_OBS_DISABLE.
 */
void setEnabled(bool on);

/**
 * @return nanoseconds on the steady clock since the process's obs
 * epoch (first call). Monotonic per thread and consistent across
 * threads, which is what the trace exporter's timestamps need.
 */
uint64_t nowNs();

/** One completed span, as the Chrome trace exporter will emit it. */
struct SpanEvent
{
    std::string name;
    uint64_t startNs = 0;
    uint64_t durNs = 0;
    uint32_t tid = 0; ///< stable small id of the recording thread
    /// optional key/value annotations (rendered as the event's args)
    std::vector<std::pair<std::string, std::string>> args;
};

/** Accumulated time under one timer name. */
struct TimerStat
{
    uint64_t calls = 0;
    uint64_t totalNs = 0;

    double seconds() const { return static_cast<double>(totalNs) / 1e9; }
};

/** The merged view of every thread's registry. */
struct Snapshot
{
    std::map<std::string, uint64_t> counters;
    std::map<std::string, TimerStat> timers;
    std::map<std::string, stats::Histogram> histograms;
    std::vector<SpanEvent> spans; ///< per-thread chronological order
};

/**
 * One thread's instrumentation state. Obtain the calling thread's
 * registry with local(); all mutators are cheap and intended to be
 * called at chunk/job granularity. Entry addresses are stable for the
 * registry's lifetime, so hot call sites may cache the pointer a
 * counter() lookup returns and increment through it directly.
 */
class Registry
{
  public:
    /** @return the calling thread's registry (created on first use). */
    static Registry &local();

    /**
     * @return the address of the named per-thread counter, creating
     * it at zero on first use. The address never changes; increment
     * with std::memory_order_relaxed.
     */
    std::atomic<uint64_t> *counter(std::string_view name);

    /** Add @p n to the named counter (uncached convenience form). */
    void addCount(std::string_view name, uint64_t n);

    /** Fold @p ns nanoseconds over @p calls calls into a timer. */
    void addTimer(std::string_view name, uint64_t ns,
                  uint64_t calls = 1);

    /** @return the named timer's accumulated nanoseconds (0 if it
     * does not exist). Reads this thread's registry only. */
    uint64_t timerNs(std::string_view name) const;

    /**
     * @return the named per-thread histogram, created with
     * @p numBuckets in-range buckets on first use. Later calls ignore
     * @p numBuckets. snapshot() merges same-named histograms across
     * threads, which requires every thread to use one bucket count
     * per name.
     */
    stats::Histogram *histogram(std::string_view name,
                                size_t numBuckets = 64);

    /** Record a completed span for the trace exporter. */
    void addSpan(std::string name, uint64_t startNs, uint64_t durNs,
                 std::vector<std::pair<std::string, std::string>>
                     args = {});

    /** @return this registry's stable small thread id. */
    uint32_t tid() const { return threadId; }

  private:
    Registry();

    friend Snapshot snapshot();
    friend void reset();

    /// Spans kept per thread before the oldest are dropped (counted
    /// in the "obs.spans_dropped" counter) — a runaway-loop backstop.
    static constexpr size_t maxSpans = 1 << 20;

    mutable std::mutex mu;
    uint32_t threadId = 0;
    std::map<std::string, std::atomic<uint64_t>, std::less<>> counters;
    std::map<std::string, TimerStat, std::less<>> timers;
    std::map<std::string, stats::Histogram, std::less<>> histograms;
    std::vector<SpanEvent> spans;
    uint64_t spansDropped = 0;
};

/** Merge every thread's registry into one Snapshot. */
Snapshot snapshot();

/** Clear every thread's registry (sweep start, tests). */
void reset();

/**
 * Render a snapshot as stats::Table reports: the per-stage timer
 * breakdown ("obs stage summary"), the counters, and — where present —
 * histograms with p50/p95 columns.
 */
void printSummary(std::ostream &os, const Snapshot &snap);

/** Convenience overload: snapshot() then print. */
void printSummary(std::ostream &os);

/**
 * RAII timer: measures construction-to-destruction and folds it into
 * the thread-local timer @p name; with @p withSpan it also records a
 * span for the trace exporter. Does nothing — not even a clock read —
 * when obs is disabled at construction time.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(const char *name, bool withSpan = false)
        : name(name), span(withSpan), startNs(enabled() ? nowNs() : 0),
          active(enabled())
    {}

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** Annotate the span (no-op when inactive or span-less). */
    void
    arg(std::string key, std::string value)
    {
        if (active && span)
            args.emplace_back(std::move(key), std::move(value));
    }

    ~ScopedTimer()
    {
        if (!active)
            return;
        uint64_t end = nowNs();
        Registry &reg = Registry::local();
        reg.addTimer(name, end - startNs);
        if (span)
            reg.addSpan(name, startNs, end - startNs, std::move(args));
    }

  private:
    const char *name;
    bool span;
    uint64_t startNs;
    bool active;
    std::vector<std::pair<std::string, std::string>> args;
};

#define GDIFF_OBS_CAT2_(a, b) a##b
#define GDIFF_OBS_CAT_(a, b) GDIFF_OBS_CAT2_(a, b)

#if GDIFF_OBS_ENABLED
/** Time the enclosing scope into the thread-local timer @p name. */
#define GDIFF_OBS_SCOPE(name)                                             \
    ::gdiff::obs::ScopedTimer GDIFF_OBS_CAT_(obsScope_, __LINE__)(name)
/** Like GDIFF_OBS_SCOPE, and also record a trace-exporter span. */
#define GDIFF_OBS_SPAN(name)                                              \
    ::gdiff::obs::ScopedTimer GDIFF_OBS_CAT_(obsSpan_,                    \
                                             __LINE__)(name, true)
/** Add @p n events to the thread-local counter @p cname. */
#define GDIFF_OBS_COUNT(cname, n)                                         \
    do {                                                                  \
        if (::gdiff::obs::enabled())                                      \
            ::gdiff::obs::Registry::local().addCount((cname), (n));       \
    } while (0)
#else
#define GDIFF_OBS_SCOPE(name) ((void)0)
#define GDIFF_OBS_SPAN(name) ((void)0)
#define GDIFF_OBS_COUNT(cname, n) ((void)0)
#endif

} // namespace obs
} // namespace gdiff

#endif // GDIFF_OBS_OBS_HH
