/**
 * @file
 * Chrome trace-event JSON exporter for obs snapshots.
 *
 * The output is the Trace Event Format's JSON-object flavour
 * ({"traceEvents": [...]}) using complete ("X") events, so a whole
 * multi-threaded gdiffrun sweep can be opened span-by-span in
 * Perfetto (https://ui.perfetto.dev) or chrome://tracing: one track
 * per worker thread, one slice per job, with the trace-cache
 * replay/generate annotation in each slice's args.
 */

#ifndef GDIFF_OBS_TRACE_EXPORT_HH
#define GDIFF_OBS_TRACE_EXPORT_HH

#include <ostream>
#include <string>

#include "obs/obs.hh"

namespace gdiff {
namespace obs {

/** Serialize @p snap as Chrome trace-event JSON onto @p os. */
void writeChromeTrace(std::ostream &os, const Snapshot &snap);

/**
 * Write @p snap as Chrome trace-event JSON to @p path.
 * @return false (with a warn()) when the file cannot be created.
 */
bool writeChromeTrace(const std::string &path, const Snapshot &snap);

} // namespace obs
} // namespace gdiff

#endif // GDIFF_OBS_TRACE_EXPORT_HH
