#include "mem/cache.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace gdiff {
namespace mem {

CacheConfig
CacheConfig::paperICache()
{
    CacheConfig c;
    c.name = "icache";
    c.sizeBytes = 64 * 1024;
    c.assoc = 4;
    c.lineBytes = 64;
    c.hitLatency = 1;
    c.missPenalty = 12;
    return c;
}

CacheConfig
CacheConfig::paperDCache()
{
    CacheConfig c;
    c.name = "dcache";
    c.sizeBytes = 64 * 1024;
    c.assoc = 4;
    c.lineBytes = 64;
    c.hitLatency = 2;
    c.missPenalty = 14;
    return c;
}

Cache::Cache(const CacheConfig &config)
    : cfg(config)
{
    GDIFF_ASSERT(isPowerOfTwo(cfg.sizeBytes) &&
                     isPowerOfTwo(cfg.lineBytes) &&
                     isPowerOfTwo(cfg.assoc),
                 "cache '%s': size/line/assoc must be powers of two",
                 cfg.name.c_str());
    GDIFF_ASSERT(cfg.sizeBytes >= cfg.lineBytes * cfg.assoc,
                 "cache '%s' too small for its associativity",
                 cfg.name.c_str());
    numSets = static_cast<unsigned>(cfg.sizeBytes /
                                    (cfg.lineBytes * cfg.assoc));
    lineShift = floorLog2(cfg.lineBytes);
    ways.resize(static_cast<size_t>(numSets) * cfg.assoc);
}

uint64_t
Cache::setIndex(uint64_t addr) const
{
    return (addr >> lineShift) & (numSets - 1);
}

uint64_t
Cache::tagOf(uint64_t addr) const
{
    return addr >> lineShift;
}

bool
Cache::access(uint64_t addr)
{
    accessCount.increment();
    ++useClock;
    uint64_t set = setIndex(addr);
    uint64_t tag = tagOf(addr);
    Way *base = &ways[set * cfg.assoc];

    for (unsigned i = 0; i < cfg.assoc; ++i) {
        if (base[i].valid && base[i].tag == tag) {
            base[i].lastUse = useClock;
            return true;
        }
    }

    missCount.increment();
    // Victimise the LRU way (or the first invalid one).
    Way *victim = &base[0];
    for (unsigned i = 0; i < cfg.assoc; ++i) {
        if (!base[i].valid) {
            victim = &base[i];
            break;
        }
        if (base[i].lastUse < victim->lastUse)
            victim = &base[i];
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock;
    return false;
}

bool
Cache::probe(uint64_t addr) const
{
    uint64_t set = setIndex(addr);
    uint64_t tag = tagOf(addr);
    const Way *base = &ways[set * cfg.assoc];
    for (unsigned i = 0; i < cfg.assoc; ++i) {
        if (base[i].valid && base[i].tag == tag)
            return true;
    }
    return false;
}

void
Cache::reset()
{
    for (auto &w : ways)
        w = Way();
    useClock = 0;
    accessCount.reset();
    missCount.reset();
}

} // namespace mem
} // namespace gdiff
