/**
 * @file
 * Set-associative LRU cache timing model.
 *
 * Timing-only: the model tracks presence (tags + LRU), not data. The
 * functional executor supplies values; this model decides hit/miss
 * and hence the latency the pipeline charges, per paper Table 1.
 */

#ifndef GDIFF_MEM_CACHE_HH
#define GDIFF_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "stats/counter.hh"

namespace gdiff {
namespace mem {

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    uint64_t sizeBytes = 64 * 1024;
    unsigned assoc = 4;
    unsigned lineBytes = 64;
    unsigned hitLatency = 2;   ///< cycles on a hit
    unsigned missPenalty = 14; ///< extra cycles on a miss

    /** Paper Table 1 instruction cache: 64 KiB, 4-way, 64 B lines,
     * 12-cycle miss penalty. */
    static CacheConfig paperICache();

    /** Paper Table 1 data cache: 64 KiB, 4-way, 64 B lines, 14-cycle
     * miss penalty, 2-cycle hit. */
    static CacheConfig paperDCache();
};

/**
 * A single-level set-associative cache with true-LRU replacement.
 */
class Cache
{
  public:
    /** @param config geometry and latencies; size/assoc/line must be
     * powers of two and consistent. */
    explicit Cache(const CacheConfig &config);

    /**
     * Access the line containing @p addr, allocating it on a miss.
     * @return true on hit.
     */
    bool access(uint64_t addr);

    /**
     * Probe without modifying state.
     * @return true if the line is currently resident.
     */
    bool probe(uint64_t addr) const;

    /** @return latency in cycles for an access that hits/misses. */
    unsigned
    latency(bool hit) const
    {
        return hit ? cfg.hitLatency : cfg.hitLatency + cfg.missPenalty;
    }

    /** @return the configuration. */
    const CacheConfig &config() const { return cfg; }

    /** @return total accesses. */
    uint64_t accesses() const { return accessCount.value(); }

    /** @return total misses. */
    uint64_t misses() const { return missCount.value(); }

    /** @return miss rate in [0,1]. */
    double
    missRate() const
    {
        return accesses() == 0
                   ? 0.0
                   : static_cast<double>(misses()) /
                         static_cast<double>(accesses());
    }

    /** Invalidate all lines and reset statistics. */
    void reset();

  private:
    struct Way
    {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    uint64_t setIndex(uint64_t addr) const;
    uint64_t tagOf(uint64_t addr) const;

    CacheConfig cfg;
    unsigned numSets;
    unsigned lineShift;
    std::vector<Way> ways; // numSets * assoc, row-major by set
    uint64_t useClock = 0;
    stats::Counter accessCount;
    stats::Counter missCount;
};

} // namespace mem
} // namespace gdiff

#endif // GDIFF_MEM_CACHE_HH
