/**
 * @file
 * Global value queues: the history structures behind the gdiff
 * predictor (paper §3-§5).
 *
 *  - GlobalValueQueue: the architectural GVQ, with an optional
 *    value-delay T that hides the newest T values from the visible
 *    window (the profile-mode delay model of paper §3.1).
 *  - HybridGvq: the HGVQ of paper §5 — slots are pushed with
 *    speculative (locally predicted) values at dispatch, in dispatch
 *    order, and overwritten with real results at writeback. Slot ids
 *    let in-flight instructions address their own dispatch position.
 */

#ifndef GDIFF_CORE_GVQ_HH
#define GDIFF_CORE_GVQ_HH

#include <array>
#include <cstdint>

#include "util/logging.hh"
#include "util/ring_history.hh"

namespace gdiff {
namespace core {

/** Maximum supported gdiff order (queue window size). */
inline constexpr unsigned maxOrder = 64;

/**
 * A snapshot of the n most recent visible queue values.
 * values[k] is the value produced k+1 value-productions before the
 * reference point; count may be < order while the queue warms up.
 */
struct ValueWindow
{
    std::array<int64_t, maxOrder> values{};
    unsigned count = 0;
};

/**
 * The architectural global value queue of paper §3, with the
 * profile-mode value-delay parameter T of §3.1: the visible window
 * covers ages T+1 .. T+order, modelling a predictor that cannot see
 * the T most recently produced values.
 */
class GlobalValueQueue
{
  public:
    /**
     * @param order window size n visible to the predictor.
     * @param delay value delay T (0 = ideal profile model).
     */
    explicit GlobalValueQueue(unsigned order, unsigned delay = 0)
        : order_(order), delay_(delay),
          hist(checkedCapacity(order, delay))
    {
    }

    /** Append a newly produced value. */
    void push(int64_t v) { hist.push(v); }

    /** @return the delay-shifted visible window. */
    ValueWindow
    visibleWindow() const
    {
        ValueWindow w;
        size_t have = hist.size() > delay_ ? hist.size() - delay_ : 0;
        w.count = static_cast<unsigned>(
            have > order_ ? order_ : have);
        for (unsigned k = 0; k < w.count; ++k)
            w.values[k] = hist[delay_ + k];
        return w;
    }

    /** @return the configured window size n. */
    unsigned order() const { return order_; }

    /** @return the configured value delay T. */
    unsigned delay() const { return delay_; }

    /**
     * Copy the retained history into @p dst oldest-first (dst must
     * hold order+delay values). Together with the values a batch is
     * about to push, this linearizes the queue into a flat stream so
     * the batched gdiff paths can address any lane's visible window
     * with plain pointer arithmetic instead of per-lane ring walks.
     *
     * @return the number of values copied (== current ring size).
     */
    size_t
    copyRecent(int64_t *dst) const
    {
        const size_t have = hist.size();
        for (size_t j = 0; j < have; ++j)
            dst[j] = hist[have - 1 - j];
        return have;
    }

    /** @return total values ever pushed. */
    uint64_t totalPushes() const { return hist.totalPushes(); }

    /** Forget all history. */
    void clear() { hist.clear(); }

  private:
    /** Validate the order before the ring is constructed. */
    static size_t
    checkedCapacity(unsigned order, unsigned delay)
    {
        GDIFF_ASSERT(order >= 1 && order <= maxOrder,
                     "GVQ order %u out of range", order);
        return static_cast<size_t>(order) + delay;
    }

    unsigned order_;
    unsigned delay_;
    RingHistory<int64_t> hist;
};

/**
 * The hybrid global value queue (HGVQ) of paper §5.
 *
 * At dispatch, a slot is pushed carrying a speculative value (the
 * local-stride prediction); the returned slot id travels with the
 * instruction. At writeback the slot is overwritten with the real
 * result. Both the prediction window (at dispatch) and the training
 * window (at writeback, anchored at the instruction's own slot) are
 * taken in *dispatch order*, which is what removes the execution
 * variation that plagues the speculative GVQ.
 */
class HybridGvq
{
  public:
    /**
     * @param order    window size n visible to the predictor.
     * @param capacity ring capacity; must cover order plus the
     *        maximum number of in-flight producers (ROB size).
     */
    explicit HybridGvq(unsigned order, size_t capacity = 256)
        : order_(order), hist(capacity)
    {
        GDIFF_ASSERT(order >= 1 && order <= maxOrder,
                     "HGVQ order %u out of range", order);
        GDIFF_ASSERT(capacity >= order, "HGVQ capacity < order");
    }

    /**
     * Push a slot at dispatch with a speculative value.
     * @return the slot id (0-based dispatch sequence number).
     */
    uint64_t
    pushSpeculative(int64_t v)
    {
        hist.push(v);
        return hist.totalPushes() - 1;
    }

    /**
     * Overwrite a slot with the instruction's real result at
     * writeback. A slot that has already fallen out of the ring is
     * silently dropped (it can no longer influence any window).
     */
    void
    commitSlot(uint64_t slot, int64_t v)
    {
        uint64_t newest = hist.totalPushes() - 1;
        GDIFF_ASSERT(slot <= newest, "commit of future slot");
        hist.replace(static_cast<size_t>(newest - slot), v);
    }

    /** @return the window of the n slots dispatched most recently
     * (used for prediction at dispatch). */
    ValueWindow
    windowAtDispatch() const
    {
        return windowEndingAt(hist.totalPushes());
    }

    /**
     * @return the window of the n slots that immediately precede the
     * given slot (used for table training at writeback).
     */
    ValueWindow
    windowBeforeSlot(uint64_t slot) const
    {
        return windowEndingAt(slot);
    }

    /** @return the configured window size n. */
    unsigned order() const { return order_; }

    /** @return total slots ever pushed. */
    uint64_t totalPushes() const { return hist.totalPushes(); }

  private:
    /** Window of the `order` slots before absolute position `end`
     * (exclusive). Slots that have left the ring are dropped. */
    ValueWindow
    windowEndingAt(uint64_t end) const
    {
        ValueWindow w;
        uint64_t newest = hist.totalPushes();
        GDIFF_ASSERT(end <= newest, "window past the queue head");
        for (unsigned k = 0; k < order_; ++k) {
            if (end < static_cast<uint64_t>(k) + 1)
                break; // ran off the beginning of time
            uint64_t want = end - 1 - k; // absolute slot index
            uint64_t age = newest - 1 - want;
            if (age >= hist.size())
                break; // slot already evicted from the ring
            w.values[w.count++] = hist[static_cast<size_t>(age)];
        }
        return w;
    }

    unsigned order_;
    RingHistory<int64_t> hist;
};

} // namespace core
} // namespace gdiff

#endif // GDIFF_CORE_GVQ_HH
