/**
 * @file
 * The gdiff predictor — the paper's primary contribution (§3).
 *
 * Per-PC prediction-table entry: n stored differences plus a selected
 * distance. Operation:
 *
 *  - Prediction: if a distance k is selected, the prediction is
 *    queue[k] + diff[k] over the current visible window.
 *  - Update: compute the n differences between the produced value and
 *    the visible window; if any matches the stored difference at the
 *    same position, select that position as the distance; store the
 *    freshly computed differences either way. Learning takes two
 *    productions of the correlated pattern.
 *
 * The class supports three usage modes:
 *  - profile mode (ValuePredictor interface): predict()/update() with
 *    an internal GlobalValueQueue, optionally delay-shifted (§3.1);
 *  - external-window mode (predictWithWindow/trainWithWindow): the
 *    pipeline supplies SGVQ or HGVQ windows explicitly (§4-§5);
 *  - address mode is just profile mode fed with addresses (§6).
 */

#ifndef GDIFF_CORE_GDIFF_HH
#define GDIFF_CORE_GDIFF_HH

#include <cstdint>

#include "core/gvq.hh"
#include "predictors/table.hh"
#include "predictors/value_predictor.hh"

namespace gdiff {
namespace core {

/** Configuration of a gdiff predictor instance. */
struct GDiffConfig
{
    /// queue window size n (the predictor's "order"); paper uses 8
    /// for profile studies and 32 for the pipeline studies
    unsigned order = 8;
    /// prediction-table entries; 0 = unlimited, paper default 8K
    size_t tableEntries = 8192;
    /// index limited tables with a hashed PC instead of low bits
    bool hashIndex = false;
    /// profile-mode value delay T (§3.1); ignored in external-window
    /// mode, where the window itself embodies the delay
    unsigned valueDelay = 0;
};

/** The gdiff global-stride value predictor. */
class GDiffPredictor : public predictors::ValuePredictor
{
  public:
    explicit GDiffPredictor(const GDiffConfig &config = GDiffConfig());

    std::string name() const override { return "gdiff"; }

    /// @name Profile-mode interface (internal queue)
    /// @{
    bool predict(uint64_t pc, int64_t &value) override;

    /**
     * Train on the produced value against the internal queue's
     * visible window, then push the value into the queue.
     */
    void update(uint64_t pc, int64_t actual) override;

    /**
     * Fused batch over the internal queue: linearizes the queue plus
     * the batch's own actuals into a flat stream, then per lane does
     * one table lookup, an n-diff reconstruction and a nearest-first
     * match via the SIMD kernels (util/simd.hh). Bit-identical to the
     * scalar predict/update interleave.
     */
    void predictUpdateBatch(const uint64_t *pcs,
                            const int64_t *actuals, uint32_t n,
                            predictors::PredictionBatch &out) override;
    /// @}

    /// @name External-window interface (pipeline SGVQ/HGVQ)
    /// @{
    /**
     * Predict using an externally supplied window (e.g. the HGVQ
     * dispatch window).
     * @return true if a prediction was made.
     */
    bool predictWithWindow(uint64_t pc, const ValueWindow &window,
                           int64_t &value);

    /** Train the table against an externally supplied window. */
    void trainWithWindow(uint64_t pc, const ValueWindow &window,
                         int64_t actual);
    /// @}

    /** @return the internal queue (profile mode). */
    GlobalValueQueue &queue() { return gvq; }

    /** @return aliasing conflict rate of the prediction table. */
    double tableConflictRate() const { return table.conflictRate(); }

    /**
     * @return the currently selected distance for pc, or -1 if none.
     * Exposed for correlation-distance studies (the paper's §3
     * companion analysis [2]).
     */
    int
    selectedDistance(uint64_t pc) const
    {
        const Entry *e = table.probe(pc);
        return e ? e->distance : -1;
    }

    /** @return the configuration in force. */
    const GDiffConfig &config() const { return cfg; }

  private:
    struct Entry
    {
        std::array<int64_t, maxOrder> diffs{};
        uint8_t diffCount = 0;   ///< valid stored diffs
        int16_t distance = -1;   ///< selected k, -1 = none
    };

    GDiffConfig cfg;
    predictors::PcIndexedTable<Entry> table;
    GlobalValueQueue gvq;
    std::vector<int64_t> extScratch; ///< batch: linearized stream
};

} // namespace core
} // namespace gdiff

#endif // GDIFF_CORE_GDIFF_HH
