/**
 * @file
 * Two-term gdiff: a step from the paper's Equation 2 toward its
 * Equation 1 (the general linear combination over global history).
 *
 * The paper (§2) formalises global computational locality as
 *     x_N = a_{N-1} x_{N-1} + ... + a_1 x_1 + a_0        (Eq. 1)
 * and exploits only the single-term special case
 *     x_N = x_{N-k} + a_0                                (Eq. 2)
 * noting that the general form "is not easy due to the mathematical
 * nature of the problem and the hardware complexity". This class
 * implements the next-cheapest useful slice: coefficient vectors with
 * two non-zero ±1 entries,
 *     x_N = x_{N-j} + x_{N-k} + a_0   or
 *     x_N = x_{N-j} - x_{N-k} + a_0,
 * which captures the "sub r, ra, rd" pattern of the paper's Fig. 3 —
 * a destination computed from *two* recent global values, exactly
 * predictable even when both inputs are individually noisy.
 *
 * Learning mirrors gdiff: on each update the candidate residuals
 * a_0 = x - (w[j] ± w[k]) are computed for every pair and compared
 * with the previous update's residuals; a repeat selects that pair.
 * Single-term (Eq. 2) matches take priority — they are cheaper and
 * strictly more robust — so this predictor is a superset of gdiff.
 */

#ifndef GDIFF_CORE_GDIFF2_HH
#define GDIFF_CORE_GDIFF2_HH

#include <cstdint>
#include <vector>

#include "core/gvq.hh"
#include "predictors/table.hh"
#include "predictors/value_predictor.hh"

namespace gdiff {
namespace core {

/** Configuration of the two-term predictor. */
struct GDiff2Config
{
    /// window size; pair storage is O(order^2), so keep modest
    unsigned order = 8;
    /// prediction-table entries; 0 = unlimited
    size_t tableEntries = 0;
    bool hashIndex = false;
};

/** The two-term global stride predictor (Eq. 1 restricted to two
 * ±1 coefficients). */
class GDiff2Predictor : public predictors::ValuePredictor
{
  public:
    explicit GDiff2Predictor(const GDiff2Config &config = GDiff2Config());

    std::string name() const override { return "gdiff2"; }

    bool predict(uint64_t pc, int64_t &value) override;
    void update(uint64_t pc, int64_t actual) override;

    /**
     * Fused batch over the internal queue: one linearization of the
     * queue plus the batch's actuals replaces the two per-record ring
     * walks (predict + train each rebuilt the visible window).
     */
    void predictUpdateBatch(const uint64_t *pcs,
                            const int64_t *actuals, uint32_t n,
                            predictors::PredictionBatch &out) override;

    /// @name External-window interface (mirrors GDiffPredictor)
    /// @{
    bool predictWithWindow(uint64_t pc, const ValueWindow &window,
                           int64_t &value);
    void trainWithWindow(uint64_t pc, const ValueWindow &window,
                         int64_t actual);
    /// @}

    /** @return how often the selected form was a pair (vs single). */
    double pairSelectionRate() const;

  private:
    /// selected functional form for a table entry
    enum class Form : uint8_t { None, Single, PairAdd, PairSub };

    struct Entry
    {
        /// residuals x - w[i] from the previous update
        std::vector<int64_t> single;
        /// residuals x - (w[j] + w[k]), j < k, row-major triangular
        std::vector<int64_t> pairAdd;
        /// residuals x - (w[j] - w[k]), j != k, row-major full
        std::vector<int64_t> pairSub;
        uint8_t count = 0; ///< valid window size at last update
        Form form = Form::None;
        uint8_t j = 0;
        uint8_t k = 0;
    };

    size_t addIndex(unsigned j, unsigned k) const; ///< j < k
    size_t subIndex(unsigned j, unsigned k) const; ///< j != k

    GDiff2Config cfg;
    predictors::PcIndexedTable<Entry> table;
    GlobalValueQueue gvq;
    uint64_t singleSelections = 0;
    uint64_t pairSelections = 0;
    std::vector<int64_t> extScratch; ///< batch: linearized stream
};

} // namespace core
} // namespace gdiff

#endif // GDIFF_CORE_GDIFF2_HH
