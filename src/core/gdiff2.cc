#include "core/gdiff2.hh"

#include "util/logging.hh"

namespace gdiff {
namespace core {

namespace {

int64_t
wrapAdd(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                static_cast<uint64_t>(b));
}

int64_t
wrapSub(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) -
                                static_cast<uint64_t>(b));
}

} // anonymous namespace

GDiff2Predictor::GDiff2Predictor(const GDiff2Config &config)
    : cfg(config), table(cfg.tableEntries, cfg.hashIndex),
      gvq(cfg.order, 0)
{
    GDIFF_ASSERT(cfg.order >= 2 && cfg.order <= 16,
                 "gdiff2 order %u out of range (pair storage is "
                 "quadratic)",
                 cfg.order);
}

size_t
GDiff2Predictor::addIndex(unsigned j, unsigned k) const
{
    // triangular index for j < k over [0, order)
    GDIFF_ASSERT(j < k && k < cfg.order, "bad pair (%u, %u)", j, k);
    return static_cast<size_t>(j) * cfg.order -
           static_cast<size_t>(j) * (j + 1) / 2 + (k - j - 1);
}

size_t
GDiff2Predictor::subIndex(unsigned j, unsigned k) const
{
    // full (ordered) index for j != k over [0, order)
    GDIFF_ASSERT(j != k && j < cfg.order && k < cfg.order,
                 "bad pair (%u, %u)", j, k);
    size_t col = k > j ? k - 1 : k;
    return static_cast<size_t>(j) * (cfg.order - 1) + col;
}

bool
GDiff2Predictor::predictWithWindow(uint64_t pc,
                                   const ValueWindow &window,
                                   int64_t &value)
{
    const Entry *e = table.probe(pc);
    if (!e || e->form == Form::None)
        return false;
    switch (e->form) {
      case Form::Single:
        if (e->j >= window.count || e->single.empty())
            return false;
        value = wrapAdd(window.values[e->j],
                        e->single[e->j]);
        return true;
      case Form::PairAdd:
        if (e->k >= window.count || e->pairAdd.empty())
            return false;
        value = wrapAdd(wrapAdd(window.values[e->j],
                                window.values[e->k]),
                        e->pairAdd[addIndex(e->j, e->k)]);
        return true;
      case Form::PairSub:
        if (e->j >= window.count || e->k >= window.count ||
            e->pairSub.empty()) {
            return false;
        }
        value = wrapAdd(wrapSub(window.values[e->j],
                                window.values[e->k]),
                        e->pairSub[subIndex(e->j, e->k)]);
        return true;
      case Form::None:
        break;
    }
    return false;
}

void
GDiff2Predictor::trainWithWindow(uint64_t pc, const ValueWindow &window,
                                 int64_t actual)
{
    Entry &e = table.lookup(pc);
    unsigned n = window.count < cfg.order ? window.count : cfg.order;

    // Fresh residuals.
    std::vector<int64_t> cur_single(cfg.order, 0);
    std::vector<int64_t> cur_add(
        static_cast<size_t>(cfg.order) * (cfg.order - 1) / 2, 0);
    std::vector<int64_t> cur_sub(
        static_cast<size_t>(cfg.order) * (cfg.order - 1), 0);
    for (unsigned i = 0; i < n; ++i)
        cur_single[i] = wrapSub(actual, window.values[i]);
    for (unsigned j = 0; j < n; ++j) {
        for (unsigned k = 0; k < n; ++k) {
            if (j < k) {
                cur_add[addIndex(j, k)] = wrapSub(
                    actual, wrapAdd(window.values[j],
                                    window.values[k]));
            }
            if (j != k) {
                cur_sub[subIndex(j, k)] = wrapSub(
                    actual, wrapSub(window.values[j],
                                    window.values[k]));
            }
        }
    }

    // Match against the previous residuals: singles first (they are
    // cheaper and strictly more robust), then subtraction pairs, then
    // addition pairs; nearest-first within each class.
    unsigned compare = n < e.count ? n : e.count;
    bool matched = false;
    if (!e.single.empty()) {
        for (unsigned i = 0; i < compare && !matched; ++i) {
            if (cur_single[i] == e.single[i]) {
                e.form = Form::Single;
                e.j = static_cast<uint8_t>(i);
                e.k = 0;
                matched = true;
                ++singleSelections;
            }
        }
        for (unsigned j = 0; j < compare && !matched; ++j) {
            for (unsigned k = 0; k < compare && !matched; ++k) {
                if (j == k)
                    continue;
                size_t idx = subIndex(j, k);
                if (cur_sub[idx] == e.pairSub[idx]) {
                    e.form = Form::PairSub;
                    e.j = static_cast<uint8_t>(j);
                    e.k = static_cast<uint8_t>(k);
                    matched = true;
                    ++pairSelections;
                }
            }
        }
        for (unsigned j = 0; j + 1 < compare && !matched; ++j) {
            for (unsigned k = j + 1; k < compare && !matched; ++k) {
                size_t idx = addIndex(j, k);
                if (cur_add[idx] == e.pairAdd[idx]) {
                    e.form = Form::PairAdd;
                    e.j = static_cast<uint8_t>(j);
                    e.k = static_cast<uint8_t>(k);
                    matched = true;
                    ++pairSelections;
                }
            }
        }
    }
    // As with gdiff, the fresh residuals replace the stored ones and
    // an unmatched update leaves the selected form alone.
    e.single = std::move(cur_single);
    e.pairAdd = std::move(cur_add);
    e.pairSub = std::move(cur_sub);
    e.count = static_cast<uint8_t>(n);
}

bool
GDiff2Predictor::predict(uint64_t pc, int64_t &value)
{
    return predictWithWindow(pc, gvq.visibleWindow(), value);
}

void
GDiff2Predictor::update(uint64_t pc, int64_t actual)
{
    trainWithWindow(pc, gvq.visibleWindow(), actual);
    gvq.push(actual);
}

void
GDiff2Predictor::predictUpdateBatch(const uint64_t *pcs,
                                    const int64_t *actuals, uint32_t n,
                                    predictors::PredictionBatch &out)
{
    out.reset(n);
    extScratch.resize(static_cast<size_t>(cfg.order) + n);
    const size_t h = gvq.copyRecent(extScratch.data());
    for (uint32_t l = 0; l < n; ++l)
        extScratch[h + l] = actuals[l];
    const int64_t *const ext = extScratch.data();

    ValueWindow w;
    for (uint32_t l = 0; l < n; ++l) {
        const size_t have = h + l;
        w.count = static_cast<unsigned>(
            have < cfg.order ? have : cfg.order);
        if (w.count > 0) {
            const int64_t *wtop = ext + (h + l - 1);
            for (unsigned k = 0; k < w.count; ++k)
                w.values[k] = wtop[-static_cast<ptrdiff_t>(k)];
        }
        int64_t v = 0;
        if (predictWithWindow(pcs[l], w, v)) {
            out.predicted[l] = 1;
            out.value[l] = v;
        }
        trainWithWindow(pcs[l], w, actuals[l]);
    }

    for (uint32_t l = 0; l < n; ++l)
        gvq.push(actuals[l]);
}

double
GDiff2Predictor::pairSelectionRate() const
{
    uint64_t total = singleSelections + pairSelections;
    return total == 0 ? 0.0
                      : static_cast<double>(pairSelections) /
                            static_cast<double>(total);
}

} // namespace core
} // namespace gdiff
