#include "core/gdiff.hh"

#include "util/simd.hh"

namespace gdiff {
namespace core {

namespace {

int64_t
wrapAdd(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                static_cast<uint64_t>(b));
}

int64_t
wrapSub(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) -
                                static_cast<uint64_t>(b));
}

} // anonymous namespace

GDiffPredictor::GDiffPredictor(const GDiffConfig &config)
    : cfg(config), table(cfg.tableEntries, cfg.hashIndex),
      gvq(cfg.order, cfg.valueDelay)
{
}

bool
GDiffPredictor::predictWithWindow(uint64_t pc, const ValueWindow &window,
                                  int64_t &value)
{
    const Entry *e = table.probe(pc);
    if (!e || e->distance < 0)
        return false;
    unsigned k = static_cast<unsigned>(e->distance);
    if (k >= window.count || k >= e->diffCount)
        return false;
    value = wrapAdd(window.values[k], e->diffs[k]);
    return true;
}

void
GDiffPredictor::trainWithWindow(uint64_t pc, const ValueWindow &window,
                                int64_t actual)
{
    Entry &e = table.lookup(pc);

    // Compute the fresh differences against the visible window.
    std::array<int64_t, maxOrder> cur{};
    unsigned n = window.count;
    for (unsigned i = 0; i < n; ++i)
        cur[i] = wrapSub(actual, window.values[i]);

    // Detect a match against the stored differences; select the
    // closest matching distance (paper Fig. 5's parallel comparators
    // with nearest-first priority).
    unsigned compare = n < e.diffCount ? n : e.diffCount;
    int match = -1;
    for (unsigned i = 0; i < compare; ++i) {
        if (cur[i] == e.diffs[i]) {
            match = static_cast<int>(i);
            break;
        }
    }
    if (match >= 0)
        e.distance = static_cast<int16_t>(match);
    // Either way, the freshly calculated differences are stored
    // (paper §3: on no match the new diffs replace the old ones and
    // the distance field is left alone).
    e.diffs = cur;
    e.diffCount = static_cast<uint8_t>(n);
}

bool
GDiffPredictor::predict(uint64_t pc, int64_t &value)
{
    return predictWithWindow(pc, gvq.visibleWindow(), value);
}

void
GDiffPredictor::update(uint64_t pc, int64_t actual)
{
    trainWithWindow(pc, gvq.visibleWindow(), actual);
    gvq.push(actual);
}

void
GDiffPredictor::predictUpdateBatch(const uint64_t *pcs,
                                   const int64_t *actuals, uint32_t n,
                                   predictors::PredictionBatch &out)
{
    out.reset(n);
    const unsigned order = cfg.order;
    const unsigned delay = cfg.valueDelay;

    // Linearize the stream: the queue's retained history (oldest
    // first), then the batch's own actuals. Within the batch, lane
    // l's visible window is the `order` stream values ending
    // delay+1 before its own position — plain pointer arithmetic,
    // where the scalar path re-walks the ring per record:
    // window value k lives at wtop[-k] with wtop = ext+h+l-1-delay.
    extScratch.resize(static_cast<size_t>(order) + delay + n);
    const size_t h = gvq.copyRecent(extScratch.data());
    for (uint32_t l = 0; l < n; ++l)
        extScratch[h + l] = actuals[l];
    const int64_t *const ext = extScratch.data();

    std::array<int64_t, maxOrder> cur;
    for (uint32_t l = 0; l < n; ++l) {
        const int64_t actual = actuals[l];
        const int64_t avail =
            static_cast<int64_t>(h) + l - static_cast<int64_t>(delay);
        const unsigned wcount =
            avail <= 0 ? 0u
                       : (avail < static_cast<int64_t>(order)
                              ? static_cast<unsigned>(avail)
                              : order);
        Entry &e = table.lookup(pcs[l]);
        if (wcount > 0) {
            const int64_t *wtop = ext + (h + l - 1 - delay);
            if (e.distance >= 0) {
                unsigned k = static_cast<unsigned>(e.distance);
                if (k < wcount && k < e.diffCount) {
                    out.predicted[l] = 1;
                    out.value[l] = wrapAdd(
                        wtop[-static_cast<ptrdiff_t>(k)], e.diffs[k]);
                }
            }
            simd::diffAgainstWindow(actual, wtop, cur.data(), wcount);
            unsigned compare =
                wcount < e.diffCount ? wcount : e.diffCount;
            int match =
                simd::firstEqual(cur.data(), e.diffs.data(), compare);
            if (match >= 0)
                e.distance = static_cast<int16_t>(match);
            for (unsigned i = 0; i < wcount; ++i)
                e.diffs[i] = cur[i];
        }
        // Stored diffs beyond diffCount are never read, so only the
        // live prefix needs rewriting (the scalar path zero-fills).
        e.diffCount = static_cast<uint8_t>(wcount);
    }

    for (uint32_t l = 0; l < n; ++l)
        gvq.push(actuals[l]);
}

} // namespace core
} // namespace gdiff
