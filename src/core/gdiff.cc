#include "core/gdiff.hh"

namespace gdiff {
namespace core {

namespace {

int64_t
wrapAdd(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                static_cast<uint64_t>(b));
}

int64_t
wrapSub(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) -
                                static_cast<uint64_t>(b));
}

} // anonymous namespace

GDiffPredictor::GDiffPredictor(const GDiffConfig &config)
    : cfg(config), table(cfg.tableEntries, cfg.hashIndex),
      gvq(cfg.order, cfg.valueDelay)
{
}

bool
GDiffPredictor::predictWithWindow(uint64_t pc, const ValueWindow &window,
                                  int64_t &value)
{
    const Entry *e = table.probe(pc);
    if (!e || e->distance < 0)
        return false;
    unsigned k = static_cast<unsigned>(e->distance);
    if (k >= window.count || k >= e->diffCount)
        return false;
    value = wrapAdd(window.values[k], e->diffs[k]);
    return true;
}

void
GDiffPredictor::trainWithWindow(uint64_t pc, const ValueWindow &window,
                                int64_t actual)
{
    Entry &e = table.lookup(pc);

    // Compute the fresh differences against the visible window.
    std::array<int64_t, maxOrder> cur{};
    unsigned n = window.count;
    for (unsigned i = 0; i < n; ++i)
        cur[i] = wrapSub(actual, window.values[i]);

    // Detect a match against the stored differences; select the
    // closest matching distance (paper Fig. 5's parallel comparators
    // with nearest-first priority).
    unsigned compare = n < e.diffCount ? n : e.diffCount;
    int match = -1;
    for (unsigned i = 0; i < compare; ++i) {
        if (cur[i] == e.diffs[i]) {
            match = static_cast<int>(i);
            break;
        }
    }
    if (match >= 0)
        e.distance = static_cast<int16_t>(match);
    // Either way, the freshly calculated differences are stored
    // (paper §3: on no match the new diffs replace the old ones and
    // the distance field is left alone).
    e.diffs = cur;
    e.diffCount = static_cast<uint8_t>(n);
}

bool
GDiffPredictor::predict(uint64_t pc, int64_t &value)
{
    return predictWithWindow(pc, gvq.visibleWindow(), value);
}

void
GDiffPredictor::update(uint64_t pc, int64_t actual)
{
    trainWithWindow(pc, gvq.visibleWindow(), actual);
    gvq.push(actual);
}

} // namespace core
} // namespace gdiff
