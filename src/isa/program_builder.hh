/**
 * @file
 * A tiny assembler API for constructing synthetic-ISA programs with
 * forward-referencing labels.
 *
 * Workload kernels are written against this builder; see
 * src/workload/kernels/ for usage. Example:
 *
 * @code
 *   ProgramBuilder b("loop");
 *   Label top = b.newLabel();
 *   b.li(reg::t0, 0);
 *   b.bind(top);
 *   b.addi(reg::t0, reg::t0, 1);
 *   b.blt(reg::t0, reg::t1, top);
 *   b.halt();
 *   Program p = b.build();
 * @endcode
 */

#ifndef GDIFF_ISA_PROGRAM_BUILDER_HH
#define GDIFF_ISA_PROGRAM_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace gdiff {
namespace isa {

/** Opaque label handle returned by ProgramBuilder::newLabel(). */
struct Label
{
    uint32_t id = UINT32_MAX;
    bool valid() const { return id != UINT32_MAX; }
};

/**
 * Incrementally assembles a Program. Labels may be bound before or
 * after they are referenced; build() resolves all of them and panics
 * on any unbound label.
 */
class ProgramBuilder
{
  public:
    /** @param name name of the program being assembled. */
    explicit ProgramBuilder(std::string name);

    /** Create a fresh, unbound label. */
    Label newLabel();

    /** Bind a label to the *next* emitted instruction. */
    void bind(Label l);

    /** @return index the next emitted instruction will occupy. */
    uint32_t here() const;

    /// @name ALU register-register
    /// @{
    void add(Reg rd, Reg rs1, Reg rs2) { emitRRR(Opcode::Add, rd, rs1, rs2); }
    void sub(Reg rd, Reg rs1, Reg rs2) { emitRRR(Opcode::Sub, rd, rs1, rs2); }
    void mul(Reg rd, Reg rs1, Reg rs2) { emitRRR(Opcode::Mul, rd, rs1, rs2); }
    void div(Reg rd, Reg rs1, Reg rs2) { emitRRR(Opcode::Div, rd, rs1, rs2); }
    void rem(Reg rd, Reg rs1, Reg rs2) { emitRRR(Opcode::Rem, rd, rs1, rs2); }
    void and_(Reg rd, Reg rs1, Reg rs2) { emitRRR(Opcode::And, rd, rs1, rs2); }
    void or_(Reg rd, Reg rs1, Reg rs2) { emitRRR(Opcode::Or, rd, rs1, rs2); }
    void xor_(Reg rd, Reg rs1, Reg rs2) { emitRRR(Opcode::Xor, rd, rs1, rs2); }
    void sll(Reg rd, Reg rs1, Reg rs2) { emitRRR(Opcode::Sll, rd, rs1, rs2); }
    void srl(Reg rd, Reg rs1, Reg rs2) { emitRRR(Opcode::Srl, rd, rs1, rs2); }
    void sra(Reg rd, Reg rs1, Reg rs2) { emitRRR(Opcode::Sra, rd, rs1, rs2); }
    void slt(Reg rd, Reg rs1, Reg rs2) { emitRRR(Opcode::Slt, rd, rs1, rs2); }
    /// @}

    /// @name ALU register-immediate
    /// @{
    void addi(Reg rd, Reg rs1, int64_t imm) { emitRRI(Opcode::Addi, rd, rs1, imm); }
    void andi(Reg rd, Reg rs1, int64_t imm) { emitRRI(Opcode::Andi, rd, rs1, imm); }
    void ori(Reg rd, Reg rs1, int64_t imm) { emitRRI(Opcode::Ori, rd, rs1, imm); }
    void xori(Reg rd, Reg rs1, int64_t imm) { emitRRI(Opcode::Xori, rd, rs1, imm); }
    void slli(Reg rd, Reg rs1, int64_t imm) { emitRRI(Opcode::Slli, rd, rs1, imm); }
    void srli(Reg rd, Reg rs1, int64_t imm) { emitRRI(Opcode::Srli, rd, rs1, imm); }
    void srai(Reg rd, Reg rs1, int64_t imm) { emitRRI(Opcode::Srai, rd, rs1, imm); }
    void slti(Reg rd, Reg rs1, int64_t imm) { emitRRI(Opcode::Slti, rd, rs1, imm); }
    void li(Reg rd, int64_t imm) { emitRRI(Opcode::Li, rd, 0, imm); }
    /** Pseudo-op: register-to-register move (addi rd, rs, 0). */
    void mov(Reg rd, Reg rs) { addi(rd, rs, 0); }
    /// @}

    /// @name Memory (64-bit words)
    /// @{
    void load(Reg rd, Reg base, int64_t offset);
    void store(Reg src, Reg base, int64_t offset);
    /// @}

    /// @name Control
    /// @{
    void beq(Reg rs1, Reg rs2, Label target) { emitBranch(Opcode::Beq, rs1, rs2, target); }
    void bne(Reg rs1, Reg rs2, Label target) { emitBranch(Opcode::Bne, rs1, rs2, target); }
    void blt(Reg rs1, Reg rs2, Label target) { emitBranch(Opcode::Blt, rs1, rs2, target); }
    void bge(Reg rs1, Reg rs2, Label target) { emitBranch(Opcode::Bge, rs1, rs2, target); }
    void jump(Label target);
    void jal(Reg rd, Label target);
    void jr(Reg rs1);
    void jalr(Reg rd, Reg rs1);
    /// @}

    /// @name Misc
    /// @{
    void nop();
    void halt();
    /// @}

    /**
     * Resolve all labels and produce the program. The builder may not
     * be reused afterwards.
     */
    Program build();

  private:
    void emitRRR(Opcode op, Reg rd, Reg rs1, Reg rs2);
    void emitRRI(Opcode op, Reg rd, Reg rs1, int64_t imm);
    void emitBranch(Opcode op, Reg rs1, Reg rs2, Label target);
    void emit(const Instruction &inst, Label pending = Label{});

    std::string name;
    std::vector<Instruction> text;
    /// label id -> bound instruction index (UINT32_MAX if unbound)
    std::vector<uint32_t> labelTargets;
    /// (instruction index, label id) fixups to resolve in build()
    std::vector<std::pair<uint32_t, uint32_t>> fixups;
    /// labels waiting to be bound to the next emitted instruction
    std::vector<uint32_t> pendingBinds;
    bool built = false;
};

} // namespace isa
} // namespace gdiff

#endif // GDIFF_ISA_PROGRAM_BUILDER_HH
