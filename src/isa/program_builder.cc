#include "isa/program_builder.hh"

#include <sstream>

#include "util/logging.hh"

namespace gdiff {
namespace isa {

std::string
Program::disassemble() const
{
    std::ostringstream ss;
    for (uint32_t i = 0; i < text_.size(); ++i) {
        ss << '#' << i << "\t0x" << std::hex << indexToPc(i) << std::dec
           << '\t' << text_[i].toString() << '\n';
    }
    return ss.str();
}

ProgramBuilder::ProgramBuilder(std::string name)
    : name(std::move(name))
{
}

Label
ProgramBuilder::newLabel()
{
    Label l;
    l.id = static_cast<uint32_t>(labelTargets.size());
    labelTargets.push_back(UINT32_MAX);
    return l;
}

void
ProgramBuilder::bind(Label l)
{
    GDIFF_ASSERT(l.valid() && l.id < labelTargets.size(),
                 "bind() of invalid label");
    GDIFF_ASSERT(labelTargets[l.id] == UINT32_MAX,
                 "label %u bound twice", l.id);
    pendingBinds.push_back(l.id);
}

uint32_t
ProgramBuilder::here() const
{
    return static_cast<uint32_t>(text.size());
}

void
ProgramBuilder::emit(const Instruction &inst, Label pending)
{
    GDIFF_ASSERT(!built, "emit after build()");
    uint32_t idx = here();
    for (uint32_t id : pendingBinds)
        labelTargets[id] = idx;
    pendingBinds.clear();
    text.push_back(inst);
    if (pending.valid())
        fixups.emplace_back(idx, pending.id);
}

void
ProgramBuilder::emitRRR(Opcode op, Reg rd, Reg rs1, Reg rs2)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    emit(i);
}

void
ProgramBuilder::emitRRI(Opcode op, Reg rd, Reg rs1, int64_t imm)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.imm = imm;
    emit(i);
}

void
ProgramBuilder::emitBranch(Opcode op, Reg rs1, Reg rs2, Label target)
{
    Instruction i;
    i.op = op;
    i.rs1 = rs1;
    i.rs2 = rs2;
    emit(i, target);
}

void
ProgramBuilder::load(Reg rd, Reg base, int64_t offset)
{
    Instruction i;
    i.op = Opcode::Load;
    i.rd = rd;
    i.rs1 = base;
    i.imm = offset;
    emit(i);
}

void
ProgramBuilder::store(Reg src, Reg base, int64_t offset)
{
    Instruction i;
    i.op = Opcode::Store;
    i.rs1 = base;
    i.rs2 = src;
    i.imm = offset;
    emit(i);
}

void
ProgramBuilder::jump(Label target)
{
    Instruction i;
    i.op = Opcode::Jump;
    emit(i, target);
}

void
ProgramBuilder::jal(Reg rd, Label target)
{
    Instruction i;
    i.op = Opcode::Jal;
    i.rd = rd;
    emit(i, target);
}

void
ProgramBuilder::jr(Reg rs1)
{
    Instruction i;
    i.op = Opcode::Jr;
    i.rs1 = rs1;
    emit(i);
}

void
ProgramBuilder::jalr(Reg rd, Reg rs1)
{
    Instruction i;
    i.op = Opcode::Jalr;
    i.rd = rd;
    i.rs1 = rs1;
    emit(i);
}

void
ProgramBuilder::nop()
{
    Instruction i;
    i.op = Opcode::Nop;
    emit(i);
}

void
ProgramBuilder::halt()
{
    Instruction i;
    i.op = Opcode::Halt;
    emit(i);
}

Program
ProgramBuilder::build()
{
    GDIFF_ASSERT(!built, "build() called twice");
    GDIFF_ASSERT(pendingBinds.empty(),
                 "labels bound past the last instruction");
    for (auto [idx, label_id] : fixups) {
        uint32_t target = labelTargets[label_id];
        GDIFF_ASSERT(target != UINT32_MAX,
                     "unbound label %u referenced by instruction %u",
                     label_id, idx);
        text[idx].target = target;
    }
    built = true;
    return Program(std::move(name), std::move(text));
}

} // namespace isa
} // namespace gdiff
