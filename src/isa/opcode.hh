/**
 * @file
 * Opcode definitions for the synthetic MIPS-flavoured RISC ISA used by
 * the workload kernels.
 *
 * The ISA is a carrier for value, dependence, and memory behaviour —
 * the properties the paper's predictors observe — rather than a full
 * architectural spec. All registers and memory words are 64 bits.
 */

#ifndef GDIFF_ISA_OPCODE_HH
#define GDIFF_ISA_OPCODE_HH

#include <cstdint>

namespace gdiff {
namespace isa {

/** Instruction opcodes. */
enum class Opcode : uint8_t
{
    // ALU register-register
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,

    // ALU register-immediate
    Addi,
    Andi,
    Ori,
    Xori,
    Slli,
    Srli,
    Srai,
    Slti,
    Li, // load (64-bit) immediate

    // Memory (64-bit words)
    Load,  // rd <- mem[rs1 + imm]
    Store, // mem[rs1 + imm] <- rs2

    // Control
    Beq, // branch if rs1 == rs2
    Bne, // branch if rs1 != rs2
    Blt, // branch if rs1 <  rs2 (signed)
    Bge, // branch if rs1 >= rs2 (signed)
    Jump, // unconditional direct jump
    Jal,  // jump and link: rd <- return pc
    Jr,   // jump register: pc <- rs1 (function return idiom)
    Jalr, // indirect call: rd <- return pc; pc <- rs1

    // Misc
    Nop,
    Halt, // stop execution
};

/** Total number of opcodes (for table sizing). */
inline constexpr unsigned numOpcodes =
    static_cast<unsigned>(Opcode::Halt) + 1;

/** @return true for loads. */
constexpr bool
isLoad(Opcode op)
{
    return op == Opcode::Load;
}

/** @return true for stores. */
constexpr bool
isStore(Opcode op)
{
    return op == Opcode::Store;
}

/** @return true for any memory-accessing instruction. */
constexpr bool
isMemory(Opcode op)
{
    return isLoad(op) || isStore(op);
}

/** @return true for conditional branches. */
constexpr bool
isCondBranch(Opcode op)
{
    return op == Opcode::Beq || op == Opcode::Bne ||
           op == Opcode::Blt || op == Opcode::Bge;
}

/** @return true for any control-transfer instruction. */
constexpr bool
isControl(Opcode op)
{
    return isCondBranch(op) || op == Opcode::Jump ||
           op == Opcode::Jal || op == Opcode::Jr ||
           op == Opcode::Jalr;
}

/** @return true for register-register or register-immediate ALU ops. */
constexpr bool
isAlu(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::Sra:
      case Opcode::Slt:
      case Opcode::Addi:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Slli:
      case Opcode::Srli:
      case Opcode::Srai:
      case Opcode::Slti:
      case Opcode::Li:
        return true;
      default:
        return false;
    }
}

/** @return true for ALU ops whose second operand is an immediate. */
constexpr bool
isAluImmediate(Opcode op)
{
    switch (op) {
      case Opcode::Addi:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Slli:
      case Opcode::Srli:
      case Opcode::Srai:
      case Opcode::Slti:
      case Opcode::Li:
        return true;
      default:
        return false;
    }
}

/**
 * @return true if the opcode architecturally writes a destination
 * register (the destination may still be the hardwired zero register,
 * which makes the write a no-op; see Instruction::producesValue()).
 */
constexpr bool
writesRegister(Opcode op)
{
    return isAlu(op) || isLoad(op) || op == Opcode::Jal ||
           op == Opcode::Jalr;
}

/** @return a short mnemonic string for disassembly. */
const char *opcodeName(Opcode op);

} // namespace isa
} // namespace gdiff

#endif // GDIFF_ISA_OPCODE_HH
