#include "isa/instruction.hh"

#include <sstream>

namespace gdiff {
namespace isa {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Sll: return "sll";
      case Opcode::Srl: return "srl";
      case Opcode::Sra: return "sra";
      case Opcode::Slt: return "slt";
      case Opcode::Addi: return "addi";
      case Opcode::Andi: return "andi";
      case Opcode::Ori: return "ori";
      case Opcode::Xori: return "xori";
      case Opcode::Slli: return "slli";
      case Opcode::Srli: return "srli";
      case Opcode::Srai: return "srai";
      case Opcode::Slti: return "slti";
      case Opcode::Li: return "li";
      case Opcode::Load: return "ld";
      case Opcode::Store: return "sd";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Jump: return "j";
      case Opcode::Jal: return "jal";
      case Opcode::Jr: return "jr";
      case Opcode::Jalr: return "jalr";
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
    }
    return "?";
}

std::string
Instruction::toString() const
{
    std::ostringstream ss;
    ss << opcodeName(op);
    auto r = [](Reg x) { return "r" + std::to_string(x); };
    switch (op) {
      case Opcode::Nop:
      case Opcode::Halt:
        break;
      case Opcode::Li:
        ss << ' ' << r(rd) << ", " << imm;
        break;
      case Opcode::Load:
        ss << ' ' << r(rd) << ", " << imm << '(' << r(rs1) << ')';
        break;
      case Opcode::Store:
        ss << ' ' << r(rs2) << ", " << imm << '(' << r(rs1) << ')';
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        ss << ' ' << r(rs1) << ", " << r(rs2) << ", #" << target;
        break;
      case Opcode::Jump:
        ss << " #" << target;
        break;
      case Opcode::Jal:
        ss << ' ' << r(rd) << ", #" << target;
        break;
      case Opcode::Jr:
        ss << ' ' << r(rs1);
        break;
      case Opcode::Jalr:
        ss << ' ' << r(rd) << ", " << r(rs1);
        break;
      default:
        // ALU formats
        if (isAluImmediate(op))
            ss << ' ' << r(rd) << ", " << r(rs1) << ", " << imm;
        else
            ss << ' ' << r(rd) << ", " << r(rs1) << ", " << r(rs2);
        break;
    }
    return ss.str();
}

} // namespace isa
} // namespace gdiff
