/**
 * @file
 * A resolved synthetic-ISA program: the text segment plus metadata.
 */

#ifndef GDIFF_ISA_PROGRAM_HH
#define GDIFF_ISA_PROGRAM_HH

#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace gdiff {
namespace isa {

/**
 * An immutable program: instructions at consecutive indices, all
 * control-transfer targets resolved to instruction indices.
 */
class Program
{
  public:
    Program() = default;

    /**
     * @param name  human-readable program name.
     * @param text  resolved instruction sequence.
     */
    Program(std::string name, std::vector<Instruction> text)
        : name_(std::move(name)), text_(std::move(text))
    {}

    /** @return the program name. */
    const std::string &name() const { return name_; }

    /** @return number of static instructions. */
    size_t size() const { return text_.size(); }

    /** @return the instruction at the given index. */
    const Instruction &at(uint32_t index) const { return text_[index]; }

    /** @return the full instruction sequence. */
    const std::vector<Instruction> &text() const { return text_; }

    /** Render the whole program as assembly text. */
    std::string disassemble() const;

  private:
    std::string name_;
    std::vector<Instruction> text_;
};

} // namespace isa
} // namespace gdiff

#endif // GDIFF_ISA_PROGRAM_HH
