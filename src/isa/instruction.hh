/**
 * @file
 * Static instruction representation and register-name constants for
 * the synthetic ISA.
 */

#ifndef GDIFF_ISA_INSTRUCTION_HH
#define GDIFF_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "isa/opcode.hh"

namespace gdiff {
namespace isa {

/** Architectural register index (32 integer registers). */
using Reg = uint8_t;

/** Number of architectural integer registers. */
inline constexpr unsigned numRegs = 32;

/** MIPS-flavoured register-name constants. */
namespace reg {
inline constexpr Reg zero = 0; ///< hardwired zero
inline constexpr Reg v0 = 2;   ///< result registers
inline constexpr Reg v1 = 3;
inline constexpr Reg a0 = 4;   ///< argument registers
inline constexpr Reg a1 = 5;
inline constexpr Reg a2 = 6;
inline constexpr Reg a3 = 7;
inline constexpr Reg t0 = 8;   ///< caller-saved temporaries
inline constexpr Reg t1 = 9;
inline constexpr Reg t2 = 10;
inline constexpr Reg t3 = 11;
inline constexpr Reg t4 = 12;
inline constexpr Reg t5 = 13;
inline constexpr Reg t6 = 14;
inline constexpr Reg t7 = 15;
inline constexpr Reg s0 = 16;  ///< callee-saved
inline constexpr Reg s1 = 17;
inline constexpr Reg s2 = 18;
inline constexpr Reg s3 = 19;
inline constexpr Reg s4 = 20;
inline constexpr Reg s5 = 21;
inline constexpr Reg s6 = 22;
inline constexpr Reg s7 = 23;
inline constexpr Reg t8 = 24;
inline constexpr Reg t9 = 25;
inline constexpr Reg gp = 28;  ///< global pointer
inline constexpr Reg sp = 29;  ///< stack pointer
inline constexpr Reg s8 = 30;  ///< frame pointer (a.k.a. fp)
inline constexpr Reg ra = 31;  ///< return address
} // namespace reg

/** Base virtual address of the text segment. */
inline constexpr uint64_t textBase = 0x400000;

/** Size in bytes of one encoded instruction. */
inline constexpr uint64_t instBytes = 4;

/**
 * One static instruction.
 *
 * Control-transfer targets are stored as *instruction indices* into
 * the owning Program (resolved from labels by ProgramBuilder); the
 * byte-level PC of instruction i is textBase + i * instBytes.
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    Reg rd = 0;   ///< destination register (if writesRegister(op))
    Reg rs1 = 0;  ///< first source / base address register
    Reg rs2 = 0;  ///< second source / store data register
    int64_t imm = 0;       ///< immediate / memory offset
    uint32_t target = 0;   ///< control-transfer target (instr index)

    /**
     * @return true if this dynamic instruction produces a value the
     * paper's predictors are asked to predict: an integer ALU op or a
     * load writing a non-zero register. Jal's link value is excluded,
     * matching the paper's "value producing integer operations or
     * load instructions".
     */
    bool
    producesValue() const
    {
        return (isAlu(op) || isLoad(op)) && rd != reg::zero;
    }

    /** @return true if the instruction reads rs1 as an operand. */
    bool
    readsRs1() const
    {
        if (op == Opcode::Li || op == Opcode::Nop ||
            op == Opcode::Halt || op == Opcode::Jump ||
            op == Opcode::Jal) {
            return false;
        }
        return true;
    }

    /** @return true if the instruction reads rs2 as an operand. */
    bool
    readsRs2() const
    {
        if (isCondBranch(op))
            return true;
        if (op == Opcode::Store)
            return true;
        return isAlu(op) && !isAluImmediate(op);
    }

    /** Render the instruction as assembly text (for debugging). */
    std::string toString() const;
};

/** @return the byte PC of the instruction at the given index. */
constexpr uint64_t
indexToPc(uint32_t index)
{
    return textBase + static_cast<uint64_t>(index) * instBytes;
}

/** @return the instruction index of a byte PC in the text segment. */
constexpr uint32_t
pcToIndex(uint64_t pc)
{
    return static_cast<uint32_t>((pc - textBase) / instBytes);
}

} // namespace isa
} // namespace gdiff

#endif // GDIFF_ISA_INSTRUCTION_HH
