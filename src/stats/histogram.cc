#include "histogram.hh"

#include "util/logging.hh"

namespace gdiff {
namespace stats {

Histogram::Histogram(size_t num_buckets)
    : counts(num_buckets, 0)
{
    GDIFF_ASSERT(num_buckets >= 1, "Histogram needs >= 1 bucket");
}

void
Histogram::record(uint64_t sample)
{
    if (sample < counts.size())
        ++counts[sample];
    else
        ++overflowCount;
    ++sampleCount;
    sum += static_cast<double>(sample);
    if (sample > maxSeen)
        maxSeen = sample;
}

uint64_t
Histogram::bucket(size_t b) const
{
    GDIFF_ASSERT(b < counts.size(), "bucket %zu out of range", b);
    return counts[b];
}

double
Histogram::fraction(size_t b) const
{
    if (sampleCount == 0)
        return 0.0;
    return static_cast<double>(bucket(b)) /
           static_cast<double>(sampleCount);
}

double
Histogram::mean() const
{
    return sampleCount == 0 ? 0.0
                            : sum / static_cast<double>(sampleCount);
}

void
Histogram::reset()
{
    for (auto &c : counts)
        c = 0;
    overflowCount = 0;
    sampleCount = 0;
    sum = 0.0;
    maxSeen = 0;
}

} // namespace stats
} // namespace gdiff
