#include "histogram.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace gdiff {
namespace stats {

Histogram::Histogram(size_t num_buckets)
    : counts(num_buckets, 0)
{
    GDIFF_ASSERT(num_buckets >= 1, "Histogram needs >= 1 bucket");
}

void
Histogram::record(uint64_t sample)
{
    if (sample < counts.size())
        ++counts[sample];
    else
        ++overflowCount;
    ++sampleCount;
    sum += static_cast<double>(sample);
    sumSq += static_cast<double>(sample) * static_cast<double>(sample);
    if (sample > maxSeen)
        maxSeen = sample;
}

uint64_t
Histogram::bucket(size_t b) const
{
    GDIFF_ASSERT(b < counts.size(), "bucket %zu out of range", b);
    return counts[b];
}

double
Histogram::fraction(size_t b) const
{
    if (sampleCount == 0)
        return 0.0;
    return static_cast<double>(bucket(b)) /
           static_cast<double>(sampleCount);
}

double
Histogram::mean() const
{
    return sampleCount == 0 ? 0.0
                            : sum / static_cast<double>(sampleCount);
}

double
Histogram::variance() const
{
    if (sampleCount < 2)
        return 0.0;
    double n = static_cast<double>(sampleCount);
    double m = sum / n;
    // E[x^2] - mean^2 can go epsilon-negative from rounding when all
    // samples are (nearly) equal; clamp rather than return -0.0.
    return std::max(0.0, sumSq / n - m * m);
}

double
Histogram::stddev() const
{
    return std::sqrt(variance());
}

uint64_t
Histogram::percentile(double p) const
{
    GDIFF_ASSERT(p >= 0.0 && p <= 1.0,
                 "percentile %f outside [0,1]", p);
    if (sampleCount == 0)
        return 0;
    // Smallest bucket whose cumulative count reaches p of the total;
    // ceil() keeps p=0 meaningful (the smallest recorded sample's
    // bucket) without rounding surprises for tiny sample counts.
    uint64_t need = static_cast<uint64_t>(
        std::ceil(p * static_cast<double>(sampleCount)));
    if (need == 0)
        need = 1;
    uint64_t seen = 0;
    for (size_t b = 0; b < counts.size(); ++b) {
        seen += counts[b];
        if (seen >= need)
            return b;
    }
    // The requested mass sits in the overflow bucket; the best bound
    // we kept is the largest sample observed.
    return maxSeen;
}

void
Histogram::merge(const Histogram &other)
{
    GDIFF_ASSERT(counts.size() == other.counts.size(),
                 "merging histograms with %zu vs %zu buckets",
                 counts.size(), other.counts.size());
    for (size_t b = 0; b < counts.size(); ++b)
        counts[b] += other.counts[b];
    overflowCount += other.overflowCount;
    sampleCount += other.sampleCount;
    sum += other.sum;
    sumSq += other.sumSq;
    maxSeen = std::max(maxSeen, other.maxSeen);
}

void
Histogram::reset()
{
    for (auto &c : counts)
        c = 0;
    overflowCount = 0;
    sampleCount = 0;
    sum = 0.0;
    sumSq = 0.0;
    maxSeen = 0;
}

} // namespace stats
} // namespace gdiff
