/**
 * @file
 * Integer-valued histogram with overflow bucket, used for the value
 * delay distribution (paper Fig. 12) and cache/pipeline diagnostics.
 */

#ifndef GDIFF_STATS_HISTOGRAM_HH
#define GDIFF_STATS_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gdiff {
namespace stats {

/**
 * Histogram over non-negative integer samples 0..numBuckets-1, with
 * samples >= numBuckets accumulated into an overflow bucket.
 */
class Histogram
{
  public:
    /** @param num_buckets number of in-range buckets (>= 1). */
    explicit Histogram(size_t num_buckets);

    /** Record one sample. */
    void record(uint64_t sample);

    /** @return the count in bucket b (b < numBuckets()). */
    uint64_t bucket(size_t b) const;

    /** @return the count of samples >= numBuckets(). */
    uint64_t overflow() const { return overflowCount; }

    /** @return total samples recorded. */
    uint64_t samples() const { return sampleCount; }

    /** @return the number of in-range buckets. */
    size_t numBuckets() const { return counts.size(); }

    /** @return bucket b as a fraction of all samples (0 if empty). */
    double fraction(size_t b) const;

    /** @return the mean of all recorded samples (overflow samples
     * contribute their true values). */
    double mean() const;

    /**
     * @return the population variance of all recorded samples
     * (E[x^2] - mean^2, from exact running sums — overflow samples
     * contribute their true values, unlike percentile()). 0 when
     * fewer than two samples were recorded.
     */
    double variance() const;

    /** @return sqrt(variance()). */
    double stddev() const;

    /** @return the largest sample seen so far (0 if none). */
    uint64_t maxSample() const { return maxSeen; }

    /**
     * @return the smallest sample value v such that at least
     * @p p (in [0,1]) of all recorded samples are <= v. Samples that
     * landed in the overflow bucket report maxSample(). An empty
     * histogram reports 0.
     */
    uint64_t percentile(double p) const;

    /**
     * Fold @p other into this histogram. The two must have the same
     * bucket count (panics otherwise); the obs layer relies on this
     * to merge per-thread histograms at snapshot time.
     */
    void merge(const Histogram &other);

    /** Reset all buckets. */
    void reset();

  private:
    std::vector<uint64_t> counts;
    uint64_t overflowCount = 0;
    uint64_t sampleCount = 0;
    double sum = 0.0;
    double sumSq = 0.0;
    uint64_t maxSeen = 0;
};

} // namespace stats
} // namespace gdiff

#endif // GDIFF_STATS_HISTOGRAM_HH
