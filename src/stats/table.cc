#include "table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace gdiff {
namespace stats {

namespace {

/**
 * RFC 4180 field quoting: wrap in double quotes when the field
 * contains a separator, quote, or line break, doubling inner quotes.
 */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // anonymous namespace

Table::Table(std::string title, std::string row_label)
    : title(std::move(title)), rowLabelHeader(std::move(row_label))
{
}

void
Table::addColumn(const std::string &header)
{
    GDIFF_ASSERT(rows.empty(),
                 "columns must be declared before any row is added");
    columns.push_back(header);
}

void
Table::beginRow(const std::string &label)
{
    if (!rows.empty()) {
        GDIFF_ASSERT(rows.back().cells.size() == columns.size(),
                     "row '%s' has %zu cells, expected %zu",
                     rows.back().label.c_str(),
                     rows.back().cells.size(), columns.size());
    }
    rows.push_back(Row{label, {}});
}

void
Table::cell(const std::string &text)
{
    GDIFF_ASSERT(!rows.empty(), "cell() before beginRow()");
    GDIFF_ASSERT(rows.back().cells.size() < columns.size(),
                 "too many cells in row '%s'", rows.back().label.c_str());
    rows.back().cells.push_back(text);
}

void
Table::cellInt(long long v)
{
    cell(std::to_string(v));
}

void
Table::cellDouble(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    cell(ss.str());
}

void
Table::cellPercent(double fraction, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision)
       << (100.0 * fraction) << "%";
    cell(ss.str());
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths;
    widths.push_back(rowLabelHeader.size());
    for (const auto &c : columns)
        widths.push_back(c.size());
    for (const auto &r : rows) {
        widths[0] = std::max(widths[0], r.label.size());
        for (size_t i = 0; i < r.cells.size(); ++i)
            widths[i + 1] = std::max(widths[i + 1], r.cells[i].size());
    }

    os << "== " << title << " ==\n";

    auto pad = [&os](const std::string &s, size_t w, bool left) {
        if (left) {
            os << s << std::string(w - s.size(), ' ');
        } else {
            os << std::string(w - s.size(), ' ') << s;
        }
    };

    pad(rowLabelHeader, widths[0], true);
    for (size_t i = 0; i < columns.size(); ++i) {
        os << "  ";
        pad(columns[i], widths[i + 1], false);
    }
    os << '\n';

    size_t total = widths[0];
    for (size_t i = 1; i < widths.size(); ++i)
        total += widths[i] + 2;
    os << std::string(total, '-') << '\n';

    for (const auto &r : rows) {
        pad(r.label, widths[0], true);
        for (size_t i = 0; i < r.cells.size(); ++i) {
            os << "  ";
            pad(r.cells[i], widths[i + 1], false);
        }
        os << '\n';
    }
    os << '\n';
}

void
Table::printCsv(std::ostream &os) const
{
    os << csvField(rowLabelHeader);
    for (const auto &c : columns)
        os << ',' << csvField(c);
    os << '\n';
    for (const auto &r : rows) {
        os << csvField(r.label);
        for (const auto &c : r.cells)
            os << ',' << csvField(c);
        os << '\n';
    }
}

} // namespace stats
} // namespace gdiff
