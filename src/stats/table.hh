/**
 * @file
 * Aligned text tables for the paper-style reports printed by every
 * benchmark harness (one row per benchmark, one column per
 * configuration/series, mirroring the paper's figures).
 */

#ifndef GDIFF_STATS_TABLE_HH
#define GDIFF_STATS_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace gdiff {
namespace stats {

/**
 * A simple column-aligned table. Rows are added label-first, then one
 * cell per column; cells may be text, integers, floating-point
 * numbers, or percentages.
 */
class Table
{
  public:
    /**
     * @param title     caption printed above the table.
     * @param row_label header of the leftmost (label) column.
     */
    Table(std::string title, std::string row_label);

    /** Append a data column. @param header column header text. */
    void addColumn(const std::string &header);

    /** Start a new row. @param label row label (leftmost cell). */
    void beginRow(const std::string &label);

    /** Append a text cell to the current row. */
    void cell(const std::string &text);

    /** Append an integer cell. */
    void cellInt(long long v);

    /** Append a floating-point cell with the given precision. */
    void cellDouble(double v, int precision = 3);

    /** Append a percentage cell rendered as e.g. "73.1%".
     * @param fraction value in [0,1]. */
    void cellPercent(double fraction, int precision = 1);

    /** @return number of data rows added so far. */
    size_t numRows() const { return rows.size(); }

    /** @return number of data columns declared. */
    size_t numColumns() const { return columns.size(); }

    /** Render the table, aligned, to the stream. */
    void print(std::ostream &os) const;

    /** Render the table as CSV (for plotting scripts). */
    void printCsv(std::ostream &os) const;

  private:
    struct Row
    {
        std::string label;
        std::vector<std::string> cells;
    };

    std::string title;
    std::string rowLabelHeader;
    std::vector<std::string> columns;
    std::vector<Row> rows;
};

} // namespace stats
} // namespace gdiff

#endif // GDIFF_STATS_TABLE_HH
