/**
 * @file
 * Scalar statistics: counters, ratios, and running averages.
 *
 * These are deliberately simple value types; the simulator's
 * experiment drivers aggregate them into stats::Table rows for the
 * paper-style reports.
 */

#ifndef GDIFF_STATS_COUNTER_HH
#define GDIFF_STATS_COUNTER_HH

#include <cstdint>

namespace gdiff {
namespace stats {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    /** Add one event. */
    void increment() { ++count; }

    /** Add n events. */
    void add(uint64_t n) { count += n; }

    /** @return the event count. */
    uint64_t value() const { return count; }

    /** Reset to zero. */
    void reset() { count = 0; }

  private:
    uint64_t count = 0;
};

/**
 * A hits-over-total ratio, the shape of every accuracy and coverage
 * number in the paper.
 */
class Ratio
{
  public:
    Ratio() = default;

    /** Record one trial. @param hit true if the trial succeeded. */
    void
    record(bool hit)
    {
        ++total_;
        if (hit)
            ++hits_;
    }

    /** Record a pre-aggregated batch of trials. */
    void
    addBatch(uint64_t hits, uint64_t total)
    {
        hits_ += hits;
        total_ += total;
    }

    /** @return number of successful trials. */
    uint64_t hits() const { return hits_; }

    /** @return number of trials. */
    uint64_t total() const { return total_; }

    /** @return hits/total in [0,1]; 0 when no trials were recorded. */
    double
    value() const
    {
        return total_ == 0 ? 0.0
                           : static_cast<double>(hits_) /
                                 static_cast<double>(total_);
    }

    /** @return the ratio as a percentage in [0,100]. */
    double percent() const { return 100.0 * value(); }

    /** Reset both numerator and denominator. */
    void
    reset()
    {
        hits_ = 0;
        total_ = 0;
    }

  private:
    uint64_t hits_ = 0;
    uint64_t total_ = 0;
};

/** A running arithmetic mean over recorded samples. */
class Average
{
  public:
    Average() = default;

    /** Record one sample. */
    void
    record(double sample)
    {
        sum += sample;
        ++n;
    }

    /** @return the sample mean; 0 when no samples were recorded. */
    double
    value() const
    {
        return n == 0 ? 0.0 : sum / static_cast<double>(n);
    }

    /** @return number of recorded samples. */
    uint64_t samples() const { return n; }

    /** Reset to the empty state. */
    void
    reset()
    {
        sum = 0.0;
        n = 0;
    }

  private:
    double sum = 0.0;
    uint64_t n = 0;
};

} // namespace stats
} // namespace gdiff

#endif // GDIFF_STATS_COUNTER_HH
