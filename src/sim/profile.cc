#include "sim/profile.hh"

#include <algorithm>
#include <memory>
#include <vector>

#include "obs/obs.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace gdiff {
namespace sim {

namespace {

/**
 * First measured record index of a chunk: record j (0-based) is past
 * warmup iff executedBefore + j + 1 > warmup, i.e. j >= mstart.
 */
uint64_t
measuredStart(uint64_t executedBefore, uint64_t warmup)
{
    return warmup > executedBefore ? warmup - executedBefore : 0;
}

/**
 * First *lane* at or past the measured boundary: lanes carry their
 * chunk record index in ascending order.
 */
uint32_t
measuredLane(const uint32_t *records, uint32_t lanes, uint64_t mstart)
{
    if (mstart == 0)
        return 0;
    const uint32_t *it = std::lower_bound(
        records, records + lanes, static_cast<uint32_t>(mstart));
    return static_cast<uint32_t>(it - records);
}

} // anonymous namespace

void
ProfileConfig::validate() const
{
    if (maxInstructions == 0) {
        fatal("profile run length is 0 instructions: nothing would "
              "be measured");
    }
    if (!allowLongWarmup && warmupInstructions >= maxInstructions) {
        fatal("profile warmup (%llu) must be smaller than the "
              "measured instruction budget (%llu)",
              static_cast<unsigned long long>(warmupInstructions),
              static_cast<unsigned long long>(maxInstructions));
    }
}

// ------------------------------------------------- ValueProfileRunner

ValueProfileRunner::ValueProfileRunner(const ProfileConfig &config)
    : cfg(config)
{
    cfg.validate();
}

void
ValueProfileRunner::addPredictor(predictors::ValuePredictor &p)
{
    preds.push_back(&p);
    conf.emplace_back(cfg.confidence);
    ProfileSeries s;
    s.name = p.name();
    series.push_back(std::move(s));
}

void
ValueProfileRunner::run(workload::TraceSource &src)
{
    GDIFF_ASSERT(!preds.empty(), "no predictors registered");
    uint64_t executed = 0;
    uint64_t budget = cfg.warmupInstructions + cfg.maxInstructions;
    auto scratch = std::make_unique<workload::TraceChunk>();
    // Chunk-granularity stage split: fill (trace delivery, which is
    // functional generation on a cache miss and a cursor walk on a
    // hit) vs the batched predict/update passes. Local accumulation,
    // one registry call at the end — see obs.hh's overhead rules.
    // Histogram pointers are stable, so they are cached up front.
    const bool obsOn = GDIFF_OBS_ENABLED && obs::enabled();
    uint64_t fillNs = 0, simNs = 0, chunks = 0, tStage = 0;
    stats::Histogram *predictHist = nullptr;
    stats::Histogram *updateHist = nullptr;
    if (obsOn) {
        obs::Registry &reg = obs::Registry::local();
        predictHist = reg.histogram("predict.batch_us");
        updateHist = reg.histogram("update.batch_us");
        reg.addCount(simd::activeName(), 1);
    }

    constexpr uint32_t cap = workload::TraceChunk::capacity;
    std::vector<uint64_t> pcs(cap);
    std::vector<int64_t> values(cap);
    std::vector<uint32_t> records(cap);
    std::vector<uint8_t> correct(cap);
    std::vector<uint8_t> confident(cap);
    predictors::PredictionBatch batch;

    while (executed < budget) {
        if (obsOn)
            tStage = obs::nowNs();
        const workload::TraceChunk *chunk = src.fillRef(*scratch);
        if (obsOn) {
            uint64_t t = obs::nowNs();
            fillNs += t - tStage;
            tStage = t;
            ++chunks;
        }
        if (!chunk)
            break;
        uint32_t n = static_cast<uint32_t>(
            std::min<uint64_t>(chunk->size, budget - executed));
        const uint32_t lanes = predictors::gatherValueLanes(
            *chunk, n, pcs.data(), values.data(), records.data());
        const uint64_t mstart =
            measuredStart(executed, cfg.warmupInstructions);
        const uint32_t mlane =
            mstart >= n ? lanes
                        : measuredLane(records.data(), lanes, mstart);
        executed += n;

        for (size_t i = 0; i < preds.size(); ++i) {
            uint64_t tP = obsOn ? obs::nowNs() : 0;
            preds[i]->predictUpdateBatch(pcs.data(), values.data(),
                                         lanes, batch);
            if (obsOn) {
                uint64_t t = obs::nowNs();
                predictHist->record((t - tP) / 1000);
                tP = t;
            }
            for (uint32_t l = 0; l < lanes; ++l) {
                correct[l] = batch.predicted[l] &&
                             batch.value[l] == values[l];
            }
            conf[i].evaluateBatch(pcs.data(), batch.predicted.data(),
                                  correct.data(), lanes,
                                  confident.data());
            // Ratio sums are order-independent, so the per-chunk
            // aggregation below is identical to the scalar
            // record-at-a-time record() calls.
            uint64_t nCorrect = 0, nConf = 0, nConfCorrect = 0;
            for (uint32_t l = mlane; l < lanes; ++l) {
                nCorrect += correct[l];
                if (confident[l]) {
                    ++nConf;
                    nConfCorrect += correct[l];
                }
            }
            series[i].accuracyAll.addBatch(nCorrect, lanes - mlane);
            series[i].coverage.addBatch(nConf, lanes - mlane);
            series[i].accuracyGated.addBatch(nConfCorrect, nConf);
            if (obsOn)
                updateHist->record((obs::nowNs() - tP) / 1000);
        }
        if (obsOn)
            simNs += obs::nowNs() - tStage;
    }
    measured = executed > cfg.warmupInstructions
                   ? executed - cfg.warmupInstructions
                   : 0;
    if (obsOn) {
        obs::Registry &reg = obs::Registry::local();
        reg.addTimer("profile.fill", fillNs, chunks);
        reg.addTimer("profile.sim", simNs, chunks);
    }
}

// ----------------------------------------------- AddressProfileRunner

AddressProfileRunner::AddressProfileRunner(const ProfileConfig &config)
    : cfg(config), dcache(mem::CacheConfig::paperDCache())
{
    cfg.validate();
}

void
AddressProfileRunner::addPredictor(predictors::ValuePredictor &p)
{
    preds.push_back(&p);
    conf.emplace_back(cfg.confidence);
    AddressSeries s;
    s.name = p.name();
    series.push_back(std::move(s));
}

void
AddressProfileRunner::setMarkov(predictors::MarkovPredictor &all,
                                predictors::MarkovPredictor &misses)
{
    GDIFF_ASSERT(markovAll == nullptr, "Markov already registered");
    markovAll = &all;
    markovMiss = &misses;
    AddressSeries s;
    s.name = "markov";
    series.push_back(std::move(s));
}

void
AddressProfileRunner::run(workload::TraceSource &src)
{
    GDIFF_ASSERT(!preds.empty() || markovAll,
                 "no predictors registered");
    uint64_t executed = 0;
    uint64_t budget = cfg.warmupInstructions + cfg.maxInstructions;
    auto scratch = std::make_unique<workload::TraceChunk>();
    const bool obsOn = GDIFF_OBS_ENABLED && obs::enabled();
    uint64_t fillNs = 0, simNs = 0, chunks = 0, tStage = 0;
    stats::Histogram *predictHist = nullptr;
    stats::Histogram *updateHist = nullptr;
    if (obsOn) {
        obs::Registry &reg = obs::Registry::local();
        predictHist = reg.histogram("predict.batch_us");
        updateHist = reg.histogram("update.batch_us");
        reg.addCount(simd::activeName(), 1);
    }

    constexpr uint32_t cap = workload::TraceChunk::capacity;
    std::vector<uint64_t> pcs(cap);
    std::vector<int64_t> actuals(cap);
    std::vector<uint64_t> addrs(cap);
    std::vector<uint32_t> records(cap);
    std::vector<uint8_t> miss(cap);
    std::vector<uint8_t> correct(cap);
    std::vector<uint8_t> confident(cap);
    std::vector<uint64_t> missAddrs(cap);
    std::vector<uint32_t> missLaneOf(cap);
    std::vector<uint8_t> hits(cap);
    std::vector<uint64_t> guesses(cap);
    std::vector<uint8_t> mhits(cap);
    std::vector<uint64_t> mguesses(cap);
    predictors::PredictionBatch batch;

    while (executed < budget) {
        if (obsOn)
            tStage = obs::nowNs();
        const workload::TraceChunk *chunk = src.fillRef(*scratch);
        if (obsOn) {
            uint64_t t = obs::nowNs();
            fillNs += t - tStage;
            tStage = t;
            ++chunks;
        }
        if (!chunk)
            break;
        uint32_t n = static_cast<uint32_t>(
            std::min<uint64_t>(chunk->size, budget - executed));

        // Pass 1 — memory model in architectural order: stores keep
        // the D-cache honest but are not predicted; loads become
        // dense lanes carrying their miss classification.
        uint32_t lanes = 0;
        for (uint32_t j = 0; j < n; ++j) {
            uint64_t effAddr = chunk->effAddr[j];
            if (chunk->isStore(j)) {
                dcache.access(effAddr);
                continue;
            }
            if (!chunk->isLoad(j))
                continue;
            pcs[lanes] = chunk->pc[j];
            addrs[lanes] = effAddr;
            actuals[lanes] = static_cast<int64_t>(effAddr);
            records[lanes] = j;
            miss[lanes] = !dcache.access(effAddr);
            ++lanes;
        }
        const uint64_t mstart =
            measuredStart(executed, cfg.warmupInstructions);
        const uint32_t mlane =
            mstart >= n ? lanes
                        : measuredLane(records.data(), lanes, mstart);
        executed += n;

        // Pass 2 — PC-indexed predictors over the load-address lanes.
        for (size_t i = 0; i < preds.size(); ++i) {
            uint64_t tP = obsOn ? obs::nowNs() : 0;
            preds[i]->predictUpdateBatch(pcs.data(), actuals.data(),
                                         lanes, batch);
            if (obsOn) {
                uint64_t t = obs::nowNs();
                predictHist->record((t - tP) / 1000);
                tP = t;
            }
            for (uint32_t l = 0; l < lanes; ++l) {
                correct[l] = batch.predicted[l] &&
                             batch.value[l] == actuals[l];
            }
            conf[i].evaluateBatch(pcs.data(), batch.predicted.data(),
                                  correct.data(), lanes,
                                  confident.data());
            uint64_t covAll = 0, accAll = 0, totMiss = 0, covMiss = 0,
                     accMiss = 0;
            for (uint32_t l = mlane; l < lanes; ++l) {
                if (confident[l]) {
                    ++covAll;
                    accAll += correct[l];
                }
                if (miss[l]) {
                    ++totMiss;
                    if (confident[l]) {
                        ++covMiss;
                        accMiss += correct[l];
                    }
                }
            }
            series[i].coverageAll.addBatch(covAll, lanes - mlane);
            series[i].accuracyAll.addBatch(accAll, covAll);
            series[i].coverageMiss.addBatch(covMiss, totMiss);
            series[i].accuracyMiss.addBatch(accMiss, covMiss);
            if (obsOn)
                updateHist->record((obs::nowNs() - tP) / 1000);
        }

        // Pass 3 — the Markov pair: the all-loads stream, then the
        // gathered miss stream (whose lanes remember their load lane
        // for the measured gate).
        if (markovAll && lanes > 0) {
            AddressSeries &ms = series.back();
            markovAll->predictUpdateBatch(addrs.data(), lanes,
                                          hits.data(), guesses.data());
            uint64_t cov = 0, acc = 0;
            uint32_t misses = 0;
            for (uint32_t l = 0; l < lanes; ++l) {
                if (miss[l]) {
                    missAddrs[misses] = addrs[l];
                    missLaneOf[misses] = l;
                    ++misses;
                }
                if (l < mlane)
                    continue;
                if (hits[l]) {
                    ++cov;
                    acc += guesses[l] == addrs[l];
                }
            }
            ms.coverageAll.addBatch(cov, lanes - mlane);
            ms.accuracyAll.addBatch(acc, cov);

            markovMiss->predictUpdateBatch(missAddrs.data(), misses,
                                           mhits.data(),
                                           mguesses.data());
            uint64_t mcov = 0, macc = 0, mtot = 0;
            for (uint32_t m = 0; m < misses; ++m) {
                if (missLaneOf[m] < mlane)
                    continue;
                ++mtot;
                if (mhits[m]) {
                    ++mcov;
                    macc += mguesses[m] == missAddrs[m];
                }
            }
            ms.coverageMiss.addBatch(mcov, mtot);
            ms.accuracyMiss.addBatch(macc, mcov);
        }
        if (obsOn)
            simNs += obs::nowNs() - tStage;
    }
    if (obsOn) {
        obs::Registry &reg = obs::Registry::local();
        reg.addTimer("profile.fill", fillNs, chunks);
        reg.addTimer("profile.sim", simNs, chunks);
    }
}

double
AddressProfileRunner::dcacheMissRate() const
{
    return dcache.missRate();
}

} // namespace sim
} // namespace gdiff
