#include "sim/profile.hh"

#include <algorithm>
#include <memory>

#include "obs/obs.hh"
#include "util/logging.hh"

namespace gdiff {
namespace sim {

void
ProfileConfig::validate() const
{
    if (maxInstructions == 0) {
        fatal("profile run length is 0 instructions: nothing would "
              "be measured");
    }
    if (warmupInstructions >= maxInstructions) {
        fatal("profile warmup (%llu) must be smaller than the "
              "measured instruction budget (%llu)",
              static_cast<unsigned long long>(warmupInstructions),
              static_cast<unsigned long long>(maxInstructions));
    }
}

// ------------------------------------------------- ValueProfileRunner

ValueProfileRunner::ValueProfileRunner(const ProfileConfig &config)
    : cfg(config)
{
    cfg.validate();
}

void
ValueProfileRunner::addPredictor(predictors::ValuePredictor &p)
{
    preds.push_back(&p);
    conf.emplace_back(cfg.confidence);
    ProfileSeries s;
    s.name = p.name();
    series.push_back(std::move(s));
}

void
ValueProfileRunner::run(workload::TraceSource &src)
{
    GDIFF_ASSERT(!preds.empty(), "no predictors registered");
    uint64_t executed = 0;
    uint64_t budget = cfg.warmupInstructions + cfg.maxInstructions;
    auto scratch = std::make_unique<workload::TraceChunk>();
    // Chunk-granularity stage split: fill (trace delivery, which is
    // functional generation on a cache miss and a cursor walk on a
    // hit) vs the predict/update loop. Local accumulation, one
    // registry call at the end — see obs.hh's overhead rules.
    const bool obsOn = GDIFF_OBS_ENABLED && obs::enabled();
    uint64_t fillNs = 0, simNs = 0, chunks = 0, tStage = 0;
    while (executed < budget) {
        if (obsOn)
            tStage = obs::nowNs();
        const workload::TraceChunk *chunk = src.fillRef(*scratch);
        if (obsOn) {
            uint64_t t = obs::nowNs();
            fillNs += t - tStage;
            tStage = t;
            ++chunks;
        }
        if (!chunk)
            break;
        uint32_t n = static_cast<uint32_t>(
            std::min<uint64_t>(chunk->size, budget - executed));
        for (uint32_t j = 0; j < n; ++j) {
            ++executed;
            if (!chunk->producesValue(j))
                continue;
            uint64_t pc = chunk->pc[j];
            int64_t value = chunk->value[j];
            bool measured = executed > cfg.warmupInstructions;
            for (size_t i = 0; i < preds.size(); ++i) {
                int64_t guess = 0;
                bool predicted = preds[i]->predict(pc, guess);
                bool correct = predicted && guess == value;
                bool confident = predicted && conf[i].confident(pc);
                if (measured) {
                    series[i].accuracyAll.record(correct);
                    series[i].coverage.record(confident);
                    if (confident)
                        series[i].accuracyGated.record(correct);
                }
                if (predicted)
                    conf[i].train(pc, correct);
                preds[i]->update(pc, value);
            }
        }
        if (obsOn)
            simNs += obs::nowNs() - tStage;
    }
    if (obsOn) {
        obs::Registry &reg = obs::Registry::local();
        reg.addTimer("profile.fill", fillNs, chunks);
        reg.addTimer("profile.sim", simNs, chunks);
    }
}

// ----------------------------------------------- AddressProfileRunner

AddressProfileRunner::AddressProfileRunner(const ProfileConfig &config)
    : cfg(config), dcache(mem::CacheConfig::paperDCache())
{
    cfg.validate();
}

void
AddressProfileRunner::addPredictor(predictors::ValuePredictor &p)
{
    preds.push_back(&p);
    conf.emplace_back(cfg.confidence);
    AddressSeries s;
    s.name = p.name();
    series.push_back(std::move(s));
}

void
AddressProfileRunner::setMarkov(predictors::MarkovPredictor &all,
                                predictors::MarkovPredictor &misses)
{
    GDIFF_ASSERT(markovAll == nullptr, "Markov already registered");
    markovAll = &all;
    markovMiss = &misses;
    AddressSeries s;
    s.name = "markov";
    series.push_back(std::move(s));
}

void
AddressProfileRunner::run(workload::TraceSource &src)
{
    GDIFF_ASSERT(!preds.empty() || markovAll,
                 "no predictors registered");
    uint64_t executed = 0;
    uint64_t budget = cfg.warmupInstructions + cfg.maxInstructions;
    auto scratch = std::make_unique<workload::TraceChunk>();
    const bool obsOn = GDIFF_OBS_ENABLED && obs::enabled();
    uint64_t fillNs = 0, simNs = 0, chunks = 0, tStage = 0;
    while (executed < budget) {
        if (obsOn)
            tStage = obs::nowNs();
        const workload::TraceChunk *chunk = src.fillRef(*scratch);
        if (obsOn) {
            uint64_t t = obs::nowNs();
            fillNs += t - tStage;
            tStage = t;
            ++chunks;
        }
        if (!chunk)
            break;
        uint32_t n = static_cast<uint32_t>(
            std::min<uint64_t>(chunk->size, budget - executed));
        for (uint32_t j = 0; j < n; ++j) {
            ++executed;
            uint64_t effAddr = chunk->effAddr[j];
            // Stores keep the D-cache model honest but are not
            // predicted.
            if (chunk->isStore(j)) {
                dcache.access(effAddr);
                continue;
            }
            if (!chunk->isLoad(j))
                continue;
            uint64_t pc = chunk->pc[j];
            bool measured = executed > cfg.warmupInstructions;
            bool miss = !dcache.access(effAddr);
            int64_t actual = static_cast<int64_t>(effAddr);

            for (size_t i = 0; i < preds.size(); ++i) {
                int64_t guess = 0;
                bool predicted = preds[i]->predict(pc, guess);
                bool correct = predicted && guess == actual;
                bool confident = predicted && conf[i].confident(pc);
                if (measured) {
                    series[i].coverageAll.record(confident);
                    if (confident)
                        series[i].accuracyAll.record(correct);
                    if (miss) {
                        series[i].coverageMiss.record(confident);
                        if (confident)
                            series[i].accuracyMiss.record(correct);
                    }
                }
                if (predicted)
                    conf[i].train(pc, correct);
                preds[i]->update(pc, actual);
            }

            if (markovAll) {
                AddressSeries &ms = series.back();
                uint64_t guess = 0;
                bool hit = markovAll->predict(guess);
                bool correct = hit && guess == effAddr;
                if (measured) {
                    ms.coverageAll.record(hit);
                    if (hit)
                        ms.accuracyAll.record(correct);
                }
                markovAll->update(effAddr);

                if (miss) {
                    uint64_t mguess = 0;
                    bool mhit = markovMiss->predict(mguess);
                    bool mcorrect = mhit && mguess == effAddr;
                    if (measured) {
                        ms.coverageMiss.record(mhit);
                        if (mhit)
                            ms.accuracyMiss.record(mcorrect);
                    }
                    markovMiss->update(effAddr);
                }
            }
        }
        if (obsOn)
            simNs += obs::nowNs() - tStage;
    }
    if (obsOn) {
        obs::Registry &reg = obs::Registry::local();
        reg.addTimer("profile.fill", fillNs, chunks);
        reg.addTimer("profile.sim", simNs, chunks);
    }
}

double
AddressProfileRunner::dcacheMissRate() const
{
    return dcache.missRate();
}

} // namespace sim
} // namespace gdiff
