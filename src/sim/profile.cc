#include "sim/profile.hh"

#include "util/logging.hh"

namespace gdiff {
namespace sim {

// ------------------------------------------------- ValueProfileRunner

ValueProfileRunner::ValueProfileRunner(const ProfileConfig &config)
    : cfg(config)
{
}

void
ValueProfileRunner::addPredictor(predictors::ValuePredictor &p)
{
    preds.push_back(&p);
    conf.emplace_back(cfg.confidence);
    ProfileSeries s;
    s.name = p.name();
    series.push_back(std::move(s));
}

void
ValueProfileRunner::run(workload::TraceSource &src)
{
    GDIFF_ASSERT(!preds.empty(), "no predictors registered");
    uint64_t executed = 0;
    uint64_t budget = cfg.warmupInstructions + cfg.maxInstructions;
    workload::TraceRecord r;
    while (executed < budget && src.next(r)) {
        ++executed;
        if (!r.producesValue())
            continue;
        bool measured = executed > cfg.warmupInstructions;
        for (size_t i = 0; i < preds.size(); ++i) {
            int64_t guess = 0;
            bool predicted = preds[i]->predict(r.pc, guess);
            bool correct = predicted && guess == r.value;
            bool confident = predicted && conf[i].confident(r.pc);
            if (measured) {
                series[i].accuracyAll.record(correct);
                series[i].coverage.record(confident);
                if (confident)
                    series[i].accuracyGated.record(correct);
            }
            if (predicted)
                conf[i].train(r.pc, correct);
            preds[i]->update(r.pc, r.value);
        }
    }
}

// ----------------------------------------------- AddressProfileRunner

AddressProfileRunner::AddressProfileRunner(const ProfileConfig &config)
    : cfg(config), dcache(mem::CacheConfig::paperDCache())
{
}

void
AddressProfileRunner::addPredictor(predictors::ValuePredictor &p)
{
    preds.push_back(&p);
    conf.emplace_back(cfg.confidence);
    AddressSeries s;
    s.name = p.name();
    series.push_back(std::move(s));
}

void
AddressProfileRunner::setMarkov(predictors::MarkovPredictor &all,
                                predictors::MarkovPredictor &misses)
{
    GDIFF_ASSERT(markovAll == nullptr, "Markov already registered");
    markovAll = &all;
    markovMiss = &misses;
    AddressSeries s;
    s.name = "markov";
    series.push_back(std::move(s));
}

void
AddressProfileRunner::run(workload::TraceSource &src)
{
    GDIFF_ASSERT(!preds.empty() || markovAll,
                 "no predictors registered");
    uint64_t executed = 0;
    uint64_t budget = cfg.warmupInstructions + cfg.maxInstructions;
    workload::TraceRecord r;
    while (executed < budget && src.next(r)) {
        ++executed;
        // Stores keep the D-cache model honest but are not predicted.
        if (r.isStore()) {
            dcache.access(r.effAddr);
            continue;
        }
        if (!r.isLoad())
            continue;
        bool measured = executed > cfg.warmupInstructions;
        bool miss = !dcache.access(r.effAddr);
        int64_t actual = static_cast<int64_t>(r.effAddr);

        for (size_t i = 0; i < preds.size(); ++i) {
            int64_t guess = 0;
            bool predicted = preds[i]->predict(r.pc, guess);
            bool correct = predicted && guess == actual;
            bool confident = predicted && conf[i].confident(r.pc);
            if (measured) {
                series[i].coverageAll.record(confident);
                if (confident)
                    series[i].accuracyAll.record(correct);
                if (miss) {
                    series[i].coverageMiss.record(confident);
                    if (confident)
                        series[i].accuracyMiss.record(correct);
                }
            }
            if (predicted)
                conf[i].train(r.pc, correct);
            preds[i]->update(r.pc, actual);
        }

        if (markovAll) {
            AddressSeries &ms = series.back();
            uint64_t guess = 0;
            bool hit = markovAll->predict(guess);
            bool correct = hit && guess == r.effAddr;
            if (measured) {
                ms.coverageAll.record(hit);
                if (hit)
                    ms.accuracyAll.record(correct);
            }
            markovAll->update(r.effAddr);

            if (miss) {
                uint64_t mguess = 0;
                bool mhit = markovMiss->predict(mguess);
                bool mcorrect = mhit && mguess == r.effAddr;
                if (measured) {
                    ms.coverageMiss.record(mhit);
                    if (mhit)
                        ms.accuracyMiss.record(mcorrect);
                }
                markovMiss->update(r.effAddr);
            }
        }
    }
}

double
AddressProfileRunner::dcacheMissRate() const
{
    return dcache.missRate();
}

} // namespace sim
} // namespace gdiff
