/**
 * @file
 * Profile-mode experiment drivers.
 *
 * These replay a workload's dynamic stream in architectural order and
 * drive one or more value predictors with the predict-then-update
 * protocol — the methodology behind the paper's Figs. 8, 9, 10
 * (value streams) and the load-address study of Fig. 18.
 */

#ifndef GDIFF_SIM_PROFILE_HH
#define GDIFF_SIM_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/cache.hh"
#include "predictors/confidence.hh"
#include "predictors/markov.hh"
#include "predictors/value_predictor.hh"
#include "stats/counter.hh"
#include "workload/trace.hh"

namespace gdiff {
namespace sim {

/** Common run-length parameters. */
struct ProfileConfig
{
    /// dynamic instructions to measure
    uint64_t maxInstructions = 2'000'000;
    /// instructions executed first to warm predictors/caches; the
    /// predictors train but the statistics are not recorded
    uint64_t warmupInstructions = 200'000;
    /// confidence policy for gated statistics
    predictors::ConfidenceConfig confidence;
    /// permit warmup >= maxInstructions. A full run warming more than
    /// it measures is a misconfiguration, but a sampled-simulation
    /// window (src/sample/) legitimately warms as many records as it
    /// measures — its windows opt in; everything else keeps the check.
    bool allowLongWarmup = false;

    /**
     * Reject run lengths that would silently measure nothing:
     * maxInstructions == 0, or (unless allowLongWarmup) warmup >=
     * maxInstructions. Calls fatal() with the offending values. The
     * profile runners validate on construction.
     */
    void validate() const;
};

/** Per-predictor outcome of a profile run. */
struct ProfileSeries
{
    std::string name;
    stats::Ratio accuracyAll;   ///< correct / all eligible instructions
    stats::Ratio accuracyGated; ///< correct confident / confident
    stats::Ratio coverage;      ///< confident / all eligible
};

/**
 * Replays the value stream of all value-producing instructions
 * through a set of predictors (paper Figs. 8-10 methodology).
 */
class ValueProfileRunner
{
  public:
    explicit ValueProfileRunner(const ProfileConfig &config);

    /** Register a predictor (non-owning). Call before run(). */
    void addPredictor(predictors::ValuePredictor &p);

    /** Replay the source through every registered predictor. */
    void run(workload::TraceSource &src);

    /** @return one series per registered predictor, in order. */
    const std::vector<ProfileSeries> &results() const { return series; }

    /**
     * @return records actually consumed past warmup by run() — less
     * than maxInstructions when the stream ended early, 0 when it
     * ended inside warmup. Sampled windows (src/sample/) weight their
     * estimates by this, not by the requested budget.
     */
    uint64_t measuredRecords() const { return measured; }

  private:
    ProfileConfig cfg;
    std::vector<predictors::ValuePredictor *> preds;
    std::vector<predictors::ConfidenceTable> conf;
    std::vector<ProfileSeries> series;
    uint64_t measured = 0;
};

/** Results of the load-address study for one predictor. */
struct AddressSeries
{
    std::string name;
    stats::Ratio coverageAll;  ///< confident / all loads
    stats::Ratio accuracyAll;  ///< correct confident / confident
    stats::Ratio coverageMiss; ///< confident / missing loads
    stats::Ratio accuracyMiss; ///< correct confident / confident misses
};

/**
 * Replays the load-address stream (paper §6 / Fig. 18): PC-indexed
 * predictors train on every load's address; Markov predictors train
 * on the all-loads stream and on the miss stream respectively; a
 * D-cache model classifies missing loads.
 */
class AddressProfileRunner
{
  public:
    explicit AddressProfileRunner(const ProfileConfig &config);

    /** Register a PC-indexed address predictor (non-owning). */
    void addPredictor(predictors::ValuePredictor &p);

    /**
     * Register the Markov pair (non-owning): @p all trains on every
     * load address, @p misses on the miss-address stream only.
     */
    void setMarkov(predictors::MarkovPredictor &all,
                   predictors::MarkovPredictor &misses);

    /** Replay the source. */
    void run(workload::TraceSource &src);

    /** @return PC-indexed predictor series, then (if registered) the
     * Markov series. */
    const std::vector<AddressSeries> &results() const { return series; }

    /** @return the D-cache miss rate observed during the run. */
    double dcacheMissRate() const;

  private:
    ProfileConfig cfg;
    std::vector<predictors::ValuePredictor *> preds;
    std::vector<predictors::ConfidenceTable> conf;
    predictors::MarkovPredictor *markovAll = nullptr;
    predictors::MarkovPredictor *markovMiss = nullptr;
    std::vector<AddressSeries> series;
    mem::Cache dcache;
};

} // namespace sim
} // namespace gdiff

#endif // GDIFF_SIM_PROFILE_HH
