/**
 * @file
 * Metric-surface snapshots: freeze any sweep's full result set as a
 * versioned, content-digested artifact, and semantically diff two
 * such artifacts (diffkemp's snapshot/semdiff design applied to the
 * runner's metric surface).
 *
 * A snapshot is one JSON document whose `jobs` array holds exactly
 * the JSON-lines sink's deterministic payloads, sorted by JobSpec
 * key. Because the payloads print doubles with %.17g (lossless
 * round-trip) and the reader rebuilds each record with
 * runner::parseRecordJson, the content digest can be *recomputed*
 * from a parsed file and compared against the stored one — a
 * tampered or truncated snapshot is rejected with a typed status, and
 * two snapshots of the same sweep are byte-identical regardless of
 * thread count or whether the daemon ran the jobs.
 *
 * Diffing two snapshots keys jobs by spec identity and reports (a)
 * configs only one side has and (b) per-metric deltas beyond a
 * per-metric tolerance. Sampled metrics carry their 95% intervals as
 * `<metric>_ci_lo`/`<metric>_ci_hi` columns: a delta on such a metric
 * only fires when the two intervals do not overlap, so a re-sampled
 * sweep does not page anyone over estimator noise.
 */

#ifndef GDIFF_CHECK_SNAPSHOT_HH
#define GDIFF_CHECK_SNAPSHOT_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "runner/sinks.hh"

namespace gdiff {
namespace check {

/// current snapshot file format version
inline constexpr uint32_t snapshotVersion = 1;

/** What a snapshot read/write attempt concluded. */
enum class SnapshotStatus
{
    Ok,
    IoError,        ///< open/read/write failed at the OS level
    Parse,          ///< not valid JSON
    BadFormat,      ///< not a gdiff-snapshot document / bad field
    BadVersion,     ///< version newer than this reader understands
    DigestMismatch, ///< recomputed digest != stored digest
};

/** @return a stable lowercase name for @p s (logs, tests). */
const char *snapshotStatusName(SnapshotStatus s);

/** A status plus a human-readable message for the error cases. */
struct SnapshotResult
{
    SnapshotStatus status = SnapshotStatus::Ok;
    std::string message;

    bool ok() const { return status == SnapshotStatus::Ok; }
};

/** An in-memory metric surface: one record per swept config. */
struct Snapshot
{
    std::string tool; ///< producing tool, freeform ("gdiffrun")
    std::string note; ///< freeform label (commit id, sweep name)
    std::vector<runner::JobRecord> jobs;

    /** Sort jobs by spec key — the canonical order digest() hashes. */
    void canonicalize();

    /**
     * @return the content digest: FNV-1a over each job's
     * deterministic payload in canonical order. Canonicalize first.
     */
    uint64_t digest() const;
};

/** Write @p snap to @p path (canonicalizes the job order first). */
SnapshotResult writeSnapshot(Snapshot &snap, const std::string &path);

/**
 * Read and verify a snapshot. Every failure is a typed status —
 * snapshot files cross machines and commits, so the reader treats
 * them as untrusted input and never fatals.
 */
SnapshotResult readSnapshot(const std::string &path, Snapshot &out);

/**
 * A runner sink that freezes the sweep it observes. Attach with
 * SweepRunner::addSink (gdiffrun --snapshot=FILE does); the file is
 * written at finish(), and writeResult() reports how that went.
 */
class SnapshotSink : public runner::ResultSink
{
  public:
    explicit SnapshotSink(std::string path, std::string tool = "",
                          std::string note = "");

    void onJob(const runner::JobRecord &record) override;
    void finish() override;

    /** @return the write outcome (valid after finish()). */
    const SnapshotResult &writeResult() const { return result; }

  private:
    std::string path;
    Snapshot snap;
    SnapshotResult result;
};

/** Knobs for diffSnapshots(). */
struct SnapshotDiffOptions
{
    /// |new - old| must exceed this to count as a delta
    double defaultTolerance = 0.0;
    /// per-metric overrides of defaultTolerance
    std::map<std::string, double> metricTolerance;
    /// suppress a delta when both sides carry overlapping
    /// `<metric>_ci_lo`/`_ci_hi` intervals
    bool useIntervals = true;
};

/** One metric that moved beyond tolerance on a shared config. */
struct MetricDelta
{
    std::string key;    ///< the config's spec key
    std::string metric;
    bool oldPresent = false, newPresent = false;
    double oldValue = 0, newValue = 0;
};

/** The semantic difference between two snapshots. */
struct SnapshotDiff
{
    std::vector<std::string> added;   ///< keys only the new side has
    std::vector<std::string> removed; ///< keys only the old side has
    std::vector<MetricDelta> deltas;
    /// deltas suppressed because the sides' intervals overlap
    size_t intervalSuppressed = 0;

    bool
    empty() const
    {
        return added.empty() && removed.empty() && deltas.empty();
    }
};

/** Compare two snapshots config-by-config, metric-by-metric. */
SnapshotDiff diffSnapshots(const Snapshot &oldSnap,
                           const Snapshot &newSnap,
                           const SnapshotDiffOptions &opts = {});

/** Render the diff for humans (one line per change). */
void printSnapshotDiff(const SnapshotDiff &diff, std::ostream &os);

} // namespace check
} // namespace gdiff

#endif // GDIFF_CHECK_SNAPSHOT_HH
