#include "check/mine.hh"

#include <algorithm>
#include <cinttypes>
#include <map>
#include <optional>

#include "check/reference.hh"
#include "check/shrink.hh"
#include "runner/runner.hh"
#include "stats/table.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "workload/trace_io.hh"

namespace gdiff {
namespace check {

namespace {

constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

void
fnvMix64(uint64_t &h, uint64_t v)
{
    for (int b = 0; b < 64; b += 8) {
        h ^= (v >> b) & 0xff;
        h *= kFnvPrime;
    }
}

void
fnvMixStr(uint64_t &h, const std::string &s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= kFnvPrime;
    }
}

bool
knownFamily(const std::string &family, bool oracle)
{
    const auto &names = oracle ? pairNames() : batchFamilyNames();
    return std::find(names.begin(), names.end(), family) !=
           names.end();
}

bool
parseSide(const std::string &text, MineSide &out, std::string &error)
{
    std::string spec = text;
    out.oracle = false;
    if (spec.rfind("ref:", 0) == 0) {
        out.oracle = true;
        spec = spec.substr(4);
    }
    out.order = 0;
    size_t at = spec.find('@');
    if (at != std::string::npos) {
        std::string digits = spec.substr(at + 1);
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") !=
                std::string::npos) {
            error = "bad order in '" + text + "'";
            return false;
        }
        out.order = static_cast<unsigned>(std::stoul(digits));
        spec = spec.substr(0, at);
    }
    out.family = spec;
    if (!knownFamily(out.family, out.oracle)) {
        error = std::string(out.oracle ? "unknown oracle family '"
                                       : "unknown family '") +
                out.family + "' in '" + text + "'";
        return false;
    }
    return true;
}

} // anonymous namespace

std::string
MineSide::describe() const
{
    std::string s = oracle ? "ref:" + family : family;
    if (order != 0)
        s += "@" + std::to_string(order);
    return s;
}

std::unique_ptr<predictors::ValuePredictor>
MineSide::build() const
{
    if (oracle)
        return std::move(makePair(family, order).oracle);
    return makeProduction(family, order);
}

std::string
MineTarget::name() const
{
    return left.describe() + "-vs-" + right.describe();
}

bool
parseMineTarget(const std::string &text, MineTarget &out,
                std::string &error)
{
    // Split on "-vs-"; a "ref:" prefix never contains '-', and family
    // names never contain "-vs-", so the first occurrence is the
    // separator.
    size_t sep = text.find("-vs-");
    if (sep == std::string::npos || sep == 0 ||
        sep + 4 >= text.size()) {
        error = "expected LEFT-vs-RIGHT, got '" + text + "'";
        return false;
    }
    return parseSide(text.substr(0, sep), out.left, error) &&
           parseSide(text.substr(sep + 4), out.right, error);
}

const std::vector<std::string> &
defaultMineTargets()
{
    static const std::vector<std::string> targets = {
        "gdiff-vs-gfcm",   // cheap global stride vs context predictor
        "gdiff@1-vs-gdiff@4", // short vs long correlation window
    };
    return targets;
}

uint64_t
countConflicts(const MineTarget &target,
               const std::vector<FuzzRecord> &stream, Divergence *first)
{
    auto left = target.left.build();
    auto right = target.right.build();
    uint64_t conflicts = 0;
    for (size_t i = 0; i < stream.size(); ++i) {
        const FuzzRecord &r = stream[i];
        int64_t lv = 0, rv = 0;
        bool lp = left->predict(r.pc, lv);
        bool rp = right->predict(r.pc, rv);
        if (lp && rp && lv != rv) {
            if (conflicts == 0 && first) {
                first->index = i;
                first->pc = r.pc;
                first->prodPredicted = lp;
                first->refPredicted = rp;
                first->prodValue = lv;
                first->refValue = rv;
                first->updates = i;
            }
            ++conflicts;
        }
        left->update(r.pc, r.value);
        right->update(r.pc, r.value);
    }
    return conflicts;
}

std::string
WitnessFingerprint::key() const
{
    return formatString("p%u/q%u/s%u/0x%x/0x%x", valuePeriod, pcPeriod,
                        phases, signPattern, confTrajectory);
}

uint64_t
WitnessFingerprint::digest() const
{
    uint64_t h = kFnvBasis;
    fnvMix64(h, valuePeriod);
    fnvMix64(h, pcPeriod);
    fnvMix64(h, phases);
    fnvMix64(h, signPattern);
    fnvMix64(h, confTrajectory);
    return h;
}

WitnessFingerprint
fingerprintWitness(const MineTarget &target,
                   const std::vector<FuzzRecord> &stream)
{
    WitnessFingerprint fp;
    std::vector<uint64_t> values, pcs;
    values.reserve(stream.size());
    pcs.reserve(stream.size());
    for (const FuzzRecord &r : stream) {
        values.push_back(static_cast<uint64_t>(r.value));
        pcs.push_back(r.pc);
    }
    fp.valuePeriod = workload::detectStridePeriod(
        values.data(), static_cast<uint32_t>(values.size()));
    fp.pcPeriod = workload::detectStridePeriod(
        pcs.data(), static_cast<uint32_t>(pcs.size()));

    std::vector<uint64_t> distinct = pcs;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    fp.phases = static_cast<uint32_t>(distinct.size());

    for (size_t i = 1; i < stream.size() && i <= 16; ++i) {
        int64_t delta = static_cast<int64_t>(
            static_cast<uint64_t>(stream[i].value) -
            static_cast<uint64_t>(stream[i - 1].value));
        if (delta < 0)
            fp.signPattern |= 1u << (i - 1);
    }

    // The left side's confidence trajectory: whether it abstained,
    // hit, or missed on each of the first 16 records.
    auto left = target.left.build();
    for (size_t i = 0; i < stream.size() && i < 16; ++i) {
        int64_t v = 0;
        uint32_t outcome = 0; // no prediction
        if (left->predict(stream[i].pc, v))
            outcome = v == stream[i].value ? 1 : 2;
        fp.confTrajectory |= outcome << (2 * i);
        left->update(stream[i].pc, stream[i].value);
    }
    return fp;
}

namespace {

/** Score of one generator configuration: conflicts on its stream. */
uint64_t
scoreConfig(const MineTarget &target, const FuzzStreamConfig &gen)
{
    return countConflicts(target, fuzzValueStream(gen));
}

/** Mutate one generator knob in place, seeded. */
void
mutateConfig(Xorshift64Star &rng, FuzzStreamConfig &gen)
{
    switch (rng.below(5)) {
      case 0: { // bump a behavior weight
        unsigned b = static_cast<unsigned>(rng.below(kFuzzBehaviors));
        gen.behaviorWeights[b] += 1 + static_cast<unsigned>(
            rng.below(3));
        break;
      }
      case 1: { // drop a behavior class entirely (if any other stays)
        unsigned b = static_cast<unsigned>(rng.below(kFuzzBehaviors));
        unsigned others = 0;
        for (unsigned i = 0; i < kFuzzBehaviors; ++i)
            if (i != b)
                others += gen.behaviorWeights[i];
        if (others > 0)
            gen.behaviorWeights[b] = 0;
        break;
      }
      case 2: // halve/double the site count within [1, 256]
        if (rng.chancePercent(50))
            gen.sites = std::max(1u, gen.sites / 2);
        else
            gen.sites = std::min(256u, gen.sites * 2);
        break;
      case 3: // reroll how many sites sit at the int64 edges
        gen.wideValuePercent =
            static_cast<unsigned>(rng.below(101));
        break;
      case 4: // reroll the stream sub-seed
      default:
        gen.seed = rng.next();
        break;
    }
}

/**
 * Minimize a conflicting stream beyond plain ddmin. Records after the
 * first conflict are dropped outright (they cannot be needed for *a*
 * conflict to exist), then ddmin runs, then a pairwise-removal
 * fixpoint escapes the contiguous-removal local minima ddmin is
 * allowed to stop in — the streams are a dozen records by then, so
 * the O(n^2) trials are trivially cheap.
 */
std::vector<FuzzRecord>
minimizeWitness(const MineTarget &target,
                std::vector<FuzzRecord> stream, uint64_t maxTrials)
{
    auto conflicts = [&target](const std::vector<FuzzRecord> &c) {
        return countConflicts(target, c) > 0;
    };
    Divergence first;
    if (countConflicts(target, stream, &first) > 0 &&
        first.index + 1 < stream.size())
        stream.resize(first.index + 1);
    stream = shrinkStream(stream, conflicts,
                          ShrinkConfig{maxTrials});
    // Site unification: collapsing every record onto the conflict
    // site shortens the per-PC warm-up the conflict needs, which
    // unlocks removals ddmin alone cannot reach.
    if (countConflicts(target, stream, &first) > 0) {
        std::vector<FuzzRecord> onePc = stream;
        for (auto &r : onePc)
            r.pc = first.pc;
        if (conflicts(onePc))
            stream = shrinkStream(onePc, conflicts,
                                  ShrinkConfig{maxTrials});
    }
    bool improved = true;
    while (improved && stream.size() > 2) {
        improved = false;
        for (size_t i = 0; i < stream.size() && !improved; ++i) {
            for (size_t j = i + 1; j < stream.size() && !improved;
                 ++j) {
                std::vector<FuzzRecord> cand;
                cand.reserve(stream.size() - 2);
                for (size_t k = 0; k < stream.size(); ++k)
                    if (k != i && k != j)
                        cand.push_back(stream[k]);
                if (conflicts(cand)) {
                    stream = shrinkStream(
                        cand, conflicts, ShrinkConfig{maxTrials});
                    improved = true;
                }
            }
        }
    }
    return stream;
}

/** One hill-climb restart; nullopt when no conflict was found. */
std::optional<MinedWitness>
runRestart(const MineConfig &cfg, uint64_t restartSeed)
{
    Xorshift64Star rng(restartSeed);
    FuzzStreamConfig best;
    best.seed = rng.next();
    best.records = cfg.records;
    uint64_t bestScore = scoreConfig(cfg.target, best);

    for (unsigned round = 0; round < cfg.rounds; ++round) {
        FuzzStreamConfig cand = best;
        mutateConfig(rng, cand);
        uint64_t score = scoreConfig(cfg.target, cand);
        if (score > bestScore) {
            best = cand;
            bestScore = score;
        }
    }
    if (bestScore == 0)
        return std::nullopt;

    MinedWitness w;
    w.generator = best;
    w.foundConflicts = bestScore;
    const MineTarget &target = cfg.target;
    w.stream = minimizeWitness(target, fuzzValueStream(best),
                               cfg.shrinkTrials);
    w.conflicts = countConflicts(target, w.stream, &w.first);
    w.digest = streamDigest(w.stream);
    w.fingerprint = fingerprintWitness(target, w.stream);
    return w;
}

} // anonymous namespace

MineReport
mineDisagreements(const MineConfig &cfg)
{
    GDIFF_ASSERT(cfg.restarts >= 1, "mining needs >= 1 restart");
    MineReport report;
    report.targetName = cfg.target.name();

    // Restarts are independent: each derives its own seed from the
    // root seed and its index, runs to completion, and lands in its
    // slot — merged in index order below, so thread count never
    // changes the report.
    std::vector<std::optional<MinedWitness>> found(cfg.restarts);
    runner::ThreadPool pool(cfg.threads);
    pool.forEach(cfg.restarts, [&](size_t r) {
        uint64_t restartSeed =
            cfg.seed + 0x9e3779b97f4a7c15ull * (r + 1);
        found[r] = runRestart(cfg, restartSeed);
    });

    // Deduplicate identical shrunken streams (restarts often converge
    // on the same minimal witness).
    std::vector<uint64_t> seen;
    for (auto &w : found) {
        if (!w)
            continue;
        if (std::find(seen.begin(), seen.end(), w->digest) !=
            seen.end())
            continue;
        seen.push_back(w->digest);
        report.witnesses.push_back(std::move(*w));
    }

    // Cluster by fingerprint key; clusters ordered by key so the
    // report (and its digest) is canonical.
    std::map<std::string, MineCluster> byKey;
    for (size_t i = 0; i < report.witnesses.size(); ++i) {
        const MinedWitness &w = report.witnesses[i];
        MineCluster &c = byKey[w.fingerprint.key()];
        c.fingerprint = w.fingerprint;
        c.members.push_back(i);
    }
    report.digest = kFnvBasis;
    for (auto &[key, cluster] : byKey) {
        cluster.digest = cluster.fingerprint.digest();
        for (size_t m : cluster.members)
            fnvMix64(cluster.digest, report.witnesses[m].digest);
        fnvMix64(report.digest, cluster.digest);
        report.clusters.push_back(std::move(cluster));
    }
    return report;
}

void
printMineReport(const MineReport &report, std::ostream &os)
{
    stats::Table table("blind spots: " + report.targetName, "cluster");
    table.addColumn("fingerprint");
    table.addColumn("witnesses");
    table.addColumn("records");
    table.addColumn("conflicts");
    table.addColumn("digest");
    for (size_t c = 0; c < report.clusters.size(); ++c) {
        const MineCluster &cluster = report.clusters[c];
        const MinedWitness &ex =
            report.witnesses[cluster.members.front()];
        table.beginRow(std::to_string(c));
        table.cell(cluster.fingerprint.key());
        table.cellInt(static_cast<long long>(cluster.members.size()));
        table.cellInt(static_cast<long long>(ex.stream.size()));
        table.cellInt(static_cast<long long>(ex.conflicts));
        table.cell(formatString("%016" PRIx64, cluster.digest));
    }
    table.print(os);
    for (size_t c = 0; c < report.clusters.size(); ++c) {
        const MinedWitness &ex =
            report.witnesses[report.clusters[c].members.front()];
        os << "cluster " << c << " exemplar: " << ex.first.describe()
           << "\n";
    }
    os << formatString("report digest: %016" PRIx64 "\n",
                       report.digest);
}

std::string
mineReportJsonl(const MineReport &report)
{
    std::string out;
    for (size_t c = 0; c < report.clusters.size(); ++c) {
        const MineCluster &cluster = report.clusters[c];
        const MinedWitness &ex =
            report.witnesses[cluster.members.front()];
        const WitnessFingerprint &fp = cluster.fingerprint;
        out += formatString(
            "{\"target\":\"%s\",\"cluster\":%zu,"
            "\"fingerprint\":{\"key\":\"%s\",\"value_period\":%u,"
            "\"pc_period\":%u,\"phases\":%u,\"sign_pattern\":%u,"
            "\"conf_trajectory\":%u},\"witnesses\":%zu,"
            "\"exemplar_records\":%zu,\"exemplar_conflicts\":%" PRIu64
            ",\"exemplar_digest\":\"%016" PRIx64
            "\",\"first\":\"%s\",\"digest\":\"%016" PRIx64 "\"}\n",
            json::escape(report.targetName).c_str(), c,
            json::escape(fp.key()).c_str(), fp.valuePeriod,
            fp.pcPeriod, fp.phases, fp.signPattern, fp.confTrajectory,
            cluster.members.size(), ex.stream.size(), ex.conflicts,
            ex.digest, json::escape(ex.first.describe()).c_str(),
            cluster.digest);
    }
    return out;
}

std::string
mineArtifactName(const std::string &targetName, size_t cluster)
{
    std::string safe = targetName;
    for (char &c : safe)
        if (c == ':' || c == '@')
            c = '_';
    return formatString("gdiffmine_%s_cluster%zu.gdtr", safe.c_str(),
                        cluster);
}

} // namespace check
} // namespace gdiff
