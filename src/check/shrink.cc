#include "check/shrink.hh"

#include <algorithm>
#include <memory>

#include "isa/instruction.hh"
#include "util/logging.hh"
#include "workload/trace_io.hh"

namespace gdiff {
namespace check {

std::vector<FuzzRecord>
shrinkStream(const std::vector<FuzzRecord> &stream,
             const FailPredicate &stillFails, const ShrinkConfig &cfg)
{
    if (!stillFails(stream))
        return stream;

    std::vector<FuzzRecord> cur = stream;
    uint64_t trials = 1; // the confirmation run above
    size_t n = 2;        // current chunk granularity

    while (cur.size() >= 2 && trials < cfg.maxTrials) {
        size_t chunk = (cur.size() + n - 1) / n;
        bool reduced = false;
        for (size_t start = 0;
             start < cur.size() && trials < cfg.maxTrials;
             start += chunk) {
            size_t end = std::min(start + chunk, cur.size());
            std::vector<FuzzRecord> candidate;
            candidate.reserve(cur.size() - (end - start));
            candidate.insert(candidate.end(), cur.begin(),
                             cur.begin() + start);
            candidate.insert(candidate.end(), cur.begin() + end,
                             cur.end());
            ++trials;
            if (!candidate.empty() && stillFails(candidate)) {
                cur = std::move(candidate);
                n = std::max<size_t>(2, n - 1);
                reduced = true;
                break;
            }
        }
        if (!reduced) {
            if (n >= cur.size())
                break; // already at single-record granularity
            n = std::min(cur.size(), n * 2);
        }
    }
    return cur;
}

std::string
reproArtifactName(const std::string &pairName, uint64_t seed)
{
    return formatString("gdifffuzz_%s_seed%llu.gdtr",
                        pairName.c_str(),
                        static_cast<unsigned long long>(seed));
}

void
writeReproArtifact(const std::string &path,
                   const std::vector<FuzzRecord> &stream)
{
    workload::TraceWriter writer(path);
    for (size_t i = 0; i < stream.size(); ++i) {
        workload::TraceRecord r;
        // Encode each production as "li t0, value" at the original
        // PC: producesValue() holds, so every trace consumer feeds
        // the record to the predictors exactly as fuzzed.
        r.inst.op = isa::Opcode::Li;
        r.inst.rd = isa::reg::t0;
        r.inst.imm = stream[i].value;
        r.seq = i;
        r.pc = stream[i].pc;
        r.nextPc = stream[i].pc + isa::instBytes;
        r.value = stream[i].value;
        writer.append(r);
    }
    writer.close();
}

std::vector<FuzzRecord>
readReproArtifact(const std::string &path)
{
    workload::TraceFileSource source(path);
    std::vector<FuzzRecord> stream;
    workload::TraceRecord r;
    while (source.next(r)) {
        if (r.producesValue())
            stream.push_back(FuzzRecord{r.pc, r.value});
    }
    return stream;
}

bool
readReproArtifactOr(const std::string &path,
                    std::vector<FuzzRecord> &stream,
                    workload::TraceIoResult *result)
{
    workload::TraceFileReader reader;
    workload::TraceIoResult r = reader.open(path);
    std::vector<FuzzRecord> records;
    auto chunk = std::make_unique<workload::TraceChunk>();
    while (r.ok()) {
        r = reader.read(*chunk);
        if (!r.ok())
            break;
        for (uint32_t i = 0; i < chunk->size; ++i) {
            if (chunk->producesValue(i))
                records.push_back(
                    FuzzRecord{chunk->pc[i], chunk->value[i]});
        }
    }
    if (result)
        *result = r;
    if (!r.end())
        return false;
    stream = std::move(records);
    return true;
}

} // namespace check
} // namespace gdiff
