/**
 * @file
 * Failing-input minimization and repro artifacts.
 *
 * shrinkStream() is classic delta debugging (ddmin): given a stream a
 * predicate marks as failing, remove progressively finer-grained
 * chunks as long as the predicate keeps failing. The predicate must
 * be self-contained — construct *fresh* predictor state on every
 * call — because each trial replays a different stream from scratch.
 *
 * Minimized streams are persisted as trace-io v2 files so any trace
 * consumer (gdiffrun --trace, the profile drivers) can replay them:
 * each (pc, value) record becomes an Li instruction writing t0, which
 * producesValue() and therefore reaches the predictors unchanged.
 */

#ifndef GDIFF_CHECK_SHRINK_HH
#define GDIFF_CHECK_SHRINK_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/differ.hh"
#include "workload/trace_io.hh"

namespace gdiff {
namespace check {

/** Returns true when the candidate stream still triggers the bug. */
using FailPredicate =
    std::function<bool(const std::vector<FuzzRecord> &)>;

/** Knobs for shrinkStream(). */
struct ShrinkConfig
{
    /// hard cap on predicate evaluations (each replays a stream)
    uint64_t maxTrials = 20'000;
};

/**
 * Minimize @p stream with delta debugging.
 *
 * @return a 1-minimal-ish subsequence that still satisfies
 * @p stillFails; returns @p stream unchanged if it does not fail in
 * the first place.
 */
std::vector<FuzzRecord>
shrinkStream(const std::vector<FuzzRecord> &stream,
             const FailPredicate &stillFails,
             const ShrinkConfig &cfg = {});

/** @return the canonical artifact filename for a pair and seed. */
std::string reproArtifactName(const std::string &pairName,
                              uint64_t seed);

/** Write @p stream to @p path as a trace-io v2 file. */
void writeReproArtifact(const std::string &path,
                        const std::vector<FuzzRecord> &stream);

/**
 * Read a repro artifact back as a (pc, value) stream. Any trace-io
 * v2 file works: only value-producing records are kept.
 */
std::vector<FuzzRecord> readReproArtifact(const std::string &path);

/**
 * Typed-error form of readReproArtifact() for untrusted artifacts
 * (gdifffuzz --replay takes arbitrary user paths): a missing,
 * corrupt, truncated, or wrong-version file comes back as the
 * TraceIoResult instead of fatal().
 *
 * @return true with the records in @p stream; false with @p result
 * (if non-null) holding the typed status and message.
 */
bool readReproArtifactOr(const std::string &path,
                         std::vector<FuzzRecord> &stream,
                         workload::TraceIoResult *result = nullptr);

} // namespace check
} // namespace gdiff

#endif // GDIFF_CHECK_SHRINK_HH
