/**
 * @file
 * The differential harness: drive a production predictor and its
 * reference oracle over the same (pc, value) stream and report the
 * first place they disagree — either on *whether* a prediction was
 * made or on the predicted value.
 *
 * The protocol per record mirrors the profile drivers: both models
 * are asked to predict for the record's PC, the answers are compared,
 * then both are trained on the actual value. Divergences therefore
 * carry the exact record index, which is what the shrinker
 * (src/check/shrink.hh) minimizes against.
 */

#ifndef GDIFF_CHECK_DIFFER_HH
#define GDIFF_CHECK_DIFFER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "predictors/value_predictor.hh"

namespace gdiff {
namespace check {

/** One fuzzed value production: the unit the oracles are diffed on. */
struct FuzzRecord
{
    uint64_t pc = 0;   ///< producing instruction's address
    int64_t value = 0; ///< the value it produced

    bool
    operator==(const FuzzRecord &o) const
    {
        return pc == o.pc && value == o.value;
    }
};

/** First point of disagreement between production and oracle. */
struct Divergence
{
    uint64_t index = 0; ///< record index within the stream
    uint64_t pc = 0;    ///< PC of the diverging record
    bool prodPredicted = false;
    bool refPredicted = false;
    int64_t prodValue = 0; ///< valid when prodPredicted
    int64_t refValue = 0;  ///< valid when refPredicted
    uint64_t updates = 0;  ///< records both models had trained on

    /** @return a one-line human-readable report. */
    std::string describe() const;
};

/**
 * Run both models over the stream, prediction-by-prediction.
 *
 * Both models must be freshly constructed: the comparison starts from
 * empty tables. @return the first divergence, or nullopt if the
 * models agree on every record.
 */
std::optional<Divergence>
diffStream(predictors::ValuePredictor &production,
           predictors::ValuePredictor &oracle,
           const std::vector<FuzzRecord> &stream);

/**
 * Replay the stream through the scalar and batch paths of the *same*
 * predictor family and assert prediction-by-prediction identity.
 *
 * `batch` is driven chunk-at-a-time through predictUpdateBatch() in
 * blocks of `chunk_lanes`; `scalar` is driven record-at-a-time through
 * the virtual predict()/update() pair. Both instances must be freshly
 * constructed with identical configuration. On disagreement the
 * returned Divergence reports the batch path as "production" and the
 * scalar path as "oracle", so shrink/artifact tooling works unchanged.
 *
 * @param chunk_lanes lanes per batch call (>= 1); pass awkward sizes
 *                    (1, primes, > SIMD width) to probe tail handling.
 */
std::optional<Divergence>
diffScalarVsBatch(predictors::ValuePredictor &scalar,
                  predictors::ValuePredictor &batch,
                  const std::vector<FuzzRecord> &stream,
                  uint32_t chunk_lanes);

/**
 * Stable 64-bit digest of a stream (FNV-1a over pc/value pairs) —
 * the reproducibility fingerprint gdifffuzz prints so two runs with
 * the same seed can be byte-compared.
 */
uint64_t streamDigest(const std::vector<FuzzRecord> &stream);

} // namespace check
} // namespace gdiff

#endif // GDIFF_CHECK_DIFFER_HH
