#include "check/differ.hh"

#include <algorithm>
#include <cinttypes>

#include "util/logging.hh"

namespace gdiff {
namespace check {

std::string
Divergence::describe() const
{
    auto side = [](bool predicted, int64_t value) {
        return predicted
                   ? formatString("%" PRId64 " (0x%" PRIx64 ")", value,
                                  static_cast<uint64_t>(value))
                   : std::string("no prediction");
    };
    return formatString(
        "record %" PRIu64 " pc=0x%" PRIx64
        ": production %s vs oracle %s",
        index, pc, side(prodPredicted, prodValue).c_str(),
        side(refPredicted, refValue).c_str());
}

std::optional<Divergence>
diffStream(predictors::ValuePredictor &production,
           predictors::ValuePredictor &oracle,
           const std::vector<FuzzRecord> &stream)
{
    for (size_t i = 0; i < stream.size(); ++i) {
        const FuzzRecord &r = stream[i];
        int64_t prod_value = 0, ref_value = 0;
        bool prod_hit = production.predict(r.pc, prod_value);
        bool ref_hit = oracle.predict(r.pc, ref_value);
        if (prod_hit != ref_hit ||
            (prod_hit && prod_value != ref_value)) {
            Divergence d;
            d.index = i;
            d.pc = r.pc;
            d.prodPredicted = prod_hit;
            d.refPredicted = ref_hit;
            d.prodValue = prod_value;
            d.refValue = ref_value;
            d.updates = i;
            return d;
        }
        production.update(r.pc, r.value);
        oracle.update(r.pc, r.value);
    }
    return std::nullopt;
}

std::optional<Divergence>
diffScalarVsBatch(predictors::ValuePredictor &scalar,
                  predictors::ValuePredictor &batch,
                  const std::vector<FuzzRecord> &stream,
                  uint32_t chunk_lanes)
{
    GDIFF_ASSERT(chunk_lanes > 0, "chunk_lanes must be >= 1");
    predictors::PredictionBatch out;
    std::vector<uint64_t> pcs(chunk_lanes);
    std::vector<int64_t> actuals(chunk_lanes);
    size_t base = 0;
    while (base < stream.size()) {
        uint32_t n = static_cast<uint32_t>(
            std::min<size_t>(chunk_lanes, stream.size() - base));
        for (uint32_t l = 0; l < n; ++l) {
            pcs[l] = stream[base + l].pc;
            actuals[l] = stream[base + l].value;
        }
        out.reset(n);
        batch.predictUpdateBatch(pcs.data(), actuals.data(), n, out);
        for (uint32_t l = 0; l < n; ++l) {
            int64_t sv = 0;
            bool sp = scalar.predict(pcs[l], sv);
            scalar.update(pcs[l], actuals[l]);
            bool bp = out.predicted[l] != 0;
            if (sp != bp || (sp && sv != out.value[l])) {
                Divergence d;
                d.index = base + l;
                d.pc = pcs[l];
                d.prodPredicted = bp;
                d.refPredicted = sp;
                d.prodValue = out.value[l];
                d.refValue = sv;
                d.updates = base + l;
                return d;
            }
        }
        base += n;
    }
    return std::nullopt;
}

uint64_t
streamDigest(const std::vector<FuzzRecord> &stream)
{
    uint64_t h = 0xcbf29ce484222325ull; // FNV offset basis
    auto mix = [&h](uint64_t v) {
        for (int b = 0; b < 64; b += 8) {
            h ^= (v >> b) & 0xff;
            h *= 0x100000001b3ull; // FNV prime
        }
    };
    for (const FuzzRecord &r : stream) {
        mix(r.pc);
        mix(static_cast<uint64_t>(r.value));
    }
    return h;
}

} // namespace check
} // namespace gdiff
