#include "check/fuzzer.hh"

#include <limits>

#include "isa/instruction.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "workload/assembler.hh"

namespace gdiff {
namespace check {

namespace {

/** How one fuzzed site produces its next value. */
enum class Behavior : unsigned {
    Constant, ///< repeats one value (last-value territory)
    Stride,   ///< fixed stride (local stride territory)
    Periodic, ///< repeating stride pattern (FCM territory)
    Follower, ///< last global value + constant diff (gdiff, k=0)
    Mirror,   ///< value from k productions back + diff (gdiff, k>0)
    Noise,    ///< uniform random (nobody's territory)
    NumBehaviors
};

struct Site
{
    uint64_t pc = 0;
    Behavior behavior = Behavior::Constant;
    int64_t value = 0;
    int64_t stride = 0;
    std::vector<int64_t> pattern; ///< Periodic: stride cycle
    size_t phase = 0;
    unsigned lag = 0;    ///< Mirror: global correlation distance
    int64_t delta = 0;   ///< Follower/Mirror: constant difference
};

} // anonymous namespace

namespace {

/**
 * Draw a behavior honoring cfg.behaviorWeights. All-equal weights use
 * the historical uniform draw so that every pre-existing (seed,
 * config) pair still produces the exact same stream.
 */
Behavior
pickBehavior(Xorshift64Star &rng, const FuzzStreamConfig &cfg)
{
    uint64_t total = 0;
    bool equal = true;
    for (unsigned w : cfg.behaviorWeights) {
        total += w;
        equal = equal && w == cfg.behaviorWeights[0];
    }
    GDIFF_ASSERT(total > 0, "fuzz behavior weights must not all be 0");
    if (equal) {
        return static_cast<Behavior>(rng.below(
            static_cast<uint64_t>(Behavior::NumBehaviors)));
    }
    uint64_t pick = rng.below(total);
    for (unsigned b = 0; b < kFuzzBehaviors; ++b) {
        if (pick < cfg.behaviorWeights[b])
            return static_cast<Behavior>(b);
        pick -= cfg.behaviorWeights[b];
    }
    return Behavior::Noise; // unreachable
}

} // anonymous namespace

std::vector<FuzzRecord>
fuzzValueStream(const FuzzStreamConfig &cfg)
{
    GDIFF_ASSERT(cfg.sites >= 1, "fuzz stream needs >= 1 site");
    Xorshift64Star rng(cfg.seed);

    std::vector<Site> sites(cfg.sites);
    for (unsigned i = 0; i < cfg.sites; ++i) {
        Site &s = sites[i];
        // Spread PCs across the text segment so hashed and low-bit
        // table indexing both see realistic addresses.
        s.pc = isa::textBase +
               isa::instBytes * (1 + rng.below(1 << 16));
        s.behavior = pickBehavior(rng, cfg);
        // Some sites live near the int64 edges: stride updates there
        // must wrap in two's complement exactly like the hardware.
        if (rng.chancePercent(cfg.wideValuePercent)) {
            s.value = std::numeric_limits<int64_t>::max() -
                      static_cast<int64_t>(rng.below(1024));
        } else {
            s.value = rng.inRange(-100'000, 100'000);
        }
        s.stride = rng.inRange(-4096, 4096);
        s.delta = rng.inRange(-512, 512);
        s.lag = 1 + static_cast<unsigned>(rng.below(8));
        unsigned period = 2 + static_cast<unsigned>(rng.below(5));
        for (unsigned p = 0; p < period; ++p)
            s.pattern.push_back(rng.inRange(-256, 256));
    }

    // Recent global productions, newest at the end (bounded: no
    // mirror looks back further than 8).
    std::vector<int64_t> global;

    std::vector<FuzzRecord> stream;
    stream.reserve(cfg.records);
    for (uint64_t n = 0; n < cfg.records; ++n) {
        Site &s = sites[rng.below(cfg.sites)];
        uint64_t u = static_cast<uint64_t>(s.value);
        switch (s.behavior) {
          case Behavior::Constant:
            break;
          case Behavior::Stride:
            u += static_cast<uint64_t>(s.stride);
            break;
          case Behavior::Periodic:
            u += static_cast<uint64_t>(
                s.pattern[s.phase++ % s.pattern.size()]);
            break;
          case Behavior::Follower:
          case Behavior::Mirror: {
            unsigned lag = s.behavior == Behavior::Follower ? 1
                                                            : s.lag;
            if (global.size() >= lag) {
                u = static_cast<uint64_t>(
                        global[global.size() - lag]) +
                    static_cast<uint64_t>(s.delta);
            } else {
                u += static_cast<uint64_t>(s.stride);
            }
            break;
          }
          case Behavior::Noise:
          default:
            u = rng.next();
            break;
        }
        s.value = static_cast<int64_t>(u);
        stream.push_back(FuzzRecord{s.pc, s.value});
        global.push_back(s.value);
        if (global.size() > 16)
            global.erase(global.begin());
    }
    return stream;
}

std::string
fuzzProgramSource(const FuzzProgramConfig &cfg)
{
    GDIFF_ASSERT(cfg.bodyOps >= 1 && cfg.iterations >= 1,
                 "fuzz program needs a non-empty body and loop");
    Xorshift64Star rng(cfg.seed);

    // Register roles: s0/s2 are array bases, s1 the loop counter —
    // the body only ever writes the t0..t7 temporaries, so the loop
    // always terminates.
    static const char *const temps[] = {"t0", "t1", "t2", "t3",
                                        "t4", "t5", "t6", "t7"};
    constexpr unsigned numTemps = 8;
    auto temp = [&]() { return temps[rng.below(numTemps)]; };
    auto base = [&]() { return rng.chancePercent(50) ? "s0" : "s2"; };

    std::string src;
    src += "# fuzzed program, seed " + std::to_string(cfg.seed) + "\n";
    src += ".reg s0 0x100000\n";
    src += ".reg s2 0x200000\n";
    src += ".reg s1 " + std::to_string(cfg.iterations) + "\n";
    for (unsigned i = 0; i < 32; ++i) {
        src += ".word " + std::to_string(0x100000 + 8 * i) + " " +
               std::to_string(rng.inRange(-1'000'000, 1'000'000)) +
               "\n";
    }

    // Forward-branch labels waiting to be placed: name and how many
    // more instructions until the bind point.
    std::vector<std::pair<std::string, unsigned>> pending;
    unsigned next_label = 0;
    bool used_call = false;

    auto place_labels = [&](std::string &out) {
        for (auto it = pending.begin(); it != pending.end();) {
            if (it->second == 0) {
                out += it->first + ":\n";
                it = pending.erase(it);
            } else {
                --it->second;
                ++it;
            }
        }
    };

    src += "loop:\n";
    for (unsigned op = 0; op < cfg.bodyOps; ++op) {
        place_labels(src);
        std::string line = "    ";
        switch (rng.below(10)) {
          case 0:
            line += std::string("addi ") + temp() + ", " + temp() +
                    ", " + std::to_string(rng.inRange(-64, 64));
            break;
          case 1: {
            static const char *const rrr[] = {"add", "sub", "mul",
                                              "xor", "and", "or"};
            line += std::string(rrr[rng.below(6)]) + " " + temp() +
                    ", " + temp() + ", " + temp();
            break;
          }
          case 2: {
            static const char *const sh[] = {"slli", "srli", "srai"};
            line += std::string(sh[rng.below(3)]) + " " + temp() +
                    ", " + temp() + ", " +
                    std::to_string(rng.below(64));
            break;
          }
          case 3:
            // Division is safe by construction: the executor defines
            // x/0 and INT64_MIN/-1.
            line += std::string(rng.chancePercent(50) ? "div" : "rem") +
                    " " + temp() + ", " + temp() + ", " + temp();
            break;
          case 4:
            line += std::string("li ") + temp() + ", " +
                    std::to_string(rng.inRange(-100'000, 100'000));
            break;
          case 5:
          case 6:
            line += std::string("ld ") + temp() + ", " +
                    std::to_string(8 * rng.below(64)) + "(" + base() +
                    ")";
            break;
          case 7:
            line += std::string("sd ") + temp() + ", " +
                    std::to_string(8 * rng.below(64)) + "(" + base() +
                    ")";
            break;
          case 8: {
            // Forward branch over the next 1..4 instructions; the
            // label is flushed before the loop tail at the latest,
            // so the backedge counter is never skipped.
            static const char *const br[] = {"beq", "bne", "blt",
                                             "bge"};
            std::string label = "fwd" + std::to_string(next_label++);
            line += std::string(br[rng.below(4)]) + " " + temp() +
                    ", " + temp() + ", " + label;
            pending.emplace_back(label,
                                 static_cast<unsigned>(rng.below(4)));
            break;
          }
          case 9:
            if (rng.chancePercent(40)) {
                line += "jal ra, fn";
                used_call = true;
            } else {
                line += std::string("mov ") + temp() + ", " + temp();
            }
            break;
        }
        src += line + "\n";
    }
    // Bind whatever forward labels remain to the loop tail: the
    // branches just skip to the backedge.
    for (auto &p : pending)
        src += p.first + ":\n";
    src += "    addi s1, s1, -1\n";
    src += "    bne s1, zero, loop\n";
    src += "    halt\n";
    if (used_call) {
        src += "fn:\n";
        src += "    addi t0, t0, 7\n";
        src += "    jr ra\n";
    }
    return src;
}

workload::Workload
fuzzProgram(const FuzzProgramConfig &cfg)
{
    return workload::assembleWorkload(
        fuzzProgramSource(cfg),
        "fuzz" + std::to_string(cfg.seed));
}

} // namespace check
} // namespace gdiff
