/**
 * @file
 * Naive reference-model oracles for differential checking.
 *
 * Each oracle is a straight transliteration of its predictor's update
 * rule as the paper (and DESIGN.md) states it: per-PC state lives in
 * ordinary std::map/std::vector containers, histories are kept as the
 * raw value sequences they logically are, and nothing is packed,
 * folded incrementally, or size-limited for speed. The production
 * predictors in src/predictors and src/core implement the *same
 * semantics* with tables, rolling hashes, and ring buffers — the
 * whole point of the check subsystem is that the two implementations
 * must agree prediction-by-prediction on any input stream
 * (src/check/differ.hh runs the comparison).
 *
 * Index/hash formulas (mix64 folding, table index masks) are part of
 * each predictor's specification — a tagless table's collisions are
 * architecturally visible — so the oracles recompute them from their
 * raw state on every access instead of maintaining them incrementally.
 *
 * To add an oracle for a new predictor: transliterate its update rule
 * here against map-based state, add a pair entry to makePair(), and
 * extend pairNames(); tests/test_check.cc picks the new pair up
 * automatically (see docs/INTERNALS.md §7).
 */

#ifndef GDIFF_CHECK_REFERENCE_HH
#define GDIFF_CHECK_REFERENCE_HH

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "predictors/value_predictor.hh"

namespace gdiff {
namespace check {

/** Last-value oracle: a map from PC to the last observed value. */
class RefLastValue : public predictors::ValuePredictor
{
  public:
    std::string name() const override { return "ref:last_value"; }

    bool predict(uint64_t pc, int64_t &value) override;
    void update(uint64_t pc, int64_t actual) override;

  private:
    std::map<uint64_t, int64_t> last;
};

/**
 * 2-delta stride oracle: last value, current stride, and the
 * previously observed stride per PC; the predicted stride only
 * changes after the same new stride repeats.
 */
class RefStride2Delta : public predictors::ValuePredictor
{
  public:
    std::string name() const override { return "ref:stride"; }

    bool predict(uint64_t pc, int64_t &value) override;
    void update(uint64_t pc, int64_t actual) override;

  private:
    struct State
    {
        int64_t last = 0;
        int64_t stride = 0;
        int64_t lastStride = 0;
    };

    std::map<uint64_t, State> state;
};

/**
 * FCM oracle (Sazeides & Smith): each PC keeps its raw value history;
 * the level-2 slot for (PC, history) holds the value that followed
 * that history last time. The level-2 index is recomputed from the
 * raw history on every access by the documented fold (16 bits per
 * item, truncated to the order, hashed with the PC).
 */
class RefFcm : public predictors::ValuePredictor
{
  public:
    /**
     * @param order         history length (1..4, as production).
     * @param level2_entries level-2 slots (power of two).
     */
    explicit RefFcm(unsigned order = 3,
                    uint64_t level2_entries = 64 * 1024);

    std::string name() const override { return "ref:fcm"; }

    bool predict(uint64_t pc, int64_t &value) override;
    void update(uint64_t pc, int64_t actual) override;

  private:
    struct State
    {
        std::deque<int64_t> history; ///< raw values, newest at back
        uint64_t seen = 0;           ///< values observed
    };

    /** Level-2 index for pc's current raw history. */
    uint64_t slotOf(uint64_t pc, const State &s) const;

    unsigned order;
    uint64_t level2Entries;
    std::map<uint64_t, State> level1;
    std::map<uint64_t, int64_t> level2; ///< slot index -> value
};

/**
 * Global-FCM oracle: one shared raw history of the last `order`
 * values produced by *any* instruction; a (PC, context) slot stores
 * the value that followed. The context hash and table index are
 * recomputed from the raw global history on every access.
 */
class RefGFcm : public predictors::ValuePredictor
{
  public:
    /**
     * @param order         global values in the context (1..8).
     * @param table_entries (PC, context) slots (power of two).
     */
    explicit RefGFcm(unsigned order = 4,
                     uint64_t table_entries = 64 * 1024);

    std::string name() const override { return "ref:gfcm"; }

    bool predict(uint64_t pc, int64_t &value) override;
    void update(uint64_t pc, int64_t actual) override;

  private:
    /** Table index for pc under the current global context. */
    uint64_t slotOf(uint64_t pc) const;

    unsigned order;
    uint64_t tableEntries;
    std::deque<int64_t> global; ///< raw values, newest at back
    std::map<uint64_t, int64_t> table; ///< slot index -> value
};

/**
 * gdiff oracle (paper §3, profile mode): the global value queue is
 * the literal sequence of produced values; each PC's entry stores the
 * differences between its last produced value and the visible window
 * plus the selected distance. Prediction is queue[k] + diff[k];
 * training recomputes all differences, selects the nearest matching
 * position, and stores the fresh differences either way.
 */
class RefGDiff : public predictors::ValuePredictor
{
  public:
    /**
     * @param order window size n.
     * @param delay profile-mode value delay T (§3.1): the predictor
     *              cannot see the newest T values.
     */
    explicit RefGDiff(unsigned order = 8, unsigned delay = 0);

    std::string name() const override { return "ref:gdiff"; }

    bool predict(uint64_t pc, int64_t &value) override;
    void update(uint64_t pc, int64_t actual) override;

  private:
    struct Entry
    {
        std::vector<int64_t> diffs;
        int distance = -1;
    };

    /** The delay-shifted visible window, values[0] = most recent. */
    std::vector<int64_t> visibleWindow() const;

    unsigned order;
    unsigned delay;
    std::deque<int64_t> queue; ///< every produced value, newest at back
    std::map<uint64_t, Entry> entries;
};

/**
 * Wraps an oracle and deliberately corrupts its predictions once a
 * given number of updates have been observed — the mutation-sanity
 * probe proving the differential harness actually detects a wrong
 * model (and giving the shrinker a reproducible divergence to
 * minimize).
 */
class CorruptedOracle : public predictors::ValuePredictor
{
  public:
    /**
     * @param inner         the oracle to corrupt (owned).
     * @param corrupt_after updates before predictions start lying.
     */
    CorruptedOracle(std::unique_ptr<predictors::ValuePredictor> inner,
                    uint64_t corrupt_after = 0)
        : inner(std::move(inner)), corruptAfter(corrupt_after)
    {}

    std::string name() const override
    {
        return "corrupted:" + inner->name();
    }

    bool
    predict(uint64_t pc, int64_t &value) override
    {
        if (!inner->predict(pc, value))
            return false;
        if (updates >= corruptAfter) {
            // off-by-one: the subtlest possible lie (wrapping, so
            // INT64_MAX inputs stay defined behaviour)
            value = static_cast<int64_t>(
                static_cast<uint64_t>(value) + 1);
        }
        return true;
    }

    void
    update(uint64_t pc, int64_t actual) override
    {
        inner->update(pc, actual);
        ++updates;
    }

  private:
    std::unique_ptr<predictors::ValuePredictor> inner;
    uint64_t corruptAfter;
    uint64_t updates = 0;
};

/** A production predictor and its reference oracle, ready to diff. */
struct PredictorPair
{
    std::string name;
    std::unique_ptr<predictors::ValuePredictor> production;
    std::unique_ptr<predictors::ValuePredictor> oracle;
};

/**
 * @return the checkable pair names: last_value, stride, fcm, gfcm,
 * gdiff.
 */
const std::vector<std::string> &pairNames();

/**
 * Build a (production, oracle) pair by name. Production instances use
 * unlimited per-PC first-level tables so the comparison is free of
 * PC-aliasing (fixed-size shared structures — the FCM level 2, the
 * gFCM table — are part of the semantics and are modelled by the
 * oracles). Calls fatal() on an unknown name.
 *
 * @param name  one of pairNames().
 * @param order history/window order; 0 picks the pair's default
 *              (fcm 3, gfcm 4, gdiff 8; ignored by last_value and
 *              stride).
 */
PredictorPair makePair(const std::string &name, unsigned order = 0);

/**
 * @return every production family with a batched implementation —
 * the universe of the scalar-vs-batch differ (diffScalarVsBatch):
 * last_value, last_n, stride, pi, fcm, dfcm, gfcm, hybrid, gdiff,
 * gdiff2.
 */
const std::vector<std::string> &batchFamilyNames();

/**
 * Build one production predictor by family name. The scalar and batch
 * paths live on the same object, so a scalar-vs-batch diff constructs
 * two identically-configured instances and drives one through
 * predict()/update() and the other through predictUpdateBatch().
 * Unlimited first-level tables, as makePair(). Calls fatal() on an
 * unknown name.
 *
 * @param name  one of batchFamilyNames().
 * @param order history/window order; 0 picks the family default.
 */
std::unique_ptr<predictors::ValuePredictor>
makeProduction(const std::string &name, unsigned order = 0);

} // namespace check
} // namespace gdiff

#endif // GDIFF_CHECK_REFERENCE_HH
