/**
 * @file
 * Seeded, deterministic fuzz-input generation for the check
 * subsystem. Two generators:
 *
 *  - fuzzValueStream(): a raw (pc, value) stream mixing the locality
 *    classes the predictors care about — constants, strides, periodic
 *    stride patterns, globally correlated followers (the paper's
 *    global stride locality), and pure noise — with occasional values
 *    near the int64 boundaries to stress wrapping arithmetic.
 *
 *  - fuzzProgram(): a random-but-valid synthetic-ISA program, emitted
 *    as assembler *text* and run through workload/assembler, so every
 *    fuzz case also exercises the text assembler. Programs are a
 *    counted outer loop around a random straight-line body with
 *    forward branches and an optional call/return pair; they always
 *    terminate, and any memory address is legal against the sparse
 *    Memory model.
 *
 * All randomness flows through util/random.hh's Xorshift64Star, so a
 * (seed, config) pair reproduces the exact same inputs on any host.
 */

#ifndef GDIFF_CHECK_FUZZER_HH
#define GDIFF_CHECK_FUZZER_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "check/differ.hh"
#include "workload/workload.hh"

namespace gdiff {
namespace check {

/// Number of site behavior classes fuzzValueStream mixes (constant,
/// stride, periodic, global follower, lagged mirror, noise — in that
/// order, matching FuzzStreamConfig::behaviorWeights).
inline constexpr unsigned kFuzzBehaviors = 6;

/** Parameters of a fuzzed value stream. */
struct FuzzStreamConfig
{
    uint64_t seed = 1;
    uint64_t records = 10'000;
    /// static value-producing sites (PCs) in the stream
    unsigned sites = 24;
    /// percent of sites that produce values near the int64 edges,
    /// stressing two's-complement wrap in stride arithmetic
    unsigned wideValuePercent = 25;
    /// Relative weight of each behavior class when assigning sites:
    /// {constant, stride, periodic, follower, mirror, noise}. The
    /// disagreement miner (src/check/mine.hh) hill-climbs over this
    /// mix; all-equal weights reproduce the historical uniform site
    /// assignment bit-for-bit, so existing seeds keep their digests.
    /// At least one weight must be non-zero.
    std::array<unsigned, kFuzzBehaviors> behaviorWeights{1, 1, 1,
                                                         1, 1, 1};
};

/** Generate a deterministic fuzzed (pc, value) stream. */
std::vector<FuzzRecord> fuzzValueStream(const FuzzStreamConfig &cfg);

/** Parameters of a fuzzed synthetic-ISA program. */
struct FuzzProgramConfig
{
    uint64_t seed = 1;
    /// random instructions per loop body
    unsigned bodyOps = 48;
    /// outer-loop trip count (bounds execution length)
    unsigned iterations = 400;
};

/** Generate the assembler source text of a random valid program. */
std::string fuzzProgramSource(const FuzzProgramConfig &cfg);

/**
 * Generate a random valid program and assemble it into a runnable
 * workload (initial registers included).
 */
workload::Workload fuzzProgram(const FuzzProgramConfig &cfg);

} // namespace check
} // namespace gdiff

#endif // GDIFF_CHECK_FUZZER_HH
