#include "check/snapshot.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/json.hh"
#include "util/logging.hh"

namespace gdiff {
namespace check {

namespace {

constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t
fnvLine(uint64_t h, const std::string &line)
{
    for (unsigned char c : line) {
        h ^= c;
        h *= kFnvPrime;
    }
    // Terminate each line so concatenation ambiguity can't collide.
    h ^= '\n';
    h *= kFnvPrime;
    return h;
}

SnapshotResult
failure(SnapshotStatus status, std::string message)
{
    return SnapshotResult{status, std::move(message)};
}

} // anonymous namespace

const char *
snapshotStatusName(SnapshotStatus s)
{
    switch (s) {
      case SnapshotStatus::Ok:
        return "ok";
      case SnapshotStatus::IoError:
        return "io_error";
      case SnapshotStatus::Parse:
        return "parse_error";
      case SnapshotStatus::BadFormat:
        return "bad_format";
      case SnapshotStatus::BadVersion:
        return "bad_version";
      case SnapshotStatus::DigestMismatch:
        return "digest_mismatch";
    }
    return "unknown";
}

void
Snapshot::canonicalize()
{
    std::sort(jobs.begin(), jobs.end(),
              [](const runner::JobRecord &a,
                 const runner::JobRecord &b) {
                  return a.spec.key() < b.spec.key();
              });
}

uint64_t
Snapshot::digest() const
{
    uint64_t h = kFnvBasis;
    for (const runner::JobRecord &job : jobs)
        h = fnvLine(h, runner::JsonlSink::deterministicJson(job));
    return h;
}

SnapshotResult
writeSnapshot(Snapshot &snap, const std::string &path)
{
    snap.canonicalize();
    std::string doc = "{\"format\":\"gdiff-snapshot\",\"version\":" +
                      std::to_string(snapshotVersion);
    doc += ",\"tool\":\"" + json::escape(snap.tool) + "\"";
    doc += ",\"note\":\"" + json::escape(snap.note) + "\"";
    doc += formatString(",\"digest\":\"%016" PRIx64 "\"",
                        snap.digest());
    doc += ",\"jobs\":[";
    for (size_t i = 0; i < snap.jobs.size(); ++i) {
        if (i)
            doc += ',';
        doc += "\n";
        doc += runner::JsonlSink::deterministicJson(snap.jobs[i]);
    }
    doc += "\n]}\n";

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return failure(SnapshotStatus::IoError,
                       "cannot create '" + path + "'");
    bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok)
        return failure(SnapshotStatus::IoError,
                       "short write to '" + path + "'");
    return SnapshotResult{};
}

SnapshotResult
readSnapshot(const std::string &path, Snapshot &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return failure(SnapshotStatus::IoError,
                       "cannot open '" + path + "'");
    std::string text;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    bool readOk = !std::ferror(f);
    std::fclose(f);
    if (!readOk)
        return failure(SnapshotStatus::IoError,
                       "read error on '" + path + "'");

    json::Value root;
    std::string parseError;
    if (!json::parse(text, root, &parseError))
        return failure(SnapshotStatus::Parse,
                       path + ": " + parseError);
    if (!root.isObject())
        return failure(SnapshotStatus::BadFormat,
                       path + ": root is not an object");
    const json::Value *format = root.find("format");
    if (!format || !format->isString() ||
        format->str != "gdiff-snapshot")
        return failure(SnapshotStatus::BadFormat,
                       path + ": not a gdiff-snapshot document");
    const json::Value *version = root.find("version");
    if (!version || !version->isNumber())
        return failure(SnapshotStatus::BadFormat,
                       path + ": missing numeric 'version'");
    if (version->number < 1 || version->number > snapshotVersion)
        return failure(
            SnapshotStatus::BadVersion,
            formatString("%s: version %g unsupported (max %u)",
                         path.c_str(), version->number,
                         snapshotVersion));
    const json::Value *digest = root.find("digest");
    const json::Value *jobs = root.find("jobs");
    if (!digest || !digest->isString() || !jobs || !jobs->isArray())
        return failure(SnapshotStatus::BadFormat,
                       path +
                           ": missing 'digest' string or 'jobs' array");

    Snapshot snap;
    if (const json::Value *tool = root.find("tool");
        tool && tool->isString())
        snap.tool = tool->str;
    if (const json::Value *note = root.find("note");
        note && note->isString())
        snap.note = note->str;
    for (size_t i = 0; i < jobs->array.size(); ++i) {
        runner::JobRecord rec;
        std::string recError;
        if (!runner::parseRecordJson(jobs->array[i], rec, &recError))
            return failure(SnapshotStatus::BadFormat,
                           formatString("%s: job %zu: %s",
                                        path.c_str(), i,
                                        recError.c_str()));
        snap.jobs.push_back(std::move(rec));
    }

    // The stored digest covers the canonical job order; recomputing
    // it from the re-rendered payloads verifies both the values (17
    // significant digits round-trip exactly) and the ordering.
    uint64_t stored = 0;
    if (std::sscanf(digest->str.c_str(), "%" SCNx64, &stored) != 1 ||
        digest->str.size() != 16)
        return failure(SnapshotStatus::BadFormat,
                       path + ": malformed digest '" + digest->str +
                           "'");
    uint64_t computed = snap.digest();
    if (computed != stored)
        return failure(
            SnapshotStatus::DigestMismatch,
            formatString("%s: digest mismatch: stored %016" PRIx64
                         " computed %016" PRIx64,
                         path.c_str(), stored, computed));
    out = std::move(snap);
    return SnapshotResult{};
}

// ----------------------------------------------------- SnapshotSink

SnapshotSink::SnapshotSink(std::string path, std::string tool,
                           std::string note)
    : path(std::move(path))
{
    snap.tool = std::move(tool);
    snap.note = std::move(note);
}

void
SnapshotSink::onJob(const runner::JobRecord &record)
{
    snap.jobs.push_back(record);
}

void
SnapshotSink::finish()
{
    result = writeSnapshot(snap, path);
    if (!result.ok())
        warn("snapshot: %s", result.message.c_str());
}

// ------------------------------------------------------------- diff

namespace {

/** The tolerance that applies to @p metric. */
double
toleranceFor(const SnapshotDiffOptions &opts, const std::string &m)
{
    auto it = opts.metricTolerance.find(m);
    return it != opts.metricTolerance.end() ? it->second
                                            : opts.defaultTolerance;
}

bool
isIntervalColumn(const std::string &name)
{
    auto ends = [&name](const char *suffix) {
        size_t len = std::strlen(suffix);
        return name.size() > len &&
               name.compare(name.size() - len, len, suffix) == 0;
    };
    return ends("_ci_lo") || ends("_ci_hi");
}

/** @return the [lo, hi] interval for @p metric, if both bounds exist. */
bool
intervalFor(const runner::JobResult &r, const std::string &metric,
            double &lo, double &hi)
{
    bool haveLo = false, haveHi = false;
    for (const auto &[name, value] : r.metrics) {
        if (name == metric + "_ci_lo") {
            lo = value;
            haveLo = true;
        } else if (name == metric + "_ci_hi") {
            hi = value;
            haveHi = true;
        }
    }
    return haveLo && haveHi;
}

} // anonymous namespace

SnapshotDiff
diffSnapshots(const Snapshot &oldSnap, const Snapshot &newSnap,
              const SnapshotDiffOptions &opts)
{
    std::map<std::string, const runner::JobRecord *> oldByKey,
        newByKey;
    for (const auto &job : oldSnap.jobs)
        oldByKey[job.spec.key()] = &job;
    for (const auto &job : newSnap.jobs)
        newByKey[job.spec.key()] = &job;

    SnapshotDiff diff;
    for (const auto &[key, job] : newByKey) {
        (void)job;
        if (!oldByKey.count(key))
            diff.added.push_back(key);
    }
    for (const auto &[key, oldJob] : oldByKey) {
        auto it = newByKey.find(key);
        if (it == newByKey.end()) {
            diff.removed.push_back(key);
            continue;
        }
        const runner::JobRecord *newJob = it->second;

        // The union of both sides' metric names, in old-then-new
        // first-appearance order (stable and side-symmetric enough:
        // metric sets rarely differ, and when they do both show up).
        std::vector<std::string> names;
        auto collect = [&names](const runner::JobResult &r) {
            for (const auto &[name, value] : r.metrics) {
                (void)value;
                if (std::find(names.begin(), names.end(), name) ==
                    names.end())
                    names.push_back(name);
            }
        };
        collect(oldJob->result);
        collect(newJob->result);

        for (const std::string &name : names) {
            // Interval bounds are judged through their base metric's
            // overlap test, not as standalone numbers.
            if (isIntervalColumn(name))
                continue;
            bool oldHas = false, newHas = false;
            double oldV = 0, newV = 0;
            for (const auto &[n, v] : oldJob->result.metrics)
                if (n == name) {
                    oldHas = true;
                    oldV = v;
                }
            for (const auto &[n, v] : newJob->result.metrics)
                if (n == name) {
                    newHas = true;
                    newV = v;
                }
            if (oldHas && newHas) {
                double tol = toleranceFor(opts, name);
                if (!(std::fabs(newV - oldV) > tol))
                    continue;
                if (opts.useIntervals) {
                    double oldLo, oldHi, newLo, newHi;
                    if (intervalFor(oldJob->result, name, oldLo,
                                    oldHi) &&
                        intervalFor(newJob->result, name, newLo,
                                    newHi) &&
                        oldLo <= newHi && newLo <= oldHi) {
                        ++diff.intervalSuppressed;
                        continue;
                    }
                }
            }
            diff.deltas.push_back(
                MetricDelta{key, name, oldHas, newHas, oldV, newV});
        }
    }
    return diff;
}

void
printSnapshotDiff(const SnapshotDiff &diff, std::ostream &os)
{
    for (const std::string &key : diff.removed)
        os << "- config " << key << "\n";
    for (const std::string &key : diff.added)
        os << "+ config " << key << "\n";
    for (const MetricDelta &d : diff.deltas) {
        if (!d.oldPresent) {
            os << "+ metric " << d.metric << " [" << d.key
               << "]: " << formatString("%.17g", d.newValue) << "\n";
        } else if (!d.newPresent) {
            os << "- metric " << d.metric << " [" << d.key
               << "]: " << formatString("%.17g", d.oldValue) << "\n";
        } else {
            os << "! metric " << d.metric << " [" << d.key << "]: "
               << formatString("%.17g -> %.17g (delta %.3g)",
                               d.oldValue, d.newValue,
                               d.newValue - d.oldValue)
               << "\n";
        }
    }
    if (diff.intervalSuppressed) {
        os << "(" << diff.intervalSuppressed
           << " metric move(s) within overlapping confidence "
              "intervals)\n";
    }
    if (diff.empty())
        os << "snapshots match\n";
}

} // namespace check
} // namespace gdiff
