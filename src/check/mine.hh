/**
 * @file
 * Disagreement mining: an AnICA-style inconsistency search over the
 * fuzz generators. Where the differential fuzzer (gdifffuzz) waits
 * for a random stream to expose a production-vs-oracle divergence,
 * the miner *searches* for streams on which two chosen predictors
 * disagree as often as possible — any two members of the factory zoo,
 * or a production predictor against a reference oracle, at any
 * prediction orders.
 *
 * The search is a seeded hill-climb over the fuzz generator's
 * parameters (behavior-class mix, site count, wide-value rate, stream
 * sub-seed), restarted from several independent seeds. Each restart's
 * best stream is ddmin-shrunk with the existing shrinkStream() to a
 * minimal witness, and witnesses are clustered by a feature
 * fingerprint — stride period, phase count, delta sign pattern, and
 * the left predictor's confidence trajectory — so the final report
 * reads as a characterization of the pair's blind spots rather than a
 * pile of raw failures.
 *
 * Everything flows from MineConfig::seed through Xorshift64Star and
 * restarts are merged in index order, so reports (including every
 * digest) are bit-identical across runs and thread counts.
 */

#ifndef GDIFF_CHECK_MINE_HH
#define GDIFF_CHECK_MINE_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "check/differ.hh"
#include "check/fuzzer.hh"

namespace gdiff {
namespace check {

/**
 * One side of a mined pair: a predictor family plus how to build it.
 * Production sides come from makeProduction() (the factory zoo with
 * unlimited first-level tables); oracle sides are the reference
 * models from makePair().
 */
struct MineSide
{
    std::string family;   ///< factory family or oracle pair name
    bool oracle = false;  ///< reference oracle instead of production
    unsigned order = 0;   ///< history/window order; 0 = family default

    /** @return "gdiff@4" / "ref:gdiff" style label. */
    std::string describe() const;

    /** Construct a fresh predictor instance for this side. */
    std::unique_ptr<predictors::ValuePredictor> build() const;
};

/** The pair of predictors whose disagreements are mined. */
struct MineTarget
{
    MineSide left;  ///< reported as "production" in divergences
    MineSide right; ///< reported as "oracle" in divergences

    /** @return canonical "left-vs-right" label. */
    std::string name() const;
};

/**
 * Parse a target spec of the form `LEFT-vs-RIGHT`, where each side is
 * `[ref:]family[@order]` — e.g. `gdiff-vs-gfcm`, `gdiff@1-vs-gdiff@4`,
 * `gdiff@8-vs-ref:gdiff@8`. Production families come from
 * batchFamilyNames(), oracle families from pairNames().
 *
 * @return false with @p error set on malformed specs.
 */
bool parseMineTarget(const std::string &text, MineTarget &out,
                     std::string &error);

/**
 * @return the documented default targets the CI smoke mines:
 * cheap-global-vs-context (gdiff-vs-gfcm) and short-vs-long window
 * (gdiff@1-vs-gdiff@4).
 */
const std::vector<std::string> &defaultMineTargets();

/** Knobs for mineDisagreements(). */
struct MineConfig
{
    MineTarget target;
    uint64_t seed = 1;        ///< root of every random decision
    uint64_t records = 4096;  ///< records per candidate stream
    unsigned rounds = 32;     ///< hill-climb steps per restart
    unsigned restarts = 8;    ///< independent search starts
    unsigned threads = 1;     ///< workers for the restarts; 0 = auto
    uint64_t shrinkTrials = 20'000; ///< ddmin budget per witness
};

/**
 * Count the disagreements between the target's two sides on a
 * stream. A *conflict* is a record where both sides produce a
 * prediction and the values differ — the strongest form of
 * disagreement, insensitive to the sides' different warm-up
 * coverage (one-sided predictions are expected between families and
 * are not counted).
 *
 * @param first if non-null, receives the first conflict (left side
 *              reported as "production"); untouched when none.
 */
uint64_t countConflicts(const MineTarget &target,
                        const std::vector<FuzzRecord> &stream,
                        Divergence *first = nullptr);

/**
 * The blind-spot features a shrunken witness is clustered by. Two
 * witnesses with the same fingerprint expose the same *kind* of
 * disagreement even when their concrete values differ.
 */
struct WitnessFingerprint
{
    uint32_t valuePeriod = 1; ///< detectStridePeriod over the values
    uint32_t pcPeriod = 1;    ///< detectStridePeriod over the PCs
    uint32_t phases = 0;      ///< distinct PCs in the witness
    /// bit i set = the i-th value delta is negative (first 16 deltas)
    uint32_t signPattern = 0;
    /// 2 bits per record, first 16 records, replaying the left side:
    /// 0 = no prediction, 1 = correct, 2 = wrong
    uint32_t confTrajectory = 0;

    /** @return the canonical cluster key, e.g. "p1/q1/s3/0x5/0x9a". */
    std::string key() const;

    /** @return a stable 64-bit digest of the fingerprint fields. */
    uint64_t digest() const;
};

/** Compute a witness's fingerprint under @p target. */
WitnessFingerprint
fingerprintWitness(const MineTarget &target,
                   const std::vector<FuzzRecord> &stream);

/** One shrunken disagreement witness. */
struct MinedWitness
{
    std::vector<FuzzRecord> stream; ///< the ddmin-minimized stream
    uint64_t digest = 0;            ///< streamDigest(stream)
    uint64_t conflicts = 0;         ///< conflicts on the witness
    uint64_t foundConflicts = 0;    ///< conflicts on the pre-shrink best
    FuzzStreamConfig generator;     ///< the winning generator config
    WitnessFingerprint fingerprint;
    Divergence first;               ///< first conflict on the witness
};

/** Witnesses sharing one fingerprint. */
struct MineCluster
{
    WitnessFingerprint fingerprint;
    std::vector<size_t> members; ///< indices into MineReport::witnesses
    uint64_t digest = 0; ///< over the fingerprint + member digests
};

/** The per-pair blind-spot report. */
struct MineReport
{
    std::string targetName;
    std::vector<MinedWitness> witnesses; ///< deduplicated, seed order
    std::vector<MineCluster> clusters;   ///< sorted by fingerprint key
    uint64_t digest = 0; ///< over the cluster digests, in order
};

/** Run the full search → shrink → cluster pipeline for one target. */
MineReport mineDisagreements(const MineConfig &cfg);

/** Render the report as an aligned table (one row per cluster). */
void printMineReport(const MineReport &report, std::ostream &os);

/**
 * @return the report as deterministic JSONL, one object per cluster
 * (stable field order, hex digests) — byte-comparable across runs.
 */
std::string mineReportJsonl(const MineReport &report);

/** @return canonical artifact filename for a cluster's exemplar. */
std::string mineArtifactName(const std::string &targetName,
                             size_t cluster);

} // namespace check
} // namespace gdiff

#endif // GDIFF_CHECK_MINE_HH
