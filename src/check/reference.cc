#include "check/reference.hh"

#include "core/gdiff.hh"
#include "core/gdiff2.hh"
#include "predictors/fcm.hh"
#include "predictors/gfcm.hh"
#include "predictors/hybrid.hh"
#include "predictors/last_value.hh"
#include "predictors/pi.hh"
#include "predictors/stride.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace gdiff {
namespace check {

namespace {

/** Two's-complement wrapping add (the predictors' arithmetic). */
int64_t
wrapAdd(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                static_cast<uint64_t>(b));
}

/** Two's-complement wrapping subtract. */
int64_t
wrapSub(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) -
                                static_cast<uint64_t>(b));
}

/**
 * The context fold both FCM variants specify: each item contributes
 * its low 16 hash bits, oldest first, truncated to `order` items.
 */
uint64_t
foldRawHistory(const std::deque<int64_t> &items, unsigned order)
{
    uint64_t h = 0;
    for (int64_t v : items) {
        h = ((h << 16) | (mix64(static_cast<uint64_t>(v)) & 0xffff)) &
            mask(16 * order);
    }
    return h;
}

} // anonymous namespace

// ---------------------------------------------------- RefLastValue

bool
RefLastValue::predict(uint64_t pc, int64_t &value)
{
    auto it = last.find(pc);
    if (it == last.end())
        return false;
    value = it->second;
    return true;
}

void
RefLastValue::update(uint64_t pc, int64_t actual)
{
    last[pc] = actual;
}

// ------------------------------------------------- RefStride2Delta

bool
RefStride2Delta::predict(uint64_t pc, int64_t &value)
{
    auto it = state.find(pc);
    if (it == state.end())
        return false;
    value = wrapAdd(it->second.last, it->second.stride);
    return true;
}

void
RefStride2Delta::update(uint64_t pc, int64_t actual)
{
    auto it = state.find(pc);
    if (it == state.end()) {
        state[pc].last = actual;
        return;
    }
    State &s = it->second;
    int64_t new_stride = wrapSub(actual, s.last);
    // 2-delta rule: the predicted stride only changes once the same
    // new stride has been seen twice in a row.
    if (new_stride == s.lastStride)
        s.stride = new_stride;
    s.lastStride = new_stride;
    s.last = actual;
}

// ----------------------------------------------------------- RefFcm

RefFcm::RefFcm(unsigned order, uint64_t level2_entries)
    : order(order), level2Entries(level2_entries)
{
    GDIFF_ASSERT(order >= 1 && order <= 4,
                 "FCM oracle order out of range");
    GDIFF_ASSERT(isPowerOfTwo(level2Entries),
                 "FCM oracle level-2 size must be a power of two");
}

uint64_t
RefFcm::slotOf(uint64_t pc, const State &s) const
{
    uint64_t folded = foldRawHistory(s.history, order);
    return (mix64(folded) ^ mix64(pc)) & mask(ceilLog2(level2Entries));
}

bool
RefFcm::predict(uint64_t pc, int64_t &value)
{
    auto it = level1.find(pc);
    if (it == level1.end() || it->second.seen < order)
        return false;
    auto l2 = level2.find(slotOf(pc, it->second));
    if (l2 == level2.end())
        return false;
    value = l2->second;
    return true;
}

void
RefFcm::update(uint64_t pc, int64_t actual)
{
    State &s = level1[pc];
    // Once the history is warm, remember the value that followed it.
    if (s.seen >= order)
        level2[slotOf(pc, s)] = actual;
    s.history.push_back(actual);
    if (s.history.size() > order)
        s.history.pop_front();
    ++s.seen;
}

// ---------------------------------------------------------- RefGFcm

RefGFcm::RefGFcm(unsigned order, uint64_t table_entries)
    : order(order), tableEntries(table_entries)
{
    GDIFF_ASSERT(order >= 1 && order <= 8,
                 "gFCM oracle order out of range");
    GDIFF_ASSERT(isPowerOfTwo(tableEntries),
                 "gFCM oracle table size must be a power of two");
}

uint64_t
RefGFcm::slotOf(uint64_t pc) const
{
    // The context covers exactly `order` positions; positions older
    // than anything yet produced read as zero (tables power up
    // zeroed), matching the production predictor's ring semantics.
    uint64_t ctx = 0;
    for (unsigned k = 0; k < order; ++k) {
        int64_t v = k < global.size() ? global[global.size() - 1 - k]
                                      : 0;
        ctx = (ctx << 16) |
              (mix64(static_cast<uint64_t>(v)) & 0xffff);
    }
    return (mix64(pc >> 2) ^ mix64(ctx)) &
           mask(ceilLog2(tableEntries));
}

bool
RefGFcm::predict(uint64_t pc, int64_t &value)
{
    auto it = table.find(slotOf(pc));
    if (it == table.end())
        return false;
    value = it->second;
    return true;
}

void
RefGFcm::update(uint64_t pc, int64_t actual)
{
    // Store under the *current* context, then advance the global
    // history — the next prediction sees the new neighbourhood.
    table[slotOf(pc)] = actual;
    global.push_back(actual);
    if (global.size() > order)
        global.pop_front();
}

// --------------------------------------------------------- RefGDiff

RefGDiff::RefGDiff(unsigned order, unsigned delay)
    : order(order), delay(delay)
{
    GDIFF_ASSERT(order >= 1 && order <= core::maxOrder,
                 "gdiff oracle order out of range");
}

std::vector<int64_t>
RefGDiff::visibleWindow() const
{
    // values[k] is the value produced delay+k+1 productions ago: the
    // newest `delay` values are hidden (§3.1's value-delay model).
    std::vector<int64_t> w;
    size_t avail = queue.size() > delay ? queue.size() - delay : 0;
    size_t count = avail < order ? avail : order;
    for (size_t k = 0; k < count; ++k)
        w.push_back(queue[queue.size() - 1 - delay - k]);
    return w;
}

bool
RefGDiff::predict(uint64_t pc, int64_t &value)
{
    auto it = entries.find(pc);
    if (it == entries.end() || it->second.distance < 0)
        return false;
    const Entry &e = it->second;
    std::vector<int64_t> w = visibleWindow();
    size_t k = static_cast<size_t>(e.distance);
    if (k >= w.size() || k >= e.diffs.size())
        return false;
    value = wrapAdd(w[k], e.diffs[k]);
    return true;
}

void
RefGDiff::update(uint64_t pc, int64_t actual)
{
    Entry &e = entries[pc];
    std::vector<int64_t> w = visibleWindow();

    // Fresh differences between the produced value and the window.
    std::vector<int64_t> cur;
    cur.reserve(w.size());
    for (int64_t v : w)
        cur.push_back(wrapSub(actual, v));

    // Select the nearest position whose fresh difference matches the
    // stored one; on no match the distance is left alone (paper §3).
    size_t compare = cur.size() < e.diffs.size() ? cur.size()
                                                 : e.diffs.size();
    for (size_t i = 0; i < compare; ++i) {
        if (cur[i] == e.diffs[i]) {
            e.distance = static_cast<int>(i);
            break;
        }
    }
    e.diffs = std::move(cur);

    queue.push_back(actual);
    // Values older than the deepest window position can never be
    // seen again; dropping them keeps the oracle O(order) per record.
    while (queue.size() > static_cast<size_t>(order) + delay)
        queue.pop_front();
}

// ------------------------------------------------------- pair zoo

const std::vector<std::string> &
pairNames()
{
    static const std::vector<std::string> names = {
        "last_value", "stride", "fcm", "gfcm", "gdiff"};
    return names;
}

PredictorPair
makePair(const std::string &name, unsigned order)
{
    PredictorPair pair;
    pair.name = name;
    if (name == "last_value") {
        pair.production =
            std::make_unique<predictors::LastValuePredictor>(0);
        pair.oracle = std::make_unique<RefLastValue>();
    } else if (name == "stride") {
        pair.production =
            std::make_unique<predictors::StridePredictor>(0);
        pair.oracle = std::make_unique<RefStride2Delta>();
    } else if (name == "fcm") {
        unsigned o = order ? order : 3;
        predictors::FcmConfig cfg;
        cfg.level1Entries = 0;
        cfg.order = o;
        pair.production =
            std::make_unique<predictors::FcmPredictor>(cfg);
        pair.oracle = std::make_unique<RefFcm>(o, cfg.level2Entries);
    } else if (name == "gfcm") {
        unsigned o = order ? order : 4;
        predictors::GFcmConfig cfg;
        cfg.order = o;
        pair.production =
            std::make_unique<predictors::GFcmPredictor>(cfg);
        pair.oracle = std::make_unique<RefGFcm>(o, cfg.tableEntries);
    } else if (name == "gdiff") {
        unsigned o = order ? order : 8;
        core::GDiffConfig cfg;
        cfg.order = o;
        cfg.tableEntries = 0;
        pair.production = std::make_unique<core::GDiffPredictor>(cfg);
        pair.oracle = std::make_unique<RefGDiff>(o, cfg.valueDelay);
    } else {
        fatal("unknown predictor pair '%s' (expected one of "
              "last_value, stride, fcm, gfcm, gdiff)",
              name.c_str());
    }
    return pair;
}

const std::vector<std::string> &
batchFamilyNames()
{
    static const std::vector<std::string> names = {
        "last_value", "last_n", "stride", "pi",     "fcm",
        "dfcm",       "gfcm",   "hybrid", "gdiff",  "gdiff2"};
    return names;
}

std::unique_ptr<predictors::ValuePredictor>
makeProduction(const std::string &name, unsigned order)
{
    if (name == "last_value")
        return std::make_unique<predictors::LastValuePredictor>(0);
    if (name == "last_n")
        return std::make_unique<predictors::LastNValuePredictor>(4, 0);
    if (name == "stride")
        return std::make_unique<predictors::StridePredictor>(0);
    if (name == "pi")
        return std::make_unique<predictors::PiPredictor>(0);
    if (name == "fcm" || name == "dfcm") {
        predictors::FcmConfig cfg;
        cfg.level1Entries = 0;
        cfg.order = order ? order : 3;
        if (name == "dfcm")
            return std::make_unique<predictors::DfcmPredictor>(cfg);
        return std::make_unique<predictors::FcmPredictor>(cfg);
    }
    if (name == "gfcm") {
        predictors::GFcmConfig cfg;
        cfg.order = order ? order : 4;
        return std::make_unique<predictors::GFcmPredictor>(cfg);
    }
    if (name == "hybrid")
        return std::make_unique<predictors::HybridLocalPredictor>(0);
    if (name == "gdiff") {
        core::GDiffConfig cfg;
        cfg.order = order ? order : 8;
        cfg.tableEntries = 0;
        return std::make_unique<core::GDiffPredictor>(cfg);
    }
    if (name == "gdiff2") {
        core::GDiff2Config cfg;
        cfg.order = order ? order : 8;
        cfg.tableEntries = 0;
        return std::make_unique<core::GDiff2Predictor>(cfg);
    }
    fatal("unknown batch family '%s'", name.c_str());
    return nullptr;
}

} // namespace check
} // namespace gdiff
