#include "predictors/markov.hh"

#include "util/logging.hh"

namespace gdiff {
namespace predictors {

MarkovPredictor::MarkovPredictor(size_t entries, unsigned assoc)
    : assoc_(assoc)
{
    GDIFF_ASSERT(isPowerOfTwo(entries) && entries >= assoc,
                 "Markov table size must be a power of two >= assoc");
    numSets = entries / assoc;
    ways.resize(entries);
}

size_t
MarkovPredictor::setOf(uint64_t addr) const
{
    return static_cast<size_t>(mix64(addr) & (numSets - 1));
}

bool
MarkovPredictor::predict(uint64_t &value)
{
    if (!haveLast)
        return false;
    const Way *base = &ways[setOf(lastAddr) * assoc_];
    for (unsigned i = 0; i < assoc_; ++i) {
        if (base[i].valid && base[i].tag == lastAddr) {
            value = base[i].next;
            return true;
        }
    }
    return false;
}

void
MarkovPredictor::update(uint64_t addr)
{
    ++useClock;
    if (haveLast) {
        Way *base = &ways[setOf(lastAddr) * assoc_];
        Way *slot = nullptr;
        for (unsigned i = 0; i < assoc_; ++i) {
            if (base[i].valid && base[i].tag == lastAddr) {
                slot = &base[i];
                break;
            }
        }
        if (!slot) {
            slot = &base[0];
            for (unsigned i = 0; i < assoc_; ++i) {
                if (!base[i].valid) {
                    slot = &base[i];
                    break;
                }
                if (base[i].lastUse < slot->lastUse)
                    slot = &base[i];
            }
        }
        slot->valid = true;
        slot->tag = lastAddr;
        slot->next = addr;
        slot->lastUse = useClock;
    }
    lastAddr = addr;
    haveLast = true;
}

} // namespace predictors
} // namespace gdiff
