#include "predictors/markov.hh"

#include "util/logging.hh"
#include "util/simd.hh"

namespace gdiff {
namespace predictors {

MarkovPredictor::MarkovPredictor(size_t entries, unsigned assoc)
    : assoc_(assoc)
{
    GDIFF_ASSERT(isPowerOfTwo(entries) && entries >= assoc,
                 "Markov table size must be a power of two >= assoc");
    numSets = entries / assoc;
    ways.resize(entries);
}

size_t
MarkovPredictor::setOf(uint64_t addr) const
{
    return static_cast<size_t>(mix64(addr) & (numSets - 1));
}

bool
MarkovPredictor::predict(uint64_t &value)
{
    if (!haveLast)
        return false;
    const Way *base = &ways[setOf(lastAddr) * assoc_];
    for (unsigned i = 0; i < assoc_; ++i) {
        if (base[i].valid && base[i].tag == lastAddr) {
            value = base[i].next;
            return true;
        }
    }
    return false;
}

void
MarkovPredictor::update(uint64_t addr)
{
    ++useClock;
    if (haveLast) {
        Way *base = &ways[setOf(lastAddr) * assoc_];
        Way *slot = nullptr;
        for (unsigned i = 0; i < assoc_; ++i) {
            if (base[i].valid && base[i].tag == lastAddr) {
                slot = &base[i];
                break;
            }
        }
        if (!slot) {
            slot = &base[0];
            for (unsigned i = 0; i < assoc_; ++i) {
                if (!base[i].valid) {
                    slot = &base[i];
                    break;
                }
                if (base[i].lastUse < slot->lastUse)
                    slot = &base[i];
            }
        }
        slot->valid = true;
        slot->tag = lastAddr;
        slot->next = addr;
        slot->lastUse = useClock;
    }
    lastAddr = addr;
    haveLast = true;
}

void
MarkovPredictor::predictUpdateBatch(const uint64_t *addrs, uint32_t n,
                                    uint8_t *hits, uint64_t *guesses)
{
    mixScratch.resize(n);
    simd::mix64Lane(addrs, mixScratch.data(), n);
    for (uint32_t l = 0; l < n; ++l) {
        hits[l] = 0;
        const uint64_t addr = addrs[l];
        ++useClock;
        if (haveLast) {
            const uint64_t setMix =
                l == 0 ? mix64(lastAddr) : mixScratch[l - 1];
            Way *const base =
                &ways[static_cast<size_t>(setMix & (numSets - 1)) *
                      assoc_];
            Way *slot = nullptr;
            for (unsigned i = 0; i < assoc_; ++i) {
                if (base[i].valid && base[i].tag == lastAddr) {
                    slot = &base[i];
                    break;
                }
            }
            if (slot) {
                hits[l] = 1;
                guesses[l] = slot->next;
            } else {
                slot = &base[0];
                for (unsigned i = 0; i < assoc_; ++i) {
                    if (!base[i].valid) {
                        slot = &base[i];
                        break;
                    }
                    if (base[i].lastUse < slot->lastUse)
                        slot = &base[i];
                }
            }
            slot->valid = true;
            slot->tag = lastAddr;
            slot->next = addr;
            slot->lastUse = useClock;
        }
        lastAddr = addr;
        haveLast = true;
    }
}

} // namespace predictors
} // namespace gdiff
