/**
 * @file
 * Abstract interface shared by every value predictor in the library
 * (the local baselines in this directory and the gdiff predictor in
 * src/core).
 *
 * The protocol mirrors the hardware: predict() is called when an
 * instruction is dispatched, update() when its value becomes
 * architecturally known (profile drivers call them back-to-back; the
 * OOO pipeline separates them by the real dispatch-to-writeback
 * latency, with in-flight instances in between).
 *
 * The scalar pair is the semantic specification. The hot consumers
 * (sim/profile, the vp_scheme training path) drive the *batch*
 * protocol instead: whole lanes of (pc, actual) pairs per call, with
 * chunk-level conveniences over workload::TraceChunk. Every batch
 * entry point has a default that loops the scalar calls, so a new
 * predictor only ever implements predict()/update(); the hot families
 * override predictUpdateBatch() with fused single-lookup loops (see
 * docs/INTERNALS.md §10). Batched and scalar paths are required to be
 * bit-identical — src/check's scalar-vs-batch differ and the
 * gdifffuzz --batch mode police that the same way production-vs-
 * oracle divergence is policed.
 */

#ifndef GDIFF_PREDICTORS_VALUE_PREDICTOR_HH
#define GDIFF_PREDICTORS_VALUE_PREDICTOR_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace gdiff {

namespace workload {
struct TraceChunk;
}

namespace predictors {

/**
 * Per-lane outcome of a batch prediction call. Lanes are dense:
 * lane l is the l-th record the call predicted for (for the chunk
 * entry points, the l-th value-producing record of the chunk;
 * record[l] holds its chunk index).
 */
struct PredictionBatch
{
    std::vector<int64_t> value;    ///< predicted value (when predicted)
    std::vector<uint8_t> predicted;///< 1 if the lane was predicted
    std::vector<uint32_t> record;  ///< chunk record index (chunk APIs)

    /** Size for @p lanes lanes, zeroing predicted/value. */
    void
    reset(size_t lanes)
    {
        value.assign(lanes, 0);
        predicted.assign(lanes, 0);
        record.clear();
    }

    size_t lanes() const { return predicted.size(); }
};

/** Abstract PC-indexed value predictor. */
class ValuePredictor
{
  public:
    virtual ~ValuePredictor() = default;

    /** @return a short display name ("stride", "dfcm", "gdiff", ...). */
    virtual std::string name() const = 0;

    /**
     * Attempt a prediction for the value-producing instruction at pc.
     *
     * @param pc    instruction address.
     * @param value set to the predicted value on success.
     * @return true if the predictor produced a prediction.
     */
    virtual bool predict(uint64_t pc, int64_t &value) = 0;

    /**
     * Train on the actual produced value.
     *
     * @param pc     instruction address.
     * @param actual the value the instruction produced.
     */
    virtual void update(uint64_t pc, int64_t actual) = 0;

    /**
     * Predict with in-flight compensation: in an OOO pipeline the
     * table reflects the last *written-back* instance, while `ahead`
     * instances of this PC are still in flight. Computational
     * predictors can extrapolate across them (stride predictors
     * classically do); the default falls back to predict().
     *
     * @param pc    instruction address.
     * @param ahead number of in-flight instances of this PC.
     * @param value set to the prediction on success.
     */
    virtual bool
    predictAhead(uint64_t pc, unsigned ahead, int64_t &value)
    {
        (void)ahead;
        return predict(pc, value);
    }

    /// @name Batch protocol (array form)
    /// Semantics are defined by the scalar calls: each batch entry
    /// point must behave exactly as its default loop below. The fused
    /// form exists because the scalar protocol *interleaves* predict
    /// and update per record — prediction l must observe the training
    /// effect of lanes 0..l-1 — so a profitable batch implementation
    /// hoists table/state access per record, not per phase.
    /// @{

    /**
     * Predict lanes 0..n-1 without training: out lane l is the
     * prediction for pcs[l] against current state. Equivalent to n
     * predict() calls (no state changes).
     */
    virtual void
    predictBatch(const uint64_t *pcs, uint32_t n, PredictionBatch &out)
    {
        out.reset(n);
        for (uint32_t l = 0; l < n; ++l) {
            int64_t v = 0;
            if (predict(pcs[l], v)) {
                out.predicted[l] = 1;
                out.value[l] = v;
            }
        }
    }

    /**
     * Train lanes 0..n-1 in order. Equivalent to n update() calls.
     */
    virtual void
    updateBatch(const uint64_t *pcs, const int64_t *actuals, uint32_t n)
    {
        for (uint32_t l = 0; l < n; ++l)
            update(pcs[l], actuals[l]);
    }

    /**
     * The fused hot path: per lane l, predict for pcs[l], then train
     * on actuals[l] — exactly the profile drivers' per-record
     * protocol, so prediction l sees updates 0..l-1. Overrides must be
     * bit-identical to this default (the scalar-vs-batch differ
     * enforces it), including observable side effects such as table
     * lookup/conflict counts: one lookup() per trained lane.
     */
    virtual void
    predictUpdateBatch(const uint64_t *pcs, const int64_t *actuals,
                       uint32_t n, PredictionBatch &out)
    {
        out.reset(n);
        for (uint32_t l = 0; l < n; ++l) {
            int64_t v = 0;
            if (predict(pcs[l], v)) {
                out.predicted[l] = 1;
                out.value[l] = v;
            }
            update(pcs[l], actuals[l]);
        }
    }
    /// @}

    /// @name Batch protocol (chunk form)
    /// Gather the chunk's value-producing records into dense lanes
    /// (out.record maps lanes back to chunk indices), then forward to
    /// the array form. Non-virtual: predictors customize the array
    /// entry points.
    /// @{

    /** predictBatch over the chunk's value-producing records. */
    void predictChunk(const workload::TraceChunk &chunk,
                      PredictionBatch &out);

    /**
     * updateBatch over the chunk's value-producing records.
     *
     * @param actuals empty = train on the chunk's value column;
     *        otherwise one actual per value-producing record (in
     *        chunk order) — e.g. load addresses in the address study.
     */
    void updateChunk(const workload::TraceChunk &chunk,
                     std::span<const int64_t> actuals = {});

    /** predictUpdateBatch over the chunk's value-producing records. */
    void predictUpdateChunk(const workload::TraceChunk &chunk,
                            PredictionBatch &out);
    /// @}
};

/**
 * Gather the dense value-producing lanes of @p chunk, considering
 * only records [0, limit): lane arrays receive the pc and produced
 * value, records[l] the chunk record index. Arrays must hold
 * TraceChunk::capacity elements. @return the lane count. Shared by
 * the chunk entry points above and the profile drivers (which gather
 * once for many predictors).
 */
uint32_t gatherValueLanes(const workload::TraceChunk &chunk,
                          uint32_t limit, uint64_t *pcs,
                          int64_t *values, uint32_t *records);

} // namespace predictors
} // namespace gdiff

#endif // GDIFF_PREDICTORS_VALUE_PREDICTOR_HH
