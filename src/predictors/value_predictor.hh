/**
 * @file
 * Abstract interface shared by every value predictor in the library
 * (the local baselines in this directory and the gdiff predictor in
 * src/core).
 *
 * The protocol mirrors the hardware: predict() is called when an
 * instruction is dispatched, update() when its value becomes
 * architecturally known (profile drivers call them back-to-back; the
 * OOO pipeline separates them by the real dispatch-to-writeback
 * latency, with in-flight instances in between).
 */

#ifndef GDIFF_PREDICTORS_VALUE_PREDICTOR_HH
#define GDIFF_PREDICTORS_VALUE_PREDICTOR_HH

#include <cstdint>
#include <string>

namespace gdiff {
namespace predictors {

/** Abstract PC-indexed value predictor. */
class ValuePredictor
{
  public:
    virtual ~ValuePredictor() = default;

    /** @return a short display name ("stride", "dfcm", "gdiff", ...). */
    virtual std::string name() const = 0;

    /**
     * Attempt a prediction for the value-producing instruction at pc.
     *
     * @param pc    instruction address.
     * @param value set to the predicted value on success.
     * @return true if the predictor produced a prediction.
     */
    virtual bool predict(uint64_t pc, int64_t &value) = 0;

    /**
     * Train on the actual produced value.
     *
     * @param pc     instruction address.
     * @param actual the value the instruction produced.
     */
    virtual void update(uint64_t pc, int64_t actual) = 0;

    /**
     * Predict with in-flight compensation: in an OOO pipeline the
     * table reflects the last *written-back* instance, while `ahead`
     * instances of this PC are still in flight. Computational
     * predictors can extrapolate across them (stride predictors
     * classically do); the default falls back to predict().
     *
     * @param pc    instruction address.
     * @param ahead number of in-flight instances of this PC.
     * @param value set to the prediction on success.
     */
    virtual bool
    predictAhead(uint64_t pc, unsigned ahead, int64_t &value)
    {
        (void)ahead;
        return predict(pc, value);
    }
};

} // namespace predictors
} // namespace gdiff

#endif // GDIFF_PREDICTORS_VALUE_PREDICTOR_HH
