/**
 * @file
 * Classic two-component hybrid value predictor with a per-PC chooser
 * (after Wang & Franklin, MICRO-30, and the hybrid schemes the paper
 * cites as [21, 22, 25, 30]): a computational component (local
 * stride) and a context component (DFCM) compete, and a saturating
 * per-PC selector follows whichever has been right more recently.
 *
 * This is the strongest *local* baseline one can assemble from the
 * paper's building blocks — useful for showing that gdiff's global
 * information is not recoverable by merely combining local models.
 */

#ifndef GDIFF_PREDICTORS_HYBRID_HH
#define GDIFF_PREDICTORS_HYBRID_HH

#include <memory>

#include "predictors/fcm.hh"
#include "predictors/stride.hh"
#include "predictors/table.hh"
#include "predictors/value_predictor.hh"

namespace gdiff {
namespace predictors {

/** stride + DFCM with a 2-bit per-PC chooser. */
class HybridLocalPredictor : public ValuePredictor
{
  public:
    /**
     * @param entries table entries for the stride component, the
     *        DFCM level 1 and the chooser (0 = unlimited).
     */
    explicit HybridLocalPredictor(size_t entries = 0)
        : stride(entries), dfcm([&] {
              FcmConfig cfg;
              cfg.level1Entries = entries;
              return cfg;
          }()),
          chooser(entries)
    {}

    std::string name() const override { return "hybrid"; }

    bool
    predict(uint64_t pc, int64_t &value) override
    {
        int64_t sv = 0, dv = 0;
        bool have_s = stride.predict(pc, sv);
        bool have_d = dfcm.predict(pc, dv);
        if (!have_s && !have_d)
            return false;
        const Entry *e = chooser.probe(pc);
        bool prefer_dfcm = e && e->select >= 2;
        if (have_d && (prefer_dfcm || !have_s))
            value = dv;
        else
            value = sv;
        return true;
    }

    void
    update(uint64_t pc, int64_t actual) override
    {
        // Train the chooser on component disagreement, the classic
        // rule: move toward the component that was right.
        int64_t sv = 0, dv = 0;
        bool have_s = stride.predict(pc, sv);
        bool have_d = dfcm.predict(pc, dv);
        if (have_s && have_d && (sv == actual) != (dv == actual)) {
            Entry &e = chooser.lookup(pc);
            if (dv == actual) {
                if (e.select < 3)
                    ++e.select;
            } else {
                if (e.select > 0)
                    --e.select;
            }
        }
        stride.update(pc, actual);
        dfcm.update(pc, actual);
    }

    /**
     * Fused batch. The scalar pair computes each component's
     * prediction twice per record (once to answer, once to train the
     * chooser); component state cannot change in between, so the
     * fused loop computes sv/dv once per lane and reuses them for
     * both the answer and the chooser update.
     */
    void
    predictUpdateBatch(const uint64_t *pcs, const int64_t *actuals,
                       uint32_t n, PredictionBatch &out) override
    {
        out.reset(n);
        for (uint32_t l = 0; l < n; ++l) {
            const uint64_t pc = pcs[l];
            const int64_t actual = actuals[l];
            int64_t sv = 0, dv = 0;
            bool have_s = stride.predict(pc, sv);
            bool have_d = dfcm.predict(pc, dv);
            if (have_s || have_d) {
                const Entry *e = chooser.probe(pc);
                bool prefer_dfcm = e && e->select >= 2;
                out.predicted[l] = 1;
                out.value[l] =
                    (have_d && (prefer_dfcm || !have_s)) ? dv : sv;
            }
            if (have_s && have_d &&
                (sv == actual) != (dv == actual)) {
                Entry &e = chooser.lookup(pc);
                if (dv == actual) {
                    if (e.select < 3)
                        ++e.select;
                } else {
                    if (e.select > 0)
                        --e.select;
                }
            }
            stride.update(pc, actual);
            dfcm.update(pc, actual);
        }
    }

  private:
    struct Entry
    {
        uint8_t select = 1; ///< 2-bit: >= 2 prefers DFCM
    };

    StridePredictor stride;
    DfcmPredictor dfcm;
    PcIndexedTable<Entry> chooser;
};

} // namespace predictors
} // namespace gdiff

#endif // GDIFF_PREDICTORS_HYBRID_HH
