/**
 * @file
 * First-order Markov address predictor (Joseph & Grunwald), the
 * large-table baseline of the paper's load-address study (§6).
 *
 * The table maps an address to the address that followed it last time
 * in the stream it is trained on (all load addresses, or only missing
 * loads' addresses). A prediction for the next element of the stream
 * is the successor of the most recent element. The table is 4-way
 * set-associative and *tagged*: a tag hit is the coverage gate (the
 * paper notes the Markov predictor has no confidence counters).
 */

#ifndef GDIFF_PREDICTORS_MARKOV_HH
#define GDIFF_PREDICTORS_MARKOV_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bits.hh"

namespace gdiff {
namespace predictors {

/** First-order Markov predictor over an address stream. */
class MarkovPredictor
{
  public:
    /**
     * @param entries total table entries (power of two), e.g. the
     *        paper's 256K and 2M configurations.
     * @param assoc   set associativity (paper: 4).
     */
    explicit MarkovPredictor(size_t entries = 256 * 1024,
                             unsigned assoc = 4);

    /**
     * Predict the next stream address from the current last one.
     *
     * @param value set to the predicted next address on a tag hit.
     * @return true on a tag hit (the predictor's coverage gate).
     */
    bool predict(uint64_t &value);

    /**
     * Observe the next stream element: trains successor(last) = addr
     * and makes @p addr the new "last" element.
     */
    void update(uint64_t addr);

    /**
     * Fused batch over a stream segment: per lane, predict() then
     * update(addrs[l]) — but with one set walk instead of two (the
     * tag-hit slot of the predict is the training slot) and the
     * address hashes precomputed as a SIMD lane (lane l's set index
     * hashes addrs[l-1]).
     *
     * @param hits    set to 1 on a tag hit (coverage gate), else 0.
     * @param guesses the predicted next address for hit lanes
     *        (untouched elsewhere).
     */
    void predictUpdateBatch(const uint64_t *addrs, uint32_t n,
                            uint8_t *hits, uint64_t *guesses);

    /** @return total entries. */
    size_t entries() const { return numSets * assoc_; }

  private:
    struct Way
    {
        uint64_t tag = 0;
        uint64_t next = 0;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    size_t setOf(uint64_t addr) const;

    size_t numSets;
    unsigned assoc_;
    std::vector<Way> ways;
    uint64_t useClock = 0;
    uint64_t lastAddr = 0;
    bool haveLast = false;
    std::vector<uint64_t> mixScratch; ///< batch: mix64(addr) lanes
};

} // namespace predictors
} // namespace gdiff

#endif // GDIFF_PREDICTORS_MARKOV_HH
