/**
 * @file
 * FCM and DFCM local context predictors.
 *
 * FCM (Sazeides & Smith): a first-level table holds each PC's recent
 * value history (hashed); a second-level table maps the history to
 * the value that followed it last time.
 *
 * DFCM (Goeman, Vandierendonck & De Bosschere, HPCA'01): identical
 * structure, but over *strides* instead of raw values — the
 * second-level table predicts the next stride, added to the last
 * value. This is the "local context" baseline used throughout the
 * paper (64K-entry second level).
 */

#ifndef GDIFF_PREDICTORS_FCM_HH
#define GDIFF_PREDICTORS_FCM_HH

#include <vector>

#include "predictors/table.hh"
#include "predictors/value_predictor.hh"
#include "util/bits.hh"

namespace gdiff {
namespace predictors {

/** Configuration shared by FCM and DFCM. */
struct FcmConfig
{
    size_t level1Entries = 0;        ///< 0 = unlimited (per-PC)
    size_t level2Entries = 64 * 1024;///< must be a power of two
    unsigned order = 3;              ///< history length (1..4)
};

/**
 * Differential FCM: predicts last + stride(level2[hash(history of
 * strides)]).
 */
class DfcmPredictor : public ValuePredictor
{
  public:
    explicit DfcmPredictor(const FcmConfig &config = FcmConfig());

    std::string name() const override { return "dfcm"; }

    bool predict(uint64_t pc, int64_t &value) override;
    void update(uint64_t pc, int64_t actual) override;
    void predictUpdateBatch(const uint64_t *pcs,
                            const int64_t *actuals, uint32_t n,
                            PredictionBatch &out) override;

  private:
    struct L1Entry
    {
        int64_t last = 0;
        uint64_t history = 0;
        unsigned seen = 0; ///< values observed (saturates at order+1)
    };

    struct L2Entry
    {
        int64_t stride = 0;
        bool valid = false;
    };

    uint64_t foldHistory(uint64_t pc, uint64_t history) const;
    uint64_t pushHistory(uint64_t history, int64_t stride) const;

    FcmConfig cfg;
    unsigned l2Bits;
    PcIndexedTable<L1Entry> level1;
    std::vector<L2Entry> level2;
};

/**
 * Classic FCM over raw values: level2[hash(history of values)] is the
 * predicted next value.
 */
class FcmPredictor : public ValuePredictor
{
  public:
    explicit FcmPredictor(const FcmConfig &config = FcmConfig());

    std::string name() const override { return "fcm"; }

    bool predict(uint64_t pc, int64_t &value) override;
    void update(uint64_t pc, int64_t actual) override;
    void predictUpdateBatch(const uint64_t *pcs,
                            const int64_t *actuals, uint32_t n,
                            PredictionBatch &out) override;

  private:
    struct L1Entry
    {
        uint64_t history = 0;
        unsigned seen = 0;
    };

    struct L2Entry
    {
        int64_t value = 0;
        bool valid = false;
    };

    uint64_t foldHistory(uint64_t pc, uint64_t history) const;
    uint64_t pushHistory(uint64_t history, int64_t value) const;

    FcmConfig cfg;
    unsigned l2Bits;
    PcIndexedTable<L1Entry> level1;
    std::vector<L2Entry> level2;
};

} // namespace predictors
} // namespace gdiff

#endif // GDIFF_PREDICTORS_FCM_HH
