#include "predictors/value_predictor.hh"

#include <cassert>

#include "workload/trace.hh"

namespace gdiff {
namespace predictors {

uint32_t
gatherValueLanes(const workload::TraceChunk &chunk, uint32_t limit,
                 uint64_t *pcs, int64_t *values, uint32_t *records)
{
    const uint32_t n = limit < chunk.size ? limit : chunk.size;
    uint32_t lanes = 0;
    for (uint32_t i = 0; i < n; ++i) {
        if (!chunk.producesValue(i))
            continue;
        pcs[lanes] = chunk.pc[i];
        values[lanes] = chunk.value[i];
        records[lanes] = i;
        ++lanes;
    }
    return lanes;
}

namespace {

/** Scratch lane arrays for the chunk entry points. */
struct LaneScratch
{
    std::vector<uint64_t> pcs;
    std::vector<int64_t> values;
    std::vector<uint32_t> records;

    LaneScratch()
        : pcs(workload::TraceChunk::capacity),
          values(workload::TraceChunk::capacity),
          records(workload::TraceChunk::capacity)
    {}
};

LaneScratch &
scratch()
{
    thread_local LaneScratch s;
    return s;
}

} // anonymous namespace

void
ValuePredictor::predictChunk(const workload::TraceChunk &chunk,
                             PredictionBatch &out)
{
    LaneScratch &s = scratch();
    const uint32_t lanes =
        gatherValueLanes(chunk, chunk.size, s.pcs.data(),
                         s.values.data(), s.records.data());
    predictBatch(s.pcs.data(), lanes, out);
    out.record.assign(s.records.begin(), s.records.begin() + lanes);
}

void
ValuePredictor::updateChunk(const workload::TraceChunk &chunk,
                            std::span<const int64_t> actuals)
{
    LaneScratch &s = scratch();
    const uint32_t lanes =
        gatherValueLanes(chunk, chunk.size, s.pcs.data(),
                         s.values.data(), s.records.data());
    const int64_t *train = s.values.data();
    if (!actuals.empty()) {
        assert(actuals.size() == lanes &&
               "updateChunk: one actual per value-producing record");
        train = actuals.data();
    }
    updateBatch(s.pcs.data(), train, lanes);
}

void
ValuePredictor::predictUpdateChunk(const workload::TraceChunk &chunk,
                                   PredictionBatch &out)
{
    LaneScratch &s = scratch();
    const uint32_t lanes =
        gatherValueLanes(chunk, chunk.size, s.pcs.data(),
                         s.values.data(), s.records.data());
    predictUpdateBatch(s.pcs.data(), s.values.data(), lanes, out);
    out.record.assign(s.records.begin(), s.records.begin() + lanes);
}

} // namespace predictors
} // namespace gdiff
