/**
 * @file
 * Previous-instruction (PI) predictor (Nakra, Gupta & Soffa, HPCA-5):
 * the first-order *global* context-based predictor the paper cites as
 * prior work on global value history (§1-2).
 *
 * Each PC learns the difference between its value and the value of
 * the dynamically preceding value-producing instruction; prediction
 * adds the learned difference to the most recent global value. This
 * is equivalent to a gdiff predictor frozen at distance 0 — a useful
 * ablation point between local predictors and full gdiff.
 */

#ifndef GDIFF_PREDICTORS_PI_HH
#define GDIFF_PREDICTORS_PI_HH

#include "predictors/table.hh"
#include "predictors/value_predictor.hh"

namespace gdiff {
namespace predictors {

/** Order-1 global context predictor. */
class PiPredictor : public ValuePredictor
{
  public:
    /** @param entries table entries (0 = unlimited). */
    explicit PiPredictor(size_t entries = 0)
        : table(entries)
    {}

    std::string name() const override { return "pi"; }

    bool
    predict(uint64_t pc, int64_t &value) override
    {
        const Entry *e = table.probe(pc);
        if (!e || !e->seen || !haveGlobal)
            return false;
        value = static_cast<int64_t>(
            static_cast<uint64_t>(lastGlobal) +
            static_cast<uint64_t>(e->diff));
        return true;
    }

    void
    update(uint64_t pc, int64_t actual) override
    {
        Entry &e = table.lookup(pc);
        if (haveGlobal) {
            e.diff = static_cast<int64_t>(
                static_cast<uint64_t>(actual) -
                static_cast<uint64_t>(lastGlobal));
            e.seen = true;
        }
        lastGlobal = actual;
        haveGlobal = true;
    }

    /**
     * Fused batch: hoists the global last-value into locals and does
     * one lookup() per lane (predict reads the entry pre-mutation).
     */
    void
    predictUpdateBatch(const uint64_t *pcs, const int64_t *actuals,
                       uint32_t n, PredictionBatch &out) override
    {
        out.reset(n);
        int64_t g = lastGlobal;
        bool haveG = haveGlobal;
        for (uint32_t l = 0; l < n; ++l) {
            Entry &e = table.lookup(pcs[l]);
            const int64_t actual = actuals[l];
            if (e.seen && haveG) {
                out.predicted[l] = 1;
                out.value[l] = static_cast<int64_t>(
                    static_cast<uint64_t>(g) +
                    static_cast<uint64_t>(e.diff));
            }
            if (haveG) {
                e.diff = static_cast<int64_t>(
                    static_cast<uint64_t>(actual) -
                    static_cast<uint64_t>(g));
                e.seen = true;
            }
            g = actual;
            haveG = true;
        }
        lastGlobal = g;
        haveGlobal = haveG;
    }

  private:
    struct Entry
    {
        int64_t diff = 0;
        bool seen = false;
    };

    PcIndexedTable<Entry> table;
    int64_t lastGlobal = 0;
    bool haveGlobal = false;
};

} // namespace predictors
} // namespace gdiff

#endif // GDIFF_PREDICTORS_PI_HH
