/**
 * @file
 * Last-value and last-N-value predictors (Lipasti et al.; Burtscher &
 * Zorn) — the simplest computational baselines.
 */

#ifndef GDIFF_PREDICTORS_LAST_VALUE_HH
#define GDIFF_PREDICTORS_LAST_VALUE_HH

#include <vector>

#include "predictors/table.hh"
#include "predictors/value_predictor.hh"
#include "util/sat_counter.hh"

namespace gdiff {
namespace predictors {

/** Predicts that an instruction repeats its previous value. */
class LastValuePredictor : public ValuePredictor
{
  public:
    /** @param entries table entries (0 = unlimited). */
    explicit LastValuePredictor(size_t entries = 0)
        : table(entries)
    {}

    std::string name() const override { return "last_value"; }

    bool
    predict(uint64_t pc, int64_t &value) override
    {
        const Entry *e = table.probe(pc);
        if (!e || !e->seen)
            return false;
        value = e->last;
        return true;
    }

    void
    update(uint64_t pc, int64_t actual) override
    {
        Entry &e = table.lookup(pc);
        e.last = actual;
        e.seen = true;
    }

    /**
     * Fused batch: one lookup() per lane, reading the entry before
     * mutating it. A lookup-allocated fresh entry has seen=false, so
     * the predict half matches the scalar probe exactly, and the
     * single lookup per trained record matches the scalar
     * probe-then-lookup counter trail.
     */
    void
    predictUpdateBatch(const uint64_t *pcs, const int64_t *actuals,
                       uint32_t n, PredictionBatch &out) override
    {
        out.reset(n);
        for (uint32_t l = 0; l < n; ++l) {
            Entry &e = table.lookup(pcs[l]);
            if (e.seen) {
                out.predicted[l] = 1;
                out.value[l] = e.last;
            }
            e.last = actuals[l];
            e.seen = true;
        }
    }

    void
    updateBatch(const uint64_t *pcs, const int64_t *actuals,
                uint32_t n) override
    {
        for (uint32_t l = 0; l < n; ++l) {
            Entry &e = table.lookup(pcs[l]);
            e.last = actuals[l];
            e.seen = true;
        }
    }

  private:
    struct Entry
    {
        int64_t last = 0;
        bool seen = false;
    };

    PcIndexedTable<Entry> table;
};

/**
 * Last-N-value predictor: keeps the N most recent distinct values per
 * PC and predicts the one that most recently repeated (a small MRU
 * vote, after Burtscher & Zorn's exploration of last-n prediction).
 */
class LastNValuePredictor : public ValuePredictor
{
  public:
    /**
     * @param n       history depth per PC.
     * @param entries table entries (0 = unlimited).
     */
    explicit LastNValuePredictor(unsigned n = 4, size_t entries = 0)
        : depth(n), table(entries)
    {}

    std::string name() const override { return "last_n"; }

    bool
    predict(uint64_t pc, int64_t &value) override
    {
        const Entry *e = table.probe(pc);
        if (!e || e->values.empty())
            return false;
        // Predict the MRU value that has repeated, else the MRU.
        for (const auto &v : e->values) {
            if (v.hits > 0) {
                value = v.value;
                return true;
            }
        }
        value = e->values.front().value;
        return true;
    }

    void
    update(uint64_t pc, int64_t actual) override
    {
        Entry &e = table.lookup(pc);
        for (size_t i = 0; i < e.values.size(); ++i) {
            if (e.values[i].value == actual) {
                auto v = e.values[i];
                ++v.hits;
                e.values.erase(e.values.begin() +
                               static_cast<long>(i));
                e.values.insert(e.values.begin(), v);
                return;
            }
        }
        e.values.insert(e.values.begin(), Slot{actual, 0});
        if (e.values.size() > depth)
            e.values.pop_back();
    }

  private:
    struct Slot
    {
        int64_t value = 0;
        unsigned hits = 0;
    };

    struct Entry
    {
        std::vector<Slot> values;
    };

    unsigned depth;
    PcIndexedTable<Entry> table;
};

} // namespace predictors
} // namespace gdiff

#endif // GDIFF_PREDICTORS_LAST_VALUE_HH
