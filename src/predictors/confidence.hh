/**
 * @file
 * Per-PC confidence estimation (paper §4): a 3-bit saturating counter
 * per table entry, +2 on a correct prediction, -1 on an incorrect
 * one, confident at counts >= 4. The experiment drivers use this to
 * compute confidence-gated coverage and accuracy.
 */

#ifndef GDIFF_PREDICTORS_CONFIDENCE_HH
#define GDIFF_PREDICTORS_CONFIDENCE_HH

#include "predictors/table.hh"
#include "util/sat_counter.hh"

namespace gdiff {
namespace predictors {

/** Policy parameters for a confidence table. */
struct ConfidenceConfig
{
    unsigned bits = 3;
    unsigned upStep = 2;
    unsigned downStep = 1;
    unsigned threshold = 4;
    size_t entries = 0; ///< 0 = unlimited (per-PC)
};

/** PC-indexed confidence counters. */
class ConfidenceTable
{
  public:
    explicit ConfidenceTable(const ConfidenceConfig &config =
                                 ConfidenceConfig())
        : cfg(config), table(cfg.entries)
    {}

    /** @return true if predictions for pc are currently confident. */
    bool
    confident(uint64_t pc) const
    {
        return level(pc) >= cfg.threshold;
    }

    /** @return the raw confidence counter value for pc. */
    unsigned
    level(uint64_t pc) const
    {
        const Entry *e = table.probe(pc);
        return e ? e->count : 0;
    }

    /**
     * Train on the outcome of a prediction for pc.
     * @param correct whether the prediction was correct.
     */
    void
    train(uint64_t pc, bool correct)
    {
        Entry &e = table.lookup(pc);
        unsigned max = (1u << cfg.bits) - 1;
        if (correct)
            e.count = (e.count + cfg.upStep > max) ? max
                                                   : e.count + cfg.upStep;
        else
            e.count = (e.count < cfg.downStep) ? 0
                                               : e.count - cfg.downStep;
    }

    /** @return the policy in force. */
    const ConfidenceConfig &config() const { return cfg; }

  private:
    struct Entry
    {
        unsigned count = 0;
    };

    ConfidenceConfig cfg;
    PcIndexedTable<Entry> table;
};

} // namespace predictors
} // namespace gdiff

#endif // GDIFF_PREDICTORS_CONFIDENCE_HH
