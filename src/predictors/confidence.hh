/**
 * @file
 * Per-PC confidence estimation (paper §4): a 3-bit saturating counter
 * per table entry, +2 on a correct prediction, -1 on an incorrect
 * one, confident at counts >= 4. The experiment drivers use this to
 * compute confidence-gated coverage and accuracy.
 */

#ifndef GDIFF_PREDICTORS_CONFIDENCE_HH
#define GDIFF_PREDICTORS_CONFIDENCE_HH

#include "predictors/table.hh"
#include "util/sat_counter.hh"

namespace gdiff {
namespace predictors {

/** Policy parameters for a confidence table. */
struct ConfidenceConfig
{
    unsigned bits = 3;
    unsigned upStep = 2;
    unsigned downStep = 1;
    unsigned threshold = 4;
    size_t entries = 0; ///< 0 = unlimited (per-PC)
};

/** PC-indexed confidence counters. */
class ConfidenceTable
{
  public:
    explicit ConfidenceTable(const ConfidenceConfig &config =
                                 ConfidenceConfig())
        : cfg(config), table(cfg.entries)
    {}

    /** @return true if predictions for pc are currently confident. */
    bool
    confident(uint64_t pc) const
    {
        return level(pc) >= cfg.threshold;
    }

    /** @return the raw confidence counter value for pc. */
    unsigned
    level(uint64_t pc) const
    {
        const Entry *e = table.probe(pc);
        return e ? e->count : 0;
    }

    /**
     * Train on the outcome of a prediction for pc.
     * @param correct whether the prediction was correct.
     */
    void
    train(uint64_t pc, bool correct)
    {
        Entry &e = table.lookup(pc);
        unsigned max = (1u << cfg.bits) - 1;
        if (correct)
            e.count = (e.count + cfg.upStep > max) ? max
                                                   : e.count + cfg.upStep;
        else
            e.count = (e.count < cfg.downStep) ? 0
                                               : e.count - cfg.downStep;
    }

    /**
     * Batched gate-and-train, fusing the drivers' per-record pair
     * `confident(pc)` + `train(pc, correct)` into one table lookup
     * per predicted lane. Lanes without a prediction are untouched
     * (and report not-confident), mirroring the scalar short-circuit
     * `predicted && confident(pc)` / `if (predicted) train(...)`.
     *
     * @param predicted      1 where the predictor produced a value.
     * @param correct        1 where that prediction was correct.
     * @param confident_out  per-lane pre-train confidence.
     */
    void
    evaluateBatch(const uint64_t *pcs, const uint8_t *predicted,
                  const uint8_t *correct, uint32_t n,
                  uint8_t *confident_out)
    {
        const unsigned max = (1u << cfg.bits) - 1;
        for (uint32_t l = 0; l < n; ++l) {
            if (!predicted[l]) {
                confident_out[l] = 0;
                continue;
            }
            Entry &e = table.lookup(pcs[l]);
            confident_out[l] = e.count >= cfg.threshold ? 1 : 0;
            if (correct[l])
                e.count = (e.count + cfg.upStep > max)
                              ? max
                              : e.count + cfg.upStep;
            else
                e.count = (e.count < cfg.downStep)
                              ? 0
                              : e.count - cfg.downStep;
        }
    }

    /** @return the policy in force. */
    const ConfidenceConfig &config() const { return cfg; }

  private:
    struct Entry
    {
        unsigned count = 0;
    };

    ConfidenceConfig cfg;
    PcIndexedTable<Entry> table;
};

} // namespace predictors
} // namespace gdiff

#endif // GDIFF_PREDICTORS_CONFIDENCE_HH
