/**
 * @file
 * Local stride predictor (Gabbay & Mendelson; Lipasti & Shen).
 *
 * Each PC's entry tracks the last value and a stride. The default is
 * the 2-delta variant: the predicted stride only changes after the
 * same new stride has been observed twice in a row, which keeps one
 * odd value (e.g. a loop restart) from destroying a learned stride.
 */

#ifndef GDIFF_PREDICTORS_STRIDE_HH
#define GDIFF_PREDICTORS_STRIDE_HH

#include "predictors/table.hh"
#include "predictors/value_predictor.hh"

namespace gdiff {
namespace predictors {

/** Local (per-PC) stride predictor. */
class StridePredictor : public ValuePredictor
{
  public:
    /**
     * @param entries   table entries (0 = unlimited).
     * @param two_delta use the 2-delta stride update rule.
     */
    explicit StridePredictor(size_t entries = 0, bool two_delta = true)
        : table(entries), twoDelta(two_delta)
    {}

    std::string name() const override { return "stride"; }

    bool
    predict(uint64_t pc, int64_t &value) override
    {
        return predictAhead(pc, 0, value);
    }

    bool
    predictAhead(uint64_t pc, unsigned ahead, int64_t &value) override
    {
        const Entry *e = table.probe(pc);
        if (!e || !e->seen)
            return false;
        // Extrapolate across the in-flight instances: the classic
        // stride-predictor answer to dispatch-time table staleness.
        value = static_cast<int64_t>(
            static_cast<uint64_t>(e->last) +
            static_cast<uint64_t>(e->stride) * (ahead + 1));
        return true;
    }

    void
    update(uint64_t pc, int64_t actual) override
    {
        Entry &e = table.lookup(pc);
        if (!e.seen) {
            e.last = actual;
            e.seen = ~0ull;
            return;
        }
        int64_t new_stride = static_cast<int64_t>(
            static_cast<uint64_t>(actual) -
            static_cast<uint64_t>(e.last));
        if (twoDelta) {
            if (new_stride == e.lastStride)
                e.stride = new_stride;
            e.lastStride = new_stride;
        } else {
            e.stride = new_stride;
        }
        e.last = actual;
    }

    /**
     * Fused batch: one lookup() per lane replaces the scalar
     * probe+lookup pair; the predict half reads the entry before the
     * train half mutates it, so prediction l sees exactly the state
     * updates 0..l-1 left behind.
     *
     * The body is branchless: the 2-delta rule's data-dependent
     * branch mispredicts badly on mixed strided/noisy streams, so
     * both conditional stores are mask-arithmetic selects keyed on
     * Entry::seen (0 or all-ones). A virgin entry has stride ==
     * lastStride == 0, so leaving both unselected reproduces the
     * scalar first-sight early-return exactly.
     */
    void
    predictUpdateBatch(const uint64_t *pcs, const int64_t *actuals,
                       uint32_t n, PredictionBatch &out) override
    {
        out.reset(n);
        const bool two_delta = twoDelta;
        for (uint32_t l = 0; l < n; ++l) {
            Entry &e = table.lookup(pcs[l]);
            const int64_t actual = actuals[l];
            const uint64_t seen = e.seen;
            out.predicted[l] = static_cast<uint8_t>(seen & 1);
            // harmless when !seen: out.value is gated by predicted
            out.value[l] = static_cast<int64_t>(
                static_cast<uint64_t>(e.last) +
                static_cast<uint64_t>(e.stride));
            const uint64_t ns = static_cast<uint64_t>(actual) -
                                static_cast<uint64_t>(e.last);
            const uint64_t sm =
                two_delta
                    ? seen &
                          static_cast<uint64_t>(-static_cast<int64_t>(
                              static_cast<int64_t>(ns) ==
                              e.lastStride))
                    : seen;
            e.stride = static_cast<int64_t>(
                (ns & sm) |
                (static_cast<uint64_t>(e.stride) & ~sm));
            e.lastStride = static_cast<int64_t>(
                (ns & seen) |
                (static_cast<uint64_t>(e.lastStride) & ~seen));
            e.last = actual;
            e.seen = ~0ull;
        }
    }

    void
    updateBatch(const uint64_t *pcs, const int64_t *actuals,
                uint32_t n) override
    {
        const bool two_delta = twoDelta;
        for (uint32_t l = 0; l < n; ++l) {
            Entry &e = table.lookup(pcs[l]);
            const int64_t actual = actuals[l];
            const uint64_t seen = e.seen;
            const uint64_t ns = static_cast<uint64_t>(actual) -
                                static_cast<uint64_t>(e.last);
            const uint64_t sm =
                two_delta
                    ? seen &
                          static_cast<uint64_t>(-static_cast<int64_t>(
                              static_cast<int64_t>(ns) ==
                              e.lastStride))
                    : seen;
            e.stride = static_cast<int64_t>(
                (ns & sm) |
                (static_cast<uint64_t>(e.stride) & ~sm));
            e.lastStride = static_cast<int64_t>(
                (ns & seen) |
                (static_cast<uint64_t>(e.lastStride) & ~seen));
            e.last = actual;
            e.seen = ~0ull;
        }
    }

    /** @return conflict (aliasing) rate of the underlying table. */
    double tableConflictRate() const { return table.conflictRate(); }

  private:
    struct Entry
    {
        int64_t last = 0;
        int64_t stride = 0;
        int64_t lastStride = 0;
        /// 0 = virgin, all-ones = trained — doubles as the select
        /// mask for the branchless batch loop
        uint64_t seen = 0;
    };

    PcIndexedTable<Entry> table;
    bool twoDelta;
};

} // namespace predictors
} // namespace gdiff

#endif // GDIFF_PREDICTORS_STRIDE_HH
