/**
 * @file
 * Local stride predictor (Gabbay & Mendelson; Lipasti & Shen).
 *
 * Each PC's entry tracks the last value and a stride. The default is
 * the 2-delta variant: the predicted stride only changes after the
 * same new stride has been observed twice in a row, which keeps one
 * odd value (e.g. a loop restart) from destroying a learned stride.
 */

#ifndef GDIFF_PREDICTORS_STRIDE_HH
#define GDIFF_PREDICTORS_STRIDE_HH

#include "predictors/table.hh"
#include "predictors/value_predictor.hh"

namespace gdiff {
namespace predictors {

/** Local (per-PC) stride predictor. */
class StridePredictor : public ValuePredictor
{
  public:
    /**
     * @param entries   table entries (0 = unlimited).
     * @param two_delta use the 2-delta stride update rule.
     */
    explicit StridePredictor(size_t entries = 0, bool two_delta = true)
        : table(entries), twoDelta(two_delta)
    {}

    std::string name() const override { return "stride"; }

    bool
    predict(uint64_t pc, int64_t &value) override
    {
        return predictAhead(pc, 0, value);
    }

    bool
    predictAhead(uint64_t pc, unsigned ahead, int64_t &value) override
    {
        const Entry *e = table.probe(pc);
        if (!e || !e->seen)
            return false;
        // Extrapolate across the in-flight instances: the classic
        // stride-predictor answer to dispatch-time table staleness.
        value = static_cast<int64_t>(
            static_cast<uint64_t>(e->last) +
            static_cast<uint64_t>(e->stride) * (ahead + 1));
        return true;
    }

    void
    update(uint64_t pc, int64_t actual) override
    {
        Entry &e = table.lookup(pc);
        if (!e.seen) {
            e.last = actual;
            e.seen = true;
            return;
        }
        int64_t new_stride = static_cast<int64_t>(
            static_cast<uint64_t>(actual) -
            static_cast<uint64_t>(e.last));
        if (twoDelta) {
            if (new_stride == e.lastStride)
                e.stride = new_stride;
            e.lastStride = new_stride;
        } else {
            e.stride = new_stride;
        }
        e.last = actual;
    }

    /** @return conflict (aliasing) rate of the underlying table. */
    double tableConflictRate() const { return table.conflictRate(); }

  private:
    struct Entry
    {
        int64_t last = 0;
        int64_t stride = 0;
        int64_t lastStride = 0;
        bool seen = false;
    };

    PcIndexedTable<Entry> table;
    bool twoDelta;
};

} // namespace predictors
} // namespace gdiff

#endif // GDIFF_PREDICTORS_STRIDE_HH
