/**
 * @file
 * PC-indexed prediction-table storage shared by the predictors.
 *
 * Two modes, selected by the entry count:
 *  - entries == 0: "unlimited" — one entry per static PC (hash map),
 *    used for the paper's idealised profile experiments;
 *  - entries == 2^k: a tagless direct-mapped table indexed by PC bits,
 *    the hardware-realistic mode. Aliasing is tracked (paper Fig. 9)
 *    by remembering the last PC that touched each entry.
 */

#ifndef GDIFF_PREDICTORS_TABLE_HH
#define GDIFF_PREDICTORS_TABLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/bits.hh"
#include "util/logging.hh"

namespace gdiff {
namespace predictors {

/**
 * PC-indexed table of Entry.
 *
 * @tparam Entry default-constructible per-PC predictor state.
 */
template <typename Entry>
class PcIndexedTable
{
  public:
    /**
     * @param entries 0 for unlimited, otherwise a power of two.
     * @param hash_index when true, limited tables index with a mixed
     *        hash of the PC instead of its low bits.
     */
    explicit PcIndexedTable(size_t entries = 0, bool hash_index = false)
        : limit(entries), hashIndex(hash_index)
    {
        if (limit != 0) {
            GDIFF_ASSERT(isPowerOfTwo(limit),
                         "table size %zu is not a power of two", limit);
            table.resize(limit);
            owners.assign(limit, 0);
        }
    }

    /**
     * Locate the entry for @p pc (allocating in unlimited mode).
     * In limited mode, notes whether a different PC owned the entry
     * (an aliasing conflict) and takes ownership.
     *
     * @return reference to the entry (invalidated by later lookups in
     * unlimited mode).
     */
    Entry &
    lookup(uint64_t pc)
    {
        ++lookupCount;
        if (limit == 0)
            return mapped[pc];
        size_t idx = indexOf(pc);
        if (owners[idx] != 0 && owners[idx] != pc)
            ++conflictCount;
        owners[idx] = pc;
        return table[idx];
    }

    /**
     * Read-only probe: does not allocate, does not take ownership,
     * does not count conflicts. @return nullptr if absent (unlimited
     * mode only; limited tables always have an entry).
     */
    const Entry *
    probe(uint64_t pc) const
    {
        if (limit == 0) {
            auto it = mapped.find(pc);
            return it == mapped.end() ? nullptr : &it->second;
        }
        return &table[indexOf(pc)];
    }

    /**
     * Prefetch hint for the slot @p pc maps to — batch loops issue
     * this a tile ahead of lookup(). No-op in unlimited mode.
     */
    void
    prefetch(uint64_t pc) const
    {
        if (limit != 0) {
            size_t idx = indexOf(pc);
            // lookup() touches two random-indexed lines per PC: the
            // entry itself and the ownership word it read-modify-
            // writes. Warm both.
            __builtin_prefetch(&table[idx], 1);
            __builtin_prefetch(&owners[idx], 1);
        }
    }

    /** @return configured entry count (0 = unlimited). */
    size_t entries() const { return limit; }

    /** @return number of lookups that hit a different PC's entry. */
    uint64_t conflicts() const { return conflictCount; }

    /** @return total lookups. */
    uint64_t lookups() const { return lookupCount; }

    /** @return conflicts/lookups in [0,1]. */
    double
    conflictRate() const
    {
        return lookupCount == 0
                   ? 0.0
                   : static_cast<double>(conflictCount) /
                         static_cast<double>(lookupCount);
    }

  private:
    size_t
    indexOf(uint64_t pc) const
    {
        uint64_t key = pc >> 2; // instruction alignment
        if (hashIndex)
            key = mix64(key);
        return static_cast<size_t>(key & (limit - 1));
    }

    size_t limit;
    bool hashIndex;
    std::vector<Entry> table;
    std::vector<uint64_t> owners;
    std::unordered_map<uint64_t, Entry> mapped;
    uint64_t conflictCount = 0;
    uint64_t lookupCount = 0;
};

} // namespace predictors
} // namespace gdiff

#endif // GDIFF_PREDICTORS_TABLE_HH
