/**
 * @file
 * Global FCM: the context-based counterpart of gdiff in the paper's
 * §2 taxonomy, which classifies locality along two axes — {local,
 * global} history × {computational, context} model. The paper's
 * cited prior art covers order-1 global context (PI, Nakra et al.)
 * and dataflow-selected context (DDISC, Thomas & Franklin); this
 * class is the straightforward order-n member of that family:
 *
 * The global context is shared machine state: a rolling hash of the
 * last n values produced by *any* instruction. A table indexed by
 * (PC, global context) remembers the value that followed that
 * context last time; seeing the same neighbourhood of values again
 * predicts the same outcome.
 *
 * It completes the predictor zoo so the paper's central claim can be
 * tested in both directions: gdiff's win comes from the global
 * *computational* model, not merely from looking at global history.
 */

#ifndef GDIFF_PREDICTORS_GFCM_HH
#define GDIFF_PREDICTORS_GFCM_HH

#include <vector>

#include "predictors/value_predictor.hh"
#include "util/bits.hh"
#include "util/logging.hh"
#include "util/ring_history.hh"
#include "util/simd.hh"

namespace gdiff {
namespace predictors {

/** Configuration of the global-context predictor. */
struct GFcmConfig
{
    unsigned order = 4;             ///< global values hashed (1..8)
    size_t tableEntries = 64 * 1024;///< (PC, context) table, pow2
};

/** Order-n global context-based predictor. */
class GFcmPredictor : public ValuePredictor
{
  public:
    explicit GFcmPredictor(const GFcmConfig &config = GFcmConfig())
        : cfg(config), bits(ceilLog2(cfg.tableEntries)),
          table(cfg.tableEntries), folds(cfg.order)
    {
        GDIFF_ASSERT(isPowerOfTwo(cfg.tableEntries),
                     "gFCM table must be a power of two");
        GDIFF_ASSERT(cfg.order >= 1 && cfg.order <= 8,
                     "gFCM order out of range");
    }

    std::string name() const override { return "gfcm"; }

    bool
    predict(uint64_t pc, int64_t &value) override
    {
        const Entry &e = table[indexOf(pc)];
        if (!e.valid)
            return false;
        value = e.value;
        return true;
    }

    void
    update(uint64_t pc, int64_t actual) override
    {
        Entry &e = table[indexOf(pc)];
        e.value = actual;
        e.valid = true;
        // The global context advances with *every* produced value.
        pushContext(static_cast<uint16_t>(
            mix64(static_cast<uint64_t>(actual)) & 0xffff));
    }

    /**
     * Fused batch: the PC hash and the per-value 16-bit folds are
     * context-free, so both lanes are vectorized up front; the loop
     * keeps only the inherently sequential parts (the context-hash
     * mix and the context rebuild, which depend on every earlier
     * lane's value).
     */
    void
    predictUpdateBatch(const uint64_t *pcs, const int64_t *actuals,
                       uint32_t n, PredictionBatch &out) override
    {
        out.reset(n);
        pcMixScratch.resize(n);
        foldScratch.resize(n);
        for (uint32_t l = 0; l < n; ++l)
            pcMixScratch[l] = pcs[l] >> 2;
        simd::mix64Lane(pcMixScratch.data(), pcMixScratch.data(), n);
        simd::fold16Lane(actuals, foldScratch.data(), n);
        const uint64_t idxMask = mask(bits);
        Entry *const tbl = table.data();
        for (uint32_t l = 0; l < n; ++l) {
            Entry &e = tbl[static_cast<size_t>(
                (pcMixScratch[l] ^ mix64(contextHash)) & idxMask)];
            if (e.valid) {
                out.predicted[l] = 1;
                out.value[l] = e.value;
            }
            e.value = actuals[l];
            e.valid = true;
            pushContext(foldScratch[l]);
        }
    }

  private:
    struct Entry
    {
        int64_t value = 0;
        bool valid = false;
    };

    size_t
    indexOf(uint64_t pc) const
    {
        return static_cast<size_t>(
            (mix64(pc >> 2) ^ mix64(contextHash)) & mask(bits));
    }

    /**
     * Push one folded value into the global window and rebuild the
     * rolling hash from the retained folds (never-pushed slots read
     * as 0 — exactly the fold of the value-initialised history the
     * hash used to be built from, since mix64(0) == 0).
     */
    void
    pushContext(uint16_t fold)
    {
        folds.push(fold);
        contextHash = 0;
        for (unsigned k = 0; k < cfg.order; ++k)
            contextHash = (contextHash << 16) | folds[k];
    }

    GFcmConfig cfg;
    unsigned bits;
    std::vector<Entry> table;
    RingHistory<uint16_t> folds;
    uint64_t contextHash = 0;
    std::vector<uint64_t> pcMixScratch; ///< batch: mix64(pc>>2) lanes
    std::vector<uint16_t> foldScratch;  ///< batch: value-fold lanes
};

} // namespace predictors
} // namespace gdiff

#endif // GDIFF_PREDICTORS_GFCM_HH
