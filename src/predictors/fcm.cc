#include "predictors/fcm.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/simd.hh"

namespace gdiff {
namespace predictors {

namespace {

/**
 * Append one item to an order-n history. Each item is folded to 16
 * bits and the history truncated so it depends on *exactly* the last
 * `order` items — essential for context prediction: periodic streams
 * must produce periodic (repeating) history values.
 */
uint64_t
rollHistory(uint64_t history, uint64_t item, unsigned order)
{
    uint64_t folded = mix64(item) & 0xffff;
    return ((history << 16) | folded) & mask(16 * order);
}

/**
 * Software-pipeline lookahead (and ring size, so a power of two) for
 * the fused batch loops: lane l's work is overlapped with the lookup,
 * history hash, and second-level prefetch for lane l + kDist.
 *
 * The distance trades prefetch coverage (larger = more time for the
 * randomly indexed, megabyte-scale second-level line to arrive)
 * against snapshot staleness (a PC recurring within the window rolls
 * its history after the snapshot, wasting that prefetch). Issuing
 * one prefetch per lane also keeps the miss queue smoothly loaded —
 * a tile-at-a-time variant that bursts 32 prefetches back to back
 * overflowed the handful of outstanding-miss buffers the hardware
 * has and benched ~25% slower on FCM. Both hashes run inline in the
 * pipeline stage: AVX2 has no 64-bit multiply, so a vectorized
 * whole-lane mix64 prepass costs about what the scalar multiplies do
 * and adds a full extra pass over the lane arrays.
 */
constexpr uint32_t kDist = 8;

} // anonymous namespace

// ---------------------------------------------------------------- DFCM

DfcmPredictor::DfcmPredictor(const FcmConfig &config)
    : cfg(config), l2Bits(ceilLog2(cfg.level2Entries)),
      level1(cfg.level1Entries),
      level2(cfg.level2Entries)
{
    GDIFF_ASSERT(isPowerOfTwo(cfg.level2Entries),
                 "DFCM level-2 size must be a power of two");
    GDIFF_ASSERT(cfg.order >= 1 && cfg.order <= 4,
                 "DFCM order out of range (16 history bits per item)");
}

uint64_t
DfcmPredictor::foldHistory(uint64_t pc, uint64_t history) const
{
    // The second level is indexed by (PC, history): per-PC slots keep
    // high-churn noise instructions from evicting other instructions'
    // learned contexts (a standard DFCM implementation refinement).
    // mix64 keeps the hash order-sensitive: rotations of a periodic
    // context must land in different entries.
    return (mix64(history) ^ mix64(pc)) & mask(l2Bits);
}

uint64_t
DfcmPredictor::pushHistory(uint64_t history, int64_t stride) const
{
    return rollHistory(history, static_cast<uint64_t>(stride),
                       cfg.order);
}

bool
DfcmPredictor::predict(uint64_t pc, int64_t &value)
{
    const L1Entry *e = level1.probe(pc);
    if (!e || e->seen <= cfg.order)
        return false;
    const L2Entry &l2 = level2[foldHistory(pc, e->history)];
    if (!l2.valid)
        return false;
    value = static_cast<int64_t>(static_cast<uint64_t>(e->last) +
                                 static_cast<uint64_t>(l2.stride));
    return true;
}

void
DfcmPredictor::update(uint64_t pc, int64_t actual)
{
    L1Entry &e = level1.lookup(pc);
    if (e.seen == 0) {
        e.last = actual;
        e.seen = 1;
        return;
    }
    int64_t stride = static_cast<int64_t>(
        static_cast<uint64_t>(actual) - static_cast<uint64_t>(e.last));
    if (e.seen > cfg.order) {
        // Train the second level with the stride that followed the
        // current history.
        L2Entry &l2 = level2[foldHistory(pc, e.history)];
        l2.stride = stride;
        l2.valid = true;
    }
    e.history = pushHistory(e.history, stride);
    e.last = actual;
    if (e.seen <= cfg.order + 1)
        ++e.seen;
}

/**
 * Fused batch loop, software-pipelined kDist lanes deep.
 *
 * The pipeline stage for lane a runs one lookup() — in lane order,
 * so the table's lookup/conflict/ownership sequence is exactly the
 * scalar one — snapshots the entry's history, and prefetches the
 * second-level line that history hashes to. kDist lanes later the
 * work stage consumes the snapshot. A PC recurring within the window
 * invalidates its snapshot (an earlier lane rolled the history); the
 * work stage detects that by value and recomputes the index, so a
 * stale snapshot only ever wastes its prefetch. Entry pointers stay
 * valid across the window in both table modes: vector storage is
 * never resized, and unordered_map nodes are stable under rehash.
 */
void
DfcmPredictor::predictUpdateBatch(const uint64_t *pcs,
                                  const int64_t *actuals, uint32_t n,
                                  PredictionBatch &out)
{
    out.reset(n);
    const uint64_t histMask = mask(16 * cfg.order);
    const uint64_t idxMask = mask(l2Bits);
    L2Entry *const l2base = level2.data();
    L1Entry *ringE[kDist];
    uint64_t ringHist[kDist];
    uint64_t ringIdx[kDist];
    const uint32_t pro = std::min(kDist, n);
    for (uint32_t i = 0; i < pro; ++i) {
        L1Entry &e = level1.lookup(pcs[i]);
        ringE[i] = &e;
        ringHist[i] = e.history;
        ringIdx[i] =
            (mix64(e.history) ^ mix64(pcs[i])) & idxMask;
        __builtin_prefetch(&l2base[ringIdx[i]], 1);
    }
    for (uint32_t l = 0; l < n; ++l) {
        const uint32_t slot = l & (kDist - 1);
        L1Entry &e = *ringE[slot];
        const int64_t actual = actuals[l];
        if (e.seen == 0) {
            e.last = actual;
            e.seen = 1;
        } else {
            int64_t stride = static_cast<int64_t>(
                static_cast<uint64_t>(actual) -
                static_cast<uint64_t>(e.last));
            if (e.seen > cfg.order) {
                // Predict and train share the pre-push history, so
                // one index serves the scalar pair's two. out.value
                // is written unconditionally (gated by predicted),
                // keeping the hot path branchless.
                uint64_t idx = ringIdx[slot];
                if (e.history != ringHist[slot])
                    idx = (mix64(e.history) ^ mix64(pcs[l])) &
                          idxMask;
                L2Entry &l2 = l2base[idx];
                out.predicted[l] =
                    static_cast<uint8_t>(l2.valid);
                out.value[l] = static_cast<int64_t>(
                    static_cast<uint64_t>(e.last) +
                    static_cast<uint64_t>(l2.stride));
                l2.stride = stride;
                l2.valid = true;
            }
            e.history =
                ((e.history << 16) |
                 (mix64(static_cast<uint64_t>(stride)) & 0xffff)) &
                histMask;
            e.last = actual;
            if (e.seen <= cfg.order + 1)
                ++e.seen;
        }
        const uint32_t a = l + kDist;
        if (a < n) {
            L1Entry &ne = level1.lookup(pcs[a]);
            ringE[slot] = &ne;
            ringHist[slot] = ne.history;
            ringIdx[slot] =
                (mix64(ne.history) ^ mix64(pcs[a])) & idxMask;
            __builtin_prefetch(&l2base[ringIdx[slot]], 1);
        }
    }
}

// ----------------------------------------------------------------- FCM

FcmPredictor::FcmPredictor(const FcmConfig &config)
    : cfg(config), l2Bits(ceilLog2(cfg.level2Entries)),
      level1(cfg.level1Entries),
      level2(cfg.level2Entries)
{
    GDIFF_ASSERT(isPowerOfTwo(cfg.level2Entries),
                 "FCM level-2 size must be a power of two");
}

uint64_t
FcmPredictor::foldHistory(uint64_t pc, uint64_t history) const
{
    return (mix64(history) ^ mix64(pc)) & mask(l2Bits);
}

uint64_t
FcmPredictor::pushHistory(uint64_t history, int64_t value) const
{
    return rollHistory(history, static_cast<uint64_t>(value),
                       cfg.order);
}

bool
FcmPredictor::predict(uint64_t pc, int64_t &value)
{
    const L1Entry *e = level1.probe(pc);
    if (!e || e->seen < cfg.order)
        return false;
    const L2Entry &l2 = level2[foldHistory(pc, e->history)];
    if (!l2.valid)
        return false;
    value = l2.value;
    return true;
}

void
FcmPredictor::update(uint64_t pc, int64_t actual)
{
    L1Entry &e = level1.lookup(pc);
    if (e.seen >= cfg.order) {
        L2Entry &l2 = level2[foldHistory(pc, e.history)];
        l2.value = actual;
        l2.valid = true;
    }
    e.history = pushHistory(e.history, actual);
    if (e.seen <= cfg.order)
        ++e.seen;
}

/**
 * Fused batch loop, software-pipelined kDist lanes deep — the same
 * scheme as the DFCM loop above; see its comment for the snapshot
 * staleness and pointer-stability arguments.
 */
void
FcmPredictor::predictUpdateBatch(const uint64_t *pcs,
                                 const int64_t *actuals, uint32_t n,
                                 PredictionBatch &out)
{
    out.reset(n);
    const uint64_t histMask = mask(16 * cfg.order);
    const uint64_t idxMask = mask(l2Bits);
    L2Entry *const l2base = level2.data();
    L1Entry *ringE[kDist];
    uint64_t ringHist[kDist];
    uint64_t ringIdx[kDist];
    const uint32_t pro = std::min(kDist, n);
    for (uint32_t i = 0; i < pro; ++i) {
        L1Entry &e = level1.lookup(pcs[i]);
        ringE[i] = &e;
        ringHist[i] = e.history;
        ringIdx[i] =
            (mix64(e.history) ^ mix64(pcs[i])) & idxMask;
        __builtin_prefetch(&l2base[ringIdx[i]], 1);
    }
    for (uint32_t l = 0; l < n; ++l) {
        const uint32_t slot = l & (kDist - 1);
        L1Entry &e = *ringE[slot];
        if (e.seen >= cfg.order) {
            uint64_t idx = ringIdx[slot];
            if (e.history != ringHist[slot])
                idx = (mix64(e.history) ^ mix64(pcs[l])) &
                      idxMask;
            L2Entry &l2 = l2base[idx];
            out.predicted[l] = static_cast<uint8_t>(l2.valid);
            out.value[l] = l2.value;
            l2.value = actuals[l];
            l2.valid = true;
        }
        e.history =
            ((e.history << 16) |
             (mix64(static_cast<uint64_t>(actuals[l])) & 0xffff)) &
            histMask;
        if (e.seen <= cfg.order)
            ++e.seen;
        const uint32_t a = l + kDist;
        if (a < n) {
            L1Entry &ne = level1.lookup(pcs[a]);
            ringE[slot] = &ne;
            ringHist[slot] = ne.history;
            ringIdx[slot] =
                (mix64(ne.history) ^ mix64(pcs[a])) & idxMask;
            __builtin_prefetch(&l2base[ringIdx[slot]], 1);
        }
    }
}

} // namespace predictors
} // namespace gdiff
