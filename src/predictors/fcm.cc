#include "predictors/fcm.hh"

#include "util/logging.hh"

namespace gdiff {
namespace predictors {

namespace {

/**
 * Append one item to an order-n history. Each item is folded to 16
 * bits and the history truncated so it depends on *exactly* the last
 * `order` items — essential for context prediction: periodic streams
 * must produce periodic (repeating) history values.
 */
uint64_t
rollHistory(uint64_t history, uint64_t item, unsigned order)
{
    uint64_t folded = mix64(item) & 0xffff;
    return ((history << 16) | folded) & mask(16 * order);
}

} // anonymous namespace

// ---------------------------------------------------------------- DFCM

DfcmPredictor::DfcmPredictor(const FcmConfig &config)
    : cfg(config), l2Bits(ceilLog2(cfg.level2Entries)),
      level1(cfg.level1Entries),
      level2(cfg.level2Entries)
{
    GDIFF_ASSERT(isPowerOfTwo(cfg.level2Entries),
                 "DFCM level-2 size must be a power of two");
    GDIFF_ASSERT(cfg.order >= 1 && cfg.order <= 4,
                 "DFCM order out of range (16 history bits per item)");
}

uint64_t
DfcmPredictor::foldHistory(uint64_t pc, uint64_t history) const
{
    // The second level is indexed by (PC, history): per-PC slots keep
    // high-churn noise instructions from evicting other instructions'
    // learned contexts (a standard DFCM implementation refinement).
    // mix64 keeps the hash order-sensitive: rotations of a periodic
    // context must land in different entries.
    return (mix64(history) ^ mix64(pc)) & mask(l2Bits);
}

uint64_t
DfcmPredictor::pushHistory(uint64_t history, int64_t stride) const
{
    return rollHistory(history, static_cast<uint64_t>(stride),
                       cfg.order);
}

bool
DfcmPredictor::predict(uint64_t pc, int64_t &value)
{
    const L1Entry *e = level1.probe(pc);
    if (!e || e->seen <= cfg.order)
        return false;
    const L2Entry &l2 = level2[foldHistory(pc, e->history)];
    if (!l2.valid)
        return false;
    value = static_cast<int64_t>(static_cast<uint64_t>(e->last) +
                                 static_cast<uint64_t>(l2.stride));
    return true;
}

void
DfcmPredictor::update(uint64_t pc, int64_t actual)
{
    L1Entry &e = level1.lookup(pc);
    if (e.seen == 0) {
        e.last = actual;
        e.seen = 1;
        return;
    }
    int64_t stride = static_cast<int64_t>(
        static_cast<uint64_t>(actual) - static_cast<uint64_t>(e.last));
    if (e.seen > cfg.order) {
        // Train the second level with the stride that followed the
        // current history.
        L2Entry &l2 = level2[foldHistory(pc, e.history)];
        l2.stride = stride;
        l2.valid = true;
    }
    e.history = pushHistory(e.history, stride);
    e.last = actual;
    if (e.seen <= cfg.order + 1)
        ++e.seen;
}

// ----------------------------------------------------------------- FCM

FcmPredictor::FcmPredictor(const FcmConfig &config)
    : cfg(config), l2Bits(ceilLog2(cfg.level2Entries)),
      level1(cfg.level1Entries),
      level2(cfg.level2Entries)
{
    GDIFF_ASSERT(isPowerOfTwo(cfg.level2Entries),
                 "FCM level-2 size must be a power of two");
}

uint64_t
FcmPredictor::foldHistory(uint64_t pc, uint64_t history) const
{
    return (mix64(history) ^ mix64(pc)) & mask(l2Bits);
}

uint64_t
FcmPredictor::pushHistory(uint64_t history, int64_t value) const
{
    return rollHistory(history, static_cast<uint64_t>(value),
                       cfg.order);
}

bool
FcmPredictor::predict(uint64_t pc, int64_t &value)
{
    const L1Entry *e = level1.probe(pc);
    if (!e || e->seen < cfg.order)
        return false;
    const L2Entry &l2 = level2[foldHistory(pc, e->history)];
    if (!l2.valid)
        return false;
    value = l2.value;
    return true;
}

void
FcmPredictor::update(uint64_t pc, int64_t actual)
{
    L1Entry &e = level1.lookup(pc);
    if (e.seen >= cfg.order) {
        L2Entry &l2 = level2[foldHistory(pc, e.history)];
        l2.value = actual;
        l2.valid = true;
    }
    e.history = pushHistory(e.history, actual);
    if (e.seen <= cfg.order)
        ++e.seen;
}

} // namespace predictors
} // namespace gdiff
