/**
 * @file
 * gdiffd — the simulation-as-a-service daemon.
 *
 * A Daemon turns the repo's batch sweep machinery into a long-lived
 * server: clients connect over a Unix-domain socket, submit sweep
 * grids (serve/protocol.hh), and get per-job results streamed back
 * as they complete. What the daemon adds over running gdiffrun per
 * experiment:
 *
 *  - a single TraceCache spanning *all* requests for the daemon's
 *    lifetime, so repeated sweeps over the same (workload, seed,
 *    budget) triples replay materialized traces instead of paying
 *    functional regeneration per process;
 *  - admission control: a bounded job queue shared by every client.
 *    A submit that would overflow it is answered with a "rejected"
 *    backpressure frame (queue occupancy + capacity included) and
 *    costs nothing;
 *  - per-client round-robin fairness: each connection has its own
 *    FIFO of admitted jobs and the worker pool services connections
 *    in rotation, one job at a time, so a 1000-job sweep cannot
 *    starve a 4-job sweep that arrived later;
 *  - graceful drain: on SIGTERM (or a "shutdown" request) the daemon
 *    stops admitting, finishes every queued and running job, streams
 *    the remaining results and sweep_done frames, then exits.
 *
 * Threading model: one accept thread, one reader thread per
 * connection, and a fixed worker pool executing jobs via
 * runner::runJob against the daemon-owned cache. Results are written
 * under a per-connection write lock so frames never interleave.
 * Lock order: a connection's write lock may be taken before the
 * scheduler lock (submit acks), never the other way around.
 *
 * Everything is in-process testable: tests and bench/serve_load
 * construct a Daemon directly, point clients at its socket, and
 * drain it — no fork/exec involved.
 */

#ifndef GDIFF_SERVE_DAEMON_HH
#define GDIFF_SERVE_DAEMON_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "workload/trace_cache.hh"

namespace gdiff {
namespace serve {

/** Daemon construction knobs. */
struct DaemonConfig
{
    std::string socketPath;  ///< Unix-domain socket to listen on
    unsigned workers = 0;    ///< job workers; 0 = hardware threads
    /// admission cap: total jobs queued (not yet running) across all
    /// clients; a submit that would exceed it is rejected
    size_t maxQueuedJobs = 1024;
    /// byte cap for the daemon's trace cache; 0 = the cache default
    size_t traceCacheBytes = 0;
    /// persistent trace-cache root; empty = GDIFF_TRACE_CACHE_DIR
    /// (when set) or no disk tier
    std::string traceCacheDir;
    /// byte cap for the persistent tier; 0 = the tier's default
    size_t traceCacheDiskBytes = 0;
};

/** Live scheduler counters, as reported by the status endpoint. */
struct DaemonStats
{
    size_t queuedJobs = 0;   ///< admitted, not yet running
    size_t runningJobs = 0;  ///< currently on a worker
    uint64_t completedJobs = 0;
    /// jobs purged because their client disconnected mid-sweep
    uint64_t droppedJobs = 0;
    uint64_t acceptedSweeps = 0;
    uint64_t rejectedSweeps = 0; ///< backpressure rejections
    size_t connectedClients = 0;
    bool draining = false;
    workload::TraceCache::Stats traceCache;
};

class Daemon
{
  public:
    explicit Daemon(DaemonConfig config);

    /** Drains and joins if the caller never did. */
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Bind the socket and spawn the accept and worker threads.
     * @return true when listening; false with @p error set.
     */
    bool start(std::string *error);

    /**
     * Begin graceful drain: stop accepting connections and admitting
     * sweeps, let queued and running jobs finish. Idempotent, safe
     * from any thread (the shutdown request handler calls it).
     */
    void requestDrain();

    /**
     * Block until a requested drain completes, then join every
     * thread, close every connection, and remove the socket file.
     * Blocks indefinitely if no one ever calls requestDrain().
     */
    void waitUntilDrained();

    /** @return a point-in-time scheduler snapshot. */
    DaemonStats stats() const;

    /** @return the number of job workers actually running. */
    unsigned workers() const;

    const std::string &socketPath() const { return cfgSocketPath; }

  private:
    struct Impl;
    Impl *impl;
    std::string cfgSocketPath;
};

} // namespace serve
} // namespace gdiff

#endif // GDIFF_SERVE_DAEMON_HH
