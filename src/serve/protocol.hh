/**
 * @file
 * The gdiffd wire protocol: length-prefixed JSON frames.
 *
 * Every message — request or response — is one JSON object preceded
 * by a 4-byte little-endian byte count. The prefix keeps framing
 * trivially resynchronizable and lets the receiver reject oversized
 * or truncated frames before touching the payload; the JSON body
 * keeps the messages self-describing and debuggable with socat.
 *
 * Requests (client → daemon):
 *   {"type":"submit","client":"bench-0","grid":"workload=mcf;...",
 *    "instructions":100000,"warmup":20000}
 *   {"type":"status"}
 *   {"type":"ping"}
 *   {"type":"shutdown"}           drain and exit (admin convenience;
 *                                 SIGTERM does the same)
 *
 * Responses (daemon → client):
 *   {"type":"accepted","sweep":1,"jobs":8}
 *   {"type":"rejected","reason":"...","queued":N,"capacity":N}
 *   {"type":"error","message":"..."}       malformed/invalid request
 *   {"type":"job","record":{...},...}      one per completed job
 *   {"type":"sweep_done","sweep":1,...}    after the last job
 *   {"type":"status_ok",...}, {"type":"pong"}, {"type":"shutting_down"}
 *
 * The "record" object inside a job frame is exactly
 * runner::JsonlSink::deterministicJson, so a client that re-renders
 * received records through the stock sinks produces files
 * bit-identical to an in-process gdiffrun of the same grid (doubles
 * travel as %.17g and round-trip exactly).
 */

#ifndef GDIFF_SERVE_PROTOCOL_HH
#define GDIFF_SERVE_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "runner/job.hh"
#include "util/json.hh"

namespace gdiff {
namespace serve {

/// Frames larger than this are rejected without reading the payload —
/// a garbage or hostile length prefix must not allocate gigabytes.
constexpr size_t kMaxFrameBytes = size_t(16) << 20;

/** Outcome of reading one frame. */
enum class FrameStatus {
    Ok,        ///< a complete frame was read
    Eof,       ///< clean end of stream between frames
    TooLarge,  ///< length prefix exceeds the frame cap
    Truncated, ///< stream ended inside a prefix or payload
    IoError,   ///< read failed
};

/** @return a short name for @p status ("ok", "eof", ...). */
const char *frameStatusName(FrameStatus status);

/**
 * Read one length-prefixed frame from @p fd into @p payload.
 * Blocks until a full frame, EOF, or an error.
 */
FrameStatus readFrame(int fd, std::string &payload,
                      size_t maxBytes = kMaxFrameBytes);

/**
 * Write @p payload as one length-prefixed frame.
 * @return false when the peer is gone or the frame exceeds
 * @p maxBytes.
 */
bool writeFrame(int fd, std::string_view payload,
                size_t maxBytes = kMaxFrameBytes);

/// @name Message constructors
/// @{

/** Submit request for @p grid. Zero instructions/warmup/sample-budget
 * fields are omitted and the daemon applies its grid defaults. A
 * non-zero @p sampleBudget requests sampled simulation (95% CI
 * columns) with @p sampleWindow records per measured window and
 * selection seed @p sampleSeed. */
std::string submitMessage(const std::string &client,
                          const std::string &grid,
                          uint64_t instructions, uint64_t warmup,
                          uint64_t sampleBudget = 0,
                          uint64_t sampleWindow = 4096,
                          uint64_t sampleSeed = 1);

std::string statusMessage();
std::string pingMessage();
std::string shutdownMessage();

std::string acceptedMessage(uint64_t sweep, size_t jobs);
std::string rejectedMessage(const std::string &reason, size_t queued,
                            size_t capacity);
std::string errorMessage(const std::string &message);

/** One completed job: the deterministic record plus timing args. */
std::string jobMessage(uint64_t sweep, const runner::JobRecord &rec);

std::string sweepDoneMessage(uint64_t sweep, size_t jobs,
                             size_t generated, size_t replayed,
                             double wallSeconds);
/// @}

/**
 * Rebuild the JobRecord a job frame carries.
 *
 * @param frame the parsed {"type":"job",...} object.
 * @return true on success; on failure @p error (if non-null) says
 * which field was missing or mistyped.
 */
bool parseJobFrame(const json::Value &frame, runner::JobRecord &out,
                   std::string *error);

} // namespace serve
} // namespace gdiff

#endif // GDIFF_SERVE_PROTOCOL_HH
