#include "serve/client.hh"

#include "serve/protocol.hh"
#include "util/json.hh"

namespace gdiff {
namespace serve {

namespace {

/** Hoist a daemon error/rejected frame into the error string. */
bool
isFailureFrame(const json::Value &msg, std::string *error)
{
    const json::Value *type = msg.find("type");
    if (!type || !type->isString()) {
        if (error)
            *error = "daemon sent a frame without a 'type'";
        return true;
    }
    if (type->str == "error") {
        if (error) {
            const json::Value *m = msg.find("message");
            *error = "daemon error: " +
                     (m && m->isString() ? m->str
                                         : std::string("(no message)"));
        }
        return true;
    }
    if (type->str == "rejected") {
        if (error) {
            const json::Value *r = msg.find("reason");
            *error = "daemon rejected the sweep: " +
                     (r && r->isString() ? r->str
                                         : std::string("(no reason)"));
        }
        return true;
    }
    return false;
}

} // anonymous namespace

bool
Client::connect(const std::string &path, std::string *error)
{
    sock = connectUnix(path, error);
    return sock.valid();
}

bool
Client::readMessage(std::string &payload, std::string *error)
{
    FrameStatus st = readFrame(sock.get(), payload);
    if (st == FrameStatus::Ok)
        return true;
    if (error)
        *error = std::string("reading from daemon: ") +
                 frameStatusName(st);
    return false;
}

bool
Client::submit(const SubmitRequest &request, std::string *error)
{
    if (!sock.valid()) {
        if (error)
            *error = "not connected";
        return false;
    }
    if (!writeFrame(sock.get(),
                    submitMessage(request.client, request.grid,
                                  request.instructions,
                                  request.warmup,
                                  request.sampleBudget,
                                  request.sampleWindow,
                                  request.sampleSeed))) {
        if (error)
            *error = "writing submit frame failed (daemon gone?)";
        return false;
    }
    std::string payload;
    if (!readMessage(payload, error))
        return false;
    json::Value msg;
    std::string parseError;
    if (!json::parse(payload, msg, &parseError)) {
        if (error)
            *error = "daemon sent unparsable JSON: " + parseError;
        return false;
    }
    if (isFailureFrame(msg, error))
        return false;
    const json::Value *type = msg.find("type");
    if (type->str != "accepted") {
        if (error)
            *error = "expected 'accepted', daemon sent '" + type->str +
                     "'";
        return false;
    }
    return true;
}

bool
Client::streamResults(
    const std::function<void(const runner::JobRecord &)> &onJob,
    SweepOutcome *outcome, std::string *error)
{
    std::string payload;
    for (;;) {
        if (!readMessage(payload, error))
            return false;
        json::Value msg;
        std::string parseError;
        if (!json::parse(payload, msg, &parseError)) {
            if (error)
                *error = "daemon sent unparsable JSON: " + parseError;
            return false;
        }
        if (isFailureFrame(msg, error))
            return false;
        const json::Value *type = msg.find("type");
        if (type->str == "job") {
            runner::JobRecord rec;
            if (!parseJobFrame(msg, rec, error))
                return false;
            if (onJob)
                onJob(rec);
            continue;
        }
        if (type->str == "sweep_done") {
            if (outcome) {
                auto num = [&](const char *key) -> double {
                    const json::Value *v = msg.find(key);
                    return v && v->isNumber() ? v->number : 0.0;
                };
                outcome->sweep =
                    static_cast<uint64_t>(num("sweep"));
                outcome->jobs = static_cast<size_t>(num("jobs"));
                outcome->generated =
                    static_cast<size_t>(num("generated"));
                outcome->replayed =
                    static_cast<size_t>(num("replayed"));
                outcome->wallSeconds = num("wall_seconds");
            }
            return true;
        }
        if (error)
            *error = "unexpected frame '" + type->str +
                     "' while streaming results";
        return false;
    }
}

namespace {

/** One request, one reply of the expected type. */
bool
roundTrip(int fd, const std::string &request, const char *expectType,
          std::string *replyPayload, std::string *error)
{
    if (fd < 0) {
        if (error)
            *error = "not connected";
        return false;
    }
    if (!writeFrame(fd, request)) {
        if (error)
            *error = "writing request failed (daemon gone?)";
        return false;
    }
    std::string payload;
    FrameStatus st = readFrame(fd, payload);
    if (st != FrameStatus::Ok) {
        if (error)
            *error = std::string("reading from daemon: ") +
                     frameStatusName(st);
        return false;
    }
    json::Value msg;
    std::string parseError;
    if (!json::parse(payload, msg, &parseError)) {
        if (error)
            *error = "daemon sent unparsable JSON: " + parseError;
        return false;
    }
    if (isFailureFrame(msg, error))
        return false;
    const json::Value *type = msg.find("type");
    if (type->str != expectType) {
        if (error)
            *error = std::string("expected '") + expectType +
                     "', daemon sent '" + type->str + "'";
        return false;
    }
    if (replyPayload)
        *replyPayload = payload;
    return true;
}

} // anonymous namespace

bool
Client::status(std::string *statusJson, std::string *error)
{
    return roundTrip(sock.get(), statusMessage(), "status_ok",
                     statusJson, error);
}

bool
Client::ping(std::string *error)
{
    return roundTrip(sock.get(), pingMessage(), "pong", nullptr,
                     error);
}

bool
Client::shutdown(std::string *error)
{
    return roundTrip(sock.get(), shutdownMessage(),
                     "shutting_down", nullptr, error);
}

} // namespace serve
} // namespace gdiff
