#include "serve/daemon.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "obs/obs.hh"
#include "runner/factory.hh"
#include "runner/runner.hh"
#include "runner/sweep_spec.hh"
#include "serve/protocol.hh"
#include "serve/socket.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/simd.hh"
#include "workload/workload.hh"

namespace gdiff {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Latency histograms record microseconds; in-range to ~65 ms, with
/// the overflow bucket reporting the true maximum beyond that.
constexpr size_t kLatencyBuckets = 1 << 16;
constexpr size_t kDepthBuckets = 1 << 12;

/** Conform a client-supplied name to something safe to embed in obs
 * counter names and log lines. */
std::string
sanitizeClientName(const std::string &name)
{
    std::string out;
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                  c == '.';
        out += ok ? c : '_';
        if (out.size() >= 48)
            break;
    }
    return out.empty() ? std::string("anon") : out;
}

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // anonymous namespace

struct Daemon::Impl
{
    // ------------------------------------------------- data model

    struct Connection;

    /** One admitted submit request. */
    struct Sweep
    {
        uint64_t id = 0;
        std::string client;       ///< sanitized, for obs counters
        size_t total = 0;
        size_t remaining = 0;     ///< guarded by mu
        size_t generated = 0;     ///< guarded by mu
        size_t replayed = 0;      ///< guarded by mu
        Clock::time_point start;  ///< submit time, for request_us
    };

    struct PendingJob
    {
        runner::JobSpec spec;
        size_t index = 0; ///< grid index, matches gdiffrun's
        std::shared_ptr<Sweep> sweep;
    };

    struct Connection
    {
        Fd sock;
        std::string label;         ///< default name until a submit
        std::mutex writeMu;        ///< serialises outbound frames
        std::atomic<bool> alive{true};
        /// this client's admitted-job FIFO; guarded by mu
        std::deque<PendingJob> queue;
        bool inRotation = false;   ///< guarded by mu
    };

    explicit Impl(DaemonConfig config)
        : cfg(std::move(config)), cache(makeCacheConfig(cfg))
    {}

    static workload::TraceCache::Config
    makeCacheConfig(const DaemonConfig &config)
    {
        workload::TraceCache::Config c;
        if (config.traceCacheBytes != 0)
            c.maxBytes = config.traceCacheBytes;
        c.diskRoot = config.traceCacheDir;
        if (c.diskRoot.empty()) {
            const char *dir = std::getenv("GDIFF_TRACE_CACHE_DIR");
            if (dir)
                c.diskRoot = dir;
        }
        if (config.traceCacheDiskBytes != 0)
            c.diskMaxBytes = config.traceCacheDiskBytes;
        return c;
    }

    DaemonConfig cfg;
    workload::TraceCache cache; ///< shared across every request
    Clock::time_point startTime;

    Fd listener;
    std::thread acceptThread;
    std::vector<std::thread> workerThreads;
    std::vector<std::thread> readerThreads; ///< guarded by mu

    mutable std::mutex mu;
    std::condition_variable workCv;  ///< workers: rotation/drain
    std::condition_variable drainCv; ///< waitUntilDrained
    /// connections still open; guarded by mu
    std::list<std::shared_ptr<Connection>> connections;
    /// round-robin of connections with queued jobs; guarded by mu
    std::deque<std::shared_ptr<Connection>> rotation;
    size_t queuedJobs = 0;
    size_t runningJobs = 0;
    uint64_t completedJobs = 0;
    uint64_t droppedJobs = 0;
    uint64_t acceptedSweeps = 0;
    uint64_t rejectedSweeps = 0;
    uint64_t nextSweepId = 1;
    uint64_t nextClientId = 1;
    bool draining = false;
    bool started = false;
    bool joined = false;

    // ---------------------------------------------------- lifecycle

    bool
    start(std::string *error)
    {
        listener = listenUnix(cfg.socketPath, error);
        if (!listener.valid())
            return false;
        startTime = Clock::now();
        started = true;
        unsigned n = cfg.workers == 0 ? runner::defaultThreads()
                                      : cfg.workers;
        workerThreads.reserve(n);
        for (unsigned i = 0; i < n; ++i)
            workerThreads.emplace_back([this] { workerLoop(); });
        acceptThread = std::thread([this] { acceptLoop(); });
        return true;
    }

    void
    requestDrain()
    {
        {
            std::lock_guard<std::mutex> lk(mu);
            if (draining)
                return;
            draining = true;
        }
        // Unblocks accept() with EINVAL; new clients see ECONNREFUSED
        // only after the socket file is unlinked at join time, but
        // the accept loop is already gone.
        if (listener.valid())
            ::shutdown(listener.get(), SHUT_RDWR);
        workCv.notify_all();
        // An idle daemon already satisfies the drain predicate, and
        // no worker or disconnect will come along to re-test it.
        drainCv.notify_all();
    }

    void
    waitUntilDrained()
    {
        if (!started || joined)
            return;
        {
            std::unique_lock<std::mutex> lk(mu);
            drainCv.wait(lk, [this] {
                return draining && queuedJobs == 0 && runningJobs == 0;
            });
        }
        acceptThread.join();
        workCv.notify_all();
        for (auto &w : workerThreads)
            w.join();
        // Idle clients sit in readFrame(); shutting their sockets
        // down turns that into EOF so every reader exits.
        {
            std::lock_guard<std::mutex> lk(mu);
            for (const auto &conn : connections) {
                conn->alive.store(false, std::memory_order_relaxed);
                ::shutdown(conn->sock.get(), SHUT_RDWR);
            }
        }
        for (auto &r : readerThreads)
            r.join();
        listener.reset();
        ::unlink(cfg.socketPath.c_str());
        joined = true;
    }

    // -------------------------------------------------- accept side

    void
    acceptLoop()
    {
        for (;;) {
            Fd sock = acceptUnix(listener.get());
            if (!sock.valid())
                return; // listener shut down: drain started
            std::lock_guard<std::mutex> lk(mu);
            if (draining)
                continue; // close immediately; no admissions now
            auto conn = std::make_shared<Connection>();
            conn->sock = std::move(sock);
            conn->label = "client-" + std::to_string(nextClientId++);
            connections.push_back(conn);
            readerThreads.emplace_back(
                [this, conn] { readerLoop(conn); });
        }
    }

    void
    readerLoop(const std::shared_ptr<Connection> &conn)
    {
        std::string payload;
        for (;;) {
            FrameStatus st = readFrame(conn->sock.get(), payload);
            if (st == FrameStatus::Ok) {
                handleRequest(conn, payload);
                continue;
            }
            // A framing-level failure is unrecoverable: an oversized
            // or short prefix means byte-sync with the peer is gone.
            // Say why (best effort) and drop the connection; the
            // daemon itself keeps serving everyone else.
            if (st == FrameStatus::TooLarge)
                sendTo(*conn,
                       errorMessage("frame length exceeds limit"));
            break;
        }
        disconnect(conn);
    }

    /** Purge a departed client: its queued jobs free their admission
     * slots immediately so a dead sweep cannot pin the queue. */
    void
    disconnect(const std::shared_ptr<Connection> &conn)
    {
        std::lock_guard<std::mutex> lk(mu);
        conn->alive.store(false, std::memory_order_relaxed);
        if (!conn->queue.empty()) {
            droppedJobs += conn->queue.size();
            queuedJobs -= conn->queue.size();
            GDIFF_OBS_COUNT("serve.jobs_dropped", conn->queue.size());
            for (const auto &job : conn->queue)
                --job.sweep->remaining;
            conn->queue.clear();
        }
        if (conn->inRotation) {
            rotation.erase(
                std::remove(rotation.begin(), rotation.end(), conn),
                rotation.end());
            conn->inRotation = false;
        }
        connections.remove(conn);
        if (draining && queuedJobs == 0 && runningJobs == 0)
            drainCv.notify_all();
    }

    /** Write one frame to @p conn; marks it dead on failure. */
    bool
    sendTo(Connection &conn, const std::string &msg)
    {
        if (!conn.alive.load(std::memory_order_relaxed))
            return false;
        std::lock_guard<std::mutex> lk(conn.writeMu);
        if (!conn.alive.load(std::memory_order_relaxed))
            return false;
        if (!writeFrame(conn.sock.get(), msg)) {
            conn.alive.store(false, std::memory_order_relaxed);
            return false;
        }
        return true;
    }

    // ----------------------------------------------------- requests

    void
    handleRequest(const std::shared_ptr<Connection> &conn,
                  const std::string &payload)
    {
        json::Value msg;
        std::string parseError;
        if (!json::parse(payload, msg, &parseError)) {
            // The frame boundary is intact, so a request that is
            // valid framing but garbage JSON is answerable: report
            // and keep the connection.
            sendTo(*conn, errorMessage("invalid JSON: " + parseError));
            return;
        }
        const json::Value *type =
            msg.isObject() ? msg.find("type") : nullptr;
        if (!type || !type->isString()) {
            sendTo(*conn,
                   errorMessage("request needs a string 'type'"));
            return;
        }
        if (type->str == "submit") {
            handleSubmit(conn, msg);
        } else if (type->str == "status") {
            sendTo(*conn, statusReply());
        } else if (type->str == "ping") {
            sendTo(*conn, "{\"type\":\"pong\"}");
        } else if (type->str == "shutdown") {
            sendTo(*conn, "{\"type\":\"shutting_down\"}");
            requestDrain();
        } else {
            sendTo(*conn,
                   errorMessage("unknown request type '" + type->str +
                                "'"));
        }
    }

    void
    handleSubmit(const std::shared_ptr<Connection> &conn,
                 const json::Value &msg)
    {
        const json::Value *grid = msg.find("grid");
        if (!grid || !grid->isString()) {
            sendTo(*conn,
                   errorMessage("submit needs a string 'grid'"));
            return;
        }

        runner::SweepSpec spec;
        std::string gridError;
        if (!runner::SweepSpec::tryParseGrid(grid->str, spec,
                                             &gridError)) {
            sendTo(*conn, errorMessage("bad grid: " + gridError));
            return;
        }
        if (const json::Value *v = msg.find("instructions")) {
            if (!v->isNumber() || v->number < 1) {
                sendTo(*conn, errorMessage(
                                  "'instructions' must be a positive "
                                  "number"));
                return;
            }
            spec.defaultInstructions =
                static_cast<uint64_t>(v->number);
            // An explicit budget overrides any instructions axis,
            // mirroring gdiffrun --instructions.
            spec.instructionWindows.clear();
        }
        if (const json::Value *v = msg.find("warmup")) {
            if (!v->isNumber() || v->number < 0) {
                sendTo(*conn, errorMessage(
                                  "'warmup' must be a non-negative "
                                  "number"));
                return;
            }
            spec.warmup = static_cast<uint64_t>(v->number);
        }
        // Sampled-simulation knobs; geometry errors (window longer
        // than the region, budget below one window) surface through
        // validateOr below like any other bad spec.
        if (const json::Value *v = msg.find("sample_budget")) {
            if (!v->isNumber() || v->number < 0) {
                sendTo(*conn, errorMessage(
                                  "'sample_budget' must be a "
                                  "non-negative number"));
                return;
            }
            spec.sampleBudget = static_cast<uint64_t>(v->number);
        }
        if (const json::Value *v = msg.find("sample_window")) {
            if (!v->isNumber() || v->number < 1) {
                sendTo(*conn, errorMessage(
                                  "'sample_window' must be a positive "
                                  "number"));
                return;
            }
            spec.sampleWindow = static_cast<uint64_t>(v->number);
        }
        if (const json::Value *v = msg.find("sample_seed")) {
            if (!v->isNumber() || v->number < 0) {
                sendTo(*conn, errorMessage(
                                  "'sample_seed' must be a "
                                  "non-negative number"));
                return;
            }
            spec.sampleSeed = static_cast<uint64_t>(v->number);
        }

        std::vector<runner::JobSpec> jobs = spec.expand();
        // Admission never hands a spec to a worker that runJob could
        // fatal() on: the factories and makeWorkload abort the
        // process on unknown names, so membership is checked here
        // where a polite error frame is still possible.
        for (const auto &job : jobs) {
            std::string jobError;
            if (!workload::knownWorkload(job.workload)) {
                sendTo(*conn, errorMessage("unknown workload '" +
                                           job.workload + "'"));
                return;
            }
            if (job.mode == runner::JobMode::Profile &&
                !runner::knownPredictor(job.predictor)) {
                sendTo(*conn, errorMessage("unknown predictor '" +
                                           job.predictor + "'"));
                return;
            }
            if (job.mode == runner::JobMode::Pipeline &&
                !runner::knownScheme(job.scheme)) {
                sendTo(*conn, errorMessage("unknown scheme '" +
                                           job.scheme + "'"));
                return;
            }
            if (!job.validateOr(&jobError)) {
                sendTo(*conn, errorMessage(jobError));
                return;
            }
        }

        std::string client = "anon";
        if (const json::Value *v = msg.find("client");
            v && v->isString())
            client = sanitizeClientName(v->str);

        // The accepted/rejected ack is written under the connection
        // write lock *around* the enqueue, so no result frame can
        // overtake it (workers also write under that lock).
        std::lock_guard<std::mutex> wlk(conn->writeMu);
        std::string reply;
        {
            std::lock_guard<std::mutex> lk(mu);
            if (draining) {
                ++rejectedSweeps;
                reply = rejectedMessage("draining", queuedJobs,
                                        cfg.maxQueuedJobs);
            } else if (jobs.size() > cfg.maxQueuedJobs ||
                       queuedJobs + jobs.size() > cfg.maxQueuedJobs) {
                ++rejectedSweeps;
                GDIFF_OBS_COUNT("serve.sweeps_rejected", 1);
                reply = rejectedMessage("queue full", queuedJobs,
                                        cfg.maxQueuedJobs);
            } else {
                auto sweep = std::make_shared<Sweep>();
                sweep->id = nextSweepId++;
                sweep->client = client;
                sweep->total = jobs.size();
                sweep->remaining = jobs.size();
                sweep->start = Clock::now();
                for (size_t i = 0; i < jobs.size(); ++i)
                    conn->queue.push_back(
                        PendingJob{jobs[i], i, sweep});
                queuedJobs += jobs.size();
                if (!conn->inRotation) {
                    rotation.push_back(conn);
                    conn->inRotation = true;
                }
                ++acceptedSweeps;
                conn->label = client;
                if (obs::enabled()) {
                    obs::Registry &reg = obs::Registry::local();
                    reg.addCount("serve.jobs_enqueued", jobs.size());
                    reg.histogram("serve.queue_depth", kDepthBuckets)
                        ->record(queuedJobs);
                }
                reply = acceptedMessage(sweep->id, jobs.size());
                workCv.notify_all();
            }
        }
        if (conn->alive.load(std::memory_order_relaxed) &&
            !writeFrame(conn->sock.get(), reply))
            conn->alive.store(false, std::memory_order_relaxed);
    }

    // ------------------------------------------------------ workers

    void
    workerLoop()
    {
        for (;;) {
            std::shared_ptr<Connection> conn;
            PendingJob job;
            {
                std::unique_lock<std::mutex> lk(mu);
                workCv.wait(lk, [this] {
                    return !rotation.empty() || draining;
                });
                if (rotation.empty()) {
                    if (draining)
                        return;
                    continue;
                }
                // Round-robin: take ONE job from the head client,
                // then move it to the back of the rotation, so k
                // clients each get every k-th worker slot no matter
                // how large anyone's sweep is.
                conn = rotation.front();
                rotation.pop_front();
                job = std::move(conn->queue.front());
                conn->queue.pop_front();
                --queuedJobs;
                if (!conn->queue.empty())
                    rotation.push_back(conn);
                else
                    conn->inRotation = false;
                ++runningJobs;
            }
            runOne(*conn, job);
            {
                std::lock_guard<std::mutex> lk(mu);
                --runningJobs;
                ++completedJobs;
                if (draining && queuedJobs == 0 && runningJobs == 0)
                    drainCv.notify_all();
            }
            GDIFF_OBS_COUNT("serve.jobs_completed", 1);
        }
    }

    void
    runOne(Connection &conn, const PendingJob &job)
    {
        Clock::time_point t0 = Clock::now();
        runner::JobRecord rec{job.index, job.spec,
                              runner::runJob(job.spec, &cache)};
        if (obs::enabled()) {
            obs::Registry &reg = obs::Registry::local();
            reg.histogram("serve.job_us", kLatencyBuckets)
                ->record(static_cast<uint64_t>(secondsSince(t0) *
                                               1e6));
            reg.addCount("serve.client." + job.sweep->client +
                             (rec.result.traceReplayed
                                  ? ".trace_hit"
                                  : ".trace_miss"),
                         1);
        }

        bool delivered = sendTo(conn, jobMessage(job.sweep->id, rec));

        bool finished = false;
        size_t generated = 0, replayed = 0;
        {
            std::lock_guard<std::mutex> lk(mu);
            Sweep &sw = *job.sweep;
            if (rec.result.traceReplayed)
                ++sw.replayed;
            else
                ++sw.generated;
            if (--sw.remaining == 0) {
                finished = true;
                generated = sw.generated;
                replayed = sw.replayed;
            }
        }
        if (finished) {
            double wall = secondsSince(job.sweep->start);
            if (obs::enabled())
                obs::Registry::local()
                    .histogram("serve.request_us", kLatencyBuckets)
                    ->record(static_cast<uint64_t>(wall * 1e6));
            delivered =
                sendTo(conn, sweepDoneMessage(
                                 job.sweep->id, job.sweep->total,
                                 generated, replayed, wall)) &&
                delivered;
        }
        // A failed write means the client vanished mid-sweep; free
        // its remaining queue slots right away.
        (void)delivered;
    }

    // ------------------------------------------------------- status

    std::string
    statusReply() const
    {
        DaemonStats s = stats();
        char buf[512];
        std::string out = "{\"type\":\"status_ok\"";
        std::snprintf(
            buf, sizeof(buf),
            ",\"uptime_seconds\":%.3f,\"workers\":%u"
            ",\"draining\":%s,\"queued\":%zu,\"running\":%zu"
            ",\"completed\":%" PRIu64 ",\"dropped\":%" PRIu64
            ",\"accepted_sweeps\":%" PRIu64
            ",\"rejected_sweeps\":%" PRIu64 ",\"clients\":%zu"
            ",\"queue_capacity\":%zu",
            secondsSince(startTime),
            static_cast<unsigned>(workerThreads.size()),
            s.draining ? "true" : "false", s.queuedJobs,
            s.runningJobs, s.completedJobs, s.droppedJobs,
            s.acceptedSweeps, s.rejectedSweeps, s.connectedClients,
            cfg.maxQueuedJobs);
        out += buf;
        std::snprintf(
            buf, sizeof(buf),
            ",\"trace_cache\":{\"hits\":%" PRIu64
            ",\"misses\":%" PRIu64 ",\"generations\":%" PRIu64
            ",\"evictions\":%" PRIu64
            ",\"resident_bytes\":%zu,\"entries\":%zu}",
            s.traceCache.hits, s.traceCache.misses,
            s.traceCache.generations, s.traceCache.evictions,
            s.traceCache.residentBytes, s.traceCache.entries);
        out += buf;
        if (s.traceCache.diskEnabled) {
            std::snprintf(
                buf, sizeof(buf),
                ",\"trace_disk_cache\":{\"hits\":%" PRIu64
                ",\"misses\":%" PRIu64 ",\"stores\":%" PRIu64
                ",\"evictions\":%" PRIu64
                ",\"corrupt_recoveries\":%" PRIu64 "}",
                s.traceCache.diskHits, s.traceCache.diskMisses,
                s.traceCache.diskStores, s.traceCache.diskEvictions,
                s.traceCache.diskCorruptRecoveries);
            out += buf;
        }

        // Which batch kernel set this process dispatched to at
        // startup (GDIFF_SIMD / CPUID) — lets an operator confirm a
        // fleet is actually running the vector path.
        out += ",\"simd_dispatch\":\"";
        out += simd::activeName();
        out += '"';

        // Latency percentiles come from the merged obs histograms;
        // zeros when observability is off.
        obs::Snapshot snap = obs::snapshot();
        auto emitLatency = [&](const char *key, const char *hist) {
            double p50 = 0, p99 = 0;
            uint64_t count = 0;
            auto it = snap.histograms.find(hist);
            if (it != snap.histograms.end()) {
                count = it->second.samples();
                p50 = it->second.percentile(0.50) / 1e3;
                p99 = it->second.percentile(0.99) / 1e3;
            }
            std::snprintf(buf, sizeof(buf),
                          ",\"%s\":{\"count\":%" PRIu64
                          ",\"p50_ms\":%.3f,\"p99_ms\":%.3f}",
                          key, count, p50, p99);
            out += buf;
        };
        emitLatency("request_ms", "serve.request_us");
        emitLatency("job_ms", "serve.job_us");
        out += '}';
        return out;
    }

    DaemonStats
    stats() const
    {
        std::lock_guard<std::mutex> lk(mu);
        DaemonStats s;
        s.queuedJobs = queuedJobs;
        s.runningJobs = runningJobs;
        s.completedJobs = completedJobs;
        s.droppedJobs = droppedJobs;
        s.acceptedSweeps = acceptedSweeps;
        s.rejectedSweeps = rejectedSweeps;
        s.connectedClients = connections.size();
        s.draining = draining;
        s.traceCache = cache.snapshot();
        return s;
    }
};

// ------------------------------------------------------- Daemon API

Daemon::Daemon(DaemonConfig config)
    : impl(new Impl(std::move(config))),
      cfgSocketPath(impl->cfg.socketPath)
{}

Daemon::~Daemon()
{
    if (impl->started && !impl->joined) {
        requestDrain();
        waitUntilDrained();
    }
    delete impl;
}

bool
Daemon::start(std::string *error)
{
    return impl->start(error);
}

void
Daemon::requestDrain()
{
    impl->requestDrain();
}

void
Daemon::waitUntilDrained()
{
    impl->waitUntilDrained();
}

DaemonStats
Daemon::stats() const
{
    return impl->stats();
}

unsigned
Daemon::workers() const
{
    return static_cast<unsigned>(impl->workerThreads.size());
}

} // namespace serve
} // namespace gdiff
