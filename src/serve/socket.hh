/**
 * @file
 * Minimal Unix-domain stream-socket helpers for the serving layer.
 *
 * Everything the daemon and client need and nothing more: an RAII fd
 * wrapper, listen/accept/connect on a filesystem socket path, and
 * loop-until-done read/write that hide EINTR and partial transfers.
 * Writes use MSG_NOSIGNAL so a peer that disappeared mid-stream shows
 * up as an error return instead of SIGPIPE killing the daemon.
 */

#ifndef GDIFF_SERVE_SOCKET_HH
#define GDIFF_SERVE_SOCKET_HH

#include <cstddef>
#include <string>

namespace gdiff {
namespace serve {

/** Owning file descriptor; closes on destruction, movable. */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd(fd) {}
    ~Fd() { reset(); }

    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    Fd(Fd &&o) noexcept : fd(o.fd) { o.fd = -1; }
    Fd &
    operator=(Fd &&o) noexcept
    {
        if (this != &o) {
            reset();
            fd = o.fd;
            o.fd = -1;
        }
        return *this;
    }

    /** @return the raw descriptor (-1 when empty). */
    int get() const { return fd; }

    bool valid() const { return fd >= 0; }

    /** Close the held descriptor (no-op when empty). */
    void reset();

    /** Release ownership without closing. */
    int
    release()
    {
        int f = fd;
        fd = -1;
        return f;
    }

  private:
    int fd = -1;
};

/**
 * Bind and listen on a Unix-domain stream socket at @p path. A stale
 * socket file from a crashed daemon is unlinked first.
 *
 * @return the listening fd, or an invalid Fd with @p error set.
 */
Fd listenUnix(const std::string &path, std::string *error);

/**
 * Accept one connection on @p listenFd.
 *
 * @return the connection fd, or an invalid Fd once the listener has
 * been shut down (or on error).
 */
Fd acceptUnix(int listenFd);

/**
 * Connect to the Unix-domain socket at @p path.
 *
 * @return the connected fd, or an invalid Fd with @p error set.
 */
Fd connectUnix(const std::string &path, std::string *error);

/**
 * Write all @p len bytes to @p fd, retrying on EINTR and short
 * writes. @return false on any other error (e.g. the peer vanished).
 */
bool writeAll(int fd, const void *data, size_t len);

/**
 * Read exactly @p len bytes from @p fd.
 *
 * @return 1 on success, 0 on clean EOF *before the first byte*,
 * -2 on EOF in the middle of the requested span (a truncated frame),
 * and -1 on a read error.
 */
int readAll(int fd, void *data, size_t len);

} // namespace serve
} // namespace gdiff

#endif // GDIFF_SERVE_SOCKET_HH
