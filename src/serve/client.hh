/**
 * @file
 * Client side of the gdiffd protocol: connect, submit a sweep,
 * stream the per-job results back, query status. Used by the
 * gdiffctl CLI, bench/serve_load, and the protocol tests; all the
 * wire details live in serve/protocol.hh.
 *
 * Every call reports failure through a returned false plus an error
 * string — a client library must never fatal() out of a caller that
 * may want to retry or fail over to in-process execution.
 */

#ifndef GDIFF_SERVE_CLIENT_HH
#define GDIFF_SERVE_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "runner/job.hh"
#include "serve/socket.hh"

namespace gdiff {
namespace serve {

/** What to submit. */
struct SubmitRequest
{
    std::string grid;          ///< gdiffrun --grid syntax
    std::string client;        ///< name for fairness/obs attribution
    uint64_t instructions = 0; ///< 0 = daemon/grid default
    uint64_t warmup = 0;       ///< 0 = grid default
    /// 0 = full-trace simulation; non-zero requests sampled
    /// simulation with this many timing-simulated records per job
    uint64_t sampleBudget = 0;
    uint64_t sampleWindow = 4096; ///< records per measured window
    uint64_t sampleSeed = 1;      ///< window-selection seed
};

/** The daemon's sweep_done summary. */
struct SweepOutcome
{
    uint64_t sweep = 0;      ///< daemon-assigned sweep id
    size_t jobs = 0;         ///< jobs executed
    size_t generated = 0;    ///< jobs that materialized a trace
    size_t replayed = 0;     ///< jobs served from the daemon cache
    double wallSeconds = 0;  ///< submit-to-done, daemon-side
};

/** One connection to a gdiffd daemon. */
class Client
{
  public:
    Client() = default;

    /** Connect to the daemon socket at @p path. */
    bool connect(const std::string &path, std::string *error);

    bool connected() const { return sock.valid(); }

    /** Close the connection (dropping any in-flight sweep). */
    void close() { sock.reset(); }

    /**
     * Submit @p request and block until the daemon acks it. A
     * "rejected" backpressure answer is reported as failure with the
     * daemon's reason in @p error.
     */
    bool submit(const SubmitRequest &request, std::string *error);

    /**
     * After a successful submit(): deliver each arriving job record
     * to @p onJob (in completion order) until the sweep_done frame.
     *
     * @param onJob   may be null.
     * @param outcome filled with the daemon's summary; may be null.
     * @return true when the sweep completed.
     */
    bool streamResults(
        const std::function<void(const runner::JobRecord &)> &onJob,
        SweepOutcome *outcome, std::string *error);

    /** @return the daemon's status_ok JSON document in @p statusJson. */
    bool status(std::string *statusJson, std::string *error);

    /** Liveness probe. */
    bool ping(std::string *error);

    /** Ask the daemon to drain and exit. */
    bool shutdown(std::string *error);

    /** Expose the raw fd for protocol edge-case tests. */
    int fd() const { return sock.get(); }

  private:
    /** Read one frame and parse it as a JSON object. */
    bool readMessage(std::string &payload, std::string *error);

    Fd sock;
};

} // namespace serve
} // namespace gdiff

#endif // GDIFF_SERVE_CLIENT_HH
