#include "serve/protocol.hh"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "runner/sinks.hh"
#include "serve/socket.hh"

namespace gdiff {
namespace serve {

const char *
frameStatusName(FrameStatus status)
{
    switch (status) {
      case FrameStatus::Ok:
        return "ok";
      case FrameStatus::Eof:
        return "eof";
      case FrameStatus::TooLarge:
        return "too-large";
      case FrameStatus::Truncated:
        return "truncated";
      case FrameStatus::IoError:
        return "io-error";
    }
    return "unknown";
}

FrameStatus
readFrame(int fd, std::string &payload, size_t maxBytes)
{
    unsigned char prefix[4];
    int r = readAll(fd, prefix, sizeof(prefix));
    if (r == 0)
        return FrameStatus::Eof;
    if (r == -2)
        return FrameStatus::Truncated;
    if (r < 0)
        return FrameStatus::IoError;
    uint32_t len = uint32_t(prefix[0]) | uint32_t(prefix[1]) << 8 |
                   uint32_t(prefix[2]) << 16 |
                   uint32_t(prefix[3]) << 24;
    if (len > maxBytes)
        return FrameStatus::TooLarge;
    payload.resize(len);
    if (len == 0)
        return FrameStatus::Ok;
    r = readAll(fd, payload.data(), len);
    if (r == 1)
        return FrameStatus::Ok;
    // EOF anywhere inside the payload (even exactly at its start) is
    // a truncated frame; only a genuine read error is IoError.
    return r == -1 ? FrameStatus::IoError : FrameStatus::Truncated;
}

bool
writeFrame(int fd, std::string_view payload, size_t maxBytes)
{
    if (payload.size() > maxBytes)
        return false;
    uint32_t len = static_cast<uint32_t>(payload.size());
    unsigned char prefix[4] = {
        static_cast<unsigned char>(len),
        static_cast<unsigned char>(len >> 8),
        static_cast<unsigned char>(len >> 16),
        static_cast<unsigned char>(len >> 24),
    };
    // One coalesced buffer per frame: a frame is small relative to a
    // syscall, and partial interleaving from two buffers would let a
    // failed second write desynchronize the stream.
    std::string wire;
    wire.reserve(sizeof(prefix) + payload.size());
    wire.append(reinterpret_cast<const char *>(prefix),
                sizeof(prefix));
    wire.append(payload.data(), payload.size());
    return writeAll(fd, wire.data(), wire.size());
}

namespace {

std::string
quoted(const std::string &s)
{
    return '"' + json::escape(s) + '"';
}

} // anonymous namespace

std::string
submitMessage(const std::string &client, const std::string &grid,
              uint64_t instructions, uint64_t warmup,
              uint64_t sampleBudget, uint64_t sampleWindow,
              uint64_t sampleSeed)
{
    std::string msg = "{\"type\":\"submit\",\"client\":" +
                      quoted(client) + ",\"grid\":" + quoted(grid);
    char buf[96];
    if (instructions != 0) {
        std::snprintf(buf, sizeof(buf),
                      ",\"instructions\":%" PRIu64, instructions);
        msg += buf;
    }
    if (warmup != 0) {
        std::snprintf(buf, sizeof(buf), ",\"warmup\":%" PRIu64,
                      warmup);
        msg += buf;
    }
    if (sampleBudget != 0) {
        std::snprintf(buf, sizeof(buf),
                      ",\"sample_budget\":%" PRIu64
                      ",\"sample_window\":%" PRIu64
                      ",\"sample_seed\":%" PRIu64,
                      sampleBudget, sampleWindow, sampleSeed);
        msg += buf;
    }
    msg += '}';
    return msg;
}

std::string
statusMessage()
{
    return "{\"type\":\"status\"}";
}

std::string
pingMessage()
{
    return "{\"type\":\"ping\"}";
}

std::string
shutdownMessage()
{
    return "{\"type\":\"shutdown\"}";
}

std::string
acceptedMessage(uint64_t sweep, size_t jobs)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "{\"type\":\"accepted\",\"sweep\":%" PRIu64
                  ",\"jobs\":%zu}",
                  sweep, jobs);
    return buf;
}

std::string
rejectedMessage(const std::string &reason, size_t queued,
                size_t capacity)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  ",\"queued\":%zu,\"capacity\":%zu}", queued,
                  capacity);
    return "{\"type\":\"rejected\",\"reason\":" + quoted(reason) + buf;
}

std::string
errorMessage(const std::string &message)
{
    return "{\"type\":\"error\",\"message\":" + quoted(message) + "}";
}

std::string
jobMessage(uint64_t sweep, const runner::JobRecord &rec)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "{\"type\":\"job\",\"sweep\":%" PRIu64
                  ",\"record\":",
                  sweep);
    std::string msg = buf;
    msg += runner::JsonlSink::deterministicJson(rec);
    std::snprintf(buf, sizeof(buf),
                  ",\"wall_seconds\":%.6f,"
                  "\"instructions_per_sec\":%.0f,"
                  "\"trace_source\":\"%s\","
                  "\"trace_generate_seconds\":%.6f}",
                  rec.result.wallSeconds,
                  rec.result.instructionsPerSec,
                  rec.result.traceReplayed ? "replay" : "generate",
                  rec.result.traceGenerateSeconds);
    msg += buf;
    return msg;
}

std::string
sweepDoneMessage(uint64_t sweep, size_t jobs, size_t generated,
                 size_t replayed, double wallSeconds)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "{\"type\":\"sweep_done\",\"sweep\":%" PRIu64
                  ",\"jobs\":%zu,\"generated\":%zu,\"replayed\":%zu,"
                  "\"wall_seconds\":%.6f}",
                  sweep, jobs, generated, replayed, wallSeconds);
    return buf;
}

bool
parseJobFrame(const json::Value &frame, runner::JobRecord &out,
              std::string *error)
{
    const json::Value *record = frame.find("record");
    if (!record || !record->isObject()) {
        if (error)
            *error = "job frame: missing 'record' object";
        return false;
    }

    // The record object is exactly the deterministic payload; its
    // inverse lives next to the producer (runner/sinks.cc) so sampled
    // specs, metrics order, and any future payload field stay in one
    // place.
    if (!runner::parseRecordJson(*record, out, error)) {
        if (error)
            *error = "job frame: " + *error;
        return false;
    }

    // Timing metadata rides outside the record; tolerate absence so
    // older daemons stay readable.
    if (const json::Value *v = frame.find("wall_seconds");
        v && v->isNumber())
        out.result.wallSeconds = v->number;
    if (const json::Value *v = frame.find("instructions_per_sec");
        v && v->isNumber())
        out.result.instructionsPerSec = v->number;
    if (const json::Value *v = frame.find("trace_source");
        v && v->isString())
        out.result.traceReplayed = v->str == "replay";
    if (const json::Value *v = frame.find("trace_generate_seconds");
        v && v->isNumber())
        out.result.traceGenerateSeconds = v->number;
    return true;
}

} // namespace serve
} // namespace gdiff
