#include "serve/protocol.hh"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "runner/sinks.hh"
#include "serve/socket.hh"

namespace gdiff {
namespace serve {

const char *
frameStatusName(FrameStatus status)
{
    switch (status) {
      case FrameStatus::Ok:
        return "ok";
      case FrameStatus::Eof:
        return "eof";
      case FrameStatus::TooLarge:
        return "too-large";
      case FrameStatus::Truncated:
        return "truncated";
      case FrameStatus::IoError:
        return "io-error";
    }
    return "unknown";
}

FrameStatus
readFrame(int fd, std::string &payload, size_t maxBytes)
{
    unsigned char prefix[4];
    int r = readAll(fd, prefix, sizeof(prefix));
    if (r == 0)
        return FrameStatus::Eof;
    if (r == -2)
        return FrameStatus::Truncated;
    if (r < 0)
        return FrameStatus::IoError;
    uint32_t len = uint32_t(prefix[0]) | uint32_t(prefix[1]) << 8 |
                   uint32_t(prefix[2]) << 16 |
                   uint32_t(prefix[3]) << 24;
    if (len > maxBytes)
        return FrameStatus::TooLarge;
    payload.resize(len);
    if (len == 0)
        return FrameStatus::Ok;
    r = readAll(fd, payload.data(), len);
    if (r == 1)
        return FrameStatus::Ok;
    // EOF anywhere inside the payload (even exactly at its start) is
    // a truncated frame; only a genuine read error is IoError.
    return r == -1 ? FrameStatus::IoError : FrameStatus::Truncated;
}

bool
writeFrame(int fd, std::string_view payload, size_t maxBytes)
{
    if (payload.size() > maxBytes)
        return false;
    uint32_t len = static_cast<uint32_t>(payload.size());
    unsigned char prefix[4] = {
        static_cast<unsigned char>(len),
        static_cast<unsigned char>(len >> 8),
        static_cast<unsigned char>(len >> 16),
        static_cast<unsigned char>(len >> 24),
    };
    // One coalesced buffer per frame: a frame is small relative to a
    // syscall, and partial interleaving from two buffers would let a
    // failed second write desynchronize the stream.
    std::string wire;
    wire.reserve(sizeof(prefix) + payload.size());
    wire.append(reinterpret_cast<const char *>(prefix),
                sizeof(prefix));
    wire.append(payload.data(), payload.size());
    return writeAll(fd, wire.data(), wire.size());
}

namespace {

std::string
quoted(const std::string &s)
{
    return '"' + json::escape(s) + '"';
}

} // anonymous namespace

std::string
submitMessage(const std::string &client, const std::string &grid,
              uint64_t instructions, uint64_t warmup,
              uint64_t sampleBudget, uint64_t sampleWindow,
              uint64_t sampleSeed)
{
    std::string msg = "{\"type\":\"submit\",\"client\":" +
                      quoted(client) + ",\"grid\":" + quoted(grid);
    char buf[96];
    if (instructions != 0) {
        std::snprintf(buf, sizeof(buf),
                      ",\"instructions\":%" PRIu64, instructions);
        msg += buf;
    }
    if (warmup != 0) {
        std::snprintf(buf, sizeof(buf), ",\"warmup\":%" PRIu64,
                      warmup);
        msg += buf;
    }
    if (sampleBudget != 0) {
        std::snprintf(buf, sizeof(buf),
                      ",\"sample_budget\":%" PRIu64
                      ",\"sample_window\":%" PRIu64
                      ",\"sample_seed\":%" PRIu64,
                      sampleBudget, sampleWindow, sampleSeed);
        msg += buf;
    }
    msg += '}';
    return msg;
}

std::string
statusMessage()
{
    return "{\"type\":\"status\"}";
}

std::string
pingMessage()
{
    return "{\"type\":\"ping\"}";
}

std::string
shutdownMessage()
{
    return "{\"type\":\"shutdown\"}";
}

std::string
acceptedMessage(uint64_t sweep, size_t jobs)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "{\"type\":\"accepted\",\"sweep\":%" PRIu64
                  ",\"jobs\":%zu}",
                  sweep, jobs);
    return buf;
}

std::string
rejectedMessage(const std::string &reason, size_t queued,
                size_t capacity)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  ",\"queued\":%zu,\"capacity\":%zu}", queued,
                  capacity);
    return "{\"type\":\"rejected\",\"reason\":" + quoted(reason) + buf;
}

std::string
errorMessage(const std::string &message)
{
    return "{\"type\":\"error\",\"message\":" + quoted(message) + "}";
}

std::string
jobMessage(uint64_t sweep, const runner::JobRecord &rec)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "{\"type\":\"job\",\"sweep\":%" PRIu64
                  ",\"record\":",
                  sweep);
    std::string msg = buf;
    msg += runner::JsonlSink::deterministicJson(rec);
    std::snprintf(buf, sizeof(buf),
                  ",\"wall_seconds\":%.6f,"
                  "\"instructions_per_sec\":%.0f,"
                  "\"trace_source\":\"%s\","
                  "\"trace_generate_seconds\":%.6f}",
                  rec.result.wallSeconds,
                  rec.result.instructionsPerSec,
                  rec.result.traceReplayed ? "replay" : "generate",
                  rec.result.traceGenerateSeconds);
    msg += buf;
    return msg;
}

std::string
sweepDoneMessage(uint64_t sweep, size_t jobs, size_t generated,
                 size_t replayed, double wallSeconds)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "{\"type\":\"sweep_done\",\"sweep\":%" PRIu64
                  ",\"jobs\":%zu,\"generated\":%zu,\"replayed\":%zu,"
                  "\"wall_seconds\":%.6f}",
                  sweep, jobs, generated, replayed, wallSeconds);
    return buf;
}

namespace {

/** Fetch a numeric member or report which one is bad. */
bool
numberField(const json::Value &obj, const char *key, double &out,
            std::string *error)
{
    const json::Value *v = obj.find(key);
    if (!v || !v->isNumber()) {
        if (error)
            *error = std::string("job frame: missing or non-numeric "
                                 "field '") +
                     key + "'";
        return false;
    }
    out = v->number;
    return true;
}

} // anonymous namespace

bool
parseJobFrame(const json::Value &frame, runner::JobRecord &out,
              std::string *error)
{
    const json::Value *record = frame.find("record");
    if (!record || !record->isObject()) {
        if (error)
            *error = "job frame: missing 'record' object";
        return false;
    }

    const json::Value *wl = record->find("workload");
    const json::Value *mode = record->find("mode");
    if (!wl || !wl->isString() || !mode || !mode->isString()) {
        if (error)
            *error = "job frame: record needs string 'workload' and "
                     "'mode'";
        return false;
    }
    runner::JobSpec spec;
    spec.workload = wl->str;
    if (mode->str == "profile") {
        spec.mode = runner::JobMode::Profile;
        const json::Value *p = record->find("predictor");
        if (!p || !p->isString()) {
            if (error)
                *error = "job frame: profile record needs "
                         "'predictor'";
            return false;
        }
        spec.predictor = p->str;
    } else if (mode->str == "pipeline") {
        spec.mode = runner::JobMode::Pipeline;
        const json::Value *s = record->find("scheme");
        if (!s || !s->isString()) {
            if (error)
                *error = "job frame: pipeline record needs 'scheme'";
            return false;
        }
        spec.scheme = s->str;
    } else {
        if (error)
            *error = "job frame: unknown mode '" + mode->str + "'";
        return false;
    }

    double order, table, seed, instructions, warmup, index;
    if (!numberField(*record, "order", order, error) ||
        !numberField(*record, "table", table, error) ||
        !numberField(*record, "seed", seed, error) ||
        !numberField(*record, "instructions", instructions, error) ||
        !numberField(*record, "warmup", warmup, error) ||
        !numberField(*record, "index", index, error))
        return false;
    spec.order = static_cast<unsigned>(order);
    spec.tableEntries = static_cast<uint64_t>(table);
    spec.seed = static_cast<uint64_t>(seed);
    spec.instructions = static_cast<uint64_t>(instructions);
    spec.warmup = static_cast<uint64_t>(warmup);

    const json::Value *metrics = record->find("metrics");
    if (!metrics || !metrics->isObject()) {
        if (error)
            *error = "job frame: record needs a 'metrics' object";
        return false;
    }
    runner::JobResult result;
    // Document order is insertion order, so the rebuilt metrics list
    // matches the producing job's exactly.
    for (const auto &[name, value] : metrics->object) {
        if (!value.isNumber()) {
            if (error)
                *error = "job frame: metric '" + name +
                         "' is not a number";
            return false;
        }
        result.metrics.emplace_back(name, value.number);
    }

    // Timing metadata rides outside the record; tolerate absence so
    // older daemons stay readable.
    if (const json::Value *v = frame.find("wall_seconds");
        v && v->isNumber())
        result.wallSeconds = v->number;
    if (const json::Value *v = frame.find("instructions_per_sec");
        v && v->isNumber())
        result.instructionsPerSec = v->number;
    if (const json::Value *v = frame.find("trace_source");
        v && v->isString())
        result.traceReplayed = v->str == "replay";
    if (const json::Value *v = frame.find("trace_generate_seconds");
        v && v->isNumber())
        result.traceGenerateSeconds = v->number;

    out.index = static_cast<size_t>(index);
    out.spec = std::move(spec);
    out.result = std::move(result);
    return true;
}

} // namespace serve
} // namespace gdiff
