#include "serve/socket.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/logging.hh"

namespace gdiff {
namespace serve {

void
Fd::reset()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

namespace {

/** Fill a sockaddr_un for @p path; false if the path is too long. */
bool
makeAddr(const std::string &path, sockaddr_un &addr)
{
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        return false;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // anonymous namespace

Fd
listenUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr;
    if (!makeAddr(path, addr)) {
        if (error)
            *error = "socket path '" + path +
                     "' is empty or too long for sun_path";
        return Fd();
    }
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return Fd();
    }
    // A socket file left by a crashed daemon would make bind fail
    // with EADDRINUSE even though nobody is listening.
    ::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        if (error)
            *error = "bind '" + path +
                     "': " + std::strerror(errno);
        return Fd();
    }
    if (::listen(fd.get(), 64) != 0) {
        if (error)
            *error = "listen '" + path +
                     "': " + std::strerror(errno);
        return Fd();
    }
    return fd;
}

Fd
acceptUnix(int listenFd)
{
    for (;;) {
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd >= 0)
            return Fd(fd);
        if (errno == EINTR)
            continue;
        // EINVAL: the listener was shutdown() to stop the accept
        // loop; anything else also ends accepting.
        return Fd();
    }
}

Fd
connectUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr;
    if (!makeAddr(path, addr)) {
        if (error)
            *error = "socket path '" + path +
                     "' is empty or too long for sun_path";
        return Fd();
    }
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return Fd();
    }
    if (::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error)
            *error = "connect '" + path +
                     "': " + std::strerror(errno);
        return Fd();
    }
    return fd;
}

bool
writeAll(int fd, const void *data, size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

int
readAll(int fd, void *data, size_t len)
{
    char *p = static_cast<char *>(data);
    size_t got = 0;
    while (got < len) {
        ssize_t n = ::recv(fd, p + got, len - got, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (n == 0)
            return got == 0 ? 0 : -2;
        got += static_cast<size_t>(n);
    }
    return 1;
}

} // namespace serve
} // namespace gdiff
