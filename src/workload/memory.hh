/**
 * @file
 * Sparse, paged functional memory for the synthetic-ISA executor.
 */

#ifndef GDIFF_WORKLOAD_MEMORY_HH
#define GDIFF_WORKLOAD_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

namespace gdiff {
namespace workload {

/**
 * A sparse 64-bit address space of 64-bit words, allocated in 4 KiB
 * pages on first touch. Unwritten memory reads as zero, matching how
 * the kernels' data segments are initialised explicitly before a run.
 *
 * All accesses are 8-byte words and must be 8-byte aligned; the
 * workload kernels never do sub-word accesses (sub-word behaviour is
 * irrelevant to the value streams under study).
 */
class Memory
{
  public:
    Memory() = default;

    /**
     * Read the 64-bit word at an 8-byte-aligned byte address.
     * @param addr byte address (must be 8-byte aligned).
     */
    int64_t read64(uint64_t addr) const;

    /**
     * Write the 64-bit word at an 8-byte-aligned byte address.
     * @param addr byte address (must be 8-byte aligned).
     * @param value word to store.
     */
    void write64(uint64_t addr, int64_t value);

    /** @return the number of currently allocated 4 KiB pages. */
    size_t allocatedPages() const { return pages.size(); }

    /** Drop all contents. */
    void clear() { pages.clear(); }

  private:
    static constexpr uint64_t pageShift = 12;
    static constexpr uint64_t pageBytes = uint64_t(1) << pageShift;
    static constexpr uint64_t wordsPerPage = pageBytes / 8;

    using Page = std::array<int64_t, wordsPerPage>;

    std::unordered_map<uint64_t, std::unique_ptr<Page>> pages;
};

} // namespace workload
} // namespace gdiff

#endif // GDIFF_WORKLOAD_MEMORY_HH
