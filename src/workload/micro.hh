/**
 * @file
 * Micro-workloads: single-locality unit streams.
 *
 * Each micro kernel produces values from exactly one locality class,
 * so a predictor's behaviour can be studied in isolation (the
 * kernels in kernels/ deliberately mix classes, as real programs do).
 * Available through makeMicroWorkload() and, with a "micro." prefix,
 * through gdiffsim:
 *
 *   gdiffsim --workload=micro.affine --predictors=stride,gdiff
 *
 * | name       | stream                          | home predictor |
 * |------------|---------------------------------|----------------|
 * | stride     | per-PC constant strides         | local stride   |
 * | periodic   | per-PC repeating stride pattern | DFCM           |
 * | spillfill  | store/reload round trips        | gdiff (diff 0) |
 * | affine     | pointer fields affine in address| gdiff          |
 * | pairsum    | x = w[j] + w[k] + c             | gdiff2         |
 * | random     | LCG noise                       | nobody         |
 */

#ifndef GDIFF_WORKLOAD_MICRO_HH
#define GDIFF_WORKLOAD_MICRO_HH

#include <string>
#include <vector>

#include "workload/workload.hh"

namespace gdiff {
namespace workload {

/** @return the available micro-workload names. */
const std::vector<std::string> &microWorkloadNames();

/**
 * Construct a micro workload by name (without the "micro." prefix).
 * Calls fatal() on an unknown name.
 */
Workload makeMicroWorkload(const std::string &name, uint64_t seed = 1);

} // namespace workload
} // namespace gdiff

#endif // GDIFF_WORKLOAD_MICRO_HH
