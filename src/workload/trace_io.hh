/**
 * @file
 * Binary trace files: record a kernel's dynamic stream once, replay
 * it many times (SimpleScalar-style trace-driven methodology, and the
 * natural interchange point for driving the predictors from traces
 * produced elsewhere).
 *
 * Format (version 2, chunked columnar): a 16-byte header (magic
 * "GDTR", version, record count) followed by blocks of up to
 * TraceChunk::capacity records. Each block is a u32 record count and
 * then one little-endian column per field (op, rd, rs1, rs2, flags,
 * target, imm, seq, pc, nextPc, value, effAddr) — the on-disk mirror
 * of the in-memory structure-of-arrays TraceChunk, so replay is a
 * handful of bulk freads per 4K records. The format is versioned and
 * validated on open; readers reject mismatched magic/version and
 * truncated files.
 */

#ifndef GDIFF_WORKLOAD_TRACE_IO_HH
#define GDIFF_WORKLOAD_TRACE_IO_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "workload/trace.hh"

namespace gdiff {
namespace workload {

/** Writes TraceRecords to a binary trace file in chunked blocks. */
class TraceWriter
{
  public:
    /**
     * Open @p path for writing (truncates). Calls fatal() if the
     * file cannot be created.
     */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record (buffered into the pending block). */
    void append(const TraceRecord &r);

    /** Append a whole chunk as one block. */
    void append(const TraceChunk &chunk);

    /** Flush, finalise the header, and close. Idempotent. */
    void close();

    /** @return records written so far. */
    uint64_t written() const { return count; }

  private:
    /** Write the pending partial block, if any. */
    void flushPending();

    std::FILE *file = nullptr;
    uint64_t count = 0;
    std::unique_ptr<TraceChunk> pending;
};

/**
 * Replays a binary trace file as a TraceSource. fill() reads one
 * on-disk block per call; the per-record next() comes from the
 * buffered TraceSource default.
 */
class TraceFileSource : public TraceSource
{
  public:
    /**
     * Open @p path. Calls fatal() on missing file, bad magic, or
     * version mismatch.
     */
    explicit TraceFileSource(const std::string &path);
    ~TraceFileSource() override;

    TraceFileSource(const TraceFileSource &) = delete;
    TraceFileSource &operator=(const TraceFileSource &) = delete;

    bool fill(TraceChunk &chunk) override;

    /** @return total records the header promises. */
    uint64_t totalRecords() const { return total; }

    /** Rewind to the first record (for multi-pass experiments). */
    void rewind();

  private:
    std::FILE *file = nullptr;
    std::string path;
    uint64_t total = 0;
    uint64_t consumed = 0;
};

} // namespace workload
} // namespace gdiff

#endif // GDIFF_WORKLOAD_TRACE_IO_HH
