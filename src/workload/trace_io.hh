/**
 * @file
 * Binary trace files: record a kernel's dynamic stream once, replay
 * it many times (SimpleScalar-style trace-driven methodology, and the
 * natural interchange point for driving the predictors from traces
 * produced elsewhere).
 *
 * Two on-disk formats share the 16-byte header (magic "GDTR",
 * version, record count) and the same block structure of up to
 * TraceChunk::capacity records per block:
 *
 *  - Version 2 (chunked columnar, raw): each block is a u32 record
 *    count followed by one little-endian column per field — the
 *    on-disk mirror of the in-memory SoA TraceChunk.
 *
 *  - Version 3 (chunked columnar, stride-delta compressed): each
 *    block is a u32 record count, a u32 payload length, a u64 FNV-1a
 *    digest of the payload, and then one *codec-tagged* column per
 *    field: the writer delta-encodes each column (util/varint.hh —
 *    zigzag-varint deltas, or run-length coded deltas for
 *    constant-stride spans) and keeps whichever encoding is smallest,
 *    falling back to the raw column when the data is incompressible.
 *    A 16-byte footer carries an FNV-1a digest of every block byte,
 *    so whole-file integrity can be checked cheaply (the persistent
 *    disk cache does, before trusting an entry). Stride-dominant
 *    streams — the paper's whole subject — compress by an order of
 *    magnitude; see bench/trace_compress.
 *
 * Writers emit version 3 by default and version 2 on request.
 * Readers accept both transparently and reject anything else with an
 * error naming the found and supported versions.
 *
 * Two reader APIs exist:
 *
 *  - TraceFileReader / TraceBufferReader return *typed* errors
 *    (TraceIoStatus) and never terminate the process: corrupt input —
 *    truncations, flipped bytes, hostile varints — yields a clean
 *    status the caller can recover from. The persistent trace cache
 *    uses this to quarantine and regenerate corrupt entries.
 *
 *  - TraceFileSource is the TraceSource adapter for simulation
 *    drivers; it wraps TraceFileReader and keeps the historical
 *    contract of fatal() on any malformed file.
 */

#ifndef GDIFF_WORKLOAD_TRACE_IO_HH
#define GDIFF_WORKLOAD_TRACE_IO_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "workload/trace.hh"

namespace gdiff {
namespace workload {

/// @name trace format versions
/// @{
inline constexpr uint32_t traceVersionV2 = 2;
inline constexpr uint32_t traceVersionV3 = 3;
/// oldest and newest versions the readers accept
inline constexpr uint32_t traceVersionMin = traceVersionV2;
inline constexpr uint32_t traceVersionMax = traceVersionV3;
/// @}

/** What a trace read attempt concluded. Everything except Ok and End
 *  is a hard error for the stream. */
enum class TraceIoStatus
{
    Ok,             ///< a chunk was produced
    End,            ///< clean end of stream (and footer verified, v3)
    IoError,        ///< open/seek/read failed at the OS level
    Truncated,      ///< the file ends before the promised data
    BadMagic,       ///< not a gdiff trace file
    BadVersion,     ///< version outside [traceVersionMin, max]
    Corrupt,        ///< structurally invalid block/column/footer
    DigestMismatch, ///< stored digest does not match the bytes
};

/** @return a stable lowercase name for @p s (logs, tests). */
const char *traceIoStatusName(TraceIoStatus s);

/** A status plus a human-readable message for the error cases. */
struct TraceIoResult
{
    TraceIoStatus status = TraceIoStatus::Ok;
    std::string message;

    bool ok() const { return status == TraceIoStatus::Ok; }
    bool end() const { return status == TraceIoStatus::End; }
    bool failed() const { return !ok() && !end(); }
};

/** Writes TraceRecords to a binary trace file in chunked blocks. */
class TraceWriter
{
  public:
    /**
     * Open @p path for writing (truncates). Calls fatal() if the
     * file cannot be created.
     *
     * @param version on-disk format: traceVersionV3 (default,
     * stride-delta compressed) or traceVersionV2 (raw columns).
     */
    explicit TraceWriter(const std::string &path,
                         uint32_t version = traceVersionV3);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record (buffered into the pending block). */
    void append(const TraceRecord &r);

    /** Append a whole chunk as one block. */
    void append(const TraceChunk &chunk);

    /** Flush, finalise the header (and v3 footer), close. Idempotent. */
    void close();

    /** @return records written so far. */
    uint64_t written() const { return count; }

    /** @return the format version being written. */
    uint32_t version() const { return ver; }

  private:
    /** Write the pending partial block, if any. */
    void flushPending();

    /** Encode and write one block in the selected format. */
    void writeBlock(const TraceChunk &chunk);

    std::FILE *file = nullptr;
    std::string path;
    uint32_t ver = traceVersionV3;
    uint64_t count = 0;
    uint64_t fileDigest = 0; ///< running FNV over v3 block bytes
    std::unique_ptr<TraceChunk> pending;
    /// reusable encode scratch (payload build + candidate encodings)
    std::vector<uint8_t> payload, candA, candB, candC, candD;
};

namespace detail {
/// decode scratch shared by the readers (heap-allocated: ~100 KiB)
struct TraceDecodeScratch;
} // namespace detail

/**
 * Streaming trace-file reader with typed, recoverable errors.
 *
 * Unlike TraceFileSource this never calls fatal(): every malformed
 * input — wrong magic/version, truncation, corrupt blocks, digest
 * mismatches — comes back as a TraceIoResult so callers (the
 * persistent disk cache, the corruption tests) can handle it.
 */
class TraceFileReader
{
  public:
    TraceFileReader();
    ~TraceFileReader();

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    /**
     * Open and validate @p path's header.
     *
     * @param maxVersion newest format version to accept; readers
     * from the version-2 era are simulated in tests by passing
     * traceVersionV2.
     */
    TraceIoResult open(const std::string &path,
                       uint32_t maxVersion = traceVersionMax);

    /**
     * Read the next block into @p chunk.
     * @return Ok with records in @p chunk, End at the clean end of
     * the stream (after footer verification for v3), or an error.
     */
    TraceIoResult read(TraceChunk &chunk);

    /** Rewind to the first record. */
    TraceIoResult rewind();

    /** @return total records the header promises. */
    uint64_t totalRecords() const { return total; }

    /** @return the file's format version (valid after open()). */
    uint32_t version() const { return ver; }

  private:
    std::FILE *file = nullptr;
    std::string path;
    uint32_t ver = 0;
    uint64_t total = 0;
    uint64_t consumed = 0;
    uint64_t runningDigest = 0;
    bool footerVerified = false;
    std::vector<uint8_t> blockBuf;
    std::unique_ptr<detail::TraceDecodeScratch> scratch;
};

/**
 * Decodes a complete in-memory trace image (e.g. an mmap'd persistent
 * cache entry) with the same typed-error contract as TraceFileReader.
 * Non-owning: the span must outlive the reader.
 */
class TraceBufferReader
{
  public:
    TraceBufferReader();
    ~TraceBufferReader();

    TraceBufferReader(const TraceBufferReader &) = delete;
    TraceBufferReader &operator=(const TraceBufferReader &) = delete;

    /** Validate the header of the @p size bytes at @p data. */
    TraceIoResult open(const uint8_t *data, size_t size,
                       uint32_t maxVersion = traceVersionMax);

    /** Read the next block into @p chunk (see TraceFileReader::read). */
    TraceIoResult read(TraceChunk &chunk);

    /** @return total records the header promises. */
    uint64_t totalRecords() const { return total; }

    /** @return the image's format version (valid after open()). */
    uint32_t version() const { return ver; }

  private:
    const uint8_t *cursor = nullptr;
    const uint8_t *end = nullptr;
    uint32_t ver = 0;
    uint64_t total = 0;
    uint64_t consumed = 0;
    uint64_t runningDigest = 0;
    std::unique_ptr<detail::TraceDecodeScratch> scratch;
};

/**
 * Replays a binary trace file as a TraceSource. fill() reads one
 * on-disk block per call; the per-record next() comes from the
 * buffered TraceSource default.
 */
class TraceFileSource : public TraceSource
{
  public:
    /**
     * Open @p path. Calls fatal() on missing file, bad magic, or
     * version mismatch.
     */
    explicit TraceFileSource(const std::string &path);
    ~TraceFileSource() override;

    TraceFileSource(const TraceFileSource &) = delete;
    TraceFileSource &operator=(const TraceFileSource &) = delete;

    bool fill(TraceChunk &chunk) override;

    /** @return total records the header promises. */
    uint64_t totalRecords() const { return reader.totalRecords(); }

    /** Rewind to the first record (for multi-pass experiments). */
    void rewind();

  private:
    TraceFileReader reader;
    std::string path;
};

/**
 * The v3 codec's phase/period detector, exported for phase-aware
 * sampling strata (src/sample/): @return the period L (2..48) at
 * which the column's lag-L deltas are most nearly constant per phase
 * over a <= 2048-element scan prefix, or 1 when no period shows a
 * useful signal. A stream's (value-period, pc-period) pair is a cheap
 * fingerprint of which loop phase it is in.
 */
uint32_t detectStridePeriod(const uint64_t *v, uint32_t n);

} // namespace workload
} // namespace gdiff

#endif // GDIFF_WORKLOAD_TRACE_IO_HH
