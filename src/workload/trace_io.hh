/**
 * @file
 * Binary trace files: record a kernel's dynamic stream once, replay
 * it many times (SimpleScalar-style trace-driven methodology, and the
 * natural interchange point for driving the predictors from traces
 * produced elsewhere).
 *
 * Format: a 16-byte header (magic "GDTR", version, record count)
 * followed by fixed-width 64-byte little-endian records. The format
 * is versioned and validated on open; readers reject mismatched
 * magic/version and truncated files.
 */

#ifndef GDIFF_WORKLOAD_TRACE_IO_HH
#define GDIFF_WORKLOAD_TRACE_IO_HH

#include <cstdint>
#include <cstdio>
#include <string>

#include "workload/trace.hh"

namespace gdiff {
namespace workload {

/** Writes TraceRecords to a binary trace file. */
class TraceWriter
{
  public:
    /**
     * Open @p path for writing (truncates). Calls fatal() if the
     * file cannot be created.
     */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record. */
    void append(const TraceRecord &r);

    /** Flush, finalise the header, and close. Idempotent. */
    void close();

    /** @return records written so far. */
    uint64_t written() const { return count; }

  private:
    std::FILE *file = nullptr;
    uint64_t count = 0;
};

/**
 * Replays a binary trace file as a TraceSource.
 */
class TraceFileSource : public TraceSource
{
  public:
    /**
     * Open @p path. Calls fatal() on missing file, bad magic, or
     * version mismatch.
     */
    explicit TraceFileSource(const std::string &path);
    ~TraceFileSource() override;

    TraceFileSource(const TraceFileSource &) = delete;
    TraceFileSource &operator=(const TraceFileSource &) = delete;

    bool next(TraceRecord &out) override;

    /** @return total records the header promises. */
    uint64_t totalRecords() const { return total; }

    /** Rewind to the first record (for multi-pass experiments). */
    void rewind();

  private:
    std::FILE *file = nullptr;
    uint64_t total = 0;
    uint64_t consumed = 0;
};

} // namespace workload
} // namespace gdiff

#endif // GDIFF_WORKLOAD_TRACE_IO_HH
