/**
 * @file
 * Factory functions for the ten SPECint2000-like workload kernels.
 *
 * Each kernel is a synthetic program whose *code structure* induces
 * the value-locality mix the paper attributes to the corresponding
 * SPECint2000 benchmark. The kernels share layout conventions:
 *
 *  - data segment from 0x10000000 upward,
 *  - stack frames around 0x7fff0000 (s8 is the frame pointer),
 *  - all memory words are 64-bit.
 */

#ifndef GDIFF_WORKLOAD_KERNELS_HH
#define GDIFF_WORKLOAD_KERNELS_HH

#include <cstdint>

#include "workload/workload.hh"

namespace gdiff {
namespace workload {
namespace kernels {

/** Base address of every kernel's data segment. */
inline constexpr uint64_t dataBase = 0x10000000;

/** Frame-pointer address shared by the kernels' stack idioms. */
inline constexpr uint64_t frameBase = 0x7fff0000;

/** Block-sorting compressor: strided buffer scans, run-length loops. */
Workload makeBzip2(uint64_t seed);

/** Computer algebra: long hard-to-predict computation chains whose
 * only correlations sit at global distances beyond a small GVQ. */
Workload makeGap(uint64_t seed);

/** Compiler: many generated basic blocks, irregular unbalanced
 * control paths, mixed locality, large static footprint. */
Workload makeGcc(uint64_t seed);

/** LZ77 compressor: hash-chain lookups plus strided copy loops. */
Workload makeGzip(uint64_t seed);

/** Network simplex: pointer chasing over sequentially allocated
 * arc/node arrays, cache-hostile working set, strong global stride. */
Workload makeMcf(uint64_t seed);

/** Natural-language parser: register spill/fill reloads (paper
 * Figs. 1-2) and sequentially allocated string_list nodes (Fig. 4). */
Workload makeParser(uint64_t seed);

/** Interpreter: bytecode dispatch loop, operand-stack traffic. */
Workload makePerl(uint64_t seed);

/** Standard-cell placer: struct-field difference computations over
 * sequentially allocated cells. */
Workload makeTwolf(uint64_t seed);

/** OO database: deep call chains with register save/restore. */
Workload makeVortex(uint64_t seed);

/** FPGA place & route: nested grid loops, strided addressing. */
Workload makeVpr(uint64_t seed);

} // namespace kernels
} // namespace workload
} // namespace gdiff

#endif // GDIFF_WORKLOAD_KERNELS_HH
