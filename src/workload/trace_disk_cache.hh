/**
 * @file
 * Persistent, disk-backed tier under the in-memory TraceCache.
 *
 * A materialized (workload, seed, records) trace is expensive to
 * regenerate and perfectly deterministic, which makes it an ideal
 * candidate for caching *across processes*: a sweep re-run, a
 * restarted gdiffd, or the second step of a CI job can replay
 * yesterday's traces from disk instead of re-executing the kernels.
 *
 * Layout: one format-v3 trace file per entry, content-addressed by
 * name — `<workload>-s<seed>-r<records>-v3.gdtr` — under a single
 * cache root (GDIFF_TRACE_CACHE_DIR or --trace-cache-dir). The v3
 * footer digest makes each entry self-verifying; no sidecar metadata
 * is needed.
 *
 * Durability and concurrency:
 *  - stores write to `<entry>.tmp.<pid>` and atomically rename(2)
 *    into place, so a crash mid-write never leaves a half-entry and
 *    concurrent writers race safely (both produce identical bytes;
 *    last rename wins);
 *  - loads mmap the entry read-only and decode through
 *    TraceBufferReader; any corruption — truncation, flipped bytes,
 *    digest mismatch — quarantines the entry (renamed to
 *    `<entry>.corrupt`) and reports a miss so the caller regenerates;
 *  - eviction is a byte-capped LRU over entry mtimes: a load hit
 *    bumps the entry's mtime, and any process that pushes the
 *    directory over the cap deletes oldest-first (never the entry it
 *    just wrote). Stale temp and quarantine files are collected
 *    first.
 *
 * Every outcome is counted (hits/misses/stores/evictions/
 * corrupt-recoveries), mirrored into src/obs counters, and surfaced
 * by the gdiffrun summary and the gdiffd status endpoint.
 */

#ifndef GDIFF_WORKLOAD_TRACE_DISK_CACHE_HH
#define GDIFF_WORKLOAD_TRACE_DISK_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "workload/trace_cache.hh"

namespace gdiff {
namespace workload {

/** The on-disk trace tier. Thread-safe; shared by one process. */
class DiskTraceCache
{
  public:
    struct Config
    {
        std::string root;    ///< cache directory (created on demand)
        /// byte cap across all entries; 0 = unbounded
        size_t maxBytes = size_t(2) << 30;
    };

    /** Point-in-time counters (all monotonic). */
    struct Stats
    {
        uint64_t hits = 0;    ///< entries served from disk
        uint64_t misses = 0;  ///< lookups with no usable entry
        uint64_t stores = 0;  ///< entries persisted
        uint64_t evictions = 0; ///< entries deleted by the LRU sweep
        /// corrupt entries detected, quarantined, and re-reported as
        /// misses so the caller regenerates
        uint64_t corruptRecoveries = 0;
    };

    /**
     * @param cfg the cache root and byte cap. The directory is
     * created (with parents) on first use; creation failure disables
     * the cache with a warning rather than aborting the run.
     */
    explicit DiskTraceCache(Config cfg);

    DiskTraceCache(const DiskTraceCache &) = delete;
    DiskTraceCache &operator=(const DiskTraceCache &) = delete;

    /**
     * Look up the entry for (workload, seed, records).
     *
     * @return the decoded trace on a verified hit; nullptr on a miss
     * or after quarantining a corrupt entry.
     */
    std::shared_ptr<const MaterializedTrace>
    load(const std::string &workload, uint64_t seed,
         uint64_t records);

    /**
     * Persist @p trace as the entry for (workload, seed, records)
     * via temp file + atomic rename, then run the eviction sweep.
     */
    void store(const std::string &workload, uint64_t seed,
               uint64_t records, const MaterializedTrace &trace);

    /** @return a point-in-time snapshot of the counters. */
    Stats snapshot() const;

    /** @return the configured cache root. */
    const std::string &root() const { return cfg.root; }

    /** Change the byte cap; sweeps immediately if now exceeded. */
    void setMaxBytes(size_t bytes);

    /** @return the entry file name for a triple (no directory). */
    static std::string entryName(const std::string &workload,
                                 uint64_t seed, uint64_t records);

  private:
    /** Delete temp/quarantine litter, then LRU-evict entries until
     *  the directory is under the byte cap. @p keep (an absolute
     *  path, possibly empty) is never evicted. */
    void sweepLocked(const std::string &keep);

    /** Ensure the root directory exists. @return false (and warn,
     *  once) when it cannot be created. */
    bool ensureRootLocked();

    mutable std::mutex lock;
    Config cfg;
    bool rootReady = false;
    bool rootFailed = false;
    Stats counters;
};

} // namespace workload
} // namespace gdiff

#endif // GDIFF_WORKLOAD_TRACE_DISK_CACHE_HH
