#include "workload/workload.hh"

#include <algorithm>

#include "util/logging.hh"
#include "workload/kernels.hh"
#include "workload/micro.hh"

namespace gdiff {
namespace workload {

std::unique_ptr<Executor>
Workload::makeExecutor() const
{
    auto exec = std::make_unique<Executor>(program);
    for (const auto &[addr, val] : memoryImage)
        exec->memory().write64(addr, val);
    for (unsigned r = 0; r < isa::numRegs; ++r)
        exec->setReg(static_cast<isa::Reg>(r), initialRegs[r]);
    return exec;
}

uint64_t
Workload::markerPc(const std::string &name) const
{
    for (const auto &[n, pc] : markers) {
        if (n == name)
            return pc;
    }
    fatal("workload '%s' has no marker '%s'", program.name().c_str(),
          name.c_str());
}

const std::vector<std::string> &
specWorkloadNames()
{
    static const std::vector<std::string> names = {
        "bzip2", "gap", "gcc", "gzip", "mcf",
        "parser", "perl", "twolf", "vortex", "vpr",
    };
    return names;
}

bool
knownWorkload(const std::string &name)
{
    if (name.rfind("micro.", 0) == 0) {
        const auto &micro = microWorkloadNames();
        return std::find(micro.begin(), micro.end(),
                         name.substr(6)) != micro.end();
    }
    const auto &spec = specWorkloadNames();
    return std::find(spec.begin(), spec.end(), name) != spec.end();
}

Workload
makeWorkload(const std::string &name, uint64_t seed)
{
    using namespace kernels;
    if (name.rfind("micro.", 0) == 0)
        return makeMicroWorkload(name.substr(6), seed);
    if (name == "bzip2")
        return makeBzip2(seed);
    if (name == "gap")
        return makeGap(seed);
    if (name == "gcc")
        return makeGcc(seed);
    if (name == "gzip")
        return makeGzip(seed);
    if (name == "mcf")
        return makeMcf(seed);
    if (name == "parser")
        return makeParser(seed);
    if (name == "perl")
        return makePerl(seed);
    if (name == "twolf")
        return makeTwolf(seed);
    if (name == "vortex")
        return makeVortex(seed);
    if (name == "vpr")
        return makeVpr(seed);
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace workload
} // namespace gdiff
