/**
 * @file
 * Workload definition and registry.
 *
 * A Workload bundles a synthetic-ISA program with its initial memory
 * image and register state. The registry exposes the ten
 * SPECint2000-like kernels the paper evaluates (see DESIGN.md §1 for
 * the substitution rationale).
 */

#ifndef GDIFF_WORKLOAD_WORKLOAD_HH
#define GDIFF_WORKLOAD_WORKLOAD_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "isa/program.hh"
#include "workload/executor.hh"

namespace gdiff {
namespace workload {

/**
 * A runnable workload: program text, initial data-segment image, and
 * initial register file.
 */
struct Workload
{
    isa::Program program;
    /// (byte address, word) pairs applied to memory before running
    std::vector<std::pair<uint64_t, int64_t>> memoryImage;
    /// initial architectural register values
    std::array<int64_t, isa::numRegs> initialRegs{};
    /// one-line description of the kernel's value-locality character
    std::string description;
    /// named PCs of instructions the benches instrument (e.g. the
    /// parser kernel's spill-fill reload for the paper's Fig. 1)
    std::vector<std::pair<std::string, uint64_t>> markers;

    /** Instantiate a ready-to-run executor for this workload. */
    std::unique_ptr<Executor> makeExecutor() const;

    /**
     * @return the PC registered under a marker name.
     * Calls fatal() if the marker does not exist.
     */
    uint64_t markerPc(const std::string &name) const;
};

/**
 * @return the names of the ten SPECint2000-like kernels, in the order
 * the paper's figures list them (bzip2, gap, gcc, gzip, mcf, parser,
 * perl, twolf, vortex, vpr).
 */
const std::vector<std::string> &specWorkloadNames();

/**
 * @return whether makeWorkload() would accept @p name — a spec kernel
 * or a "micro."-prefixed microbenchmark. Lets servers validate
 * untrusted names without tripping makeWorkload's fatal().
 */
bool knownWorkload(const std::string &name);

/**
 * Construct a workload by name.
 *
 * @param name one of specWorkloadNames().
 * @param seed seed for the kernel's internal data-synthesis RNG;
 *             identical (name, seed) pairs produce identical streams.
 */
Workload makeWorkload(const std::string &name, uint64_t seed = 1);

} // namespace workload
} // namespace gdiff

#endif // GDIFF_WORKLOAD_WORKLOAD_HH
