#include "workload/memory.hh"

#include "util/logging.hh"

namespace gdiff {
namespace workload {

int64_t
Memory::read64(uint64_t addr) const
{
    GDIFF_ASSERT((addr & 7) == 0, "unaligned read at 0x%llx",
                 static_cast<unsigned long long>(addr));
    auto it = pages.find(addr >> pageShift);
    if (it == pages.end())
        return 0;
    return (*it->second)[(addr & (pageBytes - 1)) >> 3];
}

void
Memory::write64(uint64_t addr, int64_t value)
{
    GDIFF_ASSERT((addr & 7) == 0, "unaligned write at 0x%llx",
                 static_cast<unsigned long long>(addr));
    auto &page = pages[addr >> pageShift];
    if (!page)
        page = std::make_unique<Page>();
    (*page)[(addr & (pageBytes - 1)) >> 3] = value;
}

} // namespace workload
} // namespace gdiff
