/**
 * @file
 * Dynamic trace records and the chunked trace-source API: the
 * interface between functional execution and everything downstream
 * (profile drivers, the timing pipeline, and the predictors).
 *
 * Records move through the system in *chunks* — structure-of-arrays
 * batches of up to TraceChunk::capacity records — so the hot consumer
 * loops stream through parallel pc/value/effAddr/flags arrays instead
 * of calling a virtual next() per instruction, and so a materialized
 * trace can be shared read-only between jobs (workload/trace_cache.hh).
 */

#ifndef GDIFF_WORKLOAD_TRACE_HH
#define GDIFF_WORKLOAD_TRACE_HH

#include <array>
#include <cstdint>
#include <memory>

#include "isa/instruction.hh"

namespace gdiff {
namespace workload {

/**
 * One retired dynamic instruction. Carries the static instruction
 * plus everything the execution determined: the produced value, the
 * effective address, and the control-flow outcome.
 */
struct TraceRecord
{
    isa::Instruction inst;   ///< the static instruction
    uint64_t seq = 0;        ///< dynamic instruction number (0-based)
    uint64_t pc = 0;         ///< byte PC of this instruction
    uint64_t nextPc = 0;     ///< byte PC of the next instruction
    int64_t value = 0;       ///< produced value (if producesValue())
    uint64_t effAddr = 0;    ///< effective address (loads/stores)
    bool taken = false;      ///< control-flow outcome (control ops)

    /** @return true if this instruction produced a predictable value. */
    bool producesValue() const { return inst.producesValue(); }

    /** @return true for loads. */
    bool isLoad() const { return isa::isLoad(inst.op); }

    /** @return true for stores. */
    bool isStore() const { return isa::isStore(inst.op); }

    /** @return true for conditional branches. */
    bool isCondBranch() const { return isa::isCondBranch(inst.op); }

    /** @return true for any control-transfer instruction. */
    bool isControl() const { return isa::isControl(inst.op); }
};

/**
 * A batch of retired instructions in structure-of-arrays layout.
 *
 * Columns are parallel: element i of every array describes dynamic
 * instruction i of the chunk. The classification a consumer would
 * otherwise re-derive per record (produces-value, load, store,
 * control) is pre-decoded into a flags byte at push() time so the
 * profile loops reduce to a flag test plus column reads.
 *
 * Chunks are ~260 KiB; heap-allocate them (the consumers and the
 * TraceSource base class do) rather than placing one on the stack of
 * a deep call chain.
 */
struct TraceChunk
{
    /// records per chunk (SoA batch size)
    static constexpr uint32_t capacity = 4096;

    /// @name flag bits, pre-decoded from the instruction
    /// @{
    static constexpr uint8_t flagTaken = 1u << 0;
    static constexpr uint8_t flagProducesValue = 1u << 1;
    static constexpr uint8_t flagLoad = 1u << 2;
    static constexpr uint8_t flagStore = 1u << 3;
    static constexpr uint8_t flagCondBranch = 1u << 4;
    static constexpr uint8_t flagControl = 1u << 5;
    /// @}

    uint32_t size = 0; ///< valid records in the columns below

    std::array<isa::Instruction, capacity> inst;
    std::array<uint64_t, capacity> seq;
    std::array<uint64_t, capacity> pc;
    std::array<uint64_t, capacity> nextPc;
    std::array<int64_t, capacity> value;
    std::array<uint64_t, capacity> effAddr;
    std::array<uint8_t, capacity> flags;

    bool empty() const { return size == 0; }
    bool full() const { return size == capacity; }
    void clear() { size = 0; }

    /// @name per-record flag tests
    /// @{
    bool taken(uint32_t i) const { return flags[i] & flagTaken; }
    bool producesValue(uint32_t i) const
    {
        return flags[i] & flagProducesValue;
    }
    bool isLoad(uint32_t i) const { return flags[i] & flagLoad; }
    bool isStore(uint32_t i) const { return flags[i] & flagStore; }
    bool isCondBranch(uint32_t i) const
    {
        return flags[i] & flagCondBranch;
    }
    bool isControl(uint32_t i) const { return flags[i] & flagControl; }
    /// @}

    /** Append one record (chunk must not be full). */
    void push(const TraceRecord &r);

    /** @return record i re-assembled into the AoS form. */
    TraceRecord record(uint32_t i) const;

    /** Copy the used prefix of @p other into this chunk. */
    void assign(const TraceChunk &other);

    /**
     * Copy records [begin, begin+count) of @p other into this chunk
     * starting at record 0 (@p other must not be this chunk). The
     * sampled-simulation windows use this to keep the tail of a chunk
     * that a fast-forward boundary split.
     */
    void assignSlice(const TraceChunk &other, uint32_t begin,
                     uint32_t count);

    /** @return the flags byte push() would derive for @p r. */
    static uint8_t deriveFlags(const TraceRecord &r);
};

/**
 * Abstract producer of a dynamic instruction stream.
 *
 * The primary API is chunked: fill() hands the consumer up to
 * TraceChunk::capacity records at a time. A per-record next() remains
 * for inspection tools and tests; its default implementation drains
 * an internal chunk buffer refilled via fill().
 *
 * Implementations must override at least one of fill()/next() — each
 * default is expressed in terms of the other. Overriding both (as
 * Executor does) avoids the buffering indirection entirely.
 *
 * Implementations: workload::Executor (functional execution of a
 * synthetic kernel), TraceFileSource (binary trace replay),
 * CachedTraceSource (in-memory shared-trace replay), and test
 * fixtures that replay canned sequences.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next batch of dynamic instructions.
     *
     * @param chunk cleared and refilled with 1..capacity records.
     * @return false when the stream has ended (no records were added).
     */
    virtual bool fill(TraceChunk &chunk);

    /**
     * Produce the next dynamic instruction.
     *
     * @param out filled with the next record on success.
     * @return false when the stream has ended (program halted).
     */
    virtual bool next(TraceRecord &out);

    /**
     * Zero-copy variant of fill(): return a read-only view of the
     * next batch, or nullptr at end of stream. The default fills
     * @p scratch via fill() and returns &scratch; replay sources
     * that already hold frozen chunks return them directly, skipping
     * the ~260 KiB copy per batch. The returned chunk is only valid
     * until the next call on this source.
     */
    virtual const TraceChunk *fillRef(TraceChunk &scratch);

  protected:
    /**
     * Drop any records the default next() has buffered but not yet
     * handed out. Sources that support rewinding must call this when
     * they rewind, or buffered stale records would replay first.
     */
    void resetBuffer();

  private:
    std::unique_ptr<TraceChunk> buffer; ///< lazily allocated
    uint32_t bufferPos = 0;
};

/**
 * Drops the first @p skip records of an inner source, then streams the
 * remainder unchanged — the functional fast-forward of the sampled
 * simulator (src/sample/): a measured window at stream offset S warms
 * and measures a SkipTraceSource(inner, S - warmup).
 *
 * The skip itself never simulates anything: over a CachedTraceSource
 * it walks frozen chunk references, so fast-forwarding costs one
 * pointer chase per 4096 records. When the skip boundary lands inside
 * a chunk the tail is copied once into an owned chunk (inner sources
 * may hand out frozen or scratch-backed chunks that must not be
 * mutated); every following chunk is passed through zero-copy.
 *
 * Non-owning: @p inner must outlive this source. If the inner stream
 * is shorter than @p skip, this source is empty.
 */
class SkipTraceSource : public TraceSource
{
  public:
    SkipTraceSource(TraceSource &inner, uint64_t skip);

    bool fill(TraceChunk &chunk) override;
    const TraceChunk *fillRef(TraceChunk &scratch) override;

  private:
    /** Consume the skipped prefix (first delivery only). */
    void skipPrefix();

    TraceSource &inner;
    uint64_t toSkip;
    bool skipped = false;
    /// tail of the chunk the skip boundary split, pending delivery
    std::unique_ptr<TraceChunk> partial;
    bool partialPending = false;
    /// scratch for draining inner chunks during the skip
    std::unique_ptr<TraceChunk> skipScratch;
};

} // namespace workload
} // namespace gdiff

#endif // GDIFF_WORKLOAD_TRACE_HH
