/**
 * @file
 * Dynamic trace records: the interface between functional execution
 * and everything downstream (profile drivers, the timing pipeline,
 * and the predictors).
 */

#ifndef GDIFF_WORKLOAD_TRACE_HH
#define GDIFF_WORKLOAD_TRACE_HH

#include <cstdint>

#include "isa/instruction.hh"

namespace gdiff {
namespace workload {

/**
 * One retired dynamic instruction. Carries the static instruction
 * plus everything the execution determined: the produced value, the
 * effective address, and the control-flow outcome.
 */
struct TraceRecord
{
    isa::Instruction inst;   ///< the static instruction
    uint64_t seq = 0;        ///< dynamic instruction number (0-based)
    uint64_t pc = 0;         ///< byte PC of this instruction
    uint64_t nextPc = 0;     ///< byte PC of the next instruction
    int64_t value = 0;       ///< produced value (if producesValue())
    uint64_t effAddr = 0;    ///< effective address (loads/stores)
    bool taken = false;      ///< control-flow outcome (control ops)

    /** @return true if this instruction produced a predictable value. */
    bool producesValue() const { return inst.producesValue(); }

    /** @return true for loads. */
    bool isLoad() const { return isa::isLoad(inst.op); }

    /** @return true for stores. */
    bool isStore() const { return isa::isStore(inst.op); }

    /** @return true for conditional branches. */
    bool isCondBranch() const { return isa::isCondBranch(inst.op); }

    /** @return true for any control-transfer instruction. */
    bool isControl() const { return isa::isControl(inst.op); }
};

/**
 * Abstract producer of a dynamic instruction stream.
 *
 * Implementations: workload::Executor (functional execution of a
 * synthetic kernel) and test fixtures that replay canned sequences.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next dynamic instruction.
     *
     * @param out filled with the next record on success.
     * @return false when the stream has ended (program halted).
     */
    virtual bool next(TraceRecord &out) = 0;
};

} // namespace workload
} // namespace gdiff

#endif // GDIFF_WORKLOAD_TRACE_HH
