/**
 * @file
 * Process-wide cache of materialized dynamic traces.
 *
 * Every sweep job that shares a (workload, seed, record-budget)
 * triple re-executes the same kernel and consumes the identical
 * record stream. The TraceCache amortizes that: the first job to ask
 * for a triple runs the functional Executor once and freezes the
 * stream into an immutable chunked buffer; every later request —
 * including concurrent requests from other runner threads — replays
 * the shared buffer read-only through a cursor source.
 *
 * Guarantees:
 *  - exactly-once generation: concurrent acquires of the same triple
 *    block on the first requester's materialization instead of
 *    re-executing (a per-entry shared_future is the rendezvous);
 *  - determinism: a replayed stream is record-identical to a freshly
 *    generated one, so per-job metrics are bit-identical with the
 *    cache on or off, at any thread count;
 *  - bounded footprint: entries are LRU-evicted once the configured
 *    byte cap is exceeded. Evicted traces stay alive (shared_ptr)
 *    until their last in-flight replayer finishes.
 */

#ifndef GDIFF_WORKLOAD_TRACE_CACHE_HH
#define GDIFF_WORKLOAD_TRACE_CACHE_HH

#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "workload/trace.hh"

namespace gdiff {
namespace workload {

class DiskTraceCache;

/**
 * An immutable materialized trace: the first @c records() records of
 * one (workload, seed) stream, stored as a vector of SoA chunks.
 * Shared read-only between any number of replaying jobs.
 */
class MaterializedTrace
{
  public:
    /**
     * Execute @p workload (makeWorkload(@p workload, @p seed)) and
     * freeze its first @p maxRecords records. Fewer are stored if the
     * program halts first.
     */
    static std::shared_ptr<const MaterializedTrace>
    generate(const std::string &workload, uint64_t seed,
             uint64_t maxRecords);

    /**
     * Adopt already-decoded chunks (the disk tier's loader). The
     * stream must be in order; record count is the sum of the chunk
     * sizes.
     */
    static std::shared_ptr<const MaterializedTrace>
    fromChunks(std::vector<std::unique_ptr<TraceChunk>> chunks);

    /** @return the frozen chunks, in stream order. */
    const std::vector<std::unique_ptr<TraceChunk>> &chunks() const
    {
        return chunkList;
    }

    /** @return records stored. */
    uint64_t records() const { return recordCount; }

    /** @return approximate resident bytes (for the cache cap). */
    size_t bytes() const
    {
        return chunkList.size() * sizeof(TraceChunk);
    }

  private:
    std::vector<std::unique_ptr<TraceChunk>> chunkList;
    uint64_t recordCount = 0;
};

/**
 * Replays a MaterializedTrace as a TraceSource. Holds a shared
 * reference, so the trace outlives any cache eviction while a replay
 * is in flight. fill() copies the next frozen chunk into the
 * caller's buffer; nothing in the shared trace is ever written.
 */
class CachedTraceSource : public TraceSource
{
  public:
    explicit CachedTraceSource(
        std::shared_ptr<const MaterializedTrace> trace);

    bool fill(TraceChunk &chunk) override;

    /** Hands out the frozen chunk itself: replay never copies. */
    const TraceChunk *fillRef(TraceChunk &scratch) override;

    /** Rewind to the first record (multi-pass experiments). */
    void rewind();

  private:
    std::shared_ptr<const MaterializedTrace> trace;
    size_t cursor = 0; ///< next chunk index
};

/** The shared trace cache. */
class TraceCache
{
  public:
    struct Config
    {
        /// byte cap before LRU eviction; 0 = unbounded
        size_t maxBytes = size_t(512) << 20;
        /// persistent tier root directory; empty = memory-only
        std::string diskRoot;
        /// byte cap for the persistent tier
        size_t diskMaxBytes = size_t(2) << 30;
    };

    /** Point-in-time counters (monotonic except residentBytes). */
    struct Stats
    {
        uint64_t hits = 0;        ///< served from a resident trace
        /// lookups that found no entry (every miss falls through to
        /// the disk tier and then to a generation)
        uint64_t misses = 0;
        uint64_t generations = 0; ///< functional materializations
        uint64_t evictions = 0;   ///< entries dropped by LRU
        size_t residentBytes = 0; ///< bytes currently cached
        size_t entries = 0;       ///< triples currently cached

        /// @name persistent tier (all zero when diskEnabled is false)
        /// @{
        bool diskEnabled = false;
        uint64_t diskHits = 0;
        uint64_t diskMisses = 0;
        uint64_t diskStores = 0;
        uint64_t diskEvictions = 0;
        uint64_t diskCorruptRecoveries = 0;
        /// @}
    };

    /** What acquire() hands back, with generate-vs-replay metadata. */
    struct Acquired
    {
        std::unique_ptr<TraceSource> source;
        /// true when *this call* materialized the trace
        bool generated = false;
        /// true when *this call* loaded the trace from the disk tier
        bool fromDisk = false;
        /// wall seconds this call spent generating (0 on replay)
        double generateSeconds = 0.0;
    };

    TraceCache();
    explicit TraceCache(const Config &config);

    /**
     * Get a replay source for the first @p records records of
     * (workload, seed). Thread-safe; the first requester of a triple
     * materializes, concurrent requesters wait for it.
     */
    Acquired acquire(const std::string &workload, uint64_t seed,
                     uint64_t records);

    /**
     * @return a point-in-time snapshot of the counters. Printed by
     * the gdiffrun summary and served by the gdiffd status endpoint.
     */
    Stats snapshot() const;

    /** Drop every entry and reset the counters (tests). */
    void clear();

    /** Change the byte cap; evicts immediately if now exceeded. */
    void setMaxBytes(size_t bytes);

    /**
     * Attach (or, with an empty @p root, detach) the persistent disk
     * tier. Misses fall through to disk before generating, and fresh
     * generations are persisted for later processes.
     */
    void setDiskRoot(const std::string &root,
                     size_t maxBytes = size_t(2) << 30);

    /** @return the disk tier root, or empty when detached. */
    std::string diskRoot() const;

    /**
     * The process-wide instance the sweep runner uses. On first use
     * the GDIFF_TRACE_CACHE_DIR environment variable, when set and
     * non-empty, attaches the persistent tier.
     */
    static TraceCache &global();

  private:
    struct Key
    {
        std::string workload;
        uint64_t seed;
        uint64_t records;

        bool
        operator<(const Key &o) const
        {
            if (workload != o.workload)
                return workload < o.workload;
            if (seed != o.seed)
                return seed < o.seed;
            return records < o.records;
        }
    };

    struct Entry
    {
        std::shared_future<std::shared_ptr<const MaterializedTrace>>
            future;
        size_t bytes = 0; ///< 0 until materialization finishes
        std::list<Key>::iterator lruPos;
    };

    /** Evict LRU entries until under the cap. Caller holds @c lock. */
    void evictLocked();

    mutable std::mutex lock;
    Config cfg;
    /// persistent tier; shared_ptr so acquire() can use it unlocked
    std::shared_ptr<DiskTraceCache> disk;
    std::map<Key, Entry> entries;
    /// LRU order, most recent at the back; only finished entries
    std::list<Key> lru;
    size_t residentBytes = 0;
    Stats counters;
};

} // namespace workload
} // namespace gdiff

#endif // GDIFF_WORKLOAD_TRACE_CACHE_HH
