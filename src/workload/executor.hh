/**
 * @file
 * Functional simulator for the synthetic ISA.
 *
 * The executor runs a Program against a Memory image and produces the
 * dynamic instruction trace that every downstream consumer (profile
 * drivers, the OOO timing pipeline) replays. Semantics:
 *
 *  - 32 64-bit integer registers; register 0 is hardwired to zero.
 *  - Div/Rem follow RISC-V conventions (x/0 == -1, x%0 == x;
 *    INT64_MIN / -1 wraps) so that no input can trap.
 *  - Shift amounts are taken modulo 64.
 *  - Memory accesses are 64-bit words.
 */

#ifndef GDIFF_WORKLOAD_EXECUTOR_HH
#define GDIFF_WORKLOAD_EXECUTOR_HH

#include <array>
#include <cstdint>

#include "isa/program.hh"
#include "workload/memory.hh"
#include "workload/trace.hh"

namespace gdiff {
namespace workload {

/** Functional execution engine; also a TraceSource. */
class Executor : public TraceSource
{
  public:
    /** @param program the program to execute (copied in). */
    explicit Executor(isa::Program program);

    /**
     * Execute one instruction and emit its trace record.
     * @return false once the program has executed Halt (no record is
     *         produced for or after Halt).
     */
    bool next(TraceRecord &out) override;

    /**
     * Execute up to TraceChunk::capacity instructions and emit them
     * as one structure-of-arrays batch. Equivalent to pumping next():
     * the chunked and per-record streams are record-identical (pinned
     * by tests/test_trace_cache.cc).
     */
    bool fill(TraceChunk &chunk) override;

    /** @return true once Halt has executed. */
    bool halted() const { return isHalted; }

    /** @return dynamic instructions retired so far. */
    uint64_t instructionsRetired() const { return seq; }

    /** Read an architectural register. */
    int64_t
    reg(isa::Reg r) const
    {
        return regs[r];
    }

    /** Write an architectural register (writes to r0 are ignored). */
    void
    setReg(isa::Reg r, int64_t v)
    {
        if (r != isa::reg::zero)
            regs[r] = v;
    }

    /** @return mutable access to data memory (for image setup). */
    Memory &memory() { return mem; }

    /** @return read-only access to data memory. */
    const Memory &memory() const { return mem; }

    /** @return the program being executed. */
    const isa::Program &program() const { return prog; }

  private:
    isa::Program prog;
    Memory mem;
    std::array<int64_t, isa::numRegs> regs{};
    uint32_t pcIndex = 0;
    uint64_t seq = 0;
    bool isHalted = false;
};

} // namespace workload
} // namespace gdiff

#endif // GDIFF_WORKLOAD_EXECUTOR_HH
