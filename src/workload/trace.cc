#include "workload/trace.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gdiff {
namespace workload {

// ------------------------------------------------------- TraceChunk

uint8_t
TraceChunk::deriveFlags(const TraceRecord &r)
{
    uint8_t f = 0;
    if (r.taken)
        f |= flagTaken;
    if (r.producesValue())
        f |= flagProducesValue;
    if (r.isLoad())
        f |= flagLoad;
    if (r.isStore())
        f |= flagStore;
    if (r.isCondBranch())
        f |= flagCondBranch;
    if (r.isControl())
        f |= flagControl;
    return f;
}

void
TraceChunk::push(const TraceRecord &r)
{
    GDIFF_ASSERT(size < capacity, "push into a full TraceChunk");
    uint32_t i = size++;
    inst[i] = r.inst;
    seq[i] = r.seq;
    pc[i] = r.pc;
    nextPc[i] = r.nextPc;
    value[i] = r.value;
    effAddr[i] = r.effAddr;
    flags[i] = deriveFlags(r);
}

TraceRecord
TraceChunk::record(uint32_t i) const
{
    GDIFF_ASSERT(i < size, "TraceChunk record index out of range");
    TraceRecord r;
    r.inst = inst[i];
    r.seq = seq[i];
    r.pc = pc[i];
    r.nextPc = nextPc[i];
    r.value = value[i];
    r.effAddr = effAddr[i];
    r.taken = (flags[i] & flagTaken) != 0;
    return r;
}

void
TraceChunk::assign(const TraceChunk &other)
{
    size = other.size;
    std::copy_n(other.inst.begin(), size, inst.begin());
    std::copy_n(other.seq.begin(), size, seq.begin());
    std::copy_n(other.pc.begin(), size, pc.begin());
    std::copy_n(other.nextPc.begin(), size, nextPc.begin());
    std::copy_n(other.value.begin(), size, value.begin());
    std::copy_n(other.effAddr.begin(), size, effAddr.begin());
    std::copy_n(other.flags.begin(), size, flags.begin());
}

void
TraceChunk::assignSlice(const TraceChunk &other, uint32_t begin,
                        uint32_t count)
{
    GDIFF_ASSERT(this != &other, "assignSlice from self");
    GDIFF_ASSERT(begin + count <= other.size,
                 "assignSlice [%u, %u) outside chunk of %u records",
                 begin, begin + count, other.size);
    size = count;
    std::copy_n(other.inst.begin() + begin, count, inst.begin());
    std::copy_n(other.seq.begin() + begin, count, seq.begin());
    std::copy_n(other.pc.begin() + begin, count, pc.begin());
    std::copy_n(other.nextPc.begin() + begin, count, nextPc.begin());
    std::copy_n(other.value.begin() + begin, count, value.begin());
    std::copy_n(other.effAddr.begin() + begin, count, effAddr.begin());
    std::copy_n(other.flags.begin() + begin, count, flags.begin());
}

// ------------------------------------------------------ TraceSource

bool
TraceSource::fill(TraceChunk &chunk)
{
    // Default: pump the per-record API. Sources that can produce
    // whole batches (Executor, the replay sources) override this.
    chunk.clear();
    TraceRecord r;
    while (!chunk.full() && next(r))
        chunk.push(r);
    return !chunk.empty();
}

bool
TraceSource::next(TraceRecord &out)
{
    // Default: drain an internal chunk refilled via fill().
    if (!buffer || bufferPos >= buffer->size) {
        if (!buffer)
            buffer = std::make_unique<TraceChunk>();
        bufferPos = 0;
        if (!fill(*buffer))
            return false;
    }
    out = buffer->record(bufferPos++);
    return true;
}

const TraceChunk *
TraceSource::fillRef(TraceChunk &scratch)
{
    return fill(scratch) ? &scratch : nullptr;
}

void
TraceSource::resetBuffer()
{
    if (buffer)
        buffer->clear();
    bufferPos = 0;
}

// -------------------------------------------------- SkipTraceSource

SkipTraceSource::SkipTraceSource(TraceSource &inner, uint64_t skip)
    : inner(inner), toSkip(skip)
{}

void
SkipTraceSource::skipPrefix()
{
    skipped = true;
    if (toSkip == 0)
        return;
    if (!skipScratch)
        skipScratch = std::make_unique<TraceChunk>();
    while (toSkip > 0) {
        const TraceChunk *c = inner.fillRef(*skipScratch);
        if (!c) {
            // Stream shorter than the skip: nothing left to deliver.
            toSkip = 0;
            return;
        }
        if (c->size <= toSkip) {
            toSkip -= c->size;
            continue;
        }
        // Boundary mid-chunk: keep the tail. The inner chunk may be
        // frozen (cache replay), so the slice goes into an owned copy.
        uint32_t keepFrom = static_cast<uint32_t>(toSkip);
        if (!partial)
            partial = std::make_unique<TraceChunk>();
        partial->assignSlice(*c, keepFrom, c->size - keepFrom);
        partialPending = true;
        toSkip = 0;
    }
}

bool
SkipTraceSource::fill(TraceChunk &chunk)
{
    if (!skipped)
        skipPrefix();
    if (partialPending) {
        partialPending = false;
        chunk.assign(*partial);
        return !chunk.empty();
    }
    return inner.fill(chunk);
}

const TraceChunk *
SkipTraceSource::fillRef(TraceChunk &scratch)
{
    if (!skipped)
        skipPrefix();
    if (partialPending) {
        partialPending = false;
        return partial.get();
    }
    return inner.fillRef(scratch);
}

} // namespace workload
} // namespace gdiff
