#include "workload/trace.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gdiff {
namespace workload {

// ------------------------------------------------------- TraceChunk

uint8_t
TraceChunk::deriveFlags(const TraceRecord &r)
{
    uint8_t f = 0;
    if (r.taken)
        f |= flagTaken;
    if (r.producesValue())
        f |= flagProducesValue;
    if (r.isLoad())
        f |= flagLoad;
    if (r.isStore())
        f |= flagStore;
    if (r.isCondBranch())
        f |= flagCondBranch;
    if (r.isControl())
        f |= flagControl;
    return f;
}

void
TraceChunk::push(const TraceRecord &r)
{
    GDIFF_ASSERT(size < capacity, "push into a full TraceChunk");
    uint32_t i = size++;
    inst[i] = r.inst;
    seq[i] = r.seq;
    pc[i] = r.pc;
    nextPc[i] = r.nextPc;
    value[i] = r.value;
    effAddr[i] = r.effAddr;
    flags[i] = deriveFlags(r);
}

TraceRecord
TraceChunk::record(uint32_t i) const
{
    GDIFF_ASSERT(i < size, "TraceChunk record index out of range");
    TraceRecord r;
    r.inst = inst[i];
    r.seq = seq[i];
    r.pc = pc[i];
    r.nextPc = nextPc[i];
    r.value = value[i];
    r.effAddr = effAddr[i];
    r.taken = (flags[i] & flagTaken) != 0;
    return r;
}

void
TraceChunk::assign(const TraceChunk &other)
{
    size = other.size;
    std::copy_n(other.inst.begin(), size, inst.begin());
    std::copy_n(other.seq.begin(), size, seq.begin());
    std::copy_n(other.pc.begin(), size, pc.begin());
    std::copy_n(other.nextPc.begin(), size, nextPc.begin());
    std::copy_n(other.value.begin(), size, value.begin());
    std::copy_n(other.effAddr.begin(), size, effAddr.begin());
    std::copy_n(other.flags.begin(), size, flags.begin());
}

// ------------------------------------------------------ TraceSource

bool
TraceSource::fill(TraceChunk &chunk)
{
    // Default: pump the per-record API. Sources that can produce
    // whole batches (Executor, the replay sources) override this.
    chunk.clear();
    TraceRecord r;
    while (!chunk.full() && next(r))
        chunk.push(r);
    return !chunk.empty();
}

bool
TraceSource::next(TraceRecord &out)
{
    // Default: drain an internal chunk refilled via fill().
    if (!buffer || bufferPos >= buffer->size) {
        if (!buffer)
            buffer = std::make_unique<TraceChunk>();
        bufferPos = 0;
        if (!fill(*buffer))
            return false;
    }
    out = buffer->record(bufferPos++);
    return true;
}

const TraceChunk *
TraceSource::fillRef(TraceChunk &scratch)
{
    return fill(scratch) ? &scratch : nullptr;
}

void
TraceSource::resetBuffer()
{
    if (buffer)
        buffer->clear();
    bufferPos = 0;
}

} // namespace workload
} // namespace gdiff
