#include "workload/trace_disk_cache.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <dirent.h>
#include <vector>

#include "obs/obs.hh"
#include "util/logging.hh"
#include "workload/trace_io.hh"

namespace gdiff {
namespace workload {

namespace {

/// temp files older than this are crash litter, not live writers
constexpr time_t staleTmpSeconds = 15 * 60;

/** Create @p dir and any missing parents (mkdir -p). */
bool
makeDirs(const std::string &dir)
{
    std::string path;
    size_t pos = 0;
    while (pos <= dir.size()) {
        size_t next = dir.find('/', pos);
        if (next == std::string::npos)
            next = dir.size();
        path = dir.substr(0, next);
        pos = next + 1;
        if (path.empty())
            continue;
        if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST)
            return false;
    }
    struct stat st{};
    return ::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool
endsWith(const std::string &s, const char *suffix)
{
    size_t n = std::strlen(suffix);
    return s.size() >= n &&
           s.compare(s.size() - n, n, suffix) == 0;
}

/** A read-only mmap of a whole file; empty data() on failure. */
struct MappedFile
{
    const uint8_t *bytes = nullptr;
    size_t size = 0;

    explicit MappedFile(const std::string &path)
    {
        int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0)
            return;
        struct stat st{};
        if (::fstat(fd, &st) != 0 || st.st_size < 0) {
            ::close(fd);
            return;
        }
        size = static_cast<size_t>(st.st_size);
        if (size > 0) {
            void *m = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE,
                             fd, 0);
            if (m == MAP_FAILED) {
                size = 0;
            } else {
                bytes = static_cast<const uint8_t *>(m);
            }
        }
        ::close(fd);
    }

    ~MappedFile()
    {
        if (bytes)
            ::munmap(const_cast<uint8_t *>(bytes), size);
    }

    bool ok() const { return bytes != nullptr; }
};

} // anonymous namespace

std::string
DiskTraceCache::entryName(const std::string &workload, uint64_t seed,
                          uint64_t records)
{
    std::string safe = workload;
    for (char &c : safe) {
        if (c == '/' || c == '\\' || c == ' ')
            c = '_';
    }
    return formatString("%s-s%llu-r%llu-v%u.gdtr", safe.c_str(),
                        static_cast<unsigned long long>(seed),
                        static_cast<unsigned long long>(records),
                        traceVersionV3);
}

DiskTraceCache::DiskTraceCache(Config config) : cfg(std::move(config))
{
    GDIFF_ASSERT(!cfg.root.empty(),
                 "DiskTraceCache needs a cache root directory");
}

bool
DiskTraceCache::ensureRootLocked()
{
    if (rootReady)
        return true;
    if (rootFailed)
        return false;
    if (!makeDirs(cfg.root)) {
        warn("cannot create trace cache directory '%s' (%s); "
             "persistent trace caching disabled",
             cfg.root.c_str(), std::strerror(errno));
        rootFailed = true;
        return false;
    }
    rootReady = true;
    return true;
}

std::shared_ptr<const MaterializedTrace>
DiskTraceCache::load(const std::string &workload, uint64_t seed,
                     uint64_t records)
{
    std::string path;
    {
        std::lock_guard<std::mutex> guard(lock);
        if (!ensureRootLocked())
            return nullptr;
        path = cfg.root + "/" + entryName(workload, seed, records);
    }

    MappedFile map(path);
    if (!map.ok()) {
        std::lock_guard<std::mutex> guard(lock);
        ++counters.misses;
        GDIFF_OBS_COUNT("trace_disk.miss", 1);
        return nullptr;
    }

    // Decode the whole entry; read() verifies the per-block digests
    // and the trailing whole-file digest before End is reported.
    TraceBufferReader reader;
    TraceIoResult r = reader.open(map.bytes, map.size);
    std::vector<std::unique_ptr<TraceChunk>> chunks;
    while (r.ok()) {
        auto chunk = std::make_unique<TraceChunk>();
        r = reader.read(*chunk);
        if (r.ok())
            chunks.push_back(std::move(chunk));
    }

    if (r.failed()) {
        // Quarantine for post-mortem inspection and report a miss so
        // the caller regenerates (and re-stores) the entry.
        std::string quarantine = path + ".corrupt";
        ::rename(path.c_str(), quarantine.c_str());
        warn("trace cache entry '%s' is corrupt (%s: %s); "
             "quarantined and regenerating",
             path.c_str(), traceIoStatusName(r.status),
             r.message.c_str());
        std::lock_guard<std::mutex> guard(lock);
        ++counters.misses;
        ++counters.corruptRecoveries;
        GDIFF_OBS_COUNT("trace_disk.miss", 1);
        GDIFF_OBS_COUNT("trace_disk.corrupt_recovery", 1);
        return nullptr;
    }

    // Verified hit: bump the entry's mtime so the cross-process LRU
    // sweep sees it as recently used.
    ::utimensat(AT_FDCWD, path.c_str(), nullptr, 0);

    std::lock_guard<std::mutex> guard(lock);
    ++counters.hits;
    GDIFF_OBS_COUNT("trace_disk.hit", 1);
    return MaterializedTrace::fromChunks(std::move(chunks));
}

void
DiskTraceCache::store(const std::string &workload, uint64_t seed,
                      uint64_t records, const MaterializedTrace &trace)
{
    std::string path;
    {
        std::lock_guard<std::mutex> guard(lock);
        if (!ensureRootLocked())
            return;
        path = cfg.root + "/" + entryName(workload, seed, records);
    }
    std::string tmp =
        formatString("%s.tmp.%d", path.c_str(),
                     static_cast<int>(::getpid()));

    {
        TraceWriter writer(tmp, traceVersionV3);
        for (const auto &chunk : trace.chunks())
            writer.append(*chunk);
        writer.close();
    }

    // Atomic publish: concurrent writers both produce identical
    // bytes (generation is deterministic), so whichever rename lands
    // last is indistinguishable from the first.
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("cannot publish trace cache entry '%s' (%s)",
             path.c_str(), std::strerror(errno));
        ::unlink(tmp.c_str());
        return;
    }

    std::lock_guard<std::mutex> guard(lock);
    ++counters.stores;
    GDIFF_OBS_COUNT("trace_disk.store", 1);
    sweepLocked(path);
}

void
DiskTraceCache::sweepLocked(const std::string &keep)
{
    DIR *dir = ::opendir(cfg.root.c_str());
    if (!dir)
        return;

    struct File
    {
        std::string path;
        time_t mtime;
        size_t size;
        bool corrupt; ///< quarantined entry: evicted before real ones
    };
    std::vector<File> files;
    size_t total = 0;
    time_t now = ::time(nullptr);

    while (struct dirent *de = ::readdir(dir)) {
        std::string name = de->d_name;
        if (name == "." || name == "..")
            continue;
        std::string path = cfg.root + "/" + name;
        struct stat st{};
        if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode))
            continue;

        if (name.find(".tmp.") != std::string::npos) {
            // A live writer refreshes its temp file quickly; an old
            // one is litter from a crashed process.
            if (now - st.st_mtime > staleTmpSeconds)
                ::unlink(path.c_str());
            continue;
        }
        bool corrupt = endsWith(name, ".corrupt");
        if (!corrupt && !endsWith(name, ".gdtr"))
            continue;
        files.push_back(File{path, st.st_mtime,
                             static_cast<size_t>(st.st_size),
                             corrupt});
        total += static_cast<size_t>(st.st_size);
    }
    ::closedir(dir);

    if (cfg.maxBytes == 0 || total <= cfg.maxBytes)
        return;

    // Quarantined files go first, then oldest entries.
    std::sort(files.begin(), files.end(),
              [](const File &a, const File &b) {
                  if (a.corrupt != b.corrupt)
                      return a.corrupt;
                  return a.mtime < b.mtime;
              });
    for (const File &f : files) {
        if (total <= cfg.maxBytes)
            break;
        if (f.path == keep)
            continue;
        if (::unlink(f.path.c_str()) != 0)
            continue;
        total -= std::min(total, f.size);
        if (!f.corrupt) {
            ++counters.evictions;
            GDIFF_OBS_COUNT("trace_disk.evict", 1);
        }
    }
}

DiskTraceCache::Stats
DiskTraceCache::snapshot() const
{
    std::lock_guard<std::mutex> guard(lock);
    return counters;
}

void
DiskTraceCache::setMaxBytes(size_t bytes)
{
    std::lock_guard<std::mutex> guard(lock);
    cfg.maxBytes = bytes;
    if (rootReady)
        sweepLocked(std::string());
}

} // namespace workload
} // namespace gdiff
