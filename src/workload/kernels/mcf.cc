/**
 * @file
 * The "mcf" kernel: network-simplex-style pointer chasing over
 * sequentially allocated arc and node arrays.
 *
 * The paper (§6, §7, citing Serrano & Wu) attributes mcf's strong
 * global stride locality to dynamic memory allocation: arc->tail and
 * arc->head pointer *values* are affine in the arc's own address, so
 * the difference between a loaded pointer and the value that produced
 * its address is constant — invisible to local predictors once the
 * scan order skips irregularly, but exactly the "variable stride"
 * form N = N-k + a0 that gdiff captures.
 *
 * Two phases alternate:
 *  - arc scan: walks the arc array with a data-dependent skip
 *    (breaking local stride) and chases tail/head node pointers;
 *  - node refresh: a tight sequential sweep where both local and
 *    global predictors do well.
 *
 * The combined working set (arcs 1 MiB + nodes 1 MiB, one per cache
 * line) dwarfs the 64 KiB D-cache, reproducing mcf's memory-bound
 * character.
 */

#include "workload/kernels.hh"

#include "isa/program_builder.hh"
#include "util/random.hh"

namespace gdiff {
namespace workload {
namespace kernels {

using namespace isa;
using namespace isa::reg;

namespace {

// One arc and one node per 64-byte cache line: the scan touches a
// fresh line almost every iteration, reproducing mcf's memory-bound
// character (the paper quotes a 44% L1 D-cache miss rate).
constexpr int64_t numArcs = 16384;
constexpr int64_t arcBytes = 64;
constexpr int64_t numNodes = 16384;
constexpr int64_t nodeBytes = 64;

constexpr uint64_t arcBase = dataBase;
constexpr uint64_t arcEnd = arcBase + numArcs * arcBytes;
constexpr uint64_t nodeBase = arcEnd;
constexpr uint64_t nodeEnd = nodeBase + numNodes * nodeBytes;

constexpr int64_t cost0 = 1000;
constexpr int64_t potential0 = 5000000;
constexpr int64_t depth0 = 9000000;

} // anonymous namespace

Workload
makeMcf(uint64_t seed)
{
    Workload w;
    w.description =
        "pointer chasing over allocation-ordered arc/node arrays with "
        "irregular scan skips; cache-hostile 1 MiB working set";

    Xorshift64Star rng(seed * 0x9e3779b97f4a7c15ull + 2);

    // ---- arcs -----------------------------------------------------------
    // The scan is a *linked* traversal: arc->next carries the address
    // of the next arc to visit. Skip distances have runs (the simplex
    // scan revisits contiguous basis regions), so the next pointer is
    // partially stride-predictable — and since the whole scan
    // serialises through this frequently-missing load, predicting it
    // is exactly what buys mcf its large value-speculation speedup
    // (paper §7).
    int64_t skip = 1;
    for (int64_t j = 0; j < numArcs; ++j) {
        uint64_t arc = arcBase + static_cast<uint64_t>(j * arcBytes);
        int64_t tail = static_cast<int64_t>(
            nodeBase + static_cast<uint64_t>((j % numNodes) * nodeBytes));
        int64_t head = static_cast<int64_t>(
            nodeBase +
            static_cast<uint64_t>(((j + 1) % numNodes) * nodeBytes));
        int64_t cost = cost0 + 64 * j;
        if (rng.chancePercent(4))
            cost += static_cast<int64_t>(rng.below(512)) - 256;
        if (!rng.chancePercent(85))
            skip = 1 + static_cast<int64_t>(rng.below(3));
        int64_t next = static_cast<int64_t>(
            arcBase +
            static_cast<uint64_t>(((j + skip) % numArcs) * arcBytes));
        w.memoryImage.emplace_back(arc + 0, tail);
        w.memoryImage.emplace_back(arc + 8, head);
        w.memoryImage.emplace_back(arc + 16, cost);
        w.memoryImage.emplace_back(arc + 24, next);
    }

    // ---- nodes ----------------------------------------------------------
    for (int64_t i = 0; i < numNodes; ++i) {
        uint64_t node = nodeBase + static_cast<uint64_t>(i * nodeBytes);
        int64_t pot = potential0 + 64 * i;
        if (rng.chancePercent(4))
            pot += static_cast<int64_t>(rng.below(256)) - 128;
        w.memoryImage.emplace_back(node + 0, pot);
        w.memoryImage.emplace_back(node + 8, depth0 + 64 * i);
    }

    // ---- program ---------------------------------------------------------
    ProgramBuilder b("mcf");
    Label super_top = b.newLabel();
    Label scan_top = b.newLabel();
    Label refresh_top = b.newLabel();
    Label wrap_node = b.newLabel();
    Label refresh_enter = b.newLabel();

    b.bind(super_top);
    b.li(s2, 0);              // arc-phase counter reset

    // ------------------------- arc scan phase ---------------------------
    b.bind(scan_top);
    uint32_t scan_head = b.here();
    b.load(t6, s1, 24);       // A1: next-arc pointer (linked scan;
                              //     the serialising, missing load)
    b.addi(s1, t6, 0);        // A2: follow the link
    uint32_t tail_load = b.here();
    b.load(t1, s1, 0);        // A3: tail ptr; t1 - s1 == nodeBase-arcBase
    b.load(t2, s1, 8);        // A4: head ptr; t2 - t1 == 32
    b.load(t3, t1, 0);        // A5: tail->potential; affine in t1
    b.load(t4, t2, 0);        // A6: head->potential; t4 - t3 == 32
    b.load(t5, s1, 16);       // A7: cost; affine in s1 (rare noise)
    b.sub(t7, t3, t4);        // A8: potential difference (≈ -32)
    b.add(t8, t5, t7);        // A9: reduced cost; t8 - t5 ≈ const
    b.store(t8, s8, 0);       //     spill the reduced cost
    b.slti(t9, t8, cost0 + 32 * numArcs); // A10: basis test (near-const)
    b.load(t0, s8, 0);        // A11: FILL reload of the reduced cost
    b.add(v0, t0, s7);        // A12: chain off the reload
    b.add(v1, v0, s4);        // A13: second chain link
    b.addi(v0, v1, -16);      // A14: third chain link
    b.add(v1, t5, s7);        // A15: chain off the cost load
    // Cross-arc reuse: the previous arc's reduced cost is reloaded
    // at a global distance of one full scan iteration.
    b.load(v0, s8, 8);        // RL1: reduced cost of the previous arc
    b.addi(v1, v0, 8);        // RL2: chain
    b.load(v0, s8, 0);        // RL3: this arc's reduced cost (dup)
    b.store(v0, s8, 8);       //      age it for the next iteration
    b.addi(s2, s2, 1);        // A16: phase counter
    b.blt(s2, s5, scan_top);  //     16 arcs per phase

    // ----------------------- node refresh phase -------------------------
    // Unrolled four ways so few instances of each static instruction
    // are in flight at once.
    b.li(s3, 0);
    b.bind(refresh_top);
    for (int64_t u = 0; u < 4; ++u) {
        int64_t off = nodeBytes * u;
        b.load(t1, s6, off);      // R1: potential (strided)
        b.load(t2, s6, off + 8);  // R2: depth (strided, clean)
        b.add(t3, t1, s4);        // R3: bumped potential
        b.store(t3, s6, off);     //     potentials drift per pass
        b.sub(t4, t2, t1);        // R4: depth - potential (≈ const)
        b.add(t5, t4, t2);        // R5: chain off the difference
    }
    b.addi(s6, s6, nodeBytes * 4); // R6: sequential advance
    b.addi(s3, s3, 4);            // R7: refresh counter
    b.bge(s6, a3, wrap_node); //     rare wrap of the node walker
    b.bind(refresh_enter);
    b.blt(s3, a0, refresh_top); // 16 nodes per phase
    b.jump(super_top);

    // ------------------------- rare wrap blocks -------------------------
    b.bind(wrap_node);
    b.addi(s6, gp, 0);
    b.jump(refresh_enter);

    w.program = b.build();

    // ---- initial registers ----------------------------------------------
    w.initialRegs[s1] = static_cast<int64_t>(arcBase);  // arc walker
    w.initialRegs[s6] = static_cast<int64_t>(nodeBase); // node walker
    w.initialRegs[s4] = 24;   // chain constant
    w.initialRegs[s5] = 24;   // arcs per phase
    w.initialRegs[s7] = 48;   // chain constant
    w.initialRegs[a0] = 8;    // nodes per phase
    w.initialRegs[a1] = static_cast<int64_t>(arcBase);
    w.initialRegs[a2] = static_cast<int64_t>(arcEnd);
    // leave headroom for the 4-way-unrolled refresh block
    w.initialRegs[a3] =
        static_cast<int64_t>(nodeEnd - 3 * nodeBytes);
    w.initialRegs[gp] = static_cast<int64_t>(nodeBase);
    w.initialRegs[s8] = static_cast<int64_t>(frameBase);

    w.markers.emplace_back("scan_head", indexToPc(scan_head));
    w.markers.emplace_back("tail_load", indexToPc(tail_load));
    return w;
}

} // namespace kernels
} // namespace workload
} // namespace gdiff
