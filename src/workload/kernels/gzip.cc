/**
 * @file
 * The "gzip" kernel: LZ77-style hash-chain matching plus literal/copy
 * phases.
 *
 * The hash probe itself is hard to predict (random-looking input
 * words, hash-table contents), while the copy loops are tight and
 * strided. On a true hash hit the window load returns exactly the
 * current input word (LZ matches match!), which is a global-stride
 * (diff 0) correlation invisible to local predictors.
 */

#include "workload/kernels.hh"

#include "isa/program_builder.hh"
#include "util/random.hh"

namespace gdiff {
namespace workload {
namespace kernels {

using namespace isa;
using namespace isa::reg;

namespace {

constexpr int64_t inWords = 65536;     // 512 KiB input stream
constexpr uint64_t inBase = dataBase;
constexpr uint64_t inEnd = inBase + inWords * 8;
constexpr uint64_t headBase = inEnd;   // 8K-entry hash-head table
constexpr uint64_t outBase = headBase + 0x10000;
constexpr uint64_t outEnd = outBase + 0x100000;

} // anonymous namespace

Workload
makeGzip(uint64_t seed)
{
    Workload w;
    w.description =
        "LZ77 hash-chain probe (hard) + tight strided copy loops "
        "(easy); true matches give diff-0 global stride";

    Xorshift64Star rng(seed * 0x9e3779b97f4a7c15ull + 4);

    // Input: words drawn from a 4K-symbol dictionary so that low-bit
    // hashing finds true matches often.
    for (int64_t i = 0; i < inWords; ++i) {
        int64_t v = static_cast<int64_t>(rng.below(4096)) * 8 + 0x100000;
        w.memoryImage.emplace_back(inBase + static_cast<uint64_t>(i) * 8,
                                   v);
    }

    ProgramBuilder b("gzip");
    Label top = b.newLabel();
    Label literal = b.newLabel();
    Label merge = b.newLabel();
    Label wrap_in = b.newLabel();
    Label wrap_out = b.newLabel();
    Label after_wrap_in = b.newLabel();
    Label after_wrap_out = b.newLabel();

    b.bind(top);
    uint32_t loop_head = b.here();
    b.load(t1, s1, 0);      // H1: input word (hard)
    b.addi(s1, s1, 8);      // H2: input advance
    b.andi(t2, t1, 0x7ff8); // H3: hash (hard)
    b.add(t3, s3, t2);      // H4: head-table address; t3 - t2 == const
    b.load(t4, t3, 0);      // H5: previous position with this hash
    b.store(s1, t3, 0);     //     update chain head
    b.sub(t5, s1, t4);      // H6: match distance (hard)
    b.slti(t6, t4, 1);      // H7: "no previous occupant" test
    b.bne(t6, zero, literal);

    // match path: probe the window at the recorded position ----------
    b.load(t7, t4, -8);     // M1: window word; equals t1 on true match
    b.sub(t8, t7, t1);      // M2: zero on a true match (stride-0)
    b.add(t9, t4, s4);      // M3: next window address; diff == 8
    b.store(t5, s5, 0);     //     emit (distance) token
    b.addi(s5, s5, 8);      // M4: output advance
    b.addi(t5, t8, 24);     // M5: token chain (diff 24 off M2)
    b.addi(t8, t5, 40);     // M6: second link
    // unrolled 4-word copy: tight, strided, no sawtooth trip counter
    for (int u = 0; u < 4; ++u) {
        b.load(v0, t9, 0);  // C1: copied word (dictionary data)
        b.addi(t9, t9, 8);  // C2: window pointer chain
        b.add(v1, t9, s4);  // C3: address chain (diff 8 off C2)
        b.addi(v1, v1, 32); // C4: second link
        b.store(v0, s5, 0);
        b.addi(s5, s5, 8);  // C5: output pointer
    }
    b.jump(merge);

    // literal path: equalised producer count --------------------------
    b.bind(literal);
    b.store(t1, s5, 0);     //     emit literal
    b.addi(s5, s5, 8);      // L1: output advance
    b.add(t7, t3, s4);      // L2: chain off head address (diff 8)
    b.add(t8, t7, s4);      // L3: second link
    b.add(t9, t8, s4);      // L4
    b.addi(t0, t8, 16);     // L5
    b.add(v0, t0, s4);      // L6
    b.addi(t9, t9, 8);      // L7
    b.addi(t0, t0, -1);     // L8
    // fall through

    b.bind(merge);
    // Cross-iteration reuse: the input words from one and two
    // iterations back (hard to predict locally) are reloaded at
    // global distances of one/two full iterations.
    b.load(v0, s8, 8);      // RL1: input word two iterations back
    b.addi(v1, v0, 16);     // RL2: chain
    b.load(v0, s8, 0);      // RL3: previous input word
    b.store(v0, s8, 8);     //      age to depth two
    b.store(t1, s8, 0);     //      current word to depth one
    b.bge(s1, a2, wrap_in);   // rare input wrap
    b.bind(after_wrap_in);
    b.bge(s5, a3, wrap_out);  // rare output wrap
    b.bind(after_wrap_out);
    b.jump(top);

    b.bind(wrap_in);
    b.addi(s1, a1, 0);
    b.jump(after_wrap_in);

    b.bind(wrap_out);
    b.addi(s5, gp, 0);
    b.jump(after_wrap_out);

    w.program = b.build();

    w.initialRegs[s1] = static_cast<int64_t>(inBase);
    w.initialRegs[s3] = static_cast<int64_t>(headBase);
    w.initialRegs[s5] = static_cast<int64_t>(outBase);
    w.initialRegs[s4] = 8;
    w.initialRegs[a1] = static_cast<int64_t>(inBase);
    w.initialRegs[a2] = static_cast<int64_t>(inEnd);
    w.initialRegs[a3] = static_cast<int64_t>(outEnd);
    w.initialRegs[gp] = static_cast<int64_t>(outBase);
    w.initialRegs[s8] = static_cast<int64_t>(frameBase);

    w.markers.emplace_back("loop_head", indexToPc(loop_head));
    return w;
}

} // namespace kernels
} // namespace workload
} // namespace gdiff
