/**
 * @file
 * The "gcc" kernel: a compiler-like workload with a large static
 * footprint and irregular inter-procedural control flow.
 *
 * 48 small functions are *generated* from four body templates and
 * called through a pseudo-random worklist of function addresses —
 * modelling a compiler's pass dispatch over heterogeneous IR nodes.
 * The rotating indirect-call targets defeat last-target prediction
 * (gcc-like front-end behaviour), and the mixture of templates gives
 * the mid-pack value predictability the paper shows for gcc:
 *
 *  - template A (constant folding): global counters, local food;
 *  - template B (field walk): loads affine in the node address plus
 *    a spill/fill reload — global-stride food;
 *  - template C (spill-heavy): two live values spilled and reloaded;
 *  - template D (hashing): non-linear noise, hard for everyone.
 */

#include "workload/kernels.hh"

#include "isa/program_builder.hh"
#include "util/random.hh"

namespace gdiff {
namespace workload {
namespace kernels {

using namespace isa;
using namespace isa::reg;

namespace {

constexpr int64_t numFuncs = 48;
constexpr uint64_t globalsBase = dataBase; // one 64-word global block
constexpr uint64_t nodeBase = dataBase + 0x1000;
constexpr int64_t numNodes = 8192;
constexpr int64_t nodeBytes = 48;
constexpr uint64_t nodeEnd = nodeBase + numNodes * nodeBytes;
constexpr uint64_t workBase = nodeEnd;
// Large enough that a measurement run does not lap the worklist: the
// pass sequence must not look like a short memorisable cycle.
constexpr int64_t workWords = 65536;
constexpr uint64_t workEnd = workBase + workWords * 8;

} // anonymous namespace

Workload
makeGcc(uint64_t seed)
{
    Workload w;
    w.description =
        "48 generated functions over 4 body templates, dispatched "
        "through a pseudo-random worklist of function addresses";

    Xorshift64Star rng(seed * 0x9e3779b97f4a7c15ull + 10);

    // ---- IR nodes: two affine fields and one noisy field ---------------
    for (int64_t i = 0; i < numNodes; ++i) {
        uint64_t node = nodeBase + static_cast<uint64_t>(i * nodeBytes);
        int64_t kind = 0x6000 + 48 * i; // affine in the address
        int64_t uses = 0x9000 + 48 * i;
        if (rng.chancePercent(10))
            uses += static_cast<int64_t>(rng.below(32)) - 16;
        w.memoryImage.emplace_back(node + 0, kind);
        w.memoryImage.emplace_back(node + 8, uses);
        w.memoryImage.emplace_back(node + 16,
                                   static_cast<int64_t>(rng.next() >> 9));
    }

    ProgramBuilder b("gcc");
    Label disp_top = b.newLabel();
    Label wrap_work = b.newLabel();
    Label wrap_node = b.newLabel();
    Label after_wraps = b.newLabel();

    // ------------------------- dispatcher ------------------------------
    // The argument move follows the node advance directly so that the
    // duplicate sits one producer away in the global history.
    b.bind(disp_top);
    uint32_t dispatch_load = b.here();
    b.load(t1, s1, 0);        // next pass address (pseudo-random)
    b.addi(s1, s1, 8);        // worklist advance
    b.jalr(ra, t1);           // rotating indirect call
    b.addi(s2, s2, nodeBytes);// next IR node (strided)
    b.addi(a0, s2, 0);        // argument for the *next* call (dup)
    b.bge(s1, a2, wrap_work);
    b.bge(s2, a3, wrap_node);
    b.bind(after_wraps);
    b.jump(disp_top);

    b.bind(wrap_work);
    b.addi(s1, a1, 0);
    b.jump(after_wraps);
    b.bind(wrap_node);
    b.li(s2, static_cast<int64_t>(nodeBase));
    b.jump(after_wraps);

    // --------------------- generated functions -------------------------
    std::vector<uint64_t> func_pcs;
    for (int64_t f = 0; f < numFuncs; ++f) {
        func_pcs.push_back(isa::indexToPc(b.here()));
        // Template mix: 25% constant folding, 35% field walk, 30%
        // spill-heavy, 10% hashing noise — compilers spend most time
        // in IR traversal and regalloc-style spill code.
        uint64_t roll = rng.below(100);
        unsigned tmpl = roll < 25 ? 0 : roll < 60 ? 1 : roll < 90 ? 2 : 3;
        int64_t goff = static_cast<int64_t>(rng.below(32)) * 8;
        int64_t c1 = 4 + static_cast<int64_t>(rng.below(8)) * 4;
        switch (tmpl) {
          case 0: // A: constant folding over a private global counter
            b.load(t2, gp, goff);
            b.addi(t3, t2, c1);
            b.addi(t4, t3, c1);
            b.store(t4, gp, goff);
            b.li(t5, c1 * 16);
            b.add(v0, t4, t5);
            b.addi(t6, v0, 12);  // folded-constant chain
            b.addi(t7, t6, -4);
            break;
          case 1: // B: field walk over the IR node
            b.load(t2, a0, 0);   // kind: affine in a0
            b.load(t3, a0, 8);   // uses: t3 - t2 ≈ const
            b.sub(t4, t3, t2);   // ≈ const (stride-0)
            b.store(t4, s8, 0);  // spill
            b.load(t5, s8, 0);   // FILL reload
            b.add(v0, t5, t2);
            b.addi(t6, t2, c1);  // kind-derived chain
            b.addi(t7, t3, c1);  // uses-derived chain
            break;
          case 2: // C: spill-heavy
            b.load(t2, a0, 8);
            b.addi(t3, t2, c1);
            b.store(t3, s8, 8);
            b.load(t4, a0, 0);
            b.store(t4, s8, 16);
            b.load(t5, s8, 8);   // FILL of t3
            b.load(t6, s8, 16);  // FILL of t4
            b.add(v0, t5, t6);   // (hard: sum of two moving values)
            b.addi(t7, t5, 8);   // fill-derived chain
            b.addi(t8, t6, 20);
            break;
          default: // D: hashing noise
            b.load(t2, a0, 16);  // noisy field
            b.mul(t3, t2, s4);
            b.srli(t4, t3, 11);
            b.xor_(t5, t4, t3);
            b.addi(v0, t5, 0);
            break;
        }
        b.jr(ra);
    }

    w.program = b.build();

    // ---- worklist: pseudo-random pass sequence --------------------------
    for (int64_t i = 0; i < workWords; ++i) {
        w.memoryImage.emplace_back(
            workBase + static_cast<uint64_t>(i) * 8,
            static_cast<int64_t>(func_pcs[rng.below(numFuncs)]));
    }

    w.initialRegs[s1] = static_cast<int64_t>(workBase);
    w.initialRegs[s2] = static_cast<int64_t>(nodeBase);
    w.initialRegs[a0] = static_cast<int64_t>(nodeBase);
    w.initialRegs[gp] = static_cast<int64_t>(globalsBase);
    w.initialRegs[s4] = static_cast<int64_t>(0x9e3779b97f4a7c15ull);
    w.initialRegs[a1] = static_cast<int64_t>(workBase);
    w.initialRegs[a2] = static_cast<int64_t>(workEnd);
    w.initialRegs[a3] = static_cast<int64_t>(nodeEnd - nodeBytes);
    w.initialRegs[s8] = static_cast<int64_t>(frameBase);

    w.markers.emplace_back("dispatch_load", indexToPc(dispatch_load));
    return w;
}

} // namespace kernels
} // namespace workload
} // namespace gdiff
