/**
 * @file
 * The "bzip2" kernel: block-sorting-compressor-style byte frequency
 * counting over a buffer with run-structured contents.
 *
 * The input alphabet is small (16 symbols) and runs are long and
 * geometric (bzip2 inputs are RLE-friendly by design), so the data
 * loads show strong last-value/stride-0
 * locality; the address arithmetic is strided; and several producers
 * duplicate or offset a just-produced value, giving gdiff a small but
 * consistent edge over the local predictors — matching bzip2's
 * profile in the paper's Fig. 8 (high for everyone, gdiff slightly
 * ahead).
 */

#include "workload/kernels.hh"

#include <vector>

#include "isa/program_builder.hh"
#include "util/random.hh"

namespace gdiff {
namespace workload {
namespace kernels {

using namespace isa;
using namespace isa::reg;

namespace {

constexpr int64_t bufWords = 65536; // 512 KiB streaming buffer
constexpr uint64_t bufBase = dataBase;
constexpr uint64_t bufEnd = bufBase + bufWords * 8;
constexpr uint64_t freqBase = bufEnd;

} // anonymous namespace

Workload
makeBzip2(uint64_t seed)
{
    Workload w;
    w.description =
        "byte-frequency counting over run-structured data: strong "
        "local stride plus short define-use global strides";

    Xorshift64Star rng(seed * 0x9e3779b97f4a7c15ull + 3);

    // Phrase-structured symbol stream: the input is built from a
    // 48-entry phrase book (text repeats its n-grams), each phrase
    // containing internal runs, with occasional random splices. Runs
    // feed last-value/stride locality; repeating phrases feed
    // context (FCM/DFCM) locality — the mix real compressors see.
    std::vector<std::vector<int64_t>> book(48);
    for (auto &phrase : book) {
        int64_t sym = static_cast<int64_t>(rng.below(16));
        for (int k = 0; k < 48; ++k) {
            // long runs: bzip2's inputs are RLE-friendly by design
            if (!rng.chancePercent(97))
                sym = static_cast<int64_t>(rng.below(16));
            phrase.push_back(sym);
        }
    }
    int64_t i = 0;
    while (i < bufWords) {
        if (rng.chancePercent(10)) {
            for (int k = 0; k < 3 && i < bufWords; ++k, ++i) {
                w.memoryImage.emplace_back(
                    bufBase + static_cast<uint64_t>(i) * 8,
                    static_cast<int64_t>(rng.below(16)));
            }
        } else {
            const auto &phrase = book[rng.below(book.size())];
            for (size_t k = 0; k < phrase.size() && i < bufWords;
                 ++k, ++i) {
                w.memoryImage.emplace_back(
                    bufBase + static_cast<uint64_t>(i) * 8, phrase[k]);
            }
        }
    }

    ProgramBuilder b("bzip2");
    Label top = b.newLabel();

    // The body is unrolled four ways (as a compiler would unroll a
    // byte-counting loop), so only one or two instances of each
    // static instruction are in flight at a time.
    b.bind(top);
    uint32_t loop_head = b.here();
    uint32_t symbol_load = 0, backref_load = 0;
    for (int64_t u = 0; u < 4; ++u) {
        if (u == 0)
            symbol_load = b.here();
        b.load(t1, s1, 8 * u);  // B1: symbol (runs: stride-0)
        b.andi(t2, t1, 255);    // B2: duplicates B1 (alphabet < 256)
        b.slli(t3, t2, 3);      // B3: scaled index (run-stable only)
        b.add(t4, s2, t3);      // B4: counter addr; diff == freqBase
        b.load(t5, t4, 0);      // B5: running count
        b.addi(t6, t5, 1);      // B6: incremented count
        b.store(t6, t4, 0);
        // Context back-reference: the symbol four positions back
        // (compressors compare against recent context) — a diff-0
        // global stride one unrolled block away.
        if (u == 0)
            backref_load = b.here();
        b.load(t7, s1, 8 * u - 32); // B7
        b.addi(t8, t7, 4);          // B8: chain
    }
    b.addi(s1, s1, 32);        // B9: buffer advance (stride 32)
    b.blt(s1, a2, top);        //    loop branch: taken until wrap
    b.addi(s1, a1, 0);         //    rare: reset the stream pointer
    b.jump(top);

    w.program = b.build();

    w.initialRegs[s1] = static_cast<int64_t>(bufBase);
    w.initialRegs[s2] = static_cast<int64_t>(freqBase);
    w.initialRegs[a1] = static_cast<int64_t>(bufBase);
    w.initialRegs[a2] = static_cast<int64_t>(bufEnd);

    w.markers.emplace_back("loop_head", indexToPc(loop_head));
    w.markers.emplace_back("symbol_load", indexToPc(symbol_load));
    w.markers.emplace_back("backref_load", indexToPc(backref_load));
    return w;
}

} // namespace kernels
} // namespace workload
} // namespace gdiff
