/**
 * @file
 * The "gap" kernel: computer-algebra-style generational values.
 *
 * The paper singles gap out (§3): its values come from long
 * hard-to-predict computation chains, so *no* predictor does well,
 * and the only global correlations sit at distances just beyond a
 * small GVQ — which is why gap's gdiff accuracy is maximised at a
 * non-zero value delay (Fig. 10) and improves sharply when the queue
 * grows from 8 to 32 entries.
 *
 * Construction: each outer iteration runs a 7-op non-linear chain
 * (mul/xor/shift only — no additive structure), then *reuses* chain
 * values with constant offsets exactly 9 producers back, adds
 * counter-style local food, and with 50% probability appends a noisy
 * variable-length tail that randomises cross-iteration distances.
 */

#include "workload/kernels.hh"

#include "isa/program_builder.hh"
#include "util/random.hh"

namespace gdiff {
namespace workload {
namespace kernels {

using namespace isa;
using namespace isa::reg;

namespace {

constexpr int64_t seedWords = 65536; // 512 KiB of generator seeds
constexpr uint64_t seedBase = dataBase;
constexpr uint64_t seedEnd = seedBase + seedWords * 8;

} // anonymous namespace

Workload
makeGap(uint64_t seed)
{
    Workload w;
    w.description =
        "long non-linear computation chains; correlations only at "
        "global distances 9+ (queue-size and value-delay anomaly)";

    Xorshift64Star rng(seed * 0x9e3779b97f4a7c15ull + 5);

    for (int64_t i = 0; i < seedWords; ++i) {
        w.memoryImage.emplace_back(
            seedBase + static_cast<uint64_t>(i) * 8,
            static_cast<int64_t>(rng.next() >> 8));
    }

    ProgramBuilder b("gap");
    Label top = b.newLabel();
    Label skip_tail = b.newLabel();

    b.bind(top);
    uint32_t loop_head = b.here();
    b.load(t1, s1, 0);     // G1: generator seed (hard)
    b.addi(s1, s1, 8);     // G2: seed-table advance (local food)

    // 7-op non-linear chain: t2..t8, no additive structure between
    // links (one short-distance reuse keeps a sliver of in-window
    // global predictability, as fig. 8 shows for gap)
    b.mul(t2, t1, s4);     // C1
    b.srli(t3, t2, 13);    // C2
    b.xor_(t4, t3, t2);    // C3
    b.addi(a2, t4, 12);    // CD1: short-distance reuse of C3
    b.mul(t5, t4, s6);     // C4
    b.srli(t6, t5, 7);     // C5
    b.xor_(t7, t6, t5);    // C6
    b.mul(t8, t7, s4);     // C7

    // Reuses of values exactly 9 producers back at each reuse's own
    // position: just beyond an 8-entry GVQ at zero delay, but visible
    // once the value delay shifts the window (the paper's gap anomaly
    // in Fig. 10) or the queue grows to 32 (§3's observation).
    b.addi(v0, t1, 40);    // R1: the seed (9 back)
    b.addi(v1, s1, 56);    // R2: the advanced pointer (9 back)
    b.addi(t9, t2, 72);    // R3: chain link C1 (9 back)
    b.addi(t0, t3, 88);    // R4: chain link C2 (9 back)
    b.addi(a2, t4, 44);    // R5: chain link C3 (9 back)
    b.addi(s0, t5, 52);    // R6: chain link C4 (9 back)

    // local-stride food: a bookkeeping block unrolled four times, so
    // its cross-block strides stay within a small global window at
    // any delay, without a sawtooth trip counter ------------------------
    for (int u = 0; u < 4; ++u) {
        b.addi(s2, s2, 24);    // m1: strided counter
        b.addi(a0, s2, 4);     // m2: derived (diff 4)
        b.addi(a1, a0, 8);     // m3: second derived link
        b.addi(s3, s3, -8);    // m4: strided counter
        b.addi(a1, s3, 12);    // m5: derived (diff 12)
    }

    // 50% variable-length noisy tail -----------------------------------
    b.andi(t2, t1, 1);     // S1: selector (hard)
    b.beq(t2, zero, skip_tail);
    b.mul(t3, t8, s6);     // T1..T4: more generational noise
    b.srli(t4, t3, 11);
    b.xor_(t5, t4, t3);
    b.mul(t6, t5, s4);
    b.bind(skip_tail);

    b.store(t8, s8, 0);    //     log the chain result
    b.blt(s1, a3, top);    //     loop branch: taken until wrap
    b.addi(s1, gp, 0);     //     rare seed-table rewind
    b.jump(top);

    w.program = b.build();

    w.initialRegs[s1] = static_cast<int64_t>(seedBase);
    // odd multipliers for the non-linear chain
    w.initialRegs[s4] = static_cast<int64_t>(0x9e3779b97f4a7c15ull);
    w.initialRegs[s6] = static_cast<int64_t>(0xbf58476d1ce4e5b9ull);
    w.initialRegs[gp] = static_cast<int64_t>(seedBase);
    w.initialRegs[a3] = static_cast<int64_t>(seedEnd);
    w.initialRegs[s8] = static_cast<int64_t>(frameBase);

    w.markers.emplace_back("loop_head", indexToPc(loop_head));
    return w;
}

} // namespace kernels
} // namespace workload
} // namespace gdiff
