/**
 * @file
 * The "twolf" kernel: standard-cell-placement cost evaluation.
 *
 * Cells are allocated sequentially, and their coordinate fields are
 * affine in the cell's own address (cells placed in allocation order
 * along rows). The annealer evaluates swap costs between a randomly
 * chosen cell and its allocation neighbour, so the coordinate loads
 * and every derived quantity carry constant *global* strides while
 * the random pair selection destroys all local-history locality —
 * this is the benchmark where the paper reports one of gdiff's
 * largest wins over local predictors (up to +34% accuracy).
 */

#include "workload/kernels.hh"

#include "isa/program_builder.hh"
#include "util/random.hh"

namespace gdiff {
namespace workload {
namespace kernels {

using namespace isa;
using namespace isa::reg;

namespace {

constexpr int64_t numCells = 8192;
constexpr int64_t cellBytes = 32;
constexpr uint64_t cellBase = dataBase;
constexpr uint64_t cellEnd = cellBase + numCells * cellBytes;
constexpr int64_t pickWords = 32768; // pre-scaled random pick table
constexpr uint64_t pickBase = cellEnd;
constexpr uint64_t pickEnd = pickBase + pickWords * 8;

constexpr int64_t x0 = 0x400000;
constexpr int64_t y0 = 0x900000;

} // anonymous namespace

Workload
makeTwolf(uint64_t seed)
{
    Workload w;
    w.description =
        "random swap-cost evaluation over allocation-ordered cells: "
        "coordinate fields affine in the cell address (gdiff-only)";

    Xorshift64Star rng(seed * 0x9e3779b97f4a7c15ull + 6);

    // Cells: coordinates affine in the address with matching pitch.
    for (int64_t i = 0; i < numCells; ++i) {
        uint64_t cell = cellBase + static_cast<uint64_t>(i * cellBytes);
        int64_t x = x0 + 32 * i;
        int64_t y = y0 + 32 * i;
        if (rng.chancePercent(5))
            x += static_cast<int64_t>(rng.below(64)) - 32;
        if (rng.chancePercent(5))
            y += static_cast<int64_t>(rng.below(64)) - 32;
        w.memoryImage.emplace_back(cell + 0, x);
        w.memoryImage.emplace_back(cell + 8, y);
        w.memoryImage.emplace_back(cell + 16,
                                   static_cast<int64_t>(rng.below(4096)));
    }

    // Pick table: pre-scaled byte offsets of random cells (never the
    // last cell, so the +32 neighbour always exists).
    for (int64_t i = 0; i < pickWords; ++i) {
        w.memoryImage.emplace_back(
            pickBase + static_cast<uint64_t>(i) * 8,
            static_cast<int64_t>(rng.below(numCells - 1)) * cellBytes);
    }

    ProgramBuilder b("twolf");
    Label top = b.newLabel();

    b.bind(top);
    uint32_t loop_head = b.here();
    b.load(t1, s1, 0);     // W1: random pick offset (hard)
    b.addi(s1, s1, 8);     // W2: pick-table advance (local food)
    b.add(t2, s2, t1);     // W3: a = cellBase + pick; diff == cellBase
    b.addi(t3, t2, 32);    // W4: b = allocation neighbour; diff == 32
    uint32_t ax_load = b.here();
    b.load(t4, t2, 0);     // W5: a->x; affine in t2 (x - addr const)
    b.addi(s0, t4, 0);     // W5a: keep a->x live for the reuse slots
    b.load(t5, t3, 0);     // W6: b->x; t5 - t4 == 32
    b.sub(t6, t5, t4);     // W7: dx ≈ 32 (stride-0 local)
    b.addi(v0, t6, 16);    // W7a: derived from dx (diff 16, exact)
    b.load(t7, t2, 8);     // W8: a->y; t7 - t4 == y0 - x0
    b.load(t8, t3, 8);     // W9: b->y
    b.sub(t9, t8, t7);     // W10: dy ≈ 32
    b.addi(v1, t9, 24);    // W10a: derived from dy (diff 24, exact)
    b.add(v0, t6, t9);     // W11: swap cost ≈ 64
    b.store(v0, s8, 0);    //     spill the cost
    b.load(v1, s8, 0);     // W12: FILL reload of the cost
    b.add(t0, v1, s4);     // W13: chain off the reload
    b.addi(t4, t0, 8);     // W14: second chain link
    b.addi(t6, t4, -20);   // W14a: third chain link
    b.addi(t4, t6, 44);    // W14b: fourth chain link
    b.addi(t6, t4, 4);     // W14c: fifth chain link
    // Cross-iteration reuse: the previous and before-previous moves'
    // a->x coordinates (random picks, so locally unpredictable) are
    // reloaded — long-distance global stride food.
    b.load(t7, s8, 16);    // RL1: a->x from two moves back
    b.addi(t8, t7, 12);    // RL2: chain
    b.load(t7, s8, 8);     // RL3: a->x from one move back
    b.store(t7, s8, 16);   //      age to depth two
    b.store(s0, s8, 8);    //      current move's a->x to depth one
    b.addi(s3, s3, 1);     // W15: accepted-move counter
    // Replace the just-consumed pick with a fresh pseudo-random one
    // (annealing never repeats its move sequence): rolling LCG, kept
    // a multiple of 64 so the chosen cell and its +32 neighbour stay
    // inside the initialised array.
    b.mul(s6, s6, s5);     // W16: LCG state (hard)
    b.srli(t5, s6, 13);    // W17: scrambled (hard)
    b.andi(t5, t5, 0x3ffc0); // W18: bounded pick offset (hard)
    b.store(t5, s1, -8);   //      overwrite the slot just read
    b.blt(s1, a2, top);    //     loop branch: taken until wrap
    b.addi(s1, a1, 0);     //     rare pick-table rewind
    b.jump(top);

    w.program = b.build();

    w.initialRegs[s1] = static_cast<int64_t>(pickBase);
    w.initialRegs[s2] = static_cast<int64_t>(cellBase);
    w.initialRegs[s4] = 48;
    w.initialRegs[s5] = 2862933555777941757ll; // LCG multiplier
    w.initialRegs[s6] = static_cast<int64_t>(
        seed * 2 + 0x9e3779b97f4a7c15ull);     // odd LCG state
    w.initialRegs[a1] = static_cast<int64_t>(pickBase);
    w.initialRegs[a2] = static_cast<int64_t>(pickEnd);
    w.initialRegs[s8] = static_cast<int64_t>(frameBase);

    w.markers.emplace_back("loop_head", indexToPc(loop_head));
    w.markers.emplace_back("ax_load", indexToPc(ax_load));
    return w;
}

} // namespace kernels
} // namespace workload
} // namespace gdiff
