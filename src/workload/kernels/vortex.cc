/**
 * @file
 * The "vortex" kernel: an object-database-style call-heavy workload.
 *
 * A main loop walks an object table and calls a two-deep validation
 * chain. Live values are spilled across the calls and reloaded in the
 * epilogues at fixed producer distances (the function bodies have
 * fixed producer counts), giving the spill/fill global-stride
 * correlations the paper attributes to call-heavy codes. Object
 * fields are affine in the object address; flags are noisy. The
 * short, fixed define-use distances give vortex the bounded
 * value-delay profile the paper's Fig. 12 plots.
 */

#include "workload/kernels.hh"

#include "isa/program_builder.hh"
#include "util/random.hh"

namespace gdiff {
namespace workload {
namespace kernels {

using namespace isa;
using namespace isa::reg;

namespace {

constexpr int64_t numObjects = 8192;
constexpr int64_t objBytes = 64;
constexpr uint64_t objBase = dataBase;
constexpr uint64_t objEnd = objBase + numObjects * objBytes;

constexpr int64_t size0 = 0x80000;
constexpr int64_t ref0 = 0x20000;

} // anonymous namespace

Workload
makeVortex(uint64_t seed)
{
    Workload w;
    w.description =
        "two-deep call chain with live-value spill/fill across calls; "
        "object fields affine in the object address";

    Xorshift64Star rng(seed * 0x9e3779b97f4a7c15ull + 8);

    for (int64_t i = 0; i < numObjects; ++i) {
        uint64_t obj = objBase + static_cast<uint64_t>(i * objBytes);
        int64_t size = size0 + 64 * i;
        if (rng.chancePercent(5))
            size += static_cast<int64_t>(rng.below(64)) - 32;
        w.memoryImage.emplace_back(obj + 8, size);
        w.memoryImage.emplace_back(obj + 16,
                                   static_cast<int64_t>(rng.below(256)));
        w.memoryImage.emplace_back(obj + 24, ref0 + 64 * i);
        // cross-reference to a random peer object (databases chase
        // foreign keys in an order unrelated to allocation)
        uint64_t peer =
            objBase + rng.below(numObjects) * static_cast<uint64_t>(
                                                  objBytes);
        w.memoryImage.emplace_back(obj + 32,
                                   static_cast<int64_t>(peer));
        // two immutable index fields, affine in the object address
        w.memoryImage.emplace_back(obj + 40, 0x40000 + 64 * i);
        w.memoryImage.emplace_back(obj + 48, 0xa0000 + 64 * i);
    }

    ProgramBuilder b("vortex");
    Label main_top = b.newLabel();
    Label fval = b.newLabel();
    Label ffield = b.newLabel();
    Label skip_mut = b.newLabel();

    // ------------------------- main loop ------------------------------
    b.bind(main_top);
    uint32_t loop_head = b.here();
    b.addi(s2, s2, objBytes); // O1: object pointer advance
    b.addi(a0, s2, 0);        // O2: argument move (duplicates s2)
    b.jal(ra, fval);          //     call the validator
    b.add(t0, v0, s4);        // O3: chain off the return value
    b.store(t0, s7, 0);       //     log the result
    b.addi(s7, s7, 8);        // O4: log pointer advance
    b.addi(s3, s3, 1);        // O5: object counter
    // Every other iteration, re-link one object to a fresh pseudo-
    // random peer so the cross-reference stream never settles into a
    // memorisable cycle. The block sits at the loop tail so its
    // conditional execution cannot disturb the producer distances of
    // the call-body correlations above.
    b.andi(t4, s3, 1);        // OM0: alternating gate
    b.bne(t4, zero, skip_mut);
    b.mul(s6, s6, s1);        // OM1: rolling LCG state (hard)
    b.srli(t9, s6, 17);       // OM2: scrambled (hard)
    b.andi(t9, t9, 0x7ffc0);  // OM3: bounded peer offset (hard)
    b.add(t9, t9, a1);        // OM4: peer address (diff == objBase)
    b.store(t9, s2, 32);
    b.bind(skip_mut);
    b.blt(s2, a2, main_top);  //     loop branch: taken until wrap
    b.addi(s2, a1, 0);        //     rare: rewind the object walker
    b.addi(s7, gp, 0);        //     and the result log
    b.jump(main_top);

    // --------------------- fval(a0 = obj) ------------------------------
    // Fixed-length body: every producer distance is stable. The peer
    // block comes first so the size/refcnt/fill correlations further
    // down all stay within an 8-entry global window of their sources.
    b.bind(fval);
    b.store(ra, s8, 0);       //     save the return address
    b.load(t2, a0, 8);        // F1: obj->size; affine in a0 (1 back)
    b.store(t2, s8, 8);       //     spill the live size
    b.load(t3, a0, 16);       // F2: obj->flags (noisy)
    b.andi(t4, t3, 7);        // F3: flag field extract (noisy)
    b.addi(t5, t2, 48);       // F4: derived from size
    b.jal(ra, ffield);        //     nested call
    b.load(t6, s8, 8);        // F5: FILL of the size (diff -48 vs F4)
    b.addi(t7, t6, 24);       // F6: derived from the fill
    b.addi(t6, t7, 24);       // F7: validation score
    // foreign-key chase: the peer pointer is random, but every peer
    // field is affine in it — global-stride-only locality
    b.load(t8, a0, 32);       // FP1: peer pointer (random order)
    uint32_t peer_size_load = b.here();
    b.load(t9, t8, 8);        // FP2: peer size; affine in the pointer
    b.sub(t0, t9, t8);        // FP3: ≈ size0 - objBase (stride-0)
    b.addi(v1, t0, 16);       // FP4: chain off the peer slack
    b.load(t6, t8, 40);       // FP5: peer index; affine in FP1
    b.addi(t7, t6, 12);       // FP6: chain
    b.load(t6, t8, 48);       // FP7: second peer index; diff vs FP5
    b.addi(t7, t6, 28);       // FP8: chain
    // Cross-call reuse: peer indices from one and two calls back are
    // reloaded — random values (locally unpredictable) at global
    // distances of one/two full call bodies.
    b.load(v1, s8, 32);       // RL1: peer index from two calls back
    b.addi(t0, v1, 20);       // RL2: chain
    b.load(t3, s8, 24);       // RL3: peer index from one call back
    b.store(t3, s8, 32);      //      age to depth two
    b.store(t6, s8, 24);      //      current peer index to depth one
    b.addi(t6, t7, -4);       // FP9: chain
    b.addi(t7, t6, 36);       // FP10: chain
    b.addi(v0, t7, 4);        // F8: return value (chain tail)
    b.load(ra, s8, 0);        //     restore the return address
    b.jr(ra);

    // --------------------- ffield(a0 = obj) ----------------------------
    b.bind(ffield);
    b.load(t8, a0, 24);       // G1: obj->refcnt; diff vs F1 constant
    b.addi(t9, t8, 1);        // G2: bump
    b.store(t9, a0, 24);      //     write back (drifts +1 per pass)
    b.addi(t0, t9, 16);       // G3: chain off the bumped count
    b.add(v0, t8, s5);        // G4: result logged, chains off refcnt
    b.store(v0, gp, -8);      //     (memory log, not a producer)
    b.jr(ra);

    w.program = b.build();

    w.initialRegs[s2] = static_cast<int64_t>(objBase);
    w.initialRegs[s4] = 16;
    w.initialRegs[s5] = 32;
    w.initialRegs[s1] = 2862933555777941757ll; // LCG multiplier
    w.initialRegs[s6] = static_cast<int64_t>(
        seed * 2 + 0x9e3779b97f4a7c15ull);     // odd LCG state
    w.initialRegs[s7] = static_cast<int64_t>(objEnd); // result log
    w.initialRegs[gp] = static_cast<int64_t>(objEnd);
    w.initialRegs[a1] = static_cast<int64_t>(objBase);
    w.initialRegs[a2] = static_cast<int64_t>(objEnd - objBytes);
    w.initialRegs[s8] = static_cast<int64_t>(frameBase);

    w.markers.emplace_back("loop_head", indexToPc(loop_head));
    w.markers.emplace_back("peer_size_load", indexToPc(peer_size_load));
    return w;
}

} // namespace kernels
} // namespace workload
} // namespace gdiff
