/**
 * @file
 * The "vpr" kernel: FPGA place-and-route cost sweeps.
 *
 * Phase 1 is a tight nested sweep over a routing grid whose occupancy
 * values are affine in the grid address — friendly to both local and
 * global stride predictors. Phase 2 walks a randomly ordered net
 * worklist where each net's pin pointers are self-relative (pin
 * blocks allocated right after the net header), so pointer loads and
 * capacity fields carry constant global strides that local
 * predictors cannot see.
 */

#include "workload/kernels.hh"

#include "isa/program_builder.hh"
#include "util/random.hh"

namespace gdiff {
namespace workload {
namespace kernels {

using namespace isa;
using namespace isa::reg;

namespace {

constexpr int64_t gridW = 64;
constexpr int64_t gridH = 64;
constexpr uint64_t gridBase = dataBase;
constexpr uint64_t gridEnd = gridBase + gridW * gridH * 8;

constexpr int64_t numNets = 4096;
constexpr int64_t netBytes = 96; // header (2 words) + 2 pin blocks
constexpr uint64_t netBase = gridEnd;
constexpr uint64_t netEnd = netBase + numNets * netBytes;

constexpr int64_t workWords = 16384;
constexpr uint64_t workBase = netEnd;
constexpr uint64_t workEnd = workBase + workWords * 8;

constexpr int64_t occ0 = 0x50000;

} // anonymous namespace

Workload
makeVpr(uint64_t seed)
{
    Workload w;
    w.description =
        "nested grid sweeps (stride-friendly) plus random net walks "
        "with self-relative pin pointers (gdiff-only)";

    Xorshift64Star rng(seed * 0x9e3779b97f4a7c15ull + 7);

    // Grid occupancy: affine in the address, light noise.
    for (int64_t i = 0; i < gridW * gridH; ++i) {
        int64_t v = occ0 + 8 * i;
        if (rng.chancePercent(5))
            v += static_cast<int64_t>(rng.below(32)) - 16;
        w.memoryImage.emplace_back(gridBase + static_cast<uint64_t>(i) * 8,
                                   v);
    }

    // Nets: header {srcPin*, dstPin*}, then two pin blocks in-line.
    // Pin pointers are self-relative: src = net + 16, dst = net + 56.
    for (int64_t n = 0; n < numNets; ++n) {
        uint64_t net = netBase + static_cast<uint64_t>(n * netBytes);
        w.memoryImage.emplace_back(net + 0,
                                   static_cast<int64_t>(net + 16));
        w.memoryImage.emplace_back(net + 8,
                                   static_cast<int64_t>(net + 56));
        // pin capacities: affine in the pin address with pitch 1
        int64_t cap_src = static_cast<int64_t>(net + 16) + 0x30000;
        int64_t cap_dst = static_cast<int64_t>(net + 56) + 0x30000;
        if (rng.chancePercent(20))
            cap_src += static_cast<int64_t>(rng.below(128)) - 64;
        if (rng.chancePercent(20))
            cap_dst += static_cast<int64_t>(rng.below(128)) - 64;
        w.memoryImage.emplace_back(net + 16, cap_src);
        w.memoryImage.emplace_back(net + 56, cap_dst);
    }

    // Worklist: random net addresses.
    for (int64_t i = 0; i < workWords; ++i) {
        uint64_t net = netBase + rng.below(numNets) * netBytes;
        w.memoryImage.emplace_back(
            workBase + static_cast<uint64_t>(i) * 8,
            static_cast<int64_t>(net));
    }

    ProgramBuilder b("vpr");
    Label sweep_top = b.newLabel();
    Label net_top = b.newLabel();
    Label net_phase = b.newLabel();
    Label wrap_grid = b.newLabel();
    Label wrap_work = b.newLabel();
    Label after_wrap_work = b.newLabel();
    Label outer = b.newLabel();

    // -------------------- phase 1: grid sweep ------------------------
    b.bind(outer);
    b.li(s3, 0);               // column counter
    // Unrolled four ways, as a compiler would vectorise a row sweep.
    b.bind(sweep_top);
    uint32_t sweep_head = b.here();
    for (int64_t u = 0; u < 4; ++u) {
        b.load(t1, s1, 8 * u);      // V1: cell occupancy (strided)
        b.load(t2, s1, 8 * u + 8);  // V2: right nbr; t2 - t1 == 8
        b.load(t3, s1, 8 * u + gridW * 8); // V3: down neighbour
        b.sub(t4, t2, t1);          // V4: horizontal gradient (≈8)
        b.add(t5, t4, t3);          // V5: congestion score
        b.store(t5, s8, 0);         //     log the score
    }
    b.addi(s1, s1, 32);        // V6: sweep advance
    b.addi(s3, s3, 4);         // V7: column counter
    b.blt(s3, a0, sweep_top);  //     48 cells per phase
    b.bge(s1, a2, wrap_grid);  //     rare grid wrap
    b.jump(net_phase);
    b.bind(wrap_grid);
    b.addi(s1, a1, 0);

    // -------------------- phase 2: net walk --------------------------
    b.bind(net_phase);
    b.li(s3, 0);
    b.bind(net_top);
    uint32_t net_head = b.here();
    b.load(t1, s5, 0);         // N1: random net address (hard)
    b.addi(s5, s5, 8);         // N2: worklist advance
    b.load(t2, t1, 0);         // N3: src pin ptr; t2 - t1 == 16
    b.load(t3, t1, 8);         // N4: dst pin ptr; t3 - t2 == 40
    b.load(t4, t2, 0);         // N5: src capacity; affine in t2
    b.load(t5, t3, 0);         // N6: dst capacity; t5 - t4 ≈ 40
    b.sub(t6, t5, t4);         // N7: slack (≈ const)
    b.add(v0, t6, s4);         // N8: chain off the slack
    b.addi(s3, s3, 1);         // N9: net counter
    b.blt(s3, a3, net_top);    //     12 nets per phase
    b.bge(s5, gp, wrap_work);  //     rare worklist wrap
    b.bind(after_wrap_work);
    b.jump(outer);

    b.bind(wrap_work);
    b.addi(s5, s6, 0);
    b.jump(after_wrap_work);

    w.program = b.build();

    w.initialRegs[s1] = static_cast<int64_t>(gridBase);
    w.initialRegs[s5] = static_cast<int64_t>(workBase);
    w.initialRegs[s6] = static_cast<int64_t>(workBase);
    w.initialRegs[s4] = 16;
    w.initialRegs[a0] = 48; // grid cells per phase
    w.initialRegs[a3] = 12; // nets per phase
    w.initialRegs[a1] = static_cast<int64_t>(gridBase);
    // leave room for the unrolled down-neighbour loads at the grid end
    w.initialRegs[a2] =
        static_cast<int64_t>(gridEnd - (gridW + 8) * 8);
    w.initialRegs[gp] = static_cast<int64_t>(workEnd);
    w.initialRegs[s8] = static_cast<int64_t>(frameBase);

    w.markers.emplace_back("sweep_head", indexToPc(sweep_head));
    w.markers.emplace_back("net_head", indexToPc(net_head));
    return w;
}

} // namespace kernels
} // namespace workload
} // namespace gdiff
