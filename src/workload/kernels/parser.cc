/**
 * @file
 * The "parser" kernel: the paper's flagship example of global stride
 * locality (paper §2, Figs. 1, 2 and 4).
 *
 * Structure: a circular list of interleaved (node, string) allocations
 *
 *     chunk_i @ dataBase + 80*i:
 *         +0   node.next    -> chunk_{i+1} (circular)
 *         +8   node.string  -> chunk_i + 16
 *         +16  string.len      (noisy, hard to predict; Fig. 1)
 *         +24  string.cap      == len + 64 (constant offset)
 *         +32  string.tok      == tokBase + 80*i (allocation-ordered)
 *
 * Because nodes and strings are allocated in the order they are
 * referenced, the ->next and ->string loads have a constant global
 * stride (paper Fig. 4). The string length is spilled to the frame
 * and reloaded a few instructions later on both control paths — the
 * register spill/fill reload of paper Fig. 2, locally unpredictable
 * (Fig. 1) but exactly predictable from the global value history.
 *
 * Expected per-producer predictability (L = local stride, G = gdiff):
 *
 *     P1  ld next        L+  (stride 80/iter)       G- (distance > 8)
 *     P2  ld string      L+ G+ (t2 - t1 == -64)
 *     P3  advance        L+ G+ (duplicates t1)
 *     P4  ld len         L- G-  (the noisy correlated load)
 *     P5  andi selector  L- G-
 *     P6  addi len+24    G+ only
 *     P7  ld cap         G+ only (cap - len == 64)
 *     P8  ld tok         L+ G+ (tok - next == const: same pitch)
 *     P9  FILL reload    G+ only (diff 0 vs P4; paper Fig. 1 load)
 *     P10 add off fill   G+ only
 *     M1-M3 LCG mutation L- G-  (keeps the stream non-cyclic)
 *     M4  new cap        G+ (diff 64 off M3)
 *     P11 FILL2 reload   G+ only (diff 0 vs P7)
 *     P12-P18 score chain G+ only
 *     RL1-RL3 cross-iteration score reuses: G+ at one/two full
 *             iterations' distance (pipeline-visible correlations)
 */

#include "workload/kernels.hh"

#include "isa/program_builder.hh"
#include "util/bits.hh"
#include "util/random.hh"

namespace gdiff {
namespace workload {
namespace kernels {

using namespace isa;
using namespace isa::reg;

namespace {

/// chunk pitch: node (16B) + string (64B) from one allocator
constexpr int64_t chunkBytes = 80;
/// number of chunks; 512 * 80B = 40 KiB, resident in the 64 KiB D$
constexpr int64_t numChunks = 512;
/// base of the synthetic token stream embedded in each string
constexpr int64_t tokBase = 0x2000;

/**
 * Noisy string lengths in the style of paper Fig. 1: mostly multiples
 * of 24 with zeros interspersed, no stride or short periodicity.
 */
int64_t
stringLength(uint64_t i, Xorshift64Star &rng)
{
    (void)i;
    uint64_t h = rng.next();
    if ((h & 7) < 2)
        return 0;
    return 24 * static_cast<int64_t>(20 + ((h >> 8) % 25));
}

} // anonymous namespace

Workload
makeParser(uint64_t seed)
{
    Workload w;
    w.description =
        "register spill/fill reloads and allocation-ordered "
        "string_list walk (paper Figs. 1, 2, 4)";

    Xorshift64Star rng(seed * 0x9e3779b97f4a7c15ull + 1);

    // ---- data segment -------------------------------------------------
    for (int64_t i = 0; i < numChunks; ++i) {
        uint64_t chunk = dataBase + static_cast<uint64_t>(chunkBytes * i);
        uint64_t next =
            dataBase + static_cast<uint64_t>(chunkBytes *
                                             ((i + 1) % numChunks));
        w.memoryImage.emplace_back(chunk + 0,
                                   static_cast<int64_t>(next));
        w.memoryImage.emplace_back(chunk + 8,
                                   static_cast<int64_t>(chunk + 16));
        w.memoryImage.emplace_back(chunk + 16, stringLength(
                                       static_cast<uint64_t>(i), rng));
        // cap == len + 64: a constant offset from the noisy length
        w.memoryImage.emplace_back(
            chunk + 24, w.memoryImage[w.memoryImage.size() - 1].second +
                            64);
        // tok advances with the allocator pitch, so tok - next is
        // constant across the walk
        w.memoryImage.emplace_back(chunk + 32, tokBase + chunkBytes * i);
    }

    // ---- program -------------------------------------------------------
    ProgramBuilder b("parser");
    Label top = b.newLabel();
    Label odd = b.newLabel();
    Label merge = b.newLabel();
    Label wrap = b.newLabel();

    b.bind(top);
    uint32_t loop_head = b.here();
    b.load(t1, s1, 0);    // P1: node->next
    b.load(t2, s1, 8);    // P2: node->string
    b.addi(s1, t1, 0);    // P3: advance the walker
    uint32_t len_load = b.here();
    b.load(t3, t2, 0);    // P4: string->len (noisy; "correlated load")
    b.store(t3, s8, 0);   //     spill len to the frame
    b.andi(t6, t3, 8);    // P5: path selector from a noisy bit
    b.addi(t4, t3, 24);   // P6: derived from the noisy len
    b.load(t7, t2, 8);    // P7: string->cap == len + 64
    b.store(t7, s8, 8);   //     spill cap
    b.load(t8, t2, 16);   // P8: string->tok (allocation-pitch stride)
    b.bne(t6, zero, odd);

    // Both paths rewrite the chunk's length from a never-repeating
    // LCG so the global value stream cannot become a memorisable
    // cycle (real parser inputs do not repeat), and both have the
    // same producer count so the FILL and merge-block distances stay
    // fixed across paths (paper Fig. 2 notes the correlation holds on
    // both control paths).

    // even path --------------------------------------------------------
    uint32_t fill_load = b.here();
    b.load(v0, s8, 0);    // P9: FILL reload of len (paper Fig. 1 load)
    b.add(t5, v0, s4);    // P10: len + 24
    b.mul(s7, s7, s6);    // M1: rolling LCG state (hard)
    b.srli(t9, s7, 11);   // M2: scrambled bits (hard)
    b.andi(t9, t9, 1016); // M3: new length, multiple of 8 (hard)
    b.store(t9, t2, 0);
    b.addi(t0, t9, 64);   // M4: new cap (keeps cap == len + 64)
    b.store(t0, t2, 8);
    b.jump(merge);

    // odd path ----------------------------------------------------------
    b.bind(odd);
    b.load(v0, s8, 0);    // P9': FILL reload, identical distance
    b.add(t5, v0, s4);    // P10': len + 24 (same offset on both paths)
    b.mul(s7, s7, s6);    // M1': LCG state (hard)
    b.srli(t9, s7, 13);   // M2': different scramble (hard)
    b.andi(t9, t9, 1016); // M3': new length (hard)
    b.store(t9, t2, 0);
    b.addi(t0, t9, 64);   // M4': new cap
    b.store(t0, t2, 8);
    // fall through to merge

    b.bind(merge);
    b.load(t9, s8, 8);    // P11: FILL2 reload of cap
    b.add(t0, t9, s4);    // P12: cap + 24
    b.addi(t9, t0, -8);   // P13: scoring chain off the reload
    b.addi(t0, t9, 36);   // P14
    b.add(t9, t5, s5);    // P15: chain off the path result
    b.addi(t0, t9, 4);    // P16
    b.addi(t9, t0, 20);   // P17
    b.addi(t0, t9, -12);  // P18
    // Cross-iteration temporaries: scores from one and two chunks ago
    // are reloaded and compared — global stride locality at distances
    // of one/two full iterations, far beyond any local history and
    // beyond the pipeline's in-flight window.
    b.load(v1, s8, 24);   // RL1: score from two iterations back
    b.addi(t9, v1, 8);    // RL2: chain off it
    b.load(t0, s8, 16);   // RL3: score from one iteration back
    b.store(t0, s8, 24);  //      age it to depth two
    b.store(t5, s8, 16);  //      current score becomes depth one
    b.bne(t1, s0, top);   //     circular walk: taken until wrap

    // wrap block: once per numChunks iterations --------------------------
    b.bind(wrap);
    b.load(t0, s8, 24);   // epoch counter in memory
    b.addi(t0, t0, 1);
    b.store(t0, s8, 24);
    b.jump(top);

    w.program = b.build();

    // ---- initial registers ---------------------------------------------
    w.initialRegs[s0] = static_cast<int64_t>(dataBase); // list head
    w.initialRegs[s1] = static_cast<int64_t>(dataBase); // walker
    w.initialRegs[s4] = 24;                             // path constants
    w.initialRegs[s5] = 40;
    w.initialRegs[s6] = 2862933555777941757ll;          // LCG multiplier
    w.initialRegs[s7] = static_cast<int64_t>(
        seed * 2 + 0x9e3779b97f4a7c15ull);              // odd LCG state
    w.initialRegs[s8] = static_cast<int64_t>(frameBase);

    w.markers.emplace_back("loop_head", indexToPc(loop_head));
    w.markers.emplace_back("len_load", indexToPc(len_load));
    w.markers.emplace_back("fill_load", indexToPc(fill_load));
    return w;
}

} // namespace kernels
} // namespace workload
} // namespace gdiff
