/**
 * @file
 * The "perl" kernel: a bytecode interpreter with a hot inlined trace.
 *
 * Two regimes alternate, as in a real interpreter with a hot path:
 *
 *  - a *hot trace* of inlined stack-machine ops. Operand-stack pops
 *    reload values pushed a few producers earlier (diff-0 global
 *    stride at fixed distances); the interpreter globals advance with
 *    constant strides (local food).
 *  - an *interpreted segment*: an indirect-dispatch loop over a fixed
 *    24-entry bytecode program. The handler-address load is periodic
 *    — classic context (FCM/DFCM) locality, invisible to stride
 *    predictors — and the rotating indirect-call targets stress the
 *    pipeline's indirect predictor the way perl stresses a BTB.
 */

#include "workload/kernels.hh"

#include "isa/program_builder.hh"
#include "util/random.hh"

namespace gdiff {
namespace workload {
namespace kernels {

using namespace isa;
using namespace isa::reg;

namespace {

constexpr uint64_t globalsBase = dataBase;         // interpreter globals
constexpr uint64_t stackBase = dataBase + 0x1000;  // operand stack
constexpr uint64_t codeBase = dataBase + 0x2000;   // bytecode program
constexpr int64_t bytecodeLen = 12;
constexpr int64_t hotReps = 5; // hot-trace repetitions per outer loop

} // anonymous namespace

Workload
makePerl(uint64_t seed)
{
    Workload w;
    w.description =
        "inlined hot trace (stack pops = diff-0 global stride) plus "
        "periodic bytecode dispatch (context locality)";

    Xorshift64Star rng(seed * 0x9e3779b97f4a7c15ull + 9);

    ProgramBuilder b("perl");
    Label outer = b.newLabel();
    Label disp_top = b.newLabel();

    // ------------------------- hot trace -------------------------------
    b.bind(outer);
    uint32_t hot_head = b.here();
    for (int rep = 0; rep < hotReps; ++rep) {
        // push a hard-to-predict scalar onto the operand stack
        b.load(t1, gp, 0);    // g0: non-linear generational value
        b.store(t1, s0, 0);
        b.addi(s0, s0, 8);    // push (stack addresses repeat per rep)
        // six ADDI bytecodes evaluated on the stack top: each pop
        // reloads the value the previous op just produced (diff-0
        // global stride), each op adds a constant (global stride)
        for (int op = 0; op < 6; ++op) {
            b.load(t3, s0, -8);           // pop: diff-0 reload
            b.addi(t4, t3, 8 + 4 * op);   // op result: constant diff
            b.store(t4, s0, -8);          // replace top
        }
        // STOREG: pop the result into a global
        b.load(t8, s0, -8);   // final pop (diff-0)
        b.store(t8, gp, 16);
        b.addi(s0, s0, -8);
        // touch the interpreter's line counter (strided local food)
        b.load(t2, gp, 48);
        b.addi(t3, t2, 8);
        b.store(t3, gp, 48);
    }
    // evolve g0 non-linearly: operand values never repeat
    b.load(t1, gp, 0);
    b.mul(t2, t1, s4);
    b.srli(t3, t2, 9);
    b.store(t3, gp, 0);

    // --------------------- interpreted segment -------------------------
    b.li(s1, static_cast<int64_t>(codeBase)); // bytecode pc
    b.li(s3, 0);                              // dispatch counter
    b.bind(disp_top);
    uint32_t dispatch_load = b.here();
    b.load(t1, s1, 0);     // handler address: periodic (context food)
    b.addi(s1, s1, 8);
    b.jalr(ra, t1);        // rotating indirect call
    b.addi(s3, s3, 1);
    b.blt(s3, a0, disp_top);
    b.jump(outer);

    // --------------------------- handlers ------------------------------
    uint32_t h_inc = b.here(); // increment a global
    b.load(t2, gp, 24);
    b.addi(t3, t2, 8);
    b.store(t3, gp, 24);
    b.jr(ra);

    uint32_t h_pushc = b.here(); // push a constant
    b.li(t4, 77);
    b.store(t4, s0, 0);
    b.addi(s0, s0, 8);
    b.jr(ra);

    uint32_t h_popadd = b.here(); // pop, add a const, store to global
    b.load(t5, s0, -8);
    b.addi(s0, s0, -8);
    b.add(t6, t5, s5);
    b.store(t6, gp, 32);
    b.jr(ra);

    uint32_t h_noise = b.here(); // generational noise
    b.load(t7, gp, 40);
    b.mul(t8, t7, s4);
    b.srli(t9, t8, 9);
    b.store(t9, gp, 40);
    b.jr(ra);

    w.program = b.build();

    const uint64_t handler_pcs[4] = {
        isa::indexToPc(h_inc), isa::indexToPc(h_pushc),
        isa::indexToPc(h_popadd), isa::indexToPc(h_noise)};

    // Bytecode program: a fixed pseudorandom arrangement of the four
    // handlers. pushc/popadd are emitted as an adjacent pair so the
    // operand stack is balanced across every segment.
    for (int64_t i = 0; i < bytecodeLen; ++i) {
        uint64_t pick = rng.below(3); // inc, push+pop pair, noise
        uint64_t pc0;
        if (pick == 0) {
            pc0 = handler_pcs[0];
        } else if (pick == 1 && i + 1 < bytecodeLen) {
            w.memoryImage.emplace_back(
                codeBase + static_cast<uint64_t>(i) * 8,
                static_cast<int64_t>(handler_pcs[1]));
            ++i;
            pc0 = handler_pcs[2];
        } else if (pick == 1) {
            pc0 = handler_pcs[0]; // no room for the pair at the end
        } else {
            pc0 = handler_pcs[3];
        }
        w.memoryImage.emplace_back(
            codeBase + static_cast<uint64_t>(i) * 8,
            static_cast<int64_t>(pc0));
    }

    // Globals.
    w.memoryImage.emplace_back(globalsBase + 0, 1000);
    w.memoryImage.emplace_back(globalsBase + 8, 2000);
    w.memoryImage.emplace_back(globalsBase + 24, 0);
    w.memoryImage.emplace_back(globalsBase + 40,
                               static_cast<int64_t>(rng.next() >> 8));

    w.initialRegs[gp] = static_cast<int64_t>(globalsBase);
    w.initialRegs[s0] = static_cast<int64_t>(stackBase);
    w.initialRegs[s4] = static_cast<int64_t>(0x9e3779b97f4a7c15ull);
    w.initialRegs[s5] = 48;
    w.initialRegs[a0] = bytecodeLen;

    w.markers.emplace_back("hot_head", indexToPc(hot_head));
    w.markers.emplace_back("dispatch_load", indexToPc(dispatch_load));
    return w;
}

} // namespace kernels
} // namespace workload
} // namespace gdiff
