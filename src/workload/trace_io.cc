#include "workload/trace_io.hh"

#include <array>
#include <cstring>

#include "util/logging.hh"

namespace gdiff {
namespace workload {

namespace {

constexpr uint32_t traceMagic = 0x52544447; // "GDTR" little-endian
constexpr uint32_t traceVersion = 1;
constexpr size_t recordBytes = 64;

struct FileHeader
{
    uint32_t magic;
    uint32_t version;
    uint64_t count;
};
static_assert(sizeof(FileHeader) == 16, "header layout");

/** Fixed-width on-disk record. */
struct DiskRecord
{
    uint64_t seq;
    uint64_t pc;
    uint64_t nextPc;
    int64_t value;
    uint64_t effAddr;
    int64_t imm;
    uint32_t target;
    uint8_t op;
    uint8_t rd;
    uint8_t rs1;
    uint8_t rs2;
    uint8_t taken;
    uint8_t pad[7];
};
static_assert(sizeof(DiskRecord) == recordBytes, "record layout");

DiskRecord
pack(const TraceRecord &r)
{
    DiskRecord d{};
    d.seq = r.seq;
    d.pc = r.pc;
    d.nextPc = r.nextPc;
    d.value = r.value;
    d.effAddr = r.effAddr;
    d.imm = r.inst.imm;
    d.target = r.inst.target;
    d.op = static_cast<uint8_t>(r.inst.op);
    d.rd = r.inst.rd;
    d.rs1 = r.inst.rs1;
    d.rs2 = r.inst.rs2;
    d.taken = r.taken ? 1 : 0;
    return d;
}

TraceRecord
unpack(const DiskRecord &d)
{
    TraceRecord r;
    r.seq = d.seq;
    r.pc = d.pc;
    r.nextPc = d.nextPc;
    r.value = d.value;
    r.effAddr = d.effAddr;
    r.inst.imm = d.imm;
    r.inst.target = d.target;
    r.inst.op = static_cast<isa::Opcode>(d.op);
    r.inst.rd = d.rd;
    r.inst.rs1 = d.rs1;
    r.inst.rs2 = d.rs2;
    r.taken = d.taken != 0;
    return r;
}

} // anonymous namespace

// ----------------------------------------------------------- TraceWriter

TraceWriter::TraceWriter(const std::string &path)
{
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        fatal("cannot create trace file '%s'", path.c_str());
    FileHeader h{traceMagic, traceVersion, 0};
    if (std::fwrite(&h, sizeof(h), 1, file) != 1)
        fatal("cannot write trace header to '%s'", path.c_str());
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const TraceRecord &r)
{
    GDIFF_ASSERT(file != nullptr, "append to a closed TraceWriter");
    DiskRecord d = pack(r);
    if (std::fwrite(&d, sizeof(d), 1, file) != 1)
        fatal("short write while appending a trace record");
    ++count;
}

void
TraceWriter::close()
{
    if (!file)
        return;
    // Finalise the record count in the header.
    FileHeader h{traceMagic, traceVersion, count};
    if (std::fseek(file, 0, SEEK_SET) != 0 ||
        std::fwrite(&h, sizeof(h), 1, file) != 1) {
        fatal("cannot finalise trace header");
    }
    std::fclose(file);
    file = nullptr;
}

// ------------------------------------------------------ TraceFileSource

TraceFileSource::TraceFileSource(const std::string &path)
{
    file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("cannot open trace file '%s'", path.c_str());
    FileHeader h{};
    if (std::fread(&h, sizeof(h), 1, file) != 1)
        fatal("trace file '%s' is truncated", path.c_str());
    if (h.magic != traceMagic)
        fatal("'%s' is not a gdiff trace (bad magic)", path.c_str());
    if (h.version != traceVersion) {
        fatal("trace '%s' has version %u, expected %u", path.c_str(),
              h.version, traceVersion);
    }
    total = h.count;
}

TraceFileSource::~TraceFileSource()
{
    if (file)
        std::fclose(file);
}

bool
TraceFileSource::next(TraceRecord &out)
{
    if (consumed >= total)
        return false;
    DiskRecord d{};
    if (std::fread(&d, sizeof(d), 1, file) != 1)
        fatal("trace truncated after %llu of %llu records",
              static_cast<unsigned long long>(consumed),
              static_cast<unsigned long long>(total));
    out = unpack(d);
    ++consumed;
    return true;
}

void
TraceFileSource::rewind()
{
    GDIFF_ASSERT(file != nullptr, "rewind of a closed trace");
    if (std::fseek(file, sizeof(FileHeader), SEEK_SET) != 0)
        fatal("cannot rewind trace file");
    consumed = 0;
}

} // namespace workload
} // namespace gdiff
