#include "workload/trace_io.hh"

#include <array>
#include <cstring>

#include "util/logging.hh"
#include "util/simd.hh"
#include "util/varint.hh"

namespace gdiff {
namespace workload {

namespace {

constexpr uint32_t traceMagic = 0x52544447;  // "GDTR" little-endian
constexpr uint32_t footerMagic = 0x33544447; // "GDT3" little-endian

struct FileHeader
{
    uint32_t magic;
    uint32_t version;
    uint64_t count;
};
static_assert(sizeof(FileHeader) == 16, "header layout");

/** v3 per-block header: record count, payload length, payload digest. */
struct BlockHeaderV3
{
    uint32_t n;
    uint32_t payloadBytes;
    uint64_t digest;
};
static_assert(sizeof(BlockHeaderV3) == 16, "block header layout");

/** v3 trailer: whole-file integrity for persistent cache entries. */
struct FooterV3
{
    uint32_t magic;
    uint32_t reserved;
    uint64_t digest; ///< FNV-1a over every block byte
};
static_assert(sizeof(FooterV3) == 16, "footer layout");

/// per-column codec tags (v3)
enum ColumnCodec : uint8_t
{
    codecRaw = 0,         ///< native-width little-endian elements
    codecDeltaVarint = 1, ///< zigzag-varint consecutive deltas
    codecDeltaRle = 2,    ///< run-length coded deltas (stride spans)
    codecByteRle = 3,     ///< run-length coded bytes (u8 columns)
    /// phase-transposed deltaRle: varint period L, then deltaRle of
    /// the column split into L interleaved subsequences. A loop of L
    /// instructions interleaves L per-PC streams in the global
    /// column; transposing recovers each stream's *local* stride, so
    /// a constant-stride loop collapses to one run per phase — the
    /// paper's global-vs-local stride observation, used as a codec.
    codecDeltaRleT = 4,
    /// phase-transposed byteRle (periodic op/reg/flag columns)
    codecByteRleT = 5,
    /// phase-transposed deltaVarint: for columns where some phases
    /// are noisy (no runs to collapse), one varint per element beats
    /// deltaRle's (delta, run) pair — smaller and faster to decode
    codecDeltaVarintT = 6,
};

/// longest phase period the encoder searches for — long enough for
/// multi-iteration cycles (a loop whose phases take different paths
/// repeats only once per full cycle of iterations)
constexpr uint32_t maxPeriod = 48;

/// elements scored per candidate period (a prefix is plenty to find
/// the loop length, and bounds the O(n * maxPeriod) search)
constexpr uint32_t periodScanWindow = 2048;

/// columns per block, in on-disk order: op, rd, rs1, rs2, flags,
/// target, imm, seq, pc, nextPc, value, effAddr
constexpr unsigned numColumns = 12;

/// bytes one record occupies across the raw v2 columns
constexpr size_t v2RecordBytes = 5 * 1 + 4 + 6 * 8;

/// upper bound on a v3 block payload: the encoder never emits a
/// column larger than its raw form, plus 5 bytes of tag+length
/// framing per column — anything bigger is corrupt by construction
constexpr size_t maxV3PayloadBytes =
    v2RecordBytes * TraceChunk::capacity + numColumns * 5;

/**
 * One on-disk block's instruction fields in scalar columns, so the
 * layout is independent of isa::Instruction's padding. Doubles as
 * gather (write) and scatter (read) scratch.
 */
struct BlockColumns
{
    std::array<uint8_t, TraceChunk::capacity> op, rd, rs1, rs2;
    std::array<uint32_t, TraceChunk::capacity> target;
    std::array<int64_t, TraceChunk::capacity> imm;
};

/** Gather @p chunk's instruction fields into scalar columns. */
void
gatherInstColumns(const TraceChunk &chunk, BlockColumns &cols)
{
    for (uint32_t i = 0; i < chunk.size; ++i) {
        const isa::Instruction &in = chunk.inst[i];
        cols.op[i] = static_cast<uint8_t>(in.op);
        cols.rd[i] = in.rd;
        cols.rs1[i] = in.rs1;
        cols.rs2[i] = in.rs2;
        cols.target[i] = in.target;
        cols.imm[i] = in.imm;
    }
}

/** Scatter decoded scalar columns back into @p chunk's instructions. */
void
scatterInstColumns(TraceChunk &chunk, const BlockColumns &cols,
                   uint32_t n)
{
    for (uint32_t i = 0; i < n; ++i) {
        isa::Instruction &in = chunk.inst[i];
        in.op = static_cast<isa::Opcode>(cols.op[i]);
        in.rd = cols.rd[i];
        in.rs1 = cols.rs1[i];
        in.rs2 = cols.rs2[i];
        in.target = cols.target[i];
        in.imm = cols.imm[i];
    }
}

void
appendLE32(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t
readLE32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
           static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
}

/** Reorder @p v into @p t as L interleaved phase subsequences. */
template <typename T>
void
transposePhases(const T *v, uint32_t n, uint32_t L, T *t)
{
    size_t idx = 0;
    for (uint32_t p = 0; p < L; ++p)
        for (uint32_t i = p; i < n; i += L)
            t[idx++] = v[i];
}

/** Inverse of transposePhases(). */
template <typename T>
void
untransposePhases(const T *t, uint32_t n, uint32_t L, T *v)
{
    size_t idx = 0;
    for (uint32_t p = 0; p < L; ++p)
        for (uint32_t i = p; i < n; i += L)
            v[i] = t[idx++];
}

/**
 * @return the period L (2..maxPeriod) at which the column's lag-L
 * deltas are most nearly constant per phase, or 1 when no period
 * shows a useful signal. Even a partial signal (a loop where only
 * some phases stride regularly) is worth transposing — the final
 * choice is by encoded size, so a bad guess costs nothing on disk.
 */
uint32_t
bestWidePeriod(const uint64_t *v, uint32_t n)
{
    if (n < 4 * 2)
        return 1;
    const uint32_t window = n < periodScanWindow ? n : periodScanWindow;
    uint32_t bestL = 1;
    uint64_t bestScore = 0;
    for (uint32_t L = 2; L <= maxPeriod && 2 * L < window; ++L) {
        // Lane kernel for the lag-L second-difference count: this
        // scan runs once per candidate period for every encoded
        // block and every profiled sampling window, and is the
        // dominant cost of both callers.
        uint64_t score = simd::countSecondDiffZero(v, window, L);
        // Normalize so long and short periods compete fairly within
        // the shared window.
        score = score * window / (window - 2 * L);
        if (score > bestScore && score * 8 >= window) {
            bestScore = score;
            bestL = L;
        }
    }
    return bestL;
}

/** Same idea for u8 columns: lag-L equality instead of lag-L deltas. */
uint32_t
bestBytePeriod(const uint8_t *v, uint32_t n)
{
    if (n < 4 * 2)
        return 1;
    const uint32_t window = n < periodScanWindow ? n : periodScanWindow;
    uint32_t bestL = 1;
    uint64_t bestScore = 0;
    for (uint32_t L = 2; L <= maxPeriod && L < window; ++L) {
        uint64_t score = 0;
        for (uint32_t i = L; i < window; ++i)
            score += v[i] == v[i - L];
        score = score * window / (window - L);
        if (score > bestScore && score * 8 >= window) {
            bestScore = score;
            bestL = L;
        }
    }
    return bestL;
}

TraceIoResult
ioError(TraceIoStatus status, std::string message)
{
    return TraceIoResult{status, std::move(message)};
}

} // anonymous namespace

uint32_t
detectStridePeriod(const uint64_t *v, uint32_t n)
{
    return bestWidePeriod(v, n);
}

namespace detail {

/** Heap scratch for block decoding (~250 KiB, reused per reader). */
struct TraceDecodeScratch
{
    BlockColumns cols;
    /// wide-lane staging for delta-decoded 64-bit columns
    std::array<uint64_t, TraceChunk::capacity> lanes;
    /// staging for phase-transposed codecs (decoded before the
    /// un-transpose pass)
    std::array<uint64_t, TraceChunk::capacity> lanesT;
    std::array<uint8_t, TraceChunk::capacity> bytesT;
};

} // namespace detail

const char *
traceIoStatusName(TraceIoStatus s)
{
    switch (s) {
    case TraceIoStatus::Ok: return "ok";
    case TraceIoStatus::End: return "end";
    case TraceIoStatus::IoError: return "io_error";
    case TraceIoStatus::Truncated: return "truncated";
    case TraceIoStatus::BadMagic: return "bad_magic";
    case TraceIoStatus::BadVersion: return "bad_version";
    case TraceIoStatus::Corrupt: return "corrupt";
    case TraceIoStatus::DigestMismatch: return "digest_mismatch";
    }
    return "unknown";
}

// -------------------------------------------------- shared decoding

namespace {

/**
 * Decode one v3 column payload into @p dest64 lanes (wide columns)
 * or @p dest8 bytes (u8 columns). Exactly one of dest64/dest8 is
 * non-null; @p elemBytes is the raw element width (1, 4, or 8).
 * @return false on any structural violation.
 */
/** Parse a transposed-codec prefix: the phase period L. */
bool
getPeriod(const uint8_t *&data, uint32_t &len, uint32_t n,
          uint32_t *period)
{
    uint64_t L = 0;
    size_t used = codec::getVarint(data, data + len, &L);
    if (used == 0 || L < 2 || L > n)
        return false;
    data += used;
    len -= static_cast<uint32_t>(used);
    *period = static_cast<uint32_t>(L);
    return true;
}

bool
decodeColumn(uint8_t tag, const uint8_t *data, uint32_t len,
             uint32_t n, size_t elemBytes, uint64_t *dest64,
             uint8_t *dest8, detail::TraceDecodeScratch &s)
{
    if (dest8) {
        switch (tag) {
        case codecRaw:
            if (len != n)
                return false;
            std::memcpy(dest8, data, n);
            return true;
        case codecByteRle:
            return codec::decodeByteRle(data, len, dest8, n);
        case codecByteRleT: {
            uint32_t L = 0;
            if (!getPeriod(data, len, n, &L))
                return false;
            if (!codec::decodeByteRle(data, len, s.bytesT.data(), n))
                return false;
            untransposePhases(s.bytesT.data(), n, L, dest8);
            return true;
        }
        default:
            return false; // delta codecs never apply to u8 columns
        }
    }
    switch (tag) {
    case codecRaw: {
        if (len != elemBytes * n)
            return false;
        if (elemBytes == 8) {
            std::memcpy(dest64, data, len);
        } else { // widen raw u32 elements into the lanes
            for (uint32_t i = 0; i < n; ++i)
                dest64[i] = readLE32(data + size_t(i) * 4);
        }
        return true;
    }
    case codecDeltaVarint:
        return codec::decodeDeltaVarint(data, len, dest64, n);
    case codecDeltaRle:
        return codec::decodeDeltaRle(data, len, dest64, n);
    case codecDeltaRleT:
    case codecDeltaVarintT: {
        uint32_t L = 0;
        if (!getPeriod(data, len, n, &L))
            return false;
        bool ok = tag == codecDeltaRleT
                      ? codec::decodeDeltaRle(data, len,
                                              s.lanesT.data(), n)
                      : codec::decodeDeltaVarint(data, len,
                                                 s.lanesT.data(), n);
        if (!ok)
            return false;
        untransposePhases(s.lanesT.data(), n, L, dest64);
        return true;
    }
    default:
        return false;
    }
}

/**
 * Decode a complete v3 column section (@p bytes bytes at @p payload)
 * into @p chunk. On failure @p why names the offending column.
 */
bool
decodeColumnsV3(const uint8_t *payload, size_t bytes, uint32_t n,
                TraceChunk &chunk, detail::TraceDecodeScratch &s,
                std::string *why)
{
    const uint8_t *p = payload;
    const uint8_t *end = payload + bytes;

    struct ColumnDest
    {
        const char *name;
        size_t elemBytes;
        uint64_t *dest64;
        uint8_t *dest8;
    };
    // On-disk column order. Wide signed/narrow columns stage through
    // scratch lanes; unsigned 64-bit columns decode in place.
    const ColumnDest columns[numColumns] = {
        {"op", 1, nullptr, s.cols.op.data()},
        {"rd", 1, nullptr, s.cols.rd.data()},
        {"rs1", 1, nullptr, s.cols.rs1.data()},
        {"rs2", 1, nullptr, s.cols.rs2.data()},
        {"flags", 1, nullptr, chunk.flags.data()},
        {"target", 4, s.lanes.data(), nullptr},
        {"imm", 8, s.lanes.data(), nullptr},
        {"seq", 8, chunk.seq.data(), nullptr},
        {"pc", 8, chunk.pc.data(), nullptr},
        {"nextPc", 8, chunk.nextPc.data(), nullptr},
        {"value", 8, s.lanes.data(), nullptr},
        {"effAddr", 8, chunk.effAddr.data(), nullptr},
    };

    for (unsigned c = 0; c < numColumns; ++c) {
        const ColumnDest &col = columns[c];
        if (end - p < 5) {
            *why = "column directory truncated";
            return false;
        }
        uint8_t tag = p[0];
        uint32_t len = readLE32(p + 1);
        p += 5;
        if (static_cast<size_t>(end - p) < len) {
            *why = std::string("column '") + col.name +
                   "' overruns the block payload";
            return false;
        }
        if (!decodeColumn(tag, p, len, n, col.elemBytes, col.dest64,
                          col.dest8, s)) {
            *why = std::string("column '") + col.name +
                   "' payload is malformed";
            return false;
        }
        p += len;

        // Move staged lanes into their typed destinations.
        if (col.dest64 == s.lanes.data()) {
            if (col.name[0] == 't') { // target
                for (uint32_t i = 0; i < n; ++i)
                    s.cols.target[i] =
                        static_cast<uint32_t>(s.lanes[i]);
            } else if (col.name[0] == 'i') { // imm
                std::memcpy(s.cols.imm.data(), s.lanes.data(),
                            size_t(n) * 8);
            } else { // value
                std::memcpy(chunk.value.data(), s.lanes.data(),
                            size_t(n) * 8);
            }
        }
    }
    if (p != end) {
        *why = "trailing bytes after the last column";
        return false;
    }
    scatterInstColumns(chunk, s.cols, n);
    chunk.size = n;
    return true;
}

/** Decode a raw v2 column section (exactly v2RecordBytes*n bytes). */
void
decodeColumnsV2(const uint8_t *p, uint32_t n, TraceChunk &chunk,
                detail::TraceDecodeScratch &s)
{
    auto take = [&](void *dest, size_t elemBytes) {
        std::memcpy(dest, p, elemBytes * n);
        p += elemBytes * n;
    };
    take(s.cols.op.data(), 1);
    take(s.cols.rd.data(), 1);
    take(s.cols.rs1.data(), 1);
    take(s.cols.rs2.data(), 1);
    take(chunk.flags.data(), 1);
    take(s.cols.target.data(), 4);
    take(s.cols.imm.data(), 8);
    take(chunk.seq.data(), 8);
    take(chunk.pc.data(), 8);
    take(chunk.nextPc.data(), 8);
    take(chunk.value.data(), 8);
    take(chunk.effAddr.data(), 8);
    scatterInstColumns(chunk, s.cols, n);
    chunk.size = n;
}

/** Validate a file header; fills @p version/@p count on success. */
TraceIoResult
checkHeader(const FileHeader &h, const std::string &name,
            uint32_t maxVersion, uint32_t *version, uint64_t *count)
{
    if (h.magic != traceMagic) {
        return ioError(TraceIoStatus::BadMagic,
                       formatString("'%s' is not a gdiff trace "
                                    "(bad magic)",
                                    name.c_str()));
    }
    if (h.version < traceVersionMin || h.version > maxVersion) {
        return ioError(
            TraceIoStatus::BadVersion,
            formatString("trace '%s' has format version %u; this "
                         "reader supports versions %u..%u",
                         name.c_str(), h.version, traceVersionMin,
                         maxVersion));
    }
    *version = h.version;
    *count = h.count;
    return TraceIoResult{};
}

} // anonymous namespace

// ----------------------------------------------------- TraceWriter

TraceWriter::TraceWriter(const std::string &p, uint32_t version)
    : path(p), ver(version), fileDigest(codec::fnvOffsetBasis)
{
    GDIFF_ASSERT(ver == traceVersionV2 || ver == traceVersionV3,
                 "unsupported trace write version %u", ver);
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        fatal("cannot create trace file '%s'", path.c_str());
    FileHeader h{traceMagic, ver, 0};
    if (std::fwrite(&h, sizeof(h), 1, file) != 1)
        fatal("cannot write trace header to '%s'", path.c_str());
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const TraceRecord &r)
{
    GDIFF_ASSERT(file != nullptr, "append to a closed TraceWriter");
    if (!pending)
        pending = std::make_unique<TraceChunk>();
    pending->push(r);
    ++count;
    if (pending->full())
        flushPending();
}

void
TraceWriter::append(const TraceChunk &chunk)
{
    GDIFF_ASSERT(file != nullptr, "append to a closed TraceWriter");
    if (chunk.empty())
        return;
    // Flush the partial per-record block first so records stay in
    // stream order whatever mix of append() overloads fed the file.
    flushPending();
    writeBlock(chunk);
    count += chunk.size;
}

void
TraceWriter::flushPending()
{
    if (!pending || pending->empty())
        return;
    writeBlock(*pending); // records were counted as they arrived
    pending->clear();
}

void
TraceWriter::writeBlock(const TraceChunk &chunk)
{
    const uint32_t n = chunk.size;
    GDIFF_ASSERT(n > 0 && n <= TraceChunk::capacity,
                 "trace block size %u out of range", n);

    auto writeRaw = [&](const void *data, size_t bytes) {
        if (bytes > 0 &&
            std::fwrite(data, 1, bytes, file) != bytes) {
            fatal("short write while appending a trace block");
        }
    };

    auto cols = std::make_unique<BlockColumns>();
    gatherInstColumns(chunk, *cols);

    if (ver == traceVersionV2) {
        writeRaw(&n, sizeof(n));
        writeRaw(cols->op.data(), n);
        writeRaw(cols->rd.data(), n);
        writeRaw(cols->rs1.data(), n);
        writeRaw(cols->rs2.data(), n);
        writeRaw(chunk.flags.data(), n);
        writeRaw(cols->target.data(), size_t(n) * 4);
        writeRaw(cols->imm.data(), size_t(n) * 8);
        writeRaw(chunk.seq.data(), size_t(n) * 8);
        writeRaw(chunk.pc.data(), size_t(n) * 8);
        writeRaw(chunk.nextPc.data(), size_t(n) * 8);
        writeRaw(chunk.value.data(), size_t(n) * 8);
        writeRaw(chunk.effAddr.data(), size_t(n) * 8);
        return;
    }

    // v3: encode each column, keeping the smallest of the candidate
    // encodings, raw included — incompressible columns cost only the
    // 5-byte tag+length framing over v2.
    payload.clear();
    auto putTagged = [&](uint8_t tag, const uint8_t *data,
                         size_t bytes) {
        payload.push_back(tag);
        appendLE32(payload, static_cast<uint32_t>(bytes));
        payload.insert(payload.end(), data, data + bytes);
    };
    auto lanes = std::make_unique<
        std::array<uint64_t, TraceChunk::capacity>>();
    auto transposed = std::make_unique<
        std::array<uint64_t, TraceChunk::capacity>>();
    auto bytesT = std::make_unique<
        std::array<uint8_t, TraceChunk::capacity>>();

    auto putU8 = [&](const uint8_t *col) {
        candA.clear();
        codec::encodeByteRle(col, n, candA);
        candC.clear();
        uint32_t L = bestBytePeriod(col, n);
        if (L > 1) { // periodic u8 stream: RLE each phase
            codec::putVarint(candC, L);
            transposePhases(col, n, L, bytesT->data());
            codec::encodeByteRle(bytesT->data(), n, candC);
        }
        size_t best = std::min<size_t>(n, candA.size());
        if (!candC.empty())
            best = std::min(best, candC.size());
        if (!candC.empty() && candC.size() == best)
            putTagged(codecByteRleT, candC.data(), candC.size());
        else if (candA.size() == best)
            putTagged(codecByteRle, candA.data(), candA.size());
        else
            putTagged(codecRaw, col, n);
    };
    auto putWide = [&](const uint64_t *v, const void *raw,
                       size_t elemBytes) {
        candA.clear();
        codec::encodeDeltaVarint(v, n, candA);
        candB.clear();
        codec::encodeDeltaRle(v, n, candB);
        candC.clear();
        candD.clear();
        uint32_t L = bestWidePeriod(v, n);
        if (L > 1) { // interleaved strides: encode each phase
            transposePhases(v, n, L, transposed->data());
            codec::putVarint(candC, L);
            codec::encodeDeltaRle(transposed->data(), n, candC);
            codec::putVarint(candD, L);
            codec::encodeDeltaVarint(transposed->data(), n, candD);
        }
        size_t rawBytes = elemBytes * n;
        size_t best = std::min(rawBytes,
                               std::min(candA.size(), candB.size()));
        if (!candC.empty())
            best = std::min(best, std::min(candC.size(),
                                           candD.size()));
        if (!candC.empty() && candC.size() == best)
            putTagged(codecDeltaRleT, candC.data(), candC.size());
        else if (!candD.empty() && candD.size() == best)
            putTagged(codecDeltaVarintT, candD.data(), candD.size());
        else if (candB.size() == best)
            putTagged(codecDeltaRle, candB.data(), candB.size());
        else if (candA.size() == best)
            putTagged(codecDeltaVarint, candA.data(), candA.size());
        else
            putTagged(codecRaw, static_cast<const uint8_t *>(raw),
                      rawBytes);
    };

    auto widen32 = [&](const uint32_t *src) {
        for (uint32_t i = 0; i < n; ++i)
            (*lanes)[i] = src[i];
        return lanes->data();
    };

    putU8(cols->op.data());
    putU8(cols->rd.data());
    putU8(cols->rs1.data());
    putU8(cols->rs2.data());
    putU8(chunk.flags.data());
    putWide(widen32(cols->target.data()), cols->target.data(), 4);
    putWide(reinterpret_cast<const uint64_t *>(cols->imm.data()),
            cols->imm.data(), 8);
    putWide(chunk.seq.data(), chunk.seq.data(), 8);
    putWide(chunk.pc.data(), chunk.pc.data(), 8);
    putWide(chunk.nextPc.data(), chunk.nextPc.data(), 8);
    putWide(reinterpret_cast<const uint64_t *>(chunk.value.data()),
            chunk.value.data(), 8);
    putWide(chunk.effAddr.data(), chunk.effAddr.data(), 8);

    BlockHeaderV3 bh{n, static_cast<uint32_t>(payload.size()),
                     codec::fnv1a(payload.data(), payload.size())};
    fileDigest = codec::fnv1a(&bh, sizeof(bh), fileDigest);
    fileDigest =
        codec::fnv1a(payload.data(), payload.size(), fileDigest);
    writeRaw(&bh, sizeof(bh));
    writeRaw(payload.data(), payload.size());
}

void
TraceWriter::close()
{
    if (!file)
        return;
    flushPending();
    if (ver == traceVersionV3) {
        FooterV3 foot{footerMagic, 0, fileDigest};
        if (std::fwrite(&foot, sizeof(foot), 1, file) != 1)
            fatal("cannot write trace footer to '%s'", path.c_str());
    }
    // Finalise the record count in the header.
    FileHeader h{traceMagic, ver, count};
    if (std::fseek(file, 0, SEEK_SET) != 0 ||
        std::fwrite(&h, sizeof(h), 1, file) != 1) {
        fatal("cannot finalise trace header");
    }
    std::fclose(file);
    file = nullptr;
}

// ------------------------------------------------- TraceFileReader

TraceFileReader::TraceFileReader()
    : scratch(std::make_unique<detail::TraceDecodeScratch>())
{}

TraceFileReader::~TraceFileReader()
{
    if (file)
        std::fclose(file);
}

TraceIoResult
TraceFileReader::open(const std::string &p, uint32_t maxVersion)
{
    if (file) {
        std::fclose(file);
        file = nullptr;
    }
    path = p;
    file = std::fopen(path.c_str(), "rb");
    if (!file) {
        return ioError(TraceIoStatus::IoError,
                       formatString("cannot open trace file '%s'",
                                    path.c_str()));
    }
    FileHeader h{};
    if (std::fread(&h, sizeof(h), 1, file) != 1) {
        return ioError(TraceIoStatus::Truncated,
                       formatString("trace file '%s' is truncated",
                                    path.c_str()));
    }
    TraceIoResult r = checkHeader(h, path, maxVersion, &ver, &total);
    if (r.failed())
        return r;
    consumed = 0;
    runningDigest = codec::fnvOffsetBasis;
    footerVerified = false;
    return TraceIoResult{};
}

TraceIoResult
TraceFileReader::read(TraceChunk &chunk)
{
    chunk.clear();
    if (!file) {
        return ioError(TraceIoStatus::IoError,
                       "read from an unopened trace reader");
    }

    auto truncated = [&]() {
        return ioError(
            TraceIoStatus::Truncated,
            formatString("trace '%s' truncated after %llu of %llu "
                         "records",
                         path.c_str(),
                         static_cast<unsigned long long>(consumed),
                         static_cast<unsigned long long>(total)));
    };

    if (consumed >= total) {
        if (ver == traceVersionV3 && !footerVerified) {
            FooterV3 foot{};
            if (std::fread(&foot, sizeof(foot), 1, file) != 1) {
                return ioError(
                    TraceIoStatus::Truncated,
                    formatString("trace '%s' is truncated (missing "
                                 "footer)",
                                 path.c_str()));
            }
            if (foot.magic != footerMagic) {
                return ioError(
                    TraceIoStatus::Corrupt,
                    formatString("trace '%s' has a corrupt footer",
                                 path.c_str()));
            }
            if (foot.digest != runningDigest) {
                return ioError(
                    TraceIoStatus::DigestMismatch,
                    formatString("trace '%s' file digest mismatch "
                                 "(corrupt or tampered stream)",
                                 path.c_str()));
            }
            footerVerified = true;
        }
        return ioError(TraceIoStatus::End, "");
    }

    if (ver == traceVersionV2) {
        uint32_t n = 0;
        if (std::fread(&n, sizeof(n), 1, file) != 1)
            return truncated();
        if (n == 0 || n > TraceChunk::capacity ||
            n > total - consumed) {
            return ioError(
                TraceIoStatus::Corrupt,
                formatString("trace '%s' has a corrupt block of %u "
                             "records",
                             path.c_str(), n));
        }
        blockBuf.resize(v2RecordBytes * n);
        if (std::fread(blockBuf.data(), 1, blockBuf.size(), file) !=
            blockBuf.size()) {
            return truncated();
        }
        decodeColumnsV2(blockBuf.data(), n, chunk, *scratch);
        consumed += n;
        return TraceIoResult{};
    }

    BlockHeaderV3 bh{};
    if (std::fread(&bh, sizeof(bh), 1, file) != 1)
        return truncated();
    if (bh.n == 0 || bh.n > TraceChunk::capacity ||
        bh.n > total - consumed || bh.payloadBytes == 0 ||
        bh.payloadBytes > maxV3PayloadBytes) {
        return ioError(
            TraceIoStatus::Corrupt,
            formatString("trace '%s' has a corrupt block header "
                         "(%u records, %u payload bytes)",
                         path.c_str(), bh.n, bh.payloadBytes));
    }
    blockBuf.resize(bh.payloadBytes);
    if (std::fread(blockBuf.data(), 1, blockBuf.size(), file) !=
        blockBuf.size()) {
        return truncated();
    }
    if (codec::fnv1a(blockBuf.data(), blockBuf.size()) != bh.digest) {
        return ioError(
            TraceIoStatus::DigestMismatch,
            formatString("trace '%s' block digest mismatch after "
                         "%llu records",
                         path.c_str(),
                         static_cast<unsigned long long>(consumed)));
    }
    std::string why;
    if (!decodeColumnsV3(blockBuf.data(), blockBuf.size(), bh.n,
                         chunk, *scratch, &why)) {
        return ioError(
            TraceIoStatus::Corrupt,
            formatString("trace '%s' has a corrupt block: %s",
                         path.c_str(), why.c_str()));
    }
    runningDigest = codec::fnv1a(&bh, sizeof(bh), runningDigest);
    runningDigest =
        codec::fnv1a(blockBuf.data(), blockBuf.size(), runningDigest);
    consumed += bh.n;
    return TraceIoResult{};
}

TraceIoResult
TraceFileReader::rewind()
{
    if (!file) {
        return ioError(TraceIoStatus::IoError,
                       "rewind of an unopened trace reader");
    }
    if (std::fseek(file, sizeof(FileHeader), SEEK_SET) != 0) {
        return ioError(TraceIoStatus::IoError,
                       formatString("cannot rewind trace file '%s'",
                                    path.c_str()));
    }
    consumed = 0;
    runningDigest = codec::fnvOffsetBasis;
    footerVerified = false;
    return TraceIoResult{};
}

// ----------------------------------------------- TraceBufferReader

TraceBufferReader::TraceBufferReader()
    : scratch(std::make_unique<detail::TraceDecodeScratch>())
{}

TraceBufferReader::~TraceBufferReader() = default;

TraceIoResult
TraceBufferReader::open(const uint8_t *data, size_t size,
                        uint32_t maxVersion)
{
    cursor = nullptr;
    end = nullptr;
    if (size < sizeof(FileHeader)) {
        return ioError(TraceIoStatus::Truncated,
                       "trace image is smaller than its header");
    }
    FileHeader h{};
    std::memcpy(&h, data, sizeof(h));
    TraceIoResult r =
        checkHeader(h, "<buffer>", maxVersion, &ver, &total);
    if (r.failed())
        return r;
    cursor = data + sizeof(FileHeader);
    end = data + size;
    consumed = 0;
    runningDigest = codec::fnvOffsetBasis;
    return TraceIoResult{};
}

TraceIoResult
TraceBufferReader::read(TraceChunk &chunk)
{
    chunk.clear();
    if (!cursor) {
        return ioError(TraceIoStatus::IoError,
                       "read from an unopened trace image");
    }

    auto truncated = [&]() {
        return ioError(
            TraceIoStatus::Truncated,
            formatString("trace image truncated after %llu of %llu "
                         "records",
                         static_cast<unsigned long long>(consumed),
                         static_cast<unsigned long long>(total)));
    };

    if (consumed >= total) {
        if (ver == traceVersionV3) {
            FooterV3 foot{};
            if (static_cast<size_t>(end - cursor) < sizeof(foot))
                return truncated();
            std::memcpy(&foot, cursor, sizeof(foot));
            if (foot.magic != footerMagic) {
                return ioError(TraceIoStatus::Corrupt,
                               "trace image has a corrupt footer");
            }
            if (foot.digest != runningDigest) {
                return ioError(TraceIoStatus::DigestMismatch,
                               "trace image file digest mismatch "
                               "(corrupt or tampered stream)");
            }
        }
        return ioError(TraceIoStatus::End, "");
    }

    if (ver == traceVersionV2) {
        if (static_cast<size_t>(end - cursor) < 4)
            return truncated();
        uint32_t n = readLE32(cursor);
        if (n == 0 || n > TraceChunk::capacity ||
            n > total - consumed) {
            return ioError(
                TraceIoStatus::Corrupt,
                formatString("trace image has a corrupt block of %u "
                             "records",
                             n));
        }
        if (static_cast<size_t>(end - cursor - 4) <
            v2RecordBytes * n) {
            return truncated();
        }
        decodeColumnsV2(cursor + 4, n, chunk, *scratch);
        cursor += 4 + v2RecordBytes * n;
        consumed += n;
        return TraceIoResult{};
    }

    BlockHeaderV3 bh{};
    if (static_cast<size_t>(end - cursor) < sizeof(bh))
        return truncated();
    std::memcpy(&bh, cursor, sizeof(bh));
    if (bh.n == 0 || bh.n > TraceChunk::capacity ||
        bh.n > total - consumed || bh.payloadBytes == 0 ||
        bh.payloadBytes > maxV3PayloadBytes) {
        return ioError(
            TraceIoStatus::Corrupt,
            formatString("trace image has a corrupt block header "
                         "(%u records, %u payload bytes)",
                         bh.n, bh.payloadBytes));
    }
    if (static_cast<size_t>(end - cursor - sizeof(bh)) <
        bh.payloadBytes) {
        return truncated();
    }
    const uint8_t *payload = cursor + sizeof(bh);
    if (codec::fnv1a(payload, bh.payloadBytes) != bh.digest) {
        return ioError(
            TraceIoStatus::DigestMismatch,
            formatString("trace image block digest mismatch after "
                         "%llu records",
                         static_cast<unsigned long long>(consumed)));
    }
    std::string why;
    if (!decodeColumnsV3(payload, bh.payloadBytes, bh.n, chunk,
                         *scratch, &why)) {
        return ioError(
            TraceIoStatus::Corrupt,
            formatString("trace image has a corrupt block: %s",
                         why.c_str()));
    }
    runningDigest = codec::fnv1a(&bh, sizeof(bh), runningDigest);
    runningDigest =
        codec::fnv1a(payload, bh.payloadBytes, runningDigest);
    cursor += sizeof(bh) + bh.payloadBytes;
    consumed += bh.n;
    return TraceIoResult{};
}

// ------------------------------------------------ TraceFileSource

TraceFileSource::TraceFileSource(const std::string &p) : path(p)
{
    TraceIoResult r = reader.open(path);
    if (r.failed())
        fatal("%s", r.message.c_str());
}

TraceFileSource::~TraceFileSource() = default;

bool
TraceFileSource::fill(TraceChunk &chunk)
{
    TraceIoResult r = reader.read(chunk);
    if (r.ok())
        return true;
    if (r.end())
        return false;
    fatal("%s", r.message.c_str());
}

void
TraceFileSource::rewind()
{
    TraceIoResult r = reader.rewind();
    if (r.failed())
        fatal("%s", r.message.c_str());
    resetBuffer();
}

} // namespace workload
} // namespace gdiff
