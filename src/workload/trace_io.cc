#include "workload/trace_io.hh"

#include <array>

#include "util/logging.hh"

namespace gdiff {
namespace workload {

namespace {

constexpr uint32_t traceMagic = 0x52544447; // "GDTR" little-endian
constexpr uint32_t traceVersion = 2;

struct FileHeader
{
    uint32_t magic;
    uint32_t version;
    uint64_t count;
};
static_assert(sizeof(FileHeader) == 16, "header layout");

/**
 * One on-disk block: a u32 record count n, then these columns, each
 * n elements long. Instruction fields are split into scalar columns
 * so the layout is independent of isa::Instruction's padding.
 */
struct BlockColumns
{
    std::array<uint8_t, TraceChunk::capacity> op, rd, rs1, rs2, flags;
    std::array<uint32_t, TraceChunk::capacity> target;
    std::array<int64_t, TraceChunk::capacity> imm;
};

void
writeColumn(std::FILE *f, const void *data, size_t elemBytes,
            uint32_t n)
{
    if (std::fwrite(data, elemBytes, n, f) != n)
        fatal("short write while appending a trace block");
}

void
writeBlock(std::FILE *f, const TraceChunk &chunk)
{
    const uint32_t n = chunk.size;
    GDIFF_ASSERT(n > 0 && n <= TraceChunk::capacity,
                 "trace block size %u out of range", n);
    if (std::fwrite(&n, sizeof(n), 1, f) != 1)
        fatal("short write while appending a trace block");

    BlockColumns cols;
    for (uint32_t i = 0; i < n; ++i) {
        const isa::Instruction &in = chunk.inst[i];
        cols.op[i] = static_cast<uint8_t>(in.op);
        cols.rd[i] = in.rd;
        cols.rs1[i] = in.rs1;
        cols.rs2[i] = in.rs2;
        cols.flags[i] = chunk.flags[i];
        cols.target[i] = in.target;
        cols.imm[i] = in.imm;
    }
    writeColumn(f, cols.op.data(), 1, n);
    writeColumn(f, cols.rd.data(), 1, n);
    writeColumn(f, cols.rs1.data(), 1, n);
    writeColumn(f, cols.rs2.data(), 1, n);
    writeColumn(f, cols.flags.data(), 1, n);
    writeColumn(f, cols.target.data(), sizeof(uint32_t), n);
    writeColumn(f, cols.imm.data(), sizeof(int64_t), n);
    writeColumn(f, chunk.seq.data(), sizeof(uint64_t), n);
    writeColumn(f, chunk.pc.data(), sizeof(uint64_t), n);
    writeColumn(f, chunk.nextPc.data(), sizeof(uint64_t), n);
    writeColumn(f, chunk.value.data(), sizeof(int64_t), n);
    writeColumn(f, chunk.effAddr.data(), sizeof(uint64_t), n);
}

} // anonymous namespace

// ----------------------------------------------------------- TraceWriter

TraceWriter::TraceWriter(const std::string &path)
{
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        fatal("cannot create trace file '%s'", path.c_str());
    FileHeader h{traceMagic, traceVersion, 0};
    if (std::fwrite(&h, sizeof(h), 1, file) != 1)
        fatal("cannot write trace header to '%s'", path.c_str());
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const TraceRecord &r)
{
    GDIFF_ASSERT(file != nullptr, "append to a closed TraceWriter");
    if (!pending)
        pending = std::make_unique<TraceChunk>();
    pending->push(r);
    ++count;
    if (pending->full())
        flushPending();
}

void
TraceWriter::append(const TraceChunk &chunk)
{
    GDIFF_ASSERT(file != nullptr, "append to a closed TraceWriter");
    if (chunk.empty())
        return;
    // Flush the partial per-record block first so records stay in
    // stream order whatever mix of append() overloads fed the file.
    flushPending();
    writeBlock(file, chunk);
    count += chunk.size;
}

void
TraceWriter::flushPending()
{
    if (!pending || pending->empty())
        return;
    writeBlock(file, *pending);
    pending->clear();
}

void
TraceWriter::close()
{
    if (!file)
        return;
    flushPending();
    // Finalise the record count in the header.
    FileHeader h{traceMagic, traceVersion, count};
    if (std::fseek(file, 0, SEEK_SET) != 0 ||
        std::fwrite(&h, sizeof(h), 1, file) != 1) {
        fatal("cannot finalise trace header");
    }
    std::fclose(file);
    file = nullptr;
}

// ------------------------------------------------------ TraceFileSource

TraceFileSource::TraceFileSource(const std::string &p) : path(p)
{
    file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("cannot open trace file '%s'", path.c_str());
    FileHeader h{};
    if (std::fread(&h, sizeof(h), 1, file) != 1)
        fatal("trace file '%s' is truncated", path.c_str());
    if (h.magic != traceMagic)
        fatal("'%s' is not a gdiff trace (bad magic)", path.c_str());
    if (h.version != traceVersion) {
        fatal("trace '%s' has version %u, expected %u", path.c_str(),
              h.version, traceVersion);
    }
    total = h.count;
}

TraceFileSource::~TraceFileSource()
{
    if (file)
        std::fclose(file);
}

bool
TraceFileSource::fill(TraceChunk &chunk)
{
    chunk.clear();
    if (consumed >= total)
        return false;

    auto truncated = [&]() {
        fatal("trace truncated after %llu of %llu records",
              static_cast<unsigned long long>(consumed),
              static_cast<unsigned long long>(total));
    };

    uint32_t n = 0;
    if (std::fread(&n, sizeof(n), 1, file) != 1)
        truncated();
    if (n == 0 || n > TraceChunk::capacity ||
        n > total - consumed) {
        fatal("trace '%s' has a corrupt block of %u records",
              path.c_str(), n);
    }

    auto readColumn = [&](void *data, size_t elemBytes) {
        if (std::fread(data, elemBytes, n, file) != n)
            truncated();
    };
    BlockColumns cols;
    readColumn(cols.op.data(), 1);
    readColumn(cols.rd.data(), 1);
    readColumn(cols.rs1.data(), 1);
    readColumn(cols.rs2.data(), 1);
    readColumn(cols.flags.data(), 1);
    readColumn(cols.target.data(), sizeof(uint32_t));
    readColumn(cols.imm.data(), sizeof(int64_t));
    readColumn(chunk.seq.data(), sizeof(uint64_t));
    readColumn(chunk.pc.data(), sizeof(uint64_t));
    readColumn(chunk.nextPc.data(), sizeof(uint64_t));
    readColumn(chunk.value.data(), sizeof(int64_t));
    readColumn(chunk.effAddr.data(), sizeof(uint64_t));

    for (uint32_t i = 0; i < n; ++i) {
        isa::Instruction &in = chunk.inst[i];
        in.op = static_cast<isa::Opcode>(cols.op[i]);
        in.rd = cols.rd[i];
        in.rs1 = cols.rs1[i];
        in.rs2 = cols.rs2[i];
        in.target = cols.target[i];
        in.imm = cols.imm[i];
        chunk.flags[i] = cols.flags[i];
    }
    chunk.size = n;
    consumed += n;
    return true;
}

void
TraceFileSource::rewind()
{
    GDIFF_ASSERT(file != nullptr, "rewind of a closed trace");
    if (std::fseek(file, sizeof(FileHeader), SEEK_SET) != 0)
        fatal("cannot rewind trace file");
    consumed = 0;
    resetBuffer();
}

} // namespace workload
} // namespace gdiff
