#include "workload/assembler.hh"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "isa/program_builder.hh"
#include "util/logging.hh"

namespace gdiff {
namespace workload {

using namespace isa;

namespace {

/** Map of symbolic register names. */
const std::map<std::string, Reg> &
registerNames()
{
    static const std::map<std::string, Reg> names = [] {
        std::map<std::string, Reg> m;
        m["zero"] = reg::zero;
        m["v0"] = reg::v0;
        m["v1"] = reg::v1;
        for (unsigned i = 0; i < 4; ++i)
            m["a" + std::to_string(i)] = static_cast<Reg>(reg::a0 + i);
        for (unsigned i = 0; i < 8; ++i)
            m["t" + std::to_string(i)] = static_cast<Reg>(reg::t0 + i);
        m["t8"] = reg::t8;
        m["t9"] = reg::t9;
        for (unsigned i = 0; i < 8; ++i)
            m["s" + std::to_string(i)] = static_cast<Reg>(reg::s0 + i);
        m["s8"] = reg::s8;
        m["fp"] = reg::s8;
        m["gp"] = reg::gp;
        m["sp"] = reg::sp;
        m["ra"] = reg::ra;
        for (unsigned i = 0; i < numRegs; ++i)
            m["r" + std::to_string(i)] = static_cast<Reg>(i);
        return m;
    }();
    return names;
}

struct Token
{
    std::string text;
};

/** Per-line parsing context with error reporting. */
class LineParser
{
  public:
    LineParser(const std::string &line, unsigned line_no)
        : lineNo(line_no)
    {
        // strip comments, split on whitespace/commas/parens but keep
        // parens as separate tokens so off(base) parses cleanly
        std::string clean;
        for (char c : line) {
            if (c == '#')
                break;
            clean += c;
        }
        std::string cur;
        auto flush = [&] {
            if (!cur.empty()) {
                tokens.push_back({cur});
                cur.clear();
            }
        };
        for (char c : clean) {
            if (std::isspace(static_cast<unsigned char>(c)) ||
                c == ',') {
                flush();
            } else if (c == '(' || c == ')') {
                flush();
                tokens.push_back({std::string(1, c)});
            } else {
                cur += c;
            }
        }
        flush();
    }

    bool empty() const { return tokens.empty(); }
    size_t size() const { return tokens.size(); }

    const std::string &
    at(size_t i) const
    {
        if (i >= tokens.size())
            fatal("line %u: missing operand", lineNo);
        return tokens[i].text;
    }

    Reg
    regAt(size_t i) const
    {
        const std::string &t = at(i);
        auto it = registerNames().find(t);
        if (it == registerNames().end())
            fatal("line %u: unknown register '%s'", lineNo, t.c_str());
        return it->second;
    }

    int64_t
    immAt(size_t i) const
    {
        const std::string &t = at(i);
        try {
            size_t pos = 0;
            int64_t v = std::stoll(t, &pos, 0);
            if (pos != t.size())
                fatal("line %u: bad immediate '%s'", lineNo, t.c_str());
            return v;
        } catch (const std::exception &) {
            fatal("line %u: bad immediate '%s'", lineNo, t.c_str());
        }
    }

    /** Expect exactly n operand tokens after the mnemonic. */
    void
    expect(size_t n) const
    {
        if (tokens.size() != n + 1)
            fatal("line %u: expected %zu operands for '%s'", lineNo, n,
                  tokens[0].text.c_str());
    }

    unsigned lineNo;
    std::vector<Token> tokens;
};

struct ParseResult
{
    isa::Program program;
    std::vector<std::pair<uint64_t, int64_t>> memoryImage;
    std::array<int64_t, numRegs> initialRegs{};
    std::vector<std::pair<std::string, uint32_t>> labelIndices;
    bool sawDirectives = false;
};

ParseResult
parse(const std::string &source, const std::string &name)
{
    ParseResult out;
    ProgramBuilder b(name);
    std::map<std::string, Label> labels;
    auto label_for = [&](const std::string &n) {
        auto it = labels.find(n);
        if (it == labels.end())
            it = labels.emplace(n, b.newLabel()).first;
        return it->second;
    };

    std::istringstream in(source);
    std::string line;
    unsigned line_no = 0;
    bool any_instruction = false;
    while (std::getline(in, line)) {
        ++line_no;
        LineParser p(line, line_no);
        if (p.empty())
            continue;

        std::string head = p.at(0);

        // directives --------------------------------------------------
        if (head == ".reg") {
            p.expect(2);
            out.initialRegs[p.regAt(1)] = p.immAt(2);
            out.sawDirectives = true;
            continue;
        }
        if (head == ".word") {
            p.expect(2);
            out.memoryImage.emplace_back(
                static_cast<uint64_t>(p.immAt(1)), p.immAt(2));
            out.sawDirectives = true;
            continue;
        }
        if (head[0] == '.')
            fatal("line %u: unknown directive '%s'", line_no,
                  head.c_str());

        // labels (possibly followed by an instruction on one line) ----
        while (!head.empty() && head.back() == ':') {
            std::string label_name = head.substr(0, head.size() - 1);
            if (label_name.empty())
                fatal("line %u: empty label", line_no);
            b.bind(label_for(label_name));
            out.labelIndices.emplace_back(label_name, b.here());
            p.tokens.erase(p.tokens.begin());
            if (p.empty())
                break;
            head = p.at(0);
        }
        if (p.empty())
            continue;

        any_instruction = true;
        // instructions -------------------------------------------------
        if (head == "ld" || head == "sd") {
            // op reg, off ( base )
            if (p.size() != 6 || p.at(3) != "(" || p.at(5) != ")")
                fatal("line %u: expected '%s reg, off(base)'", line_no,
                      head.c_str());
            Reg r = p.regAt(1);
            int64_t off = p.immAt(2);
            Reg base = p.regAt(4);
            if (head == "ld")
                b.load(r, base, off);
            else
                b.store(r, base, off);
        } else if (head == "li") {
            p.expect(2);
            b.li(p.regAt(1), p.immAt(2));
        } else if (head == "mov") {
            p.expect(2);
            b.mov(p.regAt(1), p.regAt(2));
        } else if (head == "beq" || head == "bne" || head == "blt" ||
                   head == "bge") {
            p.expect(3);
            Label l = label_for(p.at(3));
            if (head == "beq")
                b.beq(p.regAt(1), p.regAt(2), l);
            else if (head == "bne")
                b.bne(p.regAt(1), p.regAt(2), l);
            else if (head == "blt")
                b.blt(p.regAt(1), p.regAt(2), l);
            else
                b.bge(p.regAt(1), p.regAt(2), l);
        } else if (head == "j") {
            p.expect(1);
            b.jump(label_for(p.at(1)));
        } else if (head == "jal") {
            p.expect(2);
            b.jal(p.regAt(1), label_for(p.at(2)));
        } else if (head == "jr") {
            p.expect(1);
            b.jr(p.regAt(1));
        } else if (head == "jalr") {
            p.expect(2);
            b.jalr(p.regAt(1), p.regAt(2));
        } else if (head == "nop") {
            p.expect(0);
            b.nop();
        } else if (head == "halt") {
            p.expect(0);
            b.halt();
        } else {
            // three-operand ALU forms: rrr or rri
            p.expect(3);
            Reg rd = p.regAt(1);
            Reg rs1 = p.regAt(2);
            const std::string &third = p.at(3);
            bool imm_form = registerNames().count(third) == 0;
            if (imm_form) {
                int64_t imm = p.immAt(3);
                if (head == "addi")
                    b.addi(rd, rs1, imm);
                else if (head == "andi")
                    b.andi(rd, rs1, imm);
                else if (head == "ori")
                    b.ori(rd, rs1, imm);
                else if (head == "xori")
                    b.xori(rd, rs1, imm);
                else if (head == "slli")
                    b.slli(rd, rs1, imm);
                else if (head == "srli")
                    b.srli(rd, rs1, imm);
                else if (head == "srai")
                    b.srai(rd, rs1, imm);
                else if (head == "slti")
                    b.slti(rd, rs1, imm);
                else
                    fatal("line %u: unknown mnemonic '%s'", line_no,
                          head.c_str());
            } else {
                Reg rs2 = p.regAt(3);
                if (head == "add")
                    b.add(rd, rs1, rs2);
                else if (head == "sub")
                    b.sub(rd, rs1, rs2);
                else if (head == "mul")
                    b.mul(rd, rs1, rs2);
                else if (head == "div")
                    b.div(rd, rs1, rs2);
                else if (head == "rem")
                    b.rem(rd, rs1, rs2);
                else if (head == "and")
                    b.and_(rd, rs1, rs2);
                else if (head == "or")
                    b.or_(rd, rs1, rs2);
                else if (head == "xor")
                    b.xor_(rd, rs1, rs2);
                else if (head == "sll")
                    b.sll(rd, rs1, rs2);
                else if (head == "srl")
                    b.srl(rd, rs1, rs2);
                else if (head == "sra")
                    b.sra(rd, rs1, rs2);
                else if (head == "slt")
                    b.slt(rd, rs1, rs2);
                else
                    fatal("line %u: unknown mnemonic '%s'", line_no,
                          head.c_str());
            }
        }
    }
    if (!any_instruction)
        fatal("assembly source '%s' contains no instructions",
              name.c_str());
    out.program = b.build();
    return out;
}

} // anonymous namespace

isa::Program
assemble(const std::string &source, const std::string &name)
{
    ParseResult r = parse(source, name);
    if (r.sawDirectives)
        fatal("assemble(): directives present; use assembleWorkload()");
    return std::move(r.program);
}

Workload
assembleWorkload(const std::string &source, const std::string &name)
{
    ParseResult r = parse(source, name);
    Workload w;
    w.program = std::move(r.program);
    w.memoryImage = std::move(r.memoryImage);
    w.initialRegs = r.initialRegs;
    w.description = "assembled from source";
    for (const auto &[label, index] : r.labelIndices)
        w.markers.emplace_back(label, isa::indexToPc(index));
    return w;
}

Workload
assembleWorkloadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open assembly file '%s'", path.c_str());
    std::stringstream ss;
    ss << in.rdbuf();
    return assembleWorkload(ss.str(), path);
}

} // namespace workload
} // namespace gdiff
