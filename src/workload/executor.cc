#include "workload/executor.hh"

#include <limits>

#include "util/logging.hh"

namespace gdiff {
namespace workload {

using isa::Instruction;
using isa::Opcode;

namespace {

/** Wrapping signed addition/subtraction via unsigned arithmetic. */
int64_t
wrapAdd(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                static_cast<uint64_t>(b));
}

int64_t
wrapSub(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) -
                                static_cast<uint64_t>(b));
}

int64_t
wrapMul(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) *
                                static_cast<uint64_t>(b));
}

int64_t
safeDiv(int64_t a, int64_t b)
{
    if (b == 0)
        return -1; // RISC-V convention
    if (a == std::numeric_limits<int64_t>::min() && b == -1)
        return a; // wrap
    return a / b;
}

int64_t
safeRem(int64_t a, int64_t b)
{
    if (b == 0)
        return a; // RISC-V convention
    if (a == std::numeric_limits<int64_t>::min() && b == -1)
        return 0;
    return a % b;
}

} // anonymous namespace

Executor::Executor(isa::Program program)
    : prog(std::move(program))
{
    GDIFF_ASSERT(prog.size() > 0, "cannot execute an empty program");
}

bool
Executor::next(TraceRecord &out)
{
    if (isHalted)
        return false;
    GDIFF_ASSERT(pcIndex < prog.size(),
                 "pc index %u fell off the end of program '%s'",
                 pcIndex, prog.name().c_str());

    const Instruction &inst = prog.at(pcIndex);

    if (inst.op == Opcode::Halt) {
        isHalted = true;
        return false;
    }

    out = TraceRecord();
    out.inst = inst;
    out.seq = seq;
    out.pc = isa::indexToPc(pcIndex);

    uint32_t next_index = pcIndex + 1;
    int64_t a = regs[inst.rs1];
    int64_t b = regs[inst.rs2];
    int64_t result = 0;
    bool writes = false;

    switch (inst.op) {
      case Opcode::Add: result = wrapAdd(a, b); writes = true; break;
      case Opcode::Sub: result = wrapSub(a, b); writes = true; break;
      case Opcode::Mul: result = wrapMul(a, b); writes = true; break;
      case Opcode::Div: result = safeDiv(a, b); writes = true; break;
      case Opcode::Rem: result = safeRem(a, b); writes = true; break;
      case Opcode::And: result = a & b; writes = true; break;
      case Opcode::Or: result = a | b; writes = true; break;
      case Opcode::Xor: result = a ^ b; writes = true; break;
      case Opcode::Sll:
        result = static_cast<int64_t>(static_cast<uint64_t>(a)
                                      << (b & 63));
        writes = true;
        break;
      case Opcode::Srl:
        result = static_cast<int64_t>(static_cast<uint64_t>(a) >>
                                      (b & 63));
        writes = true;
        break;
      case Opcode::Sra: result = a >> (b & 63); writes = true; break;
      case Opcode::Slt: result = (a < b) ? 1 : 0; writes = true; break;

      case Opcode::Addi: result = wrapAdd(a, inst.imm); writes = true; break;
      case Opcode::Andi: result = a & inst.imm; writes = true; break;
      case Opcode::Ori: result = a | inst.imm; writes = true; break;
      case Opcode::Xori: result = a ^ inst.imm; writes = true; break;
      case Opcode::Slli:
        result = static_cast<int64_t>(static_cast<uint64_t>(a)
                                      << (inst.imm & 63));
        writes = true;
        break;
      case Opcode::Srli:
        result = static_cast<int64_t>(static_cast<uint64_t>(a) >>
                                      (inst.imm & 63));
        writes = true;
        break;
      case Opcode::Srai:
        result = a >> (inst.imm & 63);
        writes = true;
        break;
      case Opcode::Slti: result = (a < inst.imm) ? 1 : 0; writes = true; break;
      case Opcode::Li: result = inst.imm; writes = true; break;

      case Opcode::Load:
        out.effAddr = static_cast<uint64_t>(wrapAdd(a, inst.imm));
        result = mem.read64(out.effAddr);
        writes = true;
        break;
      case Opcode::Store:
        out.effAddr = static_cast<uint64_t>(wrapAdd(a, inst.imm));
        mem.write64(out.effAddr, b);
        break;

      case Opcode::Beq:
        out.taken = (a == b);
        if (out.taken)
            next_index = inst.target;
        break;
      case Opcode::Bne:
        out.taken = (a != b);
        if (out.taken)
            next_index = inst.target;
        break;
      case Opcode::Blt:
        out.taken = (a < b);
        if (out.taken)
            next_index = inst.target;
        break;
      case Opcode::Bge:
        out.taken = (a >= b);
        if (out.taken)
            next_index = inst.target;
        break;

      case Opcode::Jump:
        out.taken = true;
        next_index = inst.target;
        break;
      case Opcode::Jal:
        out.taken = true;
        result = static_cast<int64_t>(isa::indexToPc(pcIndex + 1));
        writes = true;
        next_index = inst.target;
        break;
      case Opcode::Jr:
        out.taken = true;
        next_index = isa::pcToIndex(static_cast<uint64_t>(a));
        break;
      case Opcode::Jalr:
        out.taken = true;
        result = static_cast<int64_t>(isa::indexToPc(pcIndex + 1));
        writes = true;
        next_index = isa::pcToIndex(static_cast<uint64_t>(a));
        break;

      case Opcode::Nop:
        break;
      case Opcode::Halt:
        // handled above
        break;
    }

    if (writes)
        setReg(inst.rd, result);
    // Report the architecturally produced value (reads of r0 stay 0).
    out.value = (writes && inst.rd != isa::reg::zero) ? result : 0;

    out.nextPc = isa::indexToPc(next_index);
    pcIndex = next_index;
    ++seq;
    return true;
}

bool
Executor::fill(TraceChunk &chunk)
{
    chunk.clear();
    TraceRecord r;
    while (!chunk.full() && next(r))
        chunk.push(r);
    return !chunk.empty();
}

} // namespace workload
} // namespace gdiff
