/**
 * @file
 * Text assembler for the synthetic ISA.
 *
 * Turns `.s`-style source into a Program (or a full Workload with
 * data/register directives), so kernels and test programs can live in
 * plain text files and be fed to gdiffsim without recompiling.
 *
 * Syntax:
 *
 *     # comments run to end of line
 *     .reg  s1 0x10000000       # initial register value
 *     .word 0x10000000 42       # initial memory word
 *     loop:                     # labels end with ':'
 *         ld   t1, 0(s1)        # loads/stores use off(base)
 *         addi s1, s1, 8
 *         bne  t1, zero, loop   # branches take a label
 *         halt
 *
 * Registers accept both symbolic names (zero, v0..v1, a0..a3,
 * t0..t9, s0..s8, fp, gp, sp, ra) and raw r0..r31. Immediates are
 * decimal or 0x-hex, optionally negative.
 *
 * Errors (unknown mnemonic, bad operand, unbound label, ...) are
 * fatal() with the line number.
 */

#ifndef GDIFF_WORKLOAD_ASSEMBLER_HH
#define GDIFF_WORKLOAD_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"
#include "workload/workload.hh"

namespace gdiff {
namespace workload {

/**
 * Assemble instruction text into a Program. Directives (.reg/.word)
 * are rejected here — use assembleWorkload() for full sources.
 *
 * @param source assembly text.
 * @param name   program name.
 */
isa::Program assemble(const std::string &source,
                      const std::string &name = "asm");

/**
 * Assemble a full workload: instructions plus .reg/.word directives
 * for the initial machine state. Labels become workload markers.
 */
Workload assembleWorkload(const std::string &source,
                          const std::string &name = "asm");

/** Read a file and assembleWorkload() its contents. */
Workload assembleWorkloadFile(const std::string &path);

} // namespace workload
} // namespace gdiff

#endif // GDIFF_WORKLOAD_ASSEMBLER_HH
