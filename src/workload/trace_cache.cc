#include "workload/trace_cache.hh"

#include <chrono>

#include "obs/obs.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

namespace gdiff {
namespace workload {

// ------------------------------------------------ MaterializedTrace

std::shared_ptr<const MaterializedTrace>
MaterializedTrace::generate(const std::string &workload, uint64_t seed,
                            uint64_t maxRecords)
{
    auto trace = std::make_shared<MaterializedTrace>();
    Workload w = makeWorkload(workload, seed);
    auto exec = w.makeExecutor();
    trace->chunkList.reserve(
        static_cast<size_t>(maxRecords / TraceChunk::capacity) + 1);
    uint64_t remaining = maxRecords;
    while (remaining > 0) {
        auto chunk = std::make_unique<TraceChunk>();
        if (!exec->fill(*chunk))
            break;
        // The executor fills whole chunks; trim the final one to the
        // requested budget so the frozen stream ends exactly where a
        // live consumer would stop.
        if (chunk->size > remaining)
            chunk->size = static_cast<uint32_t>(remaining);
        remaining -= chunk->size;
        trace->recordCount += chunk->size;
        trace->chunkList.push_back(std::move(chunk));
    }
    return trace;
}

// ------------------------------------------------ CachedTraceSource

CachedTraceSource::CachedTraceSource(
    std::shared_ptr<const MaterializedTrace> t)
    : trace(std::move(t))
{
    GDIFF_ASSERT(trace != nullptr,
                 "CachedTraceSource needs a materialized trace");
}

bool
CachedTraceSource::fill(TraceChunk &chunk)
{
    const auto &chunks = trace->chunks();
    if (cursor >= chunks.size()) {
        chunk.clear();
        return false;
    }
    chunk.assign(*chunks[cursor++]);
    return true;
}

const TraceChunk *
CachedTraceSource::fillRef(TraceChunk &)
{
    const auto &chunks = trace->chunks();
    if (cursor >= chunks.size())
        return nullptr;
    return chunks[cursor++].get();
}

void
CachedTraceSource::rewind()
{
    cursor = 0;
    resetBuffer();
}

// ------------------------------------------------------- TraceCache

TraceCache::TraceCache() : TraceCache(Config()) {}

TraceCache::TraceCache(const Config &config) : cfg(config) {}

TraceCache &
TraceCache::global()
{
    static TraceCache cache;
    return cache;
}

TraceCache::Acquired
TraceCache::acquire(const std::string &workload, uint64_t seed,
                    uint64_t records)
{
    Key key{workload, seed, records};
    std::promise<std::shared_ptr<const MaterializedTrace>> promise;
    std::shared_future<std::shared_ptr<const MaterializedTrace>> fut;
    bool builder = false;

    {
        std::lock_guard<std::mutex> guard(lock);
        auto it = entries.find(key);
        if (it != entries.end()) {
            ++counters.hits;
            GDIFF_OBS_COUNT("trace_cache.hit", 1);
            if (it->second.bytes > 0) {
                // Finished entry: refresh its LRU position.
                lru.erase(it->second.lruPos);
                lru.push_back(key);
                it->second.lruPos = std::prev(lru.end());
            }
            fut = it->second.future;
        } else {
            builder = true;
            ++counters.misses;
            fut = promise.get_future().share();
            Entry e;
            e.future = fut;
            e.lruPos = lru.end();
            entries.emplace(key, std::move(e));
        }
    }

    Acquired out;
    if (builder) {
        GDIFF_OBS_COUNT("trace_cache.miss", 1);
        auto t0 = std::chrono::steady_clock::now();
        std::shared_ptr<const MaterializedTrace> trace;
        {
            obs::ScopedTimer obsGen("trace.generate",
                                    /*withSpan=*/true);
            obsGen.arg("workload", workload);
            trace =
                MaterializedTrace::generate(workload, seed, records);
        }
        std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        out.generated = true;
        out.generateSeconds = dt.count();
        promise.set_value(trace);

        std::lock_guard<std::mutex> guard(lock);
        ++counters.generations;
        auto it = entries.find(key);
        if (it != entries.end()) {
            it->second.bytes = trace->bytes();
            residentBytes += trace->bytes();
            lru.push_back(key);
            it->second.lruPos = std::prev(lru.end());
            evictLocked();
        }
        out.source = std::make_unique<CachedTraceSource>(trace);
        return out;
    }

    // Another thread is (or was) the builder: wait for its trace.
    std::shared_ptr<const MaterializedTrace> trace = fut.get();
    out.source = std::make_unique<CachedTraceSource>(trace);
    return out;
}

void
TraceCache::evictLocked()
{
    if (cfg.maxBytes == 0)
        return;
    // Never evict the most-recent entry: a triple larger than the
    // whole cap still has to live long enough to be replayed.
    while (residentBytes > cfg.maxBytes && lru.size() > 1) {
        Key victim = lru.front();
        lru.pop_front();
        auto it = entries.find(victim);
        GDIFF_ASSERT(it != entries.end(),
                     "trace-cache LRU points at a missing entry");
        residentBytes -= it->second.bytes;
        entries.erase(it);
        ++counters.evictions;
    }
}

TraceCache::Stats
TraceCache::snapshot() const
{
    std::lock_guard<std::mutex> guard(lock);
    Stats s = counters;
    s.residentBytes = residentBytes;
    s.entries = entries.size();
    return s;
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> guard(lock);
    entries.clear();
    lru.clear();
    residentBytes = 0;
    counters = Stats();
}

void
TraceCache::setMaxBytes(size_t bytes)
{
    std::lock_guard<std::mutex> guard(lock);
    cfg.maxBytes = bytes;
    evictLocked();
}

} // namespace workload
} // namespace gdiff
