#include "workload/trace_cache.hh"

#include <chrono>
#include <cstdlib>

#include "obs/obs.hh"
#include "util/logging.hh"
#include "workload/trace_disk_cache.hh"
#include "workload/workload.hh"

namespace gdiff {
namespace workload {

// ------------------------------------------------ MaterializedTrace

std::shared_ptr<const MaterializedTrace>
MaterializedTrace::generate(const std::string &workload, uint64_t seed,
                            uint64_t maxRecords)
{
    auto trace = std::make_shared<MaterializedTrace>();
    Workload w = makeWorkload(workload, seed);
    auto exec = w.makeExecutor();
    trace->chunkList.reserve(
        static_cast<size_t>(maxRecords / TraceChunk::capacity) + 1);
    uint64_t remaining = maxRecords;
    while (remaining > 0) {
        auto chunk = std::make_unique<TraceChunk>();
        if (!exec->fill(*chunk))
            break;
        // The executor fills whole chunks; trim the final one to the
        // requested budget so the frozen stream ends exactly where a
        // live consumer would stop.
        if (chunk->size > remaining)
            chunk->size = static_cast<uint32_t>(remaining);
        remaining -= chunk->size;
        trace->recordCount += chunk->size;
        trace->chunkList.push_back(std::move(chunk));
    }
    return trace;
}

std::shared_ptr<const MaterializedTrace>
MaterializedTrace::fromChunks(
    std::vector<std::unique_ptr<TraceChunk>> chunks)
{
    auto trace = std::make_shared<MaterializedTrace>();
    trace->chunkList = std::move(chunks);
    for (const auto &chunk : trace->chunkList)
        trace->recordCount += chunk->size;
    return trace;
}

// ------------------------------------------------ CachedTraceSource

CachedTraceSource::CachedTraceSource(
    std::shared_ptr<const MaterializedTrace> t)
    : trace(std::move(t))
{
    GDIFF_ASSERT(trace != nullptr,
                 "CachedTraceSource needs a materialized trace");
}

bool
CachedTraceSource::fill(TraceChunk &chunk)
{
    const auto &chunks = trace->chunks();
    if (cursor >= chunks.size()) {
        chunk.clear();
        return false;
    }
    chunk.assign(*chunks[cursor++]);
    return true;
}

const TraceChunk *
CachedTraceSource::fillRef(TraceChunk &)
{
    const auto &chunks = trace->chunks();
    if (cursor >= chunks.size())
        return nullptr;
    return chunks[cursor++].get();
}

void
CachedTraceSource::rewind()
{
    cursor = 0;
    resetBuffer();
}

// ------------------------------------------------------- TraceCache

TraceCache::TraceCache() : TraceCache(Config()) {}

TraceCache::TraceCache(const Config &config) : cfg(config)
{
    if (!cfg.diskRoot.empty())
        setDiskRoot(cfg.diskRoot, cfg.diskMaxBytes);
}

TraceCache &
TraceCache::global()
{
    static TraceCache cache;
    static std::once_flag once;
    std::call_once(once, [] {
        const char *dir = std::getenv("GDIFF_TRACE_CACHE_DIR");
        if (dir && *dir)
            cache.setDiskRoot(dir);
    });
    return cache;
}

void
TraceCache::setDiskRoot(const std::string &root, size_t maxBytes)
{
    std::shared_ptr<DiskTraceCache> tier;
    if (!root.empty()) {
        DiskTraceCache::Config dc;
        dc.root = root;
        dc.maxBytes = maxBytes;
        tier = std::make_shared<DiskTraceCache>(dc);
    }
    std::lock_guard<std::mutex> guard(lock);
    cfg.diskRoot = root;
    cfg.diskMaxBytes = maxBytes;
    disk = std::move(tier);
}

std::string
TraceCache::diskRoot() const
{
    std::lock_guard<std::mutex> guard(lock);
    return cfg.diskRoot;
}

TraceCache::Acquired
TraceCache::acquire(const std::string &workload, uint64_t seed,
                    uint64_t records)
{
    Key key{workload, seed, records};
    std::promise<std::shared_ptr<const MaterializedTrace>> promise;
    std::shared_future<std::shared_ptr<const MaterializedTrace>> fut;
    bool builder = false;

    {
        std::lock_guard<std::mutex> guard(lock);
        auto it = entries.find(key);
        if (it != entries.end()) {
            ++counters.hits;
            GDIFF_OBS_COUNT("trace_cache.hit", 1);
            if (it->second.bytes > 0) {
                // Finished entry: refresh its LRU position.
                lru.erase(it->second.lruPos);
                lru.push_back(key);
                it->second.lruPos = std::prev(lru.end());
            }
            fut = it->second.future;
        } else {
            builder = true;
            ++counters.misses;
            fut = promise.get_future().share();
            Entry e;
            e.future = fut;
            e.lruPos = lru.end();
            entries.emplace(key, std::move(e));
        }
    }

    Acquired out;
    if (builder) {
        GDIFF_OBS_COUNT("trace_cache.miss", 1);

        // A memory miss falls through to the persistent tier before
        // paying for a generation; fresh generations are persisted
        // for later processes.
        std::shared_ptr<DiskTraceCache> tier;
        {
            std::lock_guard<std::mutex> guard(lock);
            tier = disk;
        }
        std::shared_ptr<const MaterializedTrace> trace;
        if (tier) {
            trace = tier->load(workload, seed, records);
            out.fromDisk = (trace != nullptr);
        }
        if (!trace) {
            auto t0 = std::chrono::steady_clock::now();
            {
                obs::ScopedTimer obsGen("trace.generate",
                                        /*withSpan=*/true);
                obsGen.arg("workload", workload);
                trace = MaterializedTrace::generate(workload, seed,
                                                    records);
            }
            std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - t0;
            out.generated = true;
            out.generateSeconds = dt.count();
            if (tier)
                tier->store(workload, seed, records, *trace);
        }
        promise.set_value(trace);

        std::lock_guard<std::mutex> guard(lock);
        if (out.generated)
            ++counters.generations;
        auto it = entries.find(key);
        if (it != entries.end()) {
            it->second.bytes = trace->bytes();
            residentBytes += trace->bytes();
            lru.push_back(key);
            it->second.lruPos = std::prev(lru.end());
            evictLocked();
        }
        out.source = std::make_unique<CachedTraceSource>(trace);
        return out;
    }

    // Another thread is (or was) the builder: wait for its trace.
    std::shared_ptr<const MaterializedTrace> trace = fut.get();
    out.source = std::make_unique<CachedTraceSource>(trace);
    return out;
}

void
TraceCache::evictLocked()
{
    if (cfg.maxBytes == 0)
        return;
    // Never evict the most-recent entry: a triple larger than the
    // whole cap still has to live long enough to be replayed.
    while (residentBytes > cfg.maxBytes && lru.size() > 1) {
        Key victim = lru.front();
        lru.pop_front();
        auto it = entries.find(victim);
        GDIFF_ASSERT(it != entries.end(),
                     "trace-cache LRU points at a missing entry");
        residentBytes -= it->second.bytes;
        entries.erase(it);
        ++counters.evictions;
    }
}

TraceCache::Stats
TraceCache::snapshot() const
{
    std::shared_ptr<DiskTraceCache> tier;
    Stats s;
    {
        std::lock_guard<std::mutex> guard(lock);
        s = counters;
        s.residentBytes = residentBytes;
        s.entries = entries.size();
        tier = disk;
    }
    if (tier) {
        DiskTraceCache::Stats d = tier->snapshot();
        s.diskEnabled = true;
        s.diskHits = d.hits;
        s.diskMisses = d.misses;
        s.diskStores = d.stores;
        s.diskEvictions = d.evictions;
        s.diskCorruptRecoveries = d.corruptRecoveries;
    }
    return s;
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> guard(lock);
    entries.clear();
    lru.clear();
    residentBytes = 0;
    counters = Stats();
}

void
TraceCache::setMaxBytes(size_t bytes)
{
    std::lock_guard<std::mutex> guard(lock);
    cfg.maxBytes = bytes;
    evictLocked();
}

} // namespace workload
} // namespace gdiff
