#include "workload/micro.hh"

#include "isa/program_builder.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "workload/kernels.hh"

namespace gdiff {
namespace workload {

using namespace isa;
using namespace isa::reg;

namespace {

/** Three independent per-PC strides. */
Workload
makeStride(uint64_t)
{
    ProgramBuilder b("micro.stride");
    Label top = b.newLabel();
    b.bind(top);
    b.addi(s1, s1, 8);
    b.addi(s2, s2, -24);
    b.addi(s3, s3, 136);
    b.jump(top);
    Workload w;
    w.program = b.build();
    w.description = "pure per-PC strides (local stride's home turf)";
    return w;
}

/** A repeating per-PC stride pattern (+1, +5, -2). */
Workload
makePeriodic(uint64_t)
{
    ProgramBuilder b("micro.periodic");
    Label top = b.newLabel();
    Label no_wrap = b.newLabel();
    b.bind(top);
    b.addi(t0, t0, 1);     // phase counter
    b.slti(t1, t0, 3);
    b.bne(t1, zero, no_wrap);
    b.li(t0, 0);           // wrap the phase
    b.bind(no_wrap);
    // value advances by a phase-dependent stride: +1, +5, -2
    // stride = 1 + 4*(phase==1) - 3*(phase==2), computed branchily so
    // the value stream is periodic-stride and nothing else.
    {
        Label p1 = b.newLabel(), p2 = b.newLabel(), done = b.newLabel();
        b.li(t2, 1);
        b.beq(t0, t2, p1);
        b.li(t3, 2);
        b.beq(t0, t3, p2);
        b.addi(s1, s1, 1); // phase 0
        b.jump(done);
        b.bind(p1);
        b.addi(s1, s1, 5); // phase 1
        b.jump(done);
        b.bind(p2);
        b.addi(s1, s1, -2); // phase 2
        b.bind(done);
    }
    b.jump(top);
    Workload w;
    w.program = b.build();
    w.description = "repeating stride pattern (DFCM's home turf)";
    return w;
}

/** LCG values spilled and reloaded: diff-0 global stride. */
Workload
makeSpillFill(uint64_t seed)
{
    ProgramBuilder b("micro.spillfill");
    Label top = b.newLabel();
    b.bind(top);
    b.mul(s7, s7, s6);    // hard value source
    b.srli(t1, s7, 16);
    b.store(t1, s8, 0);
    b.load(t2, s8, 0);    // the fill (diff 0, distance 1)
    b.addi(t3, t2, 40);   // derived (constant diff, distance 1)
    b.jump(top);
    Workload w;
    w.program = b.build();
    w.initialRegs[s6] = 2862933555777941757ll;
    w.initialRegs[s7] =
        static_cast<int64_t>(seed * 2 + 0x9e3779b97f4a7c15ull);
    w.initialRegs[s8] = static_cast<int64_t>(kernels::frameBase);
    w.description = "spill/fill round trips (gdiff's home turf)";
    return w;
}

/** Random-order walks where loaded fields are affine in the address. */
Workload
makeAffine(uint64_t seed)
{
    constexpr int64_t cells = 4096;
    Workload w;
    Xorshift64Star rng(seed + 17);
    for (int64_t i = 0; i < cells; ++i) {
        w.memoryImage.emplace_back(
            kernels::dataBase + static_cast<uint64_t>(i) * 16,
            0x5000 + 16 * i); // field affine in the address
    }
    uint64_t pick_base = kernels::dataBase + cells * 16;
    for (int64_t i = 0; i < 8192; ++i) {
        w.memoryImage.emplace_back(
            pick_base + static_cast<uint64_t>(i) * 8,
            static_cast<int64_t>(rng.below(cells)) * 16);
    }
    ProgramBuilder b("micro.affine");
    Label top = b.newLabel();
    b.bind(top);
    b.load(t1, s1, 0);    // random pick offset (hard)
    b.addi(s1, s1, 8);
    b.add(t2, s2, t1);    // cell address (diff == cellBase)
    b.load(t3, t2, 0);    // affine field (diff == const)
    b.blt(s1, a2, top);
    b.addi(s1, a1, 0);
    b.jump(top);
    w.program = b.build();
    w.initialRegs[s1] = static_cast<int64_t>(pick_base);
    w.initialRegs[s2] = static_cast<int64_t>(kernels::dataBase);
    w.initialRegs[a1] = static_cast<int64_t>(pick_base);
    w.initialRegs[a2] = static_cast<int64_t>(pick_base + 8192 * 8);
    w.description =
        "allocation-affine pointer fields in random order "
        "(gdiff-only)";
    return w;
}

/** x = w[j] + w[k] + c with both inputs noisy: gdiff2's home turf. */
Workload
makePairSum(uint64_t seed)
{
    ProgramBuilder b("micro.pairsum");
    Label top = b.newLabel();
    b.bind(top);
    b.mul(s7, s7, s6);    // noise a
    b.srli(t1, s7, 16);
    b.mul(s7, s7, s6);    // noise b
    b.srli(t2, s7, 16);
    b.add(t3, t1, t2);    // the pair-sum value
    b.addi(t4, t3, 48);   // and a +const chain off it
    b.jump(top);
    Workload w;
    w.program = b.build();
    w.initialRegs[s6] = 2862933555777941757ll;
    w.initialRegs[s7] =
        static_cast<int64_t>(seed * 2 + 0x9e3779b97f4a7c15ull);
    w.description = "x = a + b with noisy a, b (two-term gdiff only)";
    return w;
}

/** Pure LCG noise. */
Workload
makeRandom(uint64_t seed)
{
    ProgramBuilder b("micro.random");
    Label top = b.newLabel();
    b.bind(top);
    b.mul(s7, s7, s6);
    b.srli(t1, s7, 8);
    b.xor_(t2, t1, s7);
    b.jump(top);
    Workload w;
    w.program = b.build();
    w.initialRegs[s6] = 2862933555777941757ll;
    w.initialRegs[s7] =
        static_cast<int64_t>(seed * 2 + 0x9e3779b97f4a7c15ull);
    w.description = "generational noise (nobody's home turf)";
    return w;
}

} // anonymous namespace

const std::vector<std::string> &
microWorkloadNames()
{
    static const std::vector<std::string> names = {
        "stride", "periodic", "spillfill", "affine", "pairsum",
        "random",
    };
    return names;
}

Workload
makeMicroWorkload(const std::string &name, uint64_t seed)
{
    if (name == "stride")
        return makeStride(seed);
    if (name == "periodic")
        return makePeriodic(seed);
    if (name == "spillfill")
        return makeSpillFill(seed);
    if (name == "affine")
        return makeAffine(seed);
    if (name == "pairsum")
        return makePairSum(seed);
    if (name == "random")
        return makeRandom(seed);
    fatal("unknown micro workload '%s'", name.c_str());
}

} // namespace workload
} // namespace gdiff
