/**
 * @file
 * Stratified-sampling estimators: the statistics under the sampled
 * simulator (src/sample/sample.hh).
 *
 * The measured region of a trace is partitioned into equal-length
 * candidate windows, each window belongs to exactly one stratum, and
 * a per-stratum subset of windows is actually timing-simulated. The
 * estimators here turn those per-window measurements into point
 * estimates with 95% confidence intervals, using the classic
 * stratified mean with finite-population correction:
 *
 *   mean  = sum_h (W_h / W) * xbar_h
 *   Var   = sum_h (W_h / W)^2 * (1 - n_h/N_h) * S_h^2 / n_h
 *
 * where W_h is stratum h's total record weight, N_h its candidate
 * windows, n_h its measured windows, xbar_h the record-weighted mean
 * of the measured windows, and S_h^2 their equal-weight sample
 * variance (windows are equal-length except the clipped last one, so
 * the unweighted variance is a one-window-share approximation to the
 * weighted one — see INTERNALS "when CIs lie"). The (1 - n_h/N_h)
 * factor is what makes a fully measured stratum report a zero-width
 * interval.
 *
 * Everything in here is pure arithmetic over the caller's vectors —
 * deterministic, allocation-light, and independently unit-testable
 * (tests/test_sample.cc pins known-answer cases).
 */

#ifndef GDIFF_SAMPLE_ESTIMATOR_HH
#define GDIFF_SAMPLE_ESTIMATOR_HH

#include <cstdint>
#include <vector>

namespace gdiff {
namespace sample {

/// two-sided 95% normal quantile (the large-sample interval width)
inline constexpr double kZ95 = 1.96;

/**
 * @return the two-sided 95% Student-t quantile for @p df degrees of
 * freedom (monotone-interpolated table; exact at the tabulated df,
 * within ~0.5% between them, kZ95 in the limit). Sampled runs size
 * their intervals with df = measured windows - strata: with only a
 * handful of measured windows the variance estimate itself is noisy,
 * and a plain z interval under-covers badly (z=1.96 vs t=2.78 at 4
 * df). @p df of 0 returns the df=1 value (12.7 — one window of slack
 * pins almost nothing down).
 */
double tQuantile975(uint64_t df);

/** A point estimate with its uncertainty. */
struct MetricEstimate
{
    double mean = 0.0;
    double stdError = 0.0; ///< sqrt of the estimator variance
    double ciLo = 0.0;     ///< mean - z * stdError
    double ciHi = 0.0;     ///< mean + z * stdError
};

/** One stratum's measurements for one metric. */
struct StratumSamples
{
    /// W_h: total records across *all* candidate windows of the
    /// stratum (measured or not) — the stratum's share of the stream
    double weight = 0.0;
    /// N_h: candidate windows in the stratum
    uint64_t population = 0;
    /// per measured window: the metric value
    std::vector<double> values;
    /// per measured window: its record count (weights the mean;
    /// end-of-trace windows can be shorter than the rest)
    std::vector<double> weights;
};

/**
 * The stratified estimator over @p strata.
 *
 * Every stratum must have population >= 1, weight > 0, and at least
 * one measured value with a positive weight (panics otherwise — an
 * empty stratum means the allocator is broken, not the data). A
 * stratum with a single measured window contributes zero variance:
 * its spread is unknowable from one sample, so intervals are
 * *understated* when many strata are measured once — see
 * INTERNALS.md ("when CIs lie").
 *
 * @param z the two-sided quantile (default 95%).
 */
MetricEstimate
stratifiedEstimate(const std::vector<StratumSamples> &strata,
                   double z = kZ95);

/**
 * @return the estimate of 1/x given an estimate of x (IPC from CPI).
 * The interval endpoints swap (1/x is decreasing); the standard
 * error follows the delta method (se' = se / mean^2). @p e.mean and
 * @p e.ciLo must be positive (panics otherwise): CPI is bounded
 * below by 1/issue-width, so a non-positive lower bound means the
 * sample budget was far too small to estimate anything.
 */
MetricEstimate invertEstimate(const MetricEstimate &e);

/**
 * @return the estimate of num/den for independent estimates (speedup
 * from two IPCs), with relative errors combined in quadrature. Both
 * means must be positive.
 */
MetricEstimate ratioEstimate(const MetricEstimate &num,
                             const MetricEstimate &den,
                             double z = kZ95);

/**
 * Neyman allocation of @p extra additional measured windows across
 * strata, proportional to @p spread (per-stratum W_h * S_h from the
 * pilot measurements), on top of @p already measured windows and
 * capped by @p capacity (N_h). Uses floor-plus-largest-remainder
 * rounding with deterministic ties (lowest stratum index wins), and
 * falls back to allocation proportional to each stratum's remaining
 * room (capacity - already) when every spread is zero (pilot saw no
 * variance anywhere). The result sums to @p extra unless total
 * remaining capacity is smaller.
 */
std::vector<uint64_t>
neymanAllocate(const std::vector<double> &spread,
               const std::vector<uint64_t> &already,
               const std::vector<uint64_t> &capacity, uint64_t extra);

} // namespace sample
} // namespace gdiff

#endif // GDIFF_SAMPLE_ESTIMATOR_HH
