#include "sample/estimator.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace gdiff {
namespace sample {

double
tQuantile975(uint64_t df)
{
    // (df, t_{0.975,df}) knots; linear in 1/df between them, which
    // tracks the true quantile to ~0.5% — plenty for interval sizing.
    static constexpr struct { double df, t; } knots[] = {
        {1, 12.706}, {2, 4.303},  {3, 3.182},  {4, 2.776},
        {5, 2.571},  {6, 2.447},  {7, 2.365},  {8, 2.306},
        {9, 2.262},  {10, 2.228}, {12, 2.179}, {15, 2.131},
        {20, 2.086}, {30, 2.042}, {60, 2.000}, {120, 1.980},
    };
    if (df < 1)
        df = 1;
    double d = static_cast<double>(df);
    if (d >= 240.0)
        return kZ95;
    const size_t n = std::size(knots);
    if (d >= knots[n - 1].df) {
        // Interpolate toward the normal quantile at 1/df -> 0.
        double f = (1.0 / d) / (1.0 / knots[n - 1].df);
        return kZ95 + f * (knots[n - 1].t - kZ95);
    }
    for (size_t i = 1; i < n; ++i) {
        if (d <= knots[i].df) {
            double x0 = 1.0 / knots[i - 1].df, x1 = 1.0 / knots[i].df;
            double f = (1.0 / d - x0) / (x1 - x0);
            return knots[i - 1].t + f * (knots[i].t - knots[i - 1].t);
        }
    }
    return kZ95; // unreachable
}

MetricEstimate
stratifiedEstimate(const std::vector<StratumSamples> &strata, double z)
{
    GDIFF_ASSERT(!strata.empty(), "stratified estimate over no strata");

    double totalWeight = 0.0;
    for (const auto &h : strata)
        totalWeight += h.weight;
    GDIFF_ASSERT(totalWeight > 0.0,
                 "stratified estimate with zero total weight");

    double mean = 0.0;
    double var = 0.0;
    for (size_t i = 0; i < strata.size(); ++i) {
        const StratumSamples &h = strata[i];
        GDIFF_ASSERT(h.population >= 1,
                     "stratum %zu has an empty population", i);
        GDIFF_ASSERT(h.weight > 0.0, "stratum %zu has zero weight", i);
        GDIFF_ASSERT(!h.values.empty(),
                     "stratum %zu has no measured windows", i);
        GDIFF_ASSERT(h.values.size() == h.weights.size(),
                     "stratum %zu: %zu values vs %zu weights", i,
                     h.values.size(), h.weights.size());
        double n = static_cast<double>(h.values.size());
        GDIFF_ASSERT(h.values.size() <= h.population,
                     "stratum %zu measured more windows than exist", i);

        double wsum = 0.0, wxsum = 0.0;
        for (size_t j = 0; j < h.values.size(); ++j) {
            GDIFF_ASSERT(h.weights[j] > 0.0,
                         "stratum %zu window %zu has zero weight", i, j);
            wsum += h.weights[j];
            wxsum += h.weights[j] * h.values[j];
        }
        double xbar = wxsum / wsum;

        // Sample variance of the window values around the stratum
        // mean; a single measured window contributes zero (unknowable
        // spread — this is where intervals can understate). The
        // variance is deliberately *unweighted* while xbar is
        // record-weighted: windows are equal-length except the clipped
        // last one, so the equal-weight S_h^2 differs from a weighted
        // variance by at most one window's share — documented with the
        // other interval caveats in INTERNALS ("when CIs lie").
        double s2 = 0.0;
        if (h.values.size() > 1) {
            for (double x : h.values)
                s2 += (x - xbar) * (x - xbar);
            s2 /= n - 1.0;
        }

        double share = h.weight / totalWeight;
        double fpc = std::max(
            0.0, 1.0 - n / static_cast<double>(h.population));
        mean += share * xbar;
        var += share * share * fpc * s2 / n;
    }

    MetricEstimate e;
    e.mean = mean;
    e.stdError = std::sqrt(std::max(0.0, var));
    e.ciLo = mean - z * e.stdError;
    e.ciHi = mean + z * e.stdError;
    return e;
}

MetricEstimate
invertEstimate(const MetricEstimate &e)
{
    GDIFF_ASSERT(e.mean > 0.0 && e.ciLo > 0.0,
                 "inverting a non-positive estimate (mean %f, lo %f): "
                 "the sample budget is far too small",
                 e.mean, e.ciLo);
    MetricEstimate out;
    out.mean = 1.0 / e.mean;
    out.stdError = e.stdError / (e.mean * e.mean);
    // 1/x is decreasing, so the endpoints swap.
    out.ciLo = 1.0 / e.ciHi;
    out.ciHi = 1.0 / e.ciLo;
    return out;
}

MetricEstimate
ratioEstimate(const MetricEstimate &num, const MetricEstimate &den,
              double z)
{
    GDIFF_ASSERT(num.mean > 0.0 && den.mean > 0.0,
                 "ratio of non-positive estimates (%f / %f)", num.mean,
                 den.mean);
    MetricEstimate out;
    out.mean = num.mean / den.mean;
    double relNum = num.stdError / num.mean;
    double relDen = den.stdError / den.mean;
    out.stdError =
        out.mean * std::sqrt(relNum * relNum + relDen * relDen);
    out.ciLo = out.mean - z * out.stdError;
    out.ciHi = out.mean + z * out.stdError;
    return out;
}

std::vector<uint64_t>
neymanAllocate(const std::vector<double> &spread,
               const std::vector<uint64_t> &already,
               const std::vector<uint64_t> &capacity, uint64_t extra)
{
    size_t n = spread.size();
    GDIFF_ASSERT(already.size() == n && capacity.size() == n,
                 "neymanAllocate: mismatched stratum vectors "
                 "(%zu/%zu/%zu)",
                 n, already.size(), capacity.size());
    std::vector<uint64_t> give(n, 0);
    if (extra == 0 || n == 0)
        return give;

    std::vector<uint64_t> room(n, 0);
    for (size_t h = 0; h < n; ++h) {
        GDIFF_ASSERT(already[h] <= capacity[h],
                     "stratum %zu over-measured (%llu of %llu)", h,
                     static_cast<unsigned long long>(already[h]),
                     static_cast<unsigned long long>(capacity[h]));
        room[h] = capacity[h] - already[h];
    }

    // A pilot that saw zero variance everywhere gives Neyman nothing
    // to weight by; fall back to spreading proportionally to each
    // stratum's *remaining room* (not full capacity — the pilot
    // already covered part of it) so coverage still scales with the
    // budget and nothing is over-targeted into the remainder loop.
    double total = 0.0;
    for (double s : spread) {
        GDIFF_ASSERT(s >= 0.0, "negative spread");
        total += s;
    }
    std::vector<double> w = spread;
    if (total <= 0.0) {
        total = 0.0;
        for (size_t h = 0; h < n; ++h) {
            w[h] = static_cast<double>(room[h]);
            total += w[h];
        }
        if (total <= 0.0)
            return give;
    }

    // Floor of each ideal share (clamped to room), then hand out the
    // remainder one window at a time to the stratum furthest below
    // its ideal — deterministic, ties to the lowest index.
    std::vector<double> ideal(n, 0.0);
    uint64_t spent = 0;
    for (size_t h = 0; h < n; ++h) {
        ideal[h] = static_cast<double>(extra) * w[h] / total;
        give[h] = std::min(static_cast<uint64_t>(ideal[h]), room[h]);
        spent += give[h];
    }
    while (spent < extra) {
        size_t best = n;
        // -inf, not 0: once the small strata are past their ideal
        // share their gaps go negative, but leftover budget must
        // still land somewhere with room.
        double bestGap = -std::numeric_limits<double>::infinity();
        for (size_t h = 0; h < n; ++h) {
            if (give[h] >= room[h])
                continue;
            double gap = ideal[h] - static_cast<double>(give[h]);
            if (gap > bestGap) {
                bestGap = gap;
                best = h;
            }
        }
        if (best == n)
            break; // every stratum is fully measured
        ++give[best];
        ++spent;
    }
    return give;
}

} // namespace sample
} // namespace gdiff
