/**
 * @file
 * Sampled timing simulation with two-phase stratified sampling.
 *
 * Full-trace pipeline simulation caps every sweep at a few million
 * records per job. The sampled simulator trades a little statistical
 * uncertainty for a ~budget/instructions fraction of that work:
 *
 *  1. The measured region [warmup, warmup + instructions) of the
 *     trace is cut into equal candidate windows of
 *     JobSpec::sampleWindow records.
 *
 *  2. A cheap profiling pass streams the whole region once (no timing
 *     model) and fingerprints each window with the v3 codec's
 *     phase/period detector (workload::detectStridePeriod on the
 *     value and pc columns of the window's scan prefix). Windows with
 *     the same (value-period, pc-period) fingerprint — i.e. the same
 *     loop phase — form one stratum.
 *
 *  3. A pilot of up to two windows per stratum is timing-simulated,
 *     the remaining budget (sampleBudget / sampleWindow windows in
 *     total) is spread by Neyman allocation — proportional to each
 *     stratum's weight times its pilot standard deviation — and the
 *     chosen windows are simulated. Each window job fast-forwards to
 *     its offset with workload::SkipTraceSource (a chunk-pointer walk
 *     over the shared cached trace, not simulation), functionally
 *     warms caches/predictors over up to kFunctionalWarmup records,
 *     timing-warms kWarmupWindows window lengths, then measures.
 *
 *  4. The per-window metrics are combined by the stratified
 *     estimators (sample/estimator.hh) into point estimates with 95%
 *     confidence intervals, reported as `*_ci_lo` / `*_ci_hi` metric
 *     columns next to the usual names. IPC is estimated through CPI
 *     (record-weighted cycles-per-instruction, then inverted) so the
 *     sampled value converges to the full run's
 *     total-cycles/total-instructions, not a mean of window ratios.
 *
 * Determinism: window selection is seeded by JobSpec::sampleSeed,
 * window measurement depends only on the spec, and aggregation walks
 * windows in id order — so results are bit-identical across runs and
 * thread counts, like every other runner job.
 *
 * A budget >= instructions degrades to one full simulation and
 * reports zero-width intervals (there is nothing left to sample).
 */

#ifndef GDIFF_SAMPLE_SAMPLE_HH
#define GDIFF_SAMPLE_SAMPLE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "runner/job.hh"
#include "workload/trace.hh"
#include "workload/trace_cache.hh"

namespace gdiff {
namespace sample {

/// records of a window's prefix the profiling pass fingerprints.
/// Long enough for detectStridePeriod to resolve any period it can
/// express (2L < prefix), short enough that the profiling pass stays
/// a small fraction of one full simulation: the period scan is
/// O(maxPeriod x prefix) per window, and at 2048 it alone would cost
/// as much as the measured windows.
inline constexpr uint32_t kScanPrefix = 512;

/// window-lengths of stream timing-simulated before each measured
/// window to warm caches and predictors. Too little and every window
/// starts cold, biasing sampled IPC low by more than its interval
/// width (the SMARTS cold-start problem); 4x keeps the bias well
/// under the CI at the default window size while still costing only
/// a small constant factor over the measured records.
inline constexpr uint64_t kWarmupWindows = 4;

/// records of stream *functionally* warmed before the detailed
/// warmup: caches, branch predictor, and VP tables train in program
/// order with no cycle modelling (OooPipeline::run's
/// functionalWarmup phase; profile-mode windows fold this span into
/// the untimed replay's warmup, which is already functional).
/// Structures like the D-cache converge over tens of thousands of
/// records on some kernels (gzip's sliding dictionary is the worst
/// case) — far more history than detailed warmup can affordably
/// replay, but nearly free to stream functionally. An absolute
/// count, not window-relative: state convergence is a property of
/// the machine, not of the sampling geometry.
inline constexpr uint64_t kFunctionalWarmup = 65'536;

/** The candidate-window geometry of one sampled job. */
struct WindowGrid
{
    uint64_t measuredStart = 0;   ///< first measured record (= warmup)
    uint64_t measuredRecords = 0; ///< region length (= instructions)
    uint64_t windowRecords = 0;   ///< records per window (= sampleWindow)

    /** @return candidate windows: ceil(measured / window). */
    uint64_t count() const
    {
        return (measuredRecords + windowRecords - 1) / windowRecords;
    }

    /** @return absolute record index where window @p w starts. */
    uint64_t start(uint64_t w) const
    {
        return measuredStart + w * windowRecords;
    }

    /** @return records window @p w measures (the last window is
     * clipped at the end of the region). */
    uint64_t length(uint64_t w) const
    {
        uint64_t end = measuredStart + measuredRecords;
        uint64_t s = start(w);
        return std::min(windowRecords, end - s);
    }

    /** @return detailed-warmup records for window @p w: up to
     * kWarmupWindows window lengths of stream immediately before it,
     * clipped at the start of the trace (window 0 of a warmup-less
     * job warms nothing). */
    uint64_t warmup(uint64_t w) const
    {
        return std::min(kWarmupWindows * windowRecords, start(w));
    }

    /** @return functional-warmup records for window @p w: up to
     * kFunctionalWarmup records of stream immediately before the
     * detailed warmup, clipped at the start of the trace. */
    uint64_t functionalWarmup(uint64_t w) const
    {
        return std::min(kFunctionalWarmup, start(w) - warmup(w));
    }
};

/** @return the grid for a validated sampled JobSpec. */
WindowGrid makeWindowGrid(uint64_t measuredStart,
                          uint64_t measuredRecords,
                          uint64_t windowRecords);

/** A window's loop-phase fingerprint (stratum membership key). */
struct StratumKey
{
    uint32_t valuePeriod = 1;
    uint32_t pcPeriod = 1;

    bool
    operator==(const StratumKey &o) const
    {
        return valuePeriod == o.valuePeriod && pcPeriod == o.pcPeriod;
    }
};

/**
 * The profiling pass: stream @p src once (it must start at record 0
 * of the job's trace) and fingerprint every window of @p grid.
 * Windows past the end of a short stream keep the default key.
 * The stream walk is sequential; the per-window period scans run on
 * up to @p threads workers (the result does not depend on the
 * schedule — each window's key is an independent function of its own
 * prefix).
 */
std::vector<StratumKey> profileStrata(workload::TraceSource &src,
                                      const WindowGrid &grid,
                                      unsigned threads = 1);

/**
 * Run @p spec (which must have a sample budget) as a sampled
 * simulation, resolving the shared trace through @p cache (strongly
 * recommended — without it every window regenerates the stream
 * functionally) and measuring windows on up to @p threads workers.
 * Metrics are bit-identical for any thread count.
 */
runner::JobResult runSampledJob(const runner::JobSpec &spec,
                                workload::TraceCache *cache,
                                unsigned threads);

/**
 * Register runSampledJob as runner::runJob's sampled-spec handler.
 * Call once at startup from any binary that accepts sampled specs
 * (gdiffrun, gdiffd, tests, benches). Idempotent.
 */
void install();

} // namespace sample
} // namespace gdiff

#endif // GDIFF_SAMPLE_SAMPLE_HH
