#include "sample/sample.hh"

#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <utility>

#include "obs/obs.hh"
#include "pipeline/config.hh"
#include "pipeline/ooo_model.hh"
#include "runner/factory.hh"
#include "runner/runner.hh"
#include "sample/estimator.hh"
#include "sim/profile.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "workload/trace_io.hh"
#include "workload/workload.hh"

namespace gdiff {
namespace sample {

WindowGrid
makeWindowGrid(uint64_t measuredStart, uint64_t measuredRecords,
               uint64_t windowRecords)
{
    GDIFF_ASSERT(measuredRecords > 0 && windowRecords > 0,
                 "degenerate window grid (%llu records, %llu window)",
                 static_cast<unsigned long long>(measuredRecords),
                 static_cast<unsigned long long>(windowRecords));
    WindowGrid g;
    g.measuredStart = measuredStart;
    g.measuredRecords = measuredRecords;
    g.windowRecords = windowRecords;
    return g;
}

std::vector<StratumKey>
profileStrata(workload::TraceSource &src, const WindowGrid &grid,
              unsigned threads)
{
    const uint64_t count = grid.count();
    std::vector<StratumKey> keys(count);
    auto scratch = std::make_unique<workload::TraceChunk>();
    // Per-window scan-prefix copies: collected in one sequential
    // stream walk, fingerprinted in parallel below.
    std::vector<std::vector<uint64_t>> vals(count), pcs(count);

    // Range walk, not a per-record loop: for each chunk, intersect it
    // with the window prefixes it overlaps and bulk-copy just those
    // subranges. Records outside a scan prefix (the vast majority at
    // realistic window sizes) cost a few index computations per
    // chunk, so the pass stays cheap next to the measured windows.
    const uint64_t end = grid.measuredStart + grid.measuredRecords;
    uint64_t pos = 0;
    while (pos < end) {
        const workload::TraceChunk *c = src.fillRef(*scratch);
        if (!c)
            break; // stream shorter than promised: default keys stay
        const uint64_t cStart = pos;
        pos += c->size;
        const uint64_t lo = std::max(cStart, grid.measuredStart);
        const uint64_t hi = std::min(pos, end);
        if (lo >= hi)
            continue;
        uint64_t w = (lo - grid.measuredStart) / grid.windowRecords;
        const uint64_t wLast =
            (hi - 1 - grid.measuredStart) / grid.windowRecords;
        for (; w <= wLast; ++w) {
            const uint64_t wStart = grid.start(w);
            const uint64_t scanEnd =
                wStart + std::min<uint64_t>(kScanPrefix,
                                            grid.length(w));
            const uint64_t a = std::max(lo, wStart);
            const uint64_t b = std::min(hi, scanEnd);
            if (a >= b)
                continue;
            vals[w].reserve(kScanPrefix);
            pcs[w].reserve(kScanPrefix);
            for (uint64_t p = a - cStart; p < b - cStart; ++p) {
                vals[w].push_back(
                    static_cast<uint64_t>(c->value[p]));
                pcs[w].push_back(c->pc[p]);
            }
        }
    }

    // The period scans dominate the pass (O(maxPeriod x prefix) per
    // window) and are independent, so they parallelize; each key is
    // a pure function of its own prefix, making the result identical
    // for any thread count.
    runner::ThreadPool pool(threads == 0 ? 1 : threads);
    pool.forEach(count, [&](size_t w) {
        if (vals[w].empty())
            return; // past a short stream's end: default key
        keys[w].valuePeriod = workload::detectStridePeriod(
            vals[w].data(), static_cast<uint32_t>(vals[w].size()));
        keys[w].pcPeriod = workload::detectStridePeriod(
            pcs[w].data(), static_cast<uint32_t>(pcs[w].size()));
    });
    return keys;
}

namespace {

using runner::JobMode;
using runner::JobResult;
using runner::JobSpec;

/** Decorrelated per-stratum selection seed (SplitMix64 scramble). */
uint64_t
mixSeed(uint64_t seed, uint64_t stratum)
{
    uint64_t z = seed + 0x9e3779b97f4a7c15ull * (stratum + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** One measured window's raw output. */
struct WindowResult
{
    uint64_t window = 0;
    /// measured records (0 when the window fell off a short stream,
    /// in which case it contributes nothing)
    double weight = 0.0;
    std::vector<double> values; ///< window metrics, mode-fixed order
};

/// Window-metric order, pipeline mode. Element 0 is the Neyman
/// target and the headline estimate: CPI, not IPC — the
/// record-weighted CPI mean converges to the full run's
/// total-cycles / total-instructions, where a mean of window IPCs
/// would not (mean-of-ratios bias).
const char *const kPipelineMetrics[] = {
    "cpi",         "dcache_miss_rate",   "branch_accuracy",
    "vp_coverage", "vp_accuracy",        "miss_load_coverage",
    "miss_load_accuracy", "avg_value_delay",
};

/// Window-metric order, profile mode (element 0 = Neyman target).
const char *const kProfileMetrics[] = {"accuracy", "coverage",
                                       "gated_accuracy"};

/** Open the job's record stream from the beginning. */
std::unique_ptr<workload::TraceSource>
openStream(const JobSpec &spec, workload::TraceCache *cache,
           workload::TraceCache::Acquired *meta)
{
    if (cache) {
        workload::TraceCache::Acquired acq = cache->acquire(
            spec.workload, spec.seed, spec.warmup + spec.instructions);
        std::unique_ptr<workload::TraceSource> src =
            std::move(acq.source);
        if (meta)
            *meta = std::move(acq);
        return src;
    }
    workload::Workload w =
        workload::makeWorkload(spec.workload, spec.seed);
    return w.makeExecutor();
}

/** Fast-forward, warm, and measure one window. */
WindowResult
measureWindow(const JobSpec &spec, const WindowGrid &grid, uint64_t w,
              workload::TraceCache *cache)
{
    WindowResult r;
    r.window = w;
    const uint64_t start = grid.start(w);
    const uint64_t len = grid.length(w);
    const uint64_t warm = grid.warmup(w);
    const uint64_t fwarm = grid.functionalWarmup(w);

    const bool obsOn = GDIFF_OBS_ENABLED && obs::enabled();
    uint64_t t0 = obsOn ? obs::nowNs() : 0;

    std::unique_ptr<workload::TraceSource> base =
        openStream(spec, cache, nullptr);
    workload::SkipTraceSource src(*base, start - warm - fwarm);

    if (spec.mode == JobMode::Pipeline) {
        auto scheme =
            runner::makeScheme(spec.scheme, spec.order,
                               spec.tableEntries);
        pipeline::OooPipeline pipe(pipeline::PipelineConfig::paper(),
                                   *scheme);
        // Two-stage SMARTS warming (a long functional history for
        // the slow-converging structures, then detailed warmup for
        // the in-flight state) with retire-to-retire cycle
        // accounting: window cycle counts must tile the continuous
        // run (see OooPipeline::run).
        pipeline::PipelineStats s =
            pipe.run(src, len, warm, true, fwarm);
        if (s.instructions > 0) {
            r.weight = static_cast<double>(s.instructions);
            double cpi = static_cast<double>(s.cycles) /
                         static_cast<double>(s.instructions);
            r.values = {cpi,
                        s.dcacheMissRate,
                        s.branchAccuracy,
                        s.coverage.value(),
                        s.gatedAccuracy.value(),
                        s.missLoadCoverage.value(),
                        s.missLoadAccuracy.value(),
                        s.valueDelay.mean()};
        }
    } else {
        auto pred = runner::makePredictor(spec.predictor, spec.order,
                                          spec.tableEntries);
        sim::ProfileConfig cfg;
        cfg.maxInstructions = len;
        // The profile replay has no timing model, so its warmup phase
        // already *is* functional warming: fold the functional-warmup
        // span into it. The runner then consumes exactly the
        // fwarm + warm + len records the skip above left it at, so
        // measurement covers [start, start + len) — aligned with the
        // window's stratum fingerprint, same as the pipeline branch.
        cfg.warmupInstructions = fwarm + warm;
        // A window legitimately warms as many records as it measures.
        cfg.allowLongWarmup = true;
        sim::ValueProfileRunner prof(cfg);
        prof.addPredictor(*pred);
        prof.run(src);
        const uint64_t meas = prof.measuredRecords();
        if (meas > 0) {
            const sim::ProfileSeries &s = prof.results().front();
            r.weight = static_cast<double>(meas);
            r.values = {s.accuracyAll.value(), s.coverage.value(),
                        s.accuracyGated.value()};
        }
    }

    if (obsOn) {
        obs::Registry &reg = obs::Registry::local();
        reg.histogram("sample.window_us")
            ->record((obs::nowNs() - t0) / 1'000);
    }
    return r;
}

/** The shared sample_* metadata tail of every sampled result. */
void
appendSampleMeta(std::vector<std::pair<std::string, double>> &m,
                 const JobSpec &spec, uint64_t measuredWindows,
                 uint64_t strata)
{
    m.emplace_back("sample_budget",
                   static_cast<double>(spec.sampleBudget));
    m.emplace_back("sample_window",
                   static_cast<double>(spec.sampleWindow));
    m.emplace_back("sample_windows",
                   static_cast<double>(measuredWindows));
    m.emplace_back("sample_strata", static_cast<double>(strata));
}

/**
 * A budget covering the whole measured region degrades to one full
 * simulation; the result is re-laid-out in the sampled column order
 * with zero-width intervals, so mixed sweeps stay column-compatible.
 */
JobResult
degenerateResult(const JobSpec &spec, JobResult base)
{
    std::vector<std::pair<std::string, double>> m;
    auto exact = [&](const char *name) {
        double v = base.metric(name);
        m.emplace_back(name, v);
        m.emplace_back(std::string(name) + "_ci_lo", v);
        m.emplace_back(std::string(name) + "_ci_hi", v);
        return v;
    };
    if (spec.mode == JobMode::Pipeline) {
        exact("ipc");
        m.emplace_back("ipc_se", 0.0);
        m.emplace_back("cycles", base.metric("cycles"));
        m.emplace_back("dcache_miss_rate",
                       base.metric("dcache_miss_rate"));
        m.emplace_back("branch_accuracy",
                       base.metric("branch_accuracy"));
        exact("vp_coverage");
        exact("vp_accuracy");
        m.emplace_back("miss_load_coverage",
                       base.metric("miss_load_coverage"));
        m.emplace_back("miss_load_accuracy",
                       base.metric("miss_load_accuracy"));
        m.emplace_back("avg_value_delay",
                       base.metric("avg_value_delay"));
    } else {
        exact("accuracy");
        exact("coverage");
        exact("gated_accuracy");
    }
    appendSampleMeta(m, spec, 0, 1);
    base.metrics = std::move(m);
    return base;
}

} // anonymous namespace

JobResult
runSampledJob(const JobSpec &spec, workload::TraceCache *cache,
              unsigned threads)
{
    spec.validate();
    GDIFF_ASSERT(spec.sampled(),
                 "runSampledJob on a full-trace spec (%s)",
                 spec.label().c_str());
    auto t0 = std::chrono::steady_clock::now();

    if (spec.sampleBudget >= spec.instructions) {
        // The budget pays for the whole region: sampling would only
        // add estimator noise on top of the exact answer.
        JobSpec full = spec;
        full.sampleBudget = 0;
        return degenerateResult(spec, runner::runJob(full, cache));
    }

    GDIFF_OBS_SPAN("sample.job");
    const bool obsOn = GDIFF_OBS_ENABLED && obs::enabled();

    WindowGrid grid = makeWindowGrid(spec.warmup, spec.instructions,
                                     spec.sampleWindow);
    const uint64_t K =
        std::min(spec.sampleBudget / spec.sampleWindow, grid.count());

    // ---- Phase 1: one cheap streaming pass fingerprints every
    // window's loop phase (and materializes the shared trace).
    workload::TraceCache::Acquired acq;
    std::vector<StratumKey> keys;
    {
        GDIFF_OBS_SPAN("sample.profile");
        std::unique_ptr<workload::TraceSource> src =
            openStream(spec, cache, &acq);
        keys = profileStrata(*src, grid, threads);
    }

    // Group windows into strata in first-seen key order.
    std::vector<StratumKey> uniq;
    std::vector<std::vector<uint64_t>> members;
    for (uint64_t w = 0; w < keys.size(); ++w) {
        size_t h = 0;
        while (h < uniq.size() && !(uniq[h] == keys[w]))
            ++h;
        if (h == uniq.size()) {
            uniq.push_back(keys[w]);
            members.emplace_back();
        }
        members[h].push_back(w);
    }
    // A stratum needs a pilot *pair* before its variance means
    // anything; if the window budget cannot give every stratum two,
    // collapse to plain (single-stratum) systematic-random sampling.
    if (members.size() > 1 && K < 2 * members.size()) {
        members.assign(1, std::vector<uint64_t>());
        members[0].resize(keys.size());
        for (uint64_t w = 0; w < keys.size(); ++w)
            members[0][w] = w;
    }
    const size_t H = members.size();

    std::vector<uint32_t> windowStratum(keys.size(), 0);
    std::vector<double> stratumWeight(H, 0.0);
    for (size_t h = 0; h < H; ++h) {
        for (uint64_t w : members[h]) {
            windowStratum[w] = static_cast<uint32_t>(h);
            stratumWeight[h] += static_cast<double>(grid.length(w));
        }
    }

    // Seeded per-stratum shuffle: the measurement order within a
    // stratum is a deterministic function of (sampleSeed, stratum).
    for (size_t h = 0; h < H; ++h) {
        Xorshift64Star rng(mixSeed(spec.sampleSeed, h));
        auto &m = members[h];
        for (size_t i = m.size(); i > 1; --i)
            std::swap(m[i - 1], m[rng.below(i)]);
    }

    // ---- Phase 2a: pilot pass (up to two windows per stratum).
    std::vector<uint64_t> pilot(H, 0);
    if (H == 1) {
        pilot[0] = std::min<uint64_t>(
            {2, static_cast<uint64_t>(members[0].size()), K});
    } else {
        for (size_t h = 0; h < H; ++h)
            pilot[h] = std::min<uint64_t>(
                2, static_cast<uint64_t>(members[h].size()));
    }

    std::vector<WindowResult> measured;
    runner::ThreadPool pool(threads == 0 ? 1 : threads);
    auto measureSet = [&](const std::vector<uint64_t> &windows,
                          const char *phase) {
        GDIFF_OBS_SPAN(phase);
        size_t base = measured.size();
        measured.resize(base + windows.size());
        pool.forEach(windows.size(), [&](size_t i) {
            measured[base + i] =
                measureWindow(spec, grid, windows[i], cache);
        });
    };

    std::vector<uint64_t> select;
    for (size_t h = 0; h < H; ++h)
        for (uint64_t j = 0; j < pilot[h]; ++j)
            select.push_back(members[h][j]);
    measureSet(select, "sample.pilot");

    // ---- Phase 2b: Neyman allocation of the remaining budget,
    // proportional to stratum weight x pilot standard deviation of
    // the target metric (CPI / accuracy).
    uint64_t pilotTotal = 0;
    for (uint64_t p : pilot)
        pilotTotal += p;
    std::vector<double> spread(H, 0.0);
    {
        std::vector<std::vector<double>> pilotVals(H);
        for (const WindowResult &r : measured)
            if (r.weight > 0)
                pilotVals[windowStratum[r.window]].push_back(
                    r.values[0]);
        for (size_t h = 0; h < H; ++h) {
            const auto &v = pilotVals[h];
            if (v.size() < 2)
                continue;
            double mean = 0.0;
            for (double x : v)
                mean += x;
            mean /= static_cast<double>(v.size());
            double s2 = 0.0;
            for (double x : v)
                s2 += (x - mean) * (x - mean);
            s2 /= static_cast<double>(v.size()) - 1.0;
            spread[h] = stratumWeight[h] * std::sqrt(s2);
        }
    }
    std::vector<uint64_t> capacity(H, 0);
    for (size_t h = 0; h < H; ++h)
        capacity[h] = members[h].size();
    std::vector<uint64_t> give =
        neymanAllocate(spread, pilot, capacity, K - pilotTotal);

    select.clear();
    for (size_t h = 0; h < H; ++h)
        for (uint64_t j = pilot[h]; j < pilot[h] + give[h]; ++j)
            select.push_back(members[h][j]);
    measureSet(select, "sample.measure");

    // ---- Phase 3: stratified estimates, walking windows in id order
    // (aggregation must not depend on measurement completion order).
    const size_t nMetrics = spec.mode == JobMode::Pipeline
                                ? std::size(kPipelineMetrics)
                                : std::size(kProfileMetrics);
    std::vector<std::vector<const WindowResult *>> byStratum(H);
    uint64_t usedWindows = 0;
    for (const WindowResult &r : measured) {
        if (r.weight <= 0)
            continue; // fell off a short stream
        byStratum[windowStratum[r.window]].push_back(&r);
        ++usedWindows;
    }
    for (auto &v : byStratum)
        std::sort(v.begin(), v.end(),
                  [](const WindowResult *a, const WindowResult *b) {
                      return a->window < b->window;
                  });
    GDIFF_ASSERT(usedWindows > 0,
                 "sampled job %s measured no usable windows (stream "
                 "shorter than its warmup?)",
                 spec.label().c_str());

    size_t activeStrata = 0;
    for (const auto &v : byStratum)
        if (!v.empty())
            ++activeStrata;
    // Interval width from the t distribution: the variance estimate
    // rests on usedWindows - activeStrata degrees of freedom, and at
    // pilot-sized samples a plain z interval under-covers badly.
    const double z = tQuantile975(
        usedWindows > activeStrata ? usedWindows - activeStrata : 1);

    std::vector<MetricEstimate> est(nMetrics);
    for (size_t m = 0; m < nMetrics; ++m) {
        std::vector<StratumSamples> strata;
        for (size_t h = 0; h < H; ++h) {
            if (byStratum[h].empty())
                continue; // short-stream stratum: no usable windows
            StratumSamples s;
            s.weight = stratumWeight[h];
            s.population = members[h].size();
            for (const WindowResult *r : byStratum[h]) {
                s.values.push_back(r->values[m]);
                s.weights.push_back(r->weight);
            }
            strata.push_back(std::move(s));
        }
        est[m] = stratifiedEstimate(strata, z);
    }

    JobResult result;
    auto interval = [&](const char *name, const MetricEstimate &e) {
        result.metrics.emplace_back(name, e.mean);
        result.metrics.emplace_back(std::string(name) + "_ci_lo",
                                    e.ciLo);
        result.metrics.emplace_back(std::string(name) + "_ci_hi",
                                    e.ciHi);
    };
    if (spec.mode == JobMode::Pipeline) {
        // IPC through CPI inversion: see kPipelineMetrics.
        MetricEstimate ipc = invertEstimate(est[0]);
        interval("ipc", ipc);
        result.metrics.emplace_back("ipc_se", ipc.stdError);
        result.metrics.emplace_back(
            "cycles",
            est[0].mean * static_cast<double>(spec.instructions));
        result.metrics.emplace_back("dcache_miss_rate", est[1].mean);
        result.metrics.emplace_back("branch_accuracy", est[2].mean);
        interval("vp_coverage", est[3]);
        interval("vp_accuracy", est[4]);
        result.metrics.emplace_back("miss_load_coverage", est[5].mean);
        result.metrics.emplace_back("miss_load_accuracy", est[6].mean);
        result.metrics.emplace_back("avg_value_delay", est[7].mean);
    } else {
        interval("accuracy", est[0]);
        interval("coverage", est[1]);
        interval("gated_accuracy", est[2]);
    }
    appendSampleMeta(result.metrics, spec, usedWindows, H);

    if (obsOn) {
        obs::Registry &reg = obs::Registry::local();
        reg.addCount("sample.windows", usedWindows);
        reg.addCount("sample.strata", H);
    }

    result.traceReplayed = !acq.generated && cache != nullptr;
    result.traceFromDisk = acq.fromDisk;
    result.traceGenerateSeconds = acq.generateSeconds;
    std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    result.wallSeconds = dt.count();
    // Effective rate over the *represented* region — this is the
    // number that shows the sampling speedup next to a full run.
    uint64_t total = spec.instructions + spec.warmup;
    result.instructionsPerSec =
        result.wallSeconds > 0
            ? static_cast<double>(total) / result.wallSeconds
            : 0.0;
    return result;
}

void
install()
{
    runner::setSampledJobRunner(&runSampledJob);
}

} // namespace sample
} // namespace gdiff
