/**
 * @file
 * The sweep runner's job model.
 *
 * A JobSpec is a fully declarative description of one independent
 * simulation — everything needed to reconstruct the workload, the
 * predictor or scheme, and the run budget. Declarative specs are what
 * make the runner deterministic: a job's result depends only on its
 * spec, never on which thread ran it or in what order, and a job's
 * key() is a stable identity usable for resume manifests and
 * result-file joins.
 */

#ifndef GDIFF_RUNNER_JOB_HH
#define GDIFF_RUNNER_JOB_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gdiff {
namespace runner {

/** Experiment kind a job runs. */
enum class JobMode {
    Profile, ///< architectural-order value profiling (Fig. 8 style)
    Pipeline ///< full OOO timing run with a VP scheme (§4-§7)
};

/** @return the mode's canonical spelling ("profile" / "pipeline"). */
const char *jobModeName(JobMode mode);

/** Parse a mode name; calls fatal() on anything unrecognised. */
JobMode parseJobMode(const std::string &name);

/**
 * One cell of an experiment grid: a single (workload, predictor or
 * scheme, configuration, budget) simulation.
 */
struct JobSpec
{
    std::string workload = "parser"; ///< kernel name (makeWorkload)
    JobMode mode = JobMode::Profile;
    /// profile mode: predictor name (stride, dfcm, gdiff, ...)
    std::string predictor = "stride";
    /// pipeline mode: scheme name (baseline, l_stride, l_context,
    /// sgvq, hgvq)
    std::string scheme = "baseline";
    unsigned order = 8;          ///< gdiff order / GVQ window
    uint64_t tableEntries = 8192; ///< prediction-table entries; 0 = unlimited
    uint64_t seed = 1;           ///< workload synthesis seed
    uint64_t instructions = 1'000'000; ///< measured instructions
    uint64_t warmup = 100'000;         ///< warmup instructions

    /// @name Sampled-simulation knobs (src/sample/)
    /// With sampleBudget == 0 (the default) the job is a classic
    /// full-trace run and the remaining fields are ignored. With a
    /// budget, only sampleBudget of the `instructions` measured
    /// records are timing-simulated, spread over windows of
    /// sampleWindow records each; the result carries 95% CIs.
    /// @{
    uint64_t sampleBudget = 0;    ///< measured records across windows
    uint64_t sampleWindow = 4096; ///< records per measured window
    uint64_t sampleSeed = 1;      ///< window-selection seed
    /// @}

    /** @return true when this spec requests sampled simulation. */
    bool sampled() const { return sampleBudget != 0; }

    /**
     * Reject run lengths that would measure nothing: instructions ==
     * 0 or warmup >= instructions — and, when sampling, degenerate
     * window geometry (zero-length windows, a window longer than the
     * measured region, a budget too small for even one window).
     * Calls fatal() naming the job. runJob() validates every spec
     * before executing it.
     */
    void validate() const;

    /**
     * Non-fatal form of validate() for servers admitting untrusted
     * specs. @return true when valid; false with @p error (if
     * non-null) naming the job and the problem.
     */
    bool validateOr(std::string *error) const;

    /**
     * @return the canonical identity string, e.g.
     * "mode=profile workload=mcf predictor=gdiff order=8 table=8192
     *  seed=1 instructions=1000000 warmup=100000".
     * Equal specs produce equal keys; the resume manifest and the
     * structured sinks use it as the join key.
     */
    std::string key() const;

    /** @return a short human label for tables/progress lines, e.g.
     * "mcf/gdiff[o=8,s=1]". */
    std::string label() const;
};

/**
 * Outcome of one job: named metrics plus run metadata.
 *
 * `metrics` (ordered name/value pairs) is the deterministic payload —
 * bit-identical for identical specs regardless of thread count.
 * `wallSeconds` and `instructionsPerSec` are timing metadata and
 * naturally vary run to run.
 */
struct JobResult
{
    std::vector<std::pair<std::string, double>> metrics;
    double wallSeconds = 0.0;
    double instructionsPerSec = 0.0;

    /// @name Trace-cache metadata (timing class, not deterministic)
    /// @{
    /// true when the job replayed a cached trace; false when it ran
    /// (and possibly cached) functional generation itself
    bool traceReplayed = false;
    /// true when this job's trace came from the persistent disk tier
    bool traceFromDisk = false;
    /// wall seconds this job spent materializing the trace (0 when
    /// replaying or when the cache is off)
    double traceGenerateSeconds = 0.0;
    /// @}

    /// @name Obs stage breakdown (timing class; all zero unless
    /// obs::enabled() — see src/obs/obs.hh)
    /// @{
    /// wall seconds draining the trace source (functional generation
    /// on a cache miss, cursor replay on a hit)
    double obsFillSeconds = 0.0;
    /// wall seconds in the simulation loop proper (predictor
    /// predict/update in profile mode, the cycle loop in pipeline
    /// mode)
    double obsSimSeconds = 0.0;
    /// @}

    /** @return the named metric, or @p fallback if absent. */
    double metric(const std::string &name, double fallback = 0.0) const;
};

/** A completed job as delivered to result sinks. */
struct JobRecord
{
    size_t index = 0; ///< position in the expanded grid (stable)
    JobSpec spec;
    JobResult result;
};

} // namespace runner
} // namespace gdiff

#endif // GDIFF_RUNNER_JOB_HH
