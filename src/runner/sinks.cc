#include "runner/sinks.hh"

#include <algorithm>
#include <cinttypes>

#include "util/json.hh"
#include "util/logging.hh"

namespace gdiff {
namespace runner {

namespace {

void
sortByIndex(std::vector<JobRecord> &recs)
{
    std::sort(recs.begin(), recs.end(),
              [](const JobRecord &a, const JobRecord &b) {
                  return a.index < b.index;
              });
}

/** Lossless JSON string escaping lives in util/json. */
std::string
jsonEscape(const std::string &s)
{
    return json::escape(s);
}

/**
 * RFC 4180 CSV field: quoted (with inner quotes doubled) whenever the
 * text contains a separator, quote, or line break.
 */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/** Shortest round-trippable decimal form of a double. */
std::string
jsonDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Fetch a numeric member or report which one is bad. */
bool
numberField(const json::Value &obj, const char *key, double &out,
            std::string *error)
{
    const json::Value *v = obj.find(key);
    if (!v || !v->isNumber()) {
        if (error)
            *error = std::string("record: missing or non-numeric "
                                 "field '") +
                     key + "'";
        return false;
    }
    out = v->number;
    return true;
}

} // anonymous namespace

bool
parseRecordJson(const json::Value &record, JobRecord &out,
                std::string *error)
{
    if (!record.isObject()) {
        if (error)
            *error = "record: not an object";
        return false;
    }
    const json::Value *wl = record.find("workload");
    const json::Value *mode = record.find("mode");
    if (!wl || !wl->isString() || !mode || !mode->isString()) {
        if (error)
            *error = "record: needs string 'workload' and 'mode'";
        return false;
    }
    JobSpec spec;
    spec.workload = wl->str;
    if (mode->str == "profile") {
        spec.mode = JobMode::Profile;
        const json::Value *p = record.find("predictor");
        if (!p || !p->isString()) {
            if (error)
                *error = "record: profile record needs 'predictor'";
            return false;
        }
        spec.predictor = p->str;
    } else if (mode->str == "pipeline") {
        spec.mode = JobMode::Pipeline;
        const json::Value *s = record.find("scheme");
        if (!s || !s->isString()) {
            if (error)
                *error = "record: pipeline record needs 'scheme'";
            return false;
        }
        spec.scheme = s->str;
    } else {
        if (error)
            *error = "record: unknown mode '" + mode->str + "'";
        return false;
    }

    double order, table, seed, instructions, warmup, index;
    if (!numberField(record, "order", order, error) ||
        !numberField(record, "table", table, error) ||
        !numberField(record, "seed", seed, error) ||
        !numberField(record, "instructions", instructions, error) ||
        !numberField(record, "warmup", warmup, error) ||
        !numberField(record, "index", index, error))
        return false;
    spec.order = static_cast<unsigned>(order);
    spec.tableEntries = static_cast<uint64_t>(table);
    spec.seed = static_cast<uint64_t>(seed);
    spec.instructions = static_cast<uint64_t>(instructions);
    spec.warmup = static_cast<uint64_t>(warmup);

    // Sample fields appear iff the producing spec sampled(); a budget
    // present without the other two knobs is malformed.
    if (record.find("sample_budget")) {
        double budget, window, sseed;
        if (!numberField(record, "sample_budget", budget, error) ||
            !numberField(record, "sample_window", window, error) ||
            !numberField(record, "sample_seed", sseed, error))
            return false;
        spec.sampleBudget = static_cast<uint64_t>(budget);
        spec.sampleWindow = static_cast<uint64_t>(window);
        spec.sampleSeed = static_cast<uint64_t>(sseed);
    }

    const json::Value *metrics = record.find("metrics");
    if (!metrics || !metrics->isObject()) {
        if (error)
            *error = "record: needs a 'metrics' object";
        return false;
    }
    JobResult result;
    // Document order is insertion order, so the rebuilt metrics list
    // matches the producing job's exactly.
    for (const auto &[name, value] : metrics->object) {
        if (!value.isNumber()) {
            if (error)
                *error =
                    "record: metric '" + name + "' is not a number";
            return false;
        }
        result.metrics.emplace_back(name, value.number);
    }

    out.index = static_cast<size_t>(index);
    out.spec = std::move(spec);
    out.result = std::move(result);
    return true;
}

// --------------------------------------------------- CollectingSink

void
CollectingSink::onJob(const JobRecord &record)
{
    recs.push_back(record);
}

void
CollectingSink::finish()
{
    sortByIndex(recs);
}

// -------------------------------------------------------- TableSink

TableSink::TableSink(std::ostream &os, std::string title, bool csv)
    : os(os), title(std::move(title)), csv(csv)
{}

void
TableSink::onJob(const JobRecord &record)
{
    recs.push_back(record);
}

void
TableSink::finish()
{
    if (recs.empty())
        return;
    sortByIndex(recs);
    stats::Table t(title, "job");
    for (const auto &[name, value] : recs.front().result.metrics) {
        (void)value;
        t.addColumn(name);
    }
    t.addColumn("Minst/s");
    for (const auto &r : recs) {
        t.beginRow(r.spec.label());
        for (const auto &[name, value] : recs.front().result.metrics) {
            (void)value;
            t.cellDouble(r.result.metric(name), 4);
        }
        t.cellDouble(r.result.instructionsPerSec / 1e6, 2);
    }
    t.print(os);
    if (csv) {
        t.printCsv(os);
        os << '\n';
    }
}

// ---------------------------------------------------------- CsvSink

CsvSink::CsvSink(const std::string &path) : path(path)
{
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        fatal("cannot create CSV file '%s'", path.c_str());
}

CsvSink::~CsvSink()
{
    if (file)
        std::fclose(file);
}

void
CsvSink::onJob(const JobRecord &record)
{
    recs.push_back(record);
}

void
CsvSink::finish()
{
    GDIFF_ASSERT(file != nullptr, "CsvSink::finish called twice");
    sortByIndex(recs);
    std::fprintf(file, "index,workload,mode,predictor,scheme,order,"
                       "table,seed,instructions,warmup");
    if (!recs.empty())
        for (const auto &[name, value] : recs.front().result.metrics) {
            (void)value;
            std::fprintf(file, ",%s", csvField(name).c_str());
        }
    std::fprintf(file, ",wall_seconds,instructions_per_sec,"
                       "trace_source,trace_generate_seconds,"
                       "obs_fill_seconds,obs_sim_seconds\n");
    for (const auto &r : recs) {
        const JobSpec &s = r.spec;
        std::fprintf(file,
                     "%zu,%s,%s,%s,%s,%u,%" PRIu64 ",%" PRIu64
                     ",%" PRIu64 ",%" PRIu64,
                     r.index, csvField(s.workload).c_str(),
                     jobModeName(s.mode),
                     s.mode == JobMode::Profile
                         ? csvField(s.predictor).c_str()
                         : "",
                     s.mode == JobMode::Pipeline
                         ? csvField(s.scheme).c_str()
                         : "",
                     s.order, s.tableEntries, s.seed, s.instructions,
                     s.warmup);
        for (const auto &[name, value] : recs.front().result.metrics) {
            (void)value;
            std::fprintf(file, ",%s",
                         jsonDouble(r.result.metric(name)).c_str());
        }
        std::fprintf(file, ",%.3f,%.0f,%s,%.3f,%.3f,%.3f\n",
                     r.result.wallSeconds,
                     r.result.instructionsPerSec,
                     r.result.traceReplayed ? "replay" : "generate",
                     r.result.traceGenerateSeconds,
                     r.result.obsFillSeconds,
                     r.result.obsSimSeconds);
    }
    std::fclose(file);
    file = nullptr;
}

// -------------------------------------------------------- JsonlSink

JsonlSink::JsonlSink(const std::string &path, bool append,
                     bool deterministicOnly)
    : deterministicOnly(deterministicOnly)
{
    file = std::fopen(path.c_str(), append ? "ab" : "wb");
    if (!file)
        fatal("cannot open JSON-lines file '%s'", path.c_str());
}

JsonlSink::~JsonlSink()
{
    if (file)
        std::fclose(file);
}

std::string
JsonlSink::deterministicJson(const JobRecord &record)
{
    const JobSpec &s = record.spec;
    std::string out = "{\"workload\":\"" + jsonEscape(s.workload) +
                      "\",\"mode\":\"" + jobModeName(s.mode) + "\"";
    if (s.mode == JobMode::Profile)
        out += ",\"predictor\":\"" + jsonEscape(s.predictor) + "\"";
    else
        out += ",\"scheme\":\"" + jsonEscape(s.scheme) + "\"";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  ",\"order\":%u,\"table\":%" PRIu64
                  ",\"seed\":%" PRIu64 ",\"instructions\":%" PRIu64
                  ",\"warmup\":%" PRIu64,
                  s.order, s.tableEntries, s.seed, s.instructions,
                  s.warmup);
    out += buf;
    // Sampling knobs are part of the deterministic identity exactly
    // when they change what the job computes (mirrors JobSpec::key):
    // full-trace payloads stay byte-identical to the pre-sampling era.
    if (s.sampled()) {
        std::snprintf(buf, sizeof(buf),
                      ",\"sample_budget\":%" PRIu64
                      ",\"sample_window\":%" PRIu64
                      ",\"sample_seed\":%" PRIu64,
                      s.sampleBudget, s.sampleWindow, s.sampleSeed);
        out += buf;
    }
    std::snprintf(buf, sizeof(buf), ",\"index\":%zu", record.index);
    out += buf;
    out += ",\"metrics\":{";
    bool first = true;
    for (const auto &[name, value] : record.result.metrics) {
        if (!first)
            out += ',';
        first = false;
        out += '"' + jsonEscape(name) + "\":" + jsonDouble(value);
    }
    out += "}}";
    return out;
}

void
JsonlSink::onJob(const JobRecord &record)
{
    GDIFF_ASSERT(file != nullptr, "JsonlSink used after finish");
    std::string det = deterministicJson(record);
    if (deterministicOnly) {
        std::fprintf(file, "%s\n", det.c_str());
        std::fflush(file);
        return;
    }
    // Timing metadata (including whether the trace cache served this
    // job) rides outside the deterministic payload: the closing brace
    // is reopened so the line stays one JSON object.
    det.pop_back();
    std::fprintf(file,
                 "%s,\"wall_seconds\":%.6f,"
                 "\"instructions_per_sec\":%.0f,"
                 "\"trace_source\":\"%s\","
                 "\"trace_generate_seconds\":%.6f,"
                 "\"obs_fill_seconds\":%.6f,"
                 "\"obs_sim_seconds\":%.6f}\n",
                 det.c_str(), record.result.wallSeconds,
                 record.result.instructionsPerSec,
                 record.result.traceReplayed ? "replay" : "generate",
                 record.result.traceGenerateSeconds,
                 record.result.obsFillSeconds,
                 record.result.obsSimSeconds);
    std::fflush(file);
}

void
JsonlSink::finish()
{
    if (file) {
        std::fclose(file);
        file = nullptr;
    }
}

} // namespace runner
} // namespace gdiff
