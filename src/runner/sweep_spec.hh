/**
 * @file
 * Declarative experiment grids.
 *
 * A SweepSpec holds one value list per experiment axis — workloads,
 * predictors (profile mode) or schemes (pipeline mode), gdiff orders,
 * table sizes, seeds, instruction windows — and expands the cartesian
 * product into a deterministic, stably ordered vector of JobSpecs.
 * The expansion order is part of the contract: job index i always
 * names the same grid cell, across runs and thread counts, which is
 * what lets sinks and resume manifests key off it.
 *
 * Grids can also be parsed from the compact CLI syntax used by
 * gdiffrun:
 *
 *   workload=mcf,parser,gzip;predictor=stride,dfcm,gdiff;order=4,8
 */

#ifndef GDIFF_RUNNER_SWEEP_SPEC_HH
#define GDIFF_RUNNER_SWEEP_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runner/job.hh"

namespace gdiff {
namespace runner {

/** A cartesian experiment grid; empty axes fall back to defaults. */
struct SweepSpec
{
    JobMode mode = JobMode::Profile;
    /// kernel names; empty = the ten paper workloads
    std::vector<std::string> workloads;
    /// profile-mode predictors; empty = {"stride"}
    std::vector<std::string> predictors;
    /// pipeline-mode schemes; empty = {"baseline"}
    std::vector<std::string> schemes;
    /// gdiff orders / GVQ windows; empty = {8}
    std::vector<unsigned> orders;
    /// table sizes (0 = unlimited); empty = {8192}
    std::vector<uint64_t> tables;
    /// workload synthesis seeds; empty = {1}
    std::vector<uint64_t> seeds;
    /// measured-instruction budgets; empty = {defaultInstructions}
    std::vector<uint64_t> instructionWindows;

    uint64_t defaultInstructions = 1'000'000;
    uint64_t warmup = 100'000;

    /// @name sampled-simulation knobs applied to every expanded job
    /// (single-valued, like warmup — see JobSpec); budget 0 = off
    /// @{
    uint64_t sampleBudget = 0;
    uint64_t sampleWindow = 4096;
    uint64_t sampleSeed = 1;
    /// @}

    /** @return number of jobs expand() will produce. */
    size_t jobCount() const;

    /**
     * Expand the grid into jobs, ordered with workload as the
     * outermost axis, then predictor/scheme, order, table, seed,
     * instruction window innermost.
     */
    std::vector<JobSpec> expand() const;

    /**
     * Parse the `key=v1,v2,...;key=...` grid syntax.
     *
     * Keys: workload, predictor, scheme, order, table, seed,
     * instructions, mode (single-valued). `scheme=` implies pipeline
     * mode unless `mode=` says otherwise. Calls fatal() on unknown
     * keys, malformed numbers, or empty value lists.
     */
    static SweepSpec parseGrid(const std::string &grid);

    /**
     * Non-fatal form of parseGrid() for servers parsing untrusted
     * grids: a malformed grid must produce an error response, not
     * take the daemon down.
     *
     * @return true and fill @p out on success; false with @p error
     * (if non-null) describing the first problem.
     */
    static bool tryParseGrid(const std::string &grid, SweepSpec &out,
                             std::string *error);
};

} // namespace runner
} // namespace gdiff

#endif // GDIFF_RUNNER_SWEEP_SPEC_HH
