/**
 * @file
 * Pluggable result sinks for the sweep runner.
 *
 * The runner delivers each completed job to every registered sink in
 * completion order (serialised under the runner's sink lock, so sink
 * implementations need no internal locking). Because completion order
 * varies with the thread count, sinks that promise a stable layout
 * (table, CSV) buffer records and emit sorted by job index at
 * finish(); the JSON-lines sink streams immediately — line order is
 * nondeterministic but line *content* is bit-identical, and each line
 * is flushed so a killed sweep keeps everything it completed.
 */

#ifndef GDIFF_RUNNER_SINKS_HH
#define GDIFF_RUNNER_SINKS_HH

#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "runner/job.hh"
#include "stats/table.hh"
#include "util/json.hh"

namespace gdiff {
namespace runner {

/**
 * Rebuild a JobRecord (spec, index, metrics) from a parsed
 * deterministic-payload object — the exact inverse of
 * JsonlSink::deterministicJson, shared by the serve client and the
 * snapshot reader. Re-rendering the result through deterministicJson
 * reproduces the producing line byte-for-byte (%.17g doubles
 * round-trip exactly). Timing metadata is not part of the payload and
 * is left at defaults.
 *
 * @return true on success; false with @p error (if non-null) naming
 * the missing or malformed field.
 */
bool parseRecordJson(const json::Value &record, JobRecord &out,
                     std::string *error = nullptr);

/** Consumer of completed jobs. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    /** One job finished. Called in completion order, serialised. */
    virtual void onJob(const JobRecord &record) = 0;

    /** All jobs finished; flush/emit final output. */
    virtual void finish() {}
};

/** Buffers every record in memory, sorted by job index at finish(). */
class CollectingSink : public ResultSink
{
  public:
    void onJob(const JobRecord &record) override;
    void finish() override;

    /** @return records sorted by job index (valid after finish()). */
    const std::vector<JobRecord> &records() const { return recs; }

  private:
    std::vector<JobRecord> recs;
};

/**
 * Renders the sweep as a stats::Table: one row per job (grid order),
 * one column per metric of the first job.
 */
class TableSink : public ResultSink
{
  public:
    /**
     * @param os    destination stream (written at finish()).
     * @param title table caption.
     * @param csv   also render the table as CSV after the text form.
     */
    explicit TableSink(std::ostream &os,
                       std::string title = "sweep results",
                       bool csv = false);

    void onJob(const JobRecord &record) override;
    void finish() override;

  private:
    std::ostream &os;
    std::string title;
    bool csv;
    std::vector<JobRecord> recs;
};

/**
 * CSV file sink: header = spec columns + metric names + metadata,
 * rows sorted by job index, written at finish().
 */
class CsvSink : public ResultSink
{
  public:
    /** Open @p path for writing (truncates); fatal() on failure. */
    explicit CsvSink(const std::string &path);
    ~CsvSink() override;

    void onJob(const JobRecord &record) override;
    void finish() override;

  private:
    std::string path;
    std::FILE *file = nullptr;
    std::vector<JobRecord> recs;
};

/**
 * JSON-lines sink: one self-describing object per job with the full
 * spec, metrics, and timing metadata. Lines are appended and flushed
 * as jobs complete, making the file crash-durable and append-friendly
 * for resumed sweeps.
 */
class JsonlSink : public ResultSink
{
  public:
    /**
     * @param path   output file.
     * @param append open in append mode (resumed sweeps) instead of
     *               truncating.
     * @param deterministicOnly drop the timing metadata and write only
     *               the deterministic payload, so two runs of the same
     *               grid (any thread count, daemon or in-process) can
     *               be compared with sort + cmp.
     */
    explicit JsonlSink(const std::string &path, bool append = false,
                       bool deterministicOnly = false);
    ~JsonlSink() override;

    void onJob(const JobRecord &record) override;
    void finish() override;

    /**
     * @return the deterministic JSON payload for a record — the line
     * written minus the timing metadata. Exposed so tests can compare
     * runs order-independently.
     */
    static std::string deterministicJson(const JobRecord &record);

  private:
    std::FILE *file = nullptr;
    bool deterministicOnly = false;
};

} // namespace runner
} // namespace gdiff

#endif // GDIFF_RUNNER_SINKS_HH
