/**
 * @file
 * Resume manifest: the sweep runner's crash-recovery journal.
 *
 * One line per completed job (the JobSpec key), appended and flushed
 * the moment the job's results have been delivered to every sink. A
 * rerun of the same sweep pointed at the same manifest skips every
 * job whose key is already present, so a killed multi-hour sweep
 * resumes where it stopped instead of starting over.
 */

#ifndef GDIFF_RUNNER_MANIFEST_HH
#define GDIFF_RUNNER_MANIFEST_HH

#include <cstdio>
#include <string>
#include <unordered_set>

namespace gdiff {
namespace runner {

/** Append-only set of completed job keys, backed by a text file. */
class Manifest
{
  public:
    /**
     * Open (or create) the manifest at @p path, loading any keys a
     * previous run recorded. Calls fatal() if the file cannot be
     * created.
     */
    explicit Manifest(const std::string &path);
    ~Manifest();

    Manifest(const Manifest &) = delete;
    Manifest &operator=(const Manifest &) = delete;

    /** @return true if @p key was completed by a previous run. */
    bool contains(const std::string &key) const;

    /**
     * Record @p key as completed: appended to the file and flushed
     * before returning. Not thread-safe; the runner serialises calls
     * under its sink lock.
     */
    void markDone(const std::string &key);

    /** @return number of completed keys known (loaded + added). */
    size_t size() const { return done.size(); }

  private:
    std::unordered_set<std::string> done;
    std::FILE *file = nullptr;
};

} // namespace runner
} // namespace gdiff

#endif // GDIFF_RUNNER_MANIFEST_HH
