#include "runner/factory.hh"

#include "core/gdiff.hh"
#include "core/gdiff2.hh"
#include "predictors/fcm.hh"
#include "predictors/gfcm.hh"
#include "predictors/hybrid.hh"
#include "predictors/last_value.hh"
#include "predictors/pi.hh"
#include "predictors/stride.hh"
#include "util/logging.hh"

namespace gdiff {
namespace runner {

const std::vector<std::string> &
predictorNames()
{
    static const std::vector<std::string> names = {
        "last", "lastn", "stride", "fcm",   "dfcm",
        "hybrid", "pi",  "gfcm",   "gdiff", "gdiff2"};
    return names;
}

const std::vector<std::string> &
schemeNames()
{
    static const std::vector<std::string> names = {
        "baseline", "l_stride", "l_context", "sgvq", "hgvq"};
    return names;
}

namespace {

bool
contains(const std::vector<std::string> &names,
         const std::string &name)
{
    for (const auto &n : names)
        if (n == name)
            return true;
    return false;
}

} // anonymous namespace

bool
knownPredictor(const std::string &name)
{
    return contains(predictorNames(), name);
}

bool
knownScheme(const std::string &name)
{
    return contains(schemeNames(), name);
}

std::unique_ptr<predictors::ValuePredictor>
makePredictor(const std::string &name, unsigned order,
              uint64_t table_entries)
{
    if (name == "last")
        return std::make_unique<predictors::LastValuePredictor>(
            table_entries);
    if (name == "lastn")
        return std::make_unique<predictors::LastNValuePredictor>(
            4, table_entries);
    if (name == "stride")
        return std::make_unique<predictors::StridePredictor>(
            table_entries);
    if (name == "fcm" || name == "dfcm") {
        predictors::FcmConfig cfg;
        cfg.level1Entries = table_entries;
        if (name == "fcm")
            return std::make_unique<predictors::FcmPredictor>(cfg);
        return std::make_unique<predictors::DfcmPredictor>(cfg);
    }
    if (name == "pi")
        return std::make_unique<predictors::PiPredictor>(
            table_entries);
    if (name == "gfcm")
        return std::make_unique<predictors::GFcmPredictor>();
    if (name == "hybrid")
        return std::make_unique<predictors::HybridLocalPredictor>(
            table_entries);
    if (name == "gdiff") {
        core::GDiffConfig cfg;
        cfg.order = order;
        cfg.tableEntries = table_entries;
        return std::make_unique<core::GDiffPredictor>(cfg);
    }
    if (name == "gdiff2") {
        core::GDiff2Config cfg;
        cfg.order = order;
        cfg.tableEntries = table_entries;
        return std::make_unique<core::GDiff2Predictor>(cfg);
    }
    fatal("unknown predictor '%s'", name.c_str());
}

std::unique_ptr<pipeline::VpScheme>
makeScheme(const std::string &name, unsigned order,
           uint64_t table_entries)
{
    if (name == "baseline")
        return std::make_unique<pipeline::NoPrediction>();
    if (name == "l_stride") {
        return std::make_unique<pipeline::LocalScheme>(
            std::make_unique<predictors::StridePredictor>(
                table_entries),
            "l_stride");
    }
    if (name == "l_context") {
        predictors::FcmConfig cfg;
        cfg.level1Entries = table_entries;
        return std::make_unique<pipeline::LocalScheme>(
            std::make_unique<predictors::DfcmPredictor>(cfg),
            "l_context");
    }
    if (name == "sgvq" || name == "hgvq") {
        core::GDiffConfig cfg;
        cfg.order = order;
        cfg.tableEntries = table_entries;
        if (name == "sgvq")
            return std::make_unique<pipeline::SgvqScheme>(cfg);
        return std::make_unique<pipeline::HgvqScheme>(cfg);
    }
    fatal("unknown scheme '%s'", name.c_str());
}

} // namespace runner
} // namespace gdiff
