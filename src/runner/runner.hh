/**
 * @file
 * The parallel experiment-sweep runner.
 *
 * Every figure/table in the paper's evaluation is a grid of
 * *independent* simulations, so the runner treats the expanded grid
 * as a job pool: a fixed-size ThreadPool pulls jobs from a shared
 * atomic queue, runs each in a fully isolated simulation context
 * (its own workload, predictor/scheme, caches — constructed from the
 * JobSpec alone), and delivers results to the registered ResultSinks
 * under one lock.
 *
 * Determinism contract: a job's metrics depend only on its spec.
 * Nothing a job reads is shared or mutable, the seed comes from the
 * spec, and no job observes another job's completion. Therefore
 * --threads=1 and --threads=N produce bit-identical per-job metrics;
 * only completion order and wall-clock metadata differ. This is
 * pinned by tests/test_runner.cc.
 */

#ifndef GDIFF_RUNNER_RUNNER_HH
#define GDIFF_RUNNER_RUNNER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "runner/job.hh"
#include "runner/manifest.hh"
#include "runner/sinks.hh"
#include "runner/sweep_spec.hh"
#include "workload/trace_cache.hh"

namespace gdiff {
namespace runner {

/** @return the default worker count: hardware concurrency, min 1. */
unsigned defaultThreads();

/**
 * Fixed-size pool executing a batch of independent tasks via a shared
 * atomic work queue (each idle worker claims the next unclaimed
 * index — the degenerate but contention-free form of work stealing
 * for uniform job pools).
 */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 = defaultThreads(). */
    explicit ThreadPool(unsigned threads);

    /** @return the actual worker count. */
    unsigned threads() const { return nThreads; }

    /**
     * Run @p task(i) for every i in [0, count), distributing indices
     * across the workers; blocks until all complete. With one worker
     * the tasks run inline on the calling thread in index order.
     */
    void forEach(size_t count, const std::function<void(size_t)> &task);

  private:
    unsigned nThreads;
};

/**
 * The sampled-simulation entry point src/sample/ installs. A function
 * pointer (not a link dependency) keeps the layering acyclic: sample
 * depends on runner for jobs and the pool; runner only needs to
 * dispatch specs with a sample budget to *someone*. Binaries that
 * accept sampled specs call sample::install() at startup; runJob()
 * fatals with that instruction if a sampled spec arrives uninstalled.
 */
using SampledJobRunner = JobResult (*)(const JobSpec &spec,
                                       workload::TraceCache *cache,
                                       unsigned threads);

/** Register (or, with nullptr, clear) the sampled-job runner. */
void setSampledJobRunner(SampledJobRunner fn);

/**
 * Execute one job in an isolated simulation context.
 *
 * With @p cache, the job's dynamic stream is resolved through the
 * shared trace cache: the first job per (workload, seed, budget)
 * triple materializes the trace, later jobs replay it read-only.
 * Metrics are bit-identical either way; only the wall-time metadata
 * differs. Without a cache the job regenerates its stream.
 *
 * A spec with a sample budget dispatches to the installed
 * SampledJobRunner; @p sampleThreads is how many workers it may use
 * for its measured windows (metrics are thread-count-invariant, so
 * this is purely a wall-clock knob). Full-trace jobs ignore it.
 */
JobResult runJob(const JobSpec &spec,
                 workload::TraceCache *cache = nullptr,
                 unsigned sampleThreads = 1);

/** Knobs for SweepRunner::run. */
struct SweepOptions
{
    unsigned threads = 0;      ///< worker count; 0 = hardware
    std::string manifestPath;  ///< resume manifest; empty = disabled
    /// resolve job streams through the shared trace cache
    bool useTraceCache = true;
    /// trace-cache byte cap applied before the sweep; 0 keeps the
    /// cache's current cap
    size_t traceCacheBytes = 0;
    /// persistent trace-cache directory attached to the shared cache
    /// before the sweep; empty keeps the cache's current disk tier
    /// (GDIFF_TRACE_CACHE_DIR, or none)
    std::string traceCacheDir;
    /// byte cap for the persistent tier; 0 = the tier's default
    size_t traceCacheDiskBytes = 0;
    /**
     * Cooperative cancellation (graceful SIGINT/SIGTERM drain): when
     * the pointee becomes true, workers stop *dispatching* new jobs
     * but every job already running completes, reaches the sinks,
     * and is journaled in the manifest — so an interrupted sweep
     * loses nothing and resumes cleanly. Non-owning; may be null.
     */
    const std::atomic<bool> *cancel = nullptr;
};

/** What a sweep did, for the caller's summary line. */
struct SweepSummary
{
    size_t totalJobs = 0;   ///< jobs in the expanded grid
    size_t ranJobs = 0;     ///< jobs executed this run
    size_t skippedJobs = 0; ///< jobs skipped via the resume manifest
    /// jobs never dispatched because SweepOptions::cancel fired
    size_t canceledJobs = 0;
    double wallSeconds = 0; ///< whole-sweep wall time
    /// @name trace-cache effect on this sweep
    /// @{
    size_t generatedTraces = 0;  ///< jobs that materialized a trace
    size_t replayedJobs = 0;     ///< jobs served from the cache
    /// jobs whose trace was loaded from the persistent disk tier (a
    /// subset of replayedJobs)
    size_t diskLoadedJobs = 0;
    double generateSeconds = 0;  ///< total trace-generation wall time
    /// @}
};

/** Expands a grid and runs it through the pool into the sinks. */
class SweepRunner
{
  public:
    /** @param spec the grid; expanded once, in stable order. */
    explicit SweepRunner(const SweepSpec &spec);

    /** @param jobs an explicit job list (pre-expanded grids). */
    explicit SweepRunner(std::vector<JobSpec> jobs);

    /** Register a sink (non-owning). Call before run(). */
    void addSink(ResultSink &sink);

    /** @return the expanded jobs, in grid order. */
    const std::vector<JobSpec> &jobs() const { return jobList; }

    /**
     * Run every job not already recorded in the manifest, deliver
     * each result to every sink, then finish() the sinks.
     */
    SweepSummary run(const SweepOptions &options = SweepOptions());

  private:
    std::vector<JobSpec> jobList;
    std::vector<ResultSink *> sinks;
};

} // namespace runner
} // namespace gdiff

#endif // GDIFF_RUNNER_RUNNER_HH
