#include "runner/sweep_spec.hh"

#include <sstream>

#include "util/logging.hh"
#include "util/parse.hh"
#include "workload/workload.hh"

namespace gdiff {
namespace runner {

namespace {

/** Split @p text on @p sep; empty pieces are dropped. */
std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, sep))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** Effective axis values: the list itself, or the fallback. */
template <typename T>
std::vector<T>
axisOr(const std::vector<T> &axis, std::vector<T> fallback)
{
    return axis.empty() ? std::move(fallback) : axis;
}

} // anonymous namespace

size_t
SweepSpec::jobCount() const
{
    auto dim = [](size_t n) { return n == 0 ? size_t(1) : n; };
    size_t variants = mode == JobMode::Profile ? predictors.size()
                                               : schemes.size();
    return dim(workloads.empty() ? workload::specWorkloadNames().size()
                                 : workloads.size()) *
           dim(variants) * dim(orders.size()) * dim(tables.size()) *
           dim(seeds.size()) * dim(instructionWindows.size());
}

std::vector<JobSpec>
SweepSpec::expand() const
{
    auto wl = axisOr(workloads, workload::specWorkloadNames());
    auto variants = mode == JobMode::Profile
                        ? axisOr(predictors, {"stride"})
                        : axisOr(schemes, {"baseline"});
    auto ord = axisOr(orders, {8u});
    auto tab = axisOr(tables, {uint64_t(8192)});
    auto sd = axisOr(seeds, {uint64_t(1)});
    auto windows = axisOr(instructionWindows, {defaultInstructions});

    std::vector<JobSpec> jobs;
    jobs.reserve(wl.size() * variants.size() * ord.size() *
                 tab.size() * sd.size() * windows.size());
    for (const auto &w : wl)
        for (const auto &v : variants)
            for (unsigned o : ord)
                for (uint64_t t : tab)
                    for (uint64_t s : sd)
                        for (uint64_t insts : windows) {
                            JobSpec j;
                            j.workload = w;
                            j.mode = mode;
                            if (mode == JobMode::Profile)
                                j.predictor = v;
                            else
                                j.scheme = v;
                            j.order = o;
                            j.tableEntries = t;
                            j.seed = s;
                            j.instructions = insts;
                            j.warmup = warmup;
                            j.sampleBudget = sampleBudget;
                            j.sampleWindow = sampleWindow;
                            j.sampleSeed = sampleSeed;
                            jobs.push_back(std::move(j));
                        }
    return jobs;
}

SweepSpec
SweepSpec::parseGrid(const std::string &grid)
{
    SweepSpec spec;
    std::string error;
    if (!tryParseGrid(grid, spec, &error))
        fatal("--grid: %s", error.c_str());
    return spec;
}

bool
SweepSpec::tryParseGrid(const std::string &grid, SweepSpec &out,
                        std::string *error)
{
    auto fail = [&](std::string msg) {
        if (error)
            *error = std::move(msg);
        return false;
    };

    SweepSpec spec;
    bool mode_set = false;
    bool scheme_seen = false;
    for (const auto &clause : split(grid, ';')) {
        auto eq = clause.find('=');
        if (eq == std::string::npos || eq == 0)
            return fail("expected key=v1,v2,... in '" + clause + "'");
        std::string axis = clause.substr(0, eq);
        std::vector<std::string> values =
            split(clause.substr(eq + 1), ',');
        if (values.empty())
            return fail("axis '" + axis + "' has no values");

        std::string badValue;
        auto numeric = [&](bool allow_zero,
                           std::vector<uint64_t> &dest) {
            dest.clear();
            for (const auto &v : values) {
                uint64_t parsed = 0;
                if (!tryParseU64(v.c_str(), parsed, allow_zero)) {
                    badValue = v;
                    return false;
                }
                dest.push_back(parsed);
            }
            return true;
        };
        auto badNumber = [&](const std::string &axisName) {
            return fail("axis '" + axisName + "': invalid number '" +
                        badValue + "'");
        };

        if (axis == "workload") {
            spec.workloads = values;
        } else if (axis == "predictor") {
            spec.predictors = values;
        } else if (axis == "scheme") {
            spec.schemes = values;
            scheme_seen = true;
        } else if (axis == "order") {
            std::vector<uint64_t> parsed;
            if (!numeric(false, parsed))
                return badNumber(axis);
            spec.orders.clear();
            for (uint64_t v : parsed)
                spec.orders.push_back(static_cast<unsigned>(v));
        } else if (axis == "table") {
            if (!numeric(true, spec.tables)) // 0 = unlimited
                return badNumber(axis);
        } else if (axis == "seed") {
            if (!numeric(true, spec.seeds))
                return badNumber(axis);
        } else if (axis == "instructions") {
            if (!numeric(false, spec.instructionWindows))
                return badNumber(axis);
        } else if (axis == "mode") {
            if (values.size() != 1)
                return fail("mode takes exactly one value");
            if (values[0] == "profile") {
                spec.mode = JobMode::Profile;
            } else if (values[0] == "pipeline") {
                spec.mode = JobMode::Pipeline;
            } else {
                return fail("unknown mode '" + values[0] +
                            "' (expected profile|pipeline)");
            }
            mode_set = true;
        } else {
            return fail("unknown axis '" + axis +
                        "' (expected workload, predictor, scheme, "
                        "order, table, seed, instructions, or mode)");
        }
    }
    if (!mode_set && scheme_seen)
        spec.mode = JobMode::Pipeline;
    if (spec.mode == JobMode::Profile && !spec.schemes.empty())
        return fail("scheme axis requires mode=pipeline");
    if (spec.mode == JobMode::Pipeline && !spec.predictors.empty())
        return fail("predictor axis requires mode=profile");
    out = std::move(spec);
    return true;
}

} // namespace runner
} // namespace gdiff
