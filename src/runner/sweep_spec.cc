#include "runner/sweep_spec.hh"

#include <sstream>

#include "util/logging.hh"
#include "util/parse.hh"
#include "workload/workload.hh"

namespace gdiff {
namespace runner {

namespace {

/** Split @p text on @p sep; empty pieces are dropped. */
std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, sep))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** Effective axis values: the list itself, or the fallback. */
template <typename T>
std::vector<T>
axisOr(const std::vector<T> &axis, std::vector<T> fallback)
{
    return axis.empty() ? std::move(fallback) : axis;
}

} // anonymous namespace

size_t
SweepSpec::jobCount() const
{
    auto dim = [](size_t n) { return n == 0 ? size_t(1) : n; };
    size_t variants = mode == JobMode::Profile ? predictors.size()
                                               : schemes.size();
    return dim(workloads.empty() ? workload::specWorkloadNames().size()
                                 : workloads.size()) *
           dim(variants) * dim(orders.size()) * dim(tables.size()) *
           dim(seeds.size()) * dim(instructionWindows.size());
}

std::vector<JobSpec>
SweepSpec::expand() const
{
    auto wl = axisOr(workloads, workload::specWorkloadNames());
    auto variants = mode == JobMode::Profile
                        ? axisOr(predictors, {"stride"})
                        : axisOr(schemes, {"baseline"});
    auto ord = axisOr(orders, {8u});
    auto tab = axisOr(tables, {uint64_t(8192)});
    auto sd = axisOr(seeds, {uint64_t(1)});
    auto windows = axisOr(instructionWindows, {defaultInstructions});

    std::vector<JobSpec> jobs;
    jobs.reserve(wl.size() * variants.size() * ord.size() *
                 tab.size() * sd.size() * windows.size());
    for (const auto &w : wl)
        for (const auto &v : variants)
            for (unsigned o : ord)
                for (uint64_t t : tab)
                    for (uint64_t s : sd)
                        for (uint64_t insts : windows) {
                            JobSpec j;
                            j.workload = w;
                            j.mode = mode;
                            if (mode == JobMode::Profile)
                                j.predictor = v;
                            else
                                j.scheme = v;
                            j.order = o;
                            j.tableEntries = t;
                            j.seed = s;
                            j.instructions = insts;
                            j.warmup = warmup;
                            jobs.push_back(std::move(j));
                        }
    return jobs;
}

SweepSpec
SweepSpec::parseGrid(const std::string &grid)
{
    SweepSpec spec;
    bool mode_set = false;
    bool scheme_seen = false;
    for (const auto &clause : split(grid, ';')) {
        auto eq = clause.find('=');
        if (eq == std::string::npos || eq == 0)
            fatal("--grid: expected key=v1,v2,... in '%s'",
                  clause.c_str());
        std::string axis = clause.substr(0, eq);
        std::vector<std::string> values =
            split(clause.substr(eq + 1), ',');
        if (values.empty())
            fatal("--grid: axis '%s' has no values", axis.c_str());

        auto numeric = [&](bool allow_zero) {
            std::vector<uint64_t> out;
            std::string flag = "--grid " + axis;
            for (const auto &v : values)
                out.push_back(parseU64Flag(flag.c_str(), v.c_str(),
                                           allow_zero));
            return out;
        };

        if (axis == "workload") {
            spec.workloads = values;
        } else if (axis == "predictor") {
            spec.predictors = values;
        } else if (axis == "scheme") {
            spec.schemes = values;
            scheme_seen = true;
        } else if (axis == "order") {
            spec.orders.clear();
            for (uint64_t v : numeric(false))
                spec.orders.push_back(static_cast<unsigned>(v));
        } else if (axis == "table") {
            spec.tables = numeric(true); // 0 = unlimited
        } else if (axis == "seed") {
            spec.seeds = numeric(true);
        } else if (axis == "instructions") {
            spec.instructionWindows = numeric(false);
        } else if (axis == "mode") {
            if (values.size() != 1)
                fatal("--grid: mode takes exactly one value");
            spec.mode = parseJobMode(values[0]);
            mode_set = true;
        } else {
            fatal("--grid: unknown axis '%s' (expected workload, "
                  "predictor, scheme, order, table, seed, "
                  "instructions, or mode)",
                  axis.c_str());
        }
    }
    if (!mode_set && scheme_seen)
        spec.mode = JobMode::Pipeline;
    if (spec.mode == JobMode::Profile && !spec.schemes.empty())
        fatal("--grid: scheme axis requires mode=pipeline");
    if (spec.mode == JobMode::Pipeline && !spec.predictors.empty())
        fatal("--grid: predictor axis requires mode=profile");
    return spec;
}

} // namespace runner
} // namespace gdiff
