#include "runner/job.hh"

#include <sstream>

#include "util/logging.hh"

namespace gdiff {
namespace runner {

const char *
jobModeName(JobMode mode)
{
    return mode == JobMode::Profile ? "profile" : "pipeline";
}

JobMode
parseJobMode(const std::string &name)
{
    if (name == "profile")
        return JobMode::Profile;
    if (name == "pipeline")
        return JobMode::Pipeline;
    fatal("unknown job mode '%s' (expected profile|pipeline)",
          name.c_str());
}

void
JobSpec::validate() const
{
    std::string error;
    if (!validateOr(&error))
        fatal("%s", error.c_str());
}

bool
JobSpec::validateOr(std::string *error) const
{
    auto fail = [&](std::string msg) {
        if (error)
            *error = std::move(msg);
        return false;
    };
    if (instructions == 0) {
        return fail("job " + label() +
                    ": instructions must be > 0 (nothing would be "
                    "measured)");
    }
    if (warmup >= instructions) {
        std::ostringstream os;
        os << "job " << label() << ": warmup (" << warmup
           << ") must be smaller than instructions (" << instructions
           << ")";
        return fail(os.str());
    }
    if (sampleBudget != 0) {
        if (sampleWindow == 0) {
            return fail("job " + label() +
                        ": sample window length must be > 0");
        }
        if (sampleWindow > instructions) {
            std::ostringstream os;
            os << "job " << label() << ": sample window ("
               << sampleWindow
               << " records) is longer than the measured region ("
               << instructions << " records)";
            return fail(os.str());
        }
        if (sampleBudget < sampleWindow) {
            std::ostringstream os;
            os << "job " << label() << ": sample budget ("
               << sampleBudget << ") fits zero windows of "
               << sampleWindow << " records";
            return fail(os.str());
        }
    }
    return true;
}

std::string
JobSpec::key() const
{
    std::ostringstream os;
    os << "mode=" << jobModeName(mode) << " workload=" << workload;
    if (mode == JobMode::Profile)
        os << " predictor=" << predictor;
    else
        os << " scheme=" << scheme;
    os << " order=" << order << " table=" << tableEntries
       << " seed=" << seed << " instructions=" << instructions
       << " warmup=" << warmup;
    // Sampling changes what a job computes, so it is part of the
    // identity — but only when on, keeping every pre-sampling
    // manifest and result file joinable.
    if (sampleBudget != 0) {
        os << " sample_budget=" << sampleBudget
           << " sample_window=" << sampleWindow
           << " sample_seed=" << sampleSeed;
    }
    return os.str();
}

std::string
JobSpec::label() const
{
    std::ostringstream os;
    os << workload << '/'
       << (mode == JobMode::Profile ? predictor : scheme);
    os << "[o=" << order << ",s=" << seed << ']';
    return os.str();
}

double
JobResult::metric(const std::string &name, double fallback) const
{
    for (const auto &[k, v] : metrics)
        if (k == name)
            return v;
    return fallback;
}

} // namespace runner
} // namespace gdiff
