/**
 * @file
 * Name-based construction of predictors and value-speculation
 * schemes — the single registry behind gdiffsim's --predictors/
 * --scheme flags and the runner's grid axes, so a name means the same
 * configuration everywhere.
 */

#ifndef GDIFF_RUNNER_FACTORY_HH
#define GDIFF_RUNNER_FACTORY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pipeline/vp_scheme.hh"
#include "predictors/value_predictor.hh"

namespace gdiff {
namespace runner {

/** @return the predictor names makePredictor() accepts. */
const std::vector<std::string> &predictorNames();

/** @return the scheme names makeScheme() accepts. */
const std::vector<std::string> &schemeNames();

/** @return true when makePredictor(@p name, ...) would succeed —
 * the non-fatal membership test servers use before admitting a job. */
bool knownPredictor(const std::string &name);

/** @return true when makeScheme(@p name, ...) would succeed. */
bool knownScheme(const std::string &name);

/**
 * Construct a value predictor by name.
 *
 * @param name          one of predictorNames() (last, lastn, stride,
 *                      fcm, dfcm, hybrid, pi, gfcm, gdiff, gdiff2).
 * @param order         gdiff/gdiff2 order (ignored by the others).
 * @param table_entries table size; 0 = unlimited.
 * Calls fatal() on an unknown name.
 */
std::unique_ptr<predictors::ValuePredictor>
makePredictor(const std::string &name, unsigned order,
              uint64_t table_entries);

/**
 * Construct a pipeline value-speculation scheme by name.
 *
 * @param name          one of schemeNames() (baseline, l_stride,
 *                      l_context, sgvq, hgvq).
 * @param order         gdiff order for sgvq/hgvq.
 * @param table_entries prediction-table entries; 0 = unlimited.
 * Calls fatal() on an unknown name.
 */
std::unique_ptr<pipeline::VpScheme>
makeScheme(const std::string &name, unsigned order,
           uint64_t table_entries);

} // namespace runner
} // namespace gdiff

#endif // GDIFF_RUNNER_FACTORY_HH
