#include "runner/manifest.hh"

#include <fstream>

#include "util/logging.hh"

namespace gdiff {
namespace runner {

Manifest::Manifest(const std::string &path)
{
    // Load keys from a previous run, tolerating a missing file (first
    // run) and a torn final line (killed mid-append): a line only
    // counts if it ends in '\n'.
    std::ifstream in(path);
    if (in.is_open()) {
        std::string line;
        while (std::getline(in, line)) {
            if (in.eof() && !line.empty())
                break; // torn tail — the job will simply rerun
            if (!line.empty() && line[0] != '#')
                done.insert(line);
        }
        in.close();
    }
    file = std::fopen(path.c_str(), "ab");
    if (!file)
        fatal("cannot open manifest '%s' for append", path.c_str());
}

Manifest::~Manifest()
{
    if (file)
        std::fclose(file);
}

bool
Manifest::contains(const std::string &key) const
{
    return done.count(key) != 0;
}

void
Manifest::markDone(const std::string &key)
{
    if (!done.insert(key).second)
        return;
    std::fprintf(file, "%s\n", key.c_str());
    std::fflush(file);
}

} // namespace runner
} // namespace gdiff
