#include "runner/runner.hh"

#include <chrono>
#include <memory>

#include "obs/obs.hh"
#include "pipeline/config.hh"
#include "pipeline/ooo_model.hh"
#include "runner/factory.hh"
#include "sim/profile.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

namespace gdiff {
namespace runner {

unsigned
defaultThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

// ------------------------------------------------------- ThreadPool

ThreadPool::ThreadPool(unsigned threads)
    : nThreads(threads == 0 ? defaultThreads() : threads)
{}

void
ThreadPool::forEach(size_t count,
                    const std::function<void(size_t)> &task)
{
    if (count == 0)
        return;
    if (nThreads == 1) {
        for (size_t i = 0; i < count; ++i)
            task(i);
        return;
    }
    std::atomic<size_t> next{0};
    auto worker = [&] {
        for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < count;
             i = next.fetch_add(1, std::memory_order_relaxed)) {
            task(i);
        }
    };
    std::vector<std::thread> pool;
    unsigned spawn = static_cast<unsigned>(
        std::min<size_t>(nThreads, count));
    pool.reserve(spawn);
    // The calling thread is worker 0; spawn-1 helpers join it.
    for (unsigned t = 1; t < spawn; ++t)
        pool.emplace_back(worker);
    worker();
    for (auto &th : pool)
        th.join();
}

// ----------------------------------------------------------- runJob

namespace {

JobResult
runProfileJob(const JobSpec &spec, workload::TraceSource &src)
{
    auto pred =
        makePredictor(spec.predictor, spec.order, spec.tableEntries);

    sim::ProfileConfig pcfg;
    pcfg.maxInstructions = spec.instructions;
    pcfg.warmupInstructions = spec.warmup;
    sim::ValueProfileRunner profile(pcfg);
    profile.addPredictor(*pred);
    profile.run(src);

    const sim::ProfileSeries &s = profile.results().front();
    JobResult r;
    r.metrics = {
        {"accuracy", s.accuracyAll.value()},
        {"coverage", s.coverage.value()},
        {"gated_accuracy", s.accuracyGated.value()},
    };
    return r;
}

JobResult
runPipelineJob(const JobSpec &spec, workload::TraceSource &src)
{
    auto scheme =
        makeScheme(spec.scheme, spec.order, spec.tableEntries);

    pipeline::OooPipeline pipe(pipeline::PipelineConfig::paper(),
                               *scheme);
    pipeline::PipelineStats s =
        pipe.run(src, spec.instructions, spec.warmup);

    JobResult r;
    r.metrics = {
        {"ipc", s.ipc},
        {"cycles", static_cast<double>(s.cycles)},
        {"dcache_miss_rate", s.dcacheMissRate},
        {"branch_accuracy", s.branchAccuracy},
        {"vp_coverage", s.coverage.value()},
        {"vp_accuracy", s.gatedAccuracy.value()},
        {"miss_load_coverage", s.missLoadCoverage.value()},
        {"miss_load_accuracy", s.missLoadAccuracy.value()},
        {"avg_value_delay", s.valueDelay.mean()},
    };
    return r;
}

SampledJobRunner sampledRunner = nullptr;

} // anonymous namespace

void
setSampledJobRunner(SampledJobRunner fn)
{
    sampledRunner = fn;
}

JobResult
runJob(const JobSpec &spec, workload::TraceCache *cache,
       unsigned sampleThreads)
{
    spec.validate();
    if (spec.sampled()) {
        if (!sampledRunner) {
            fatal("job %s has a sample budget but no sampled runner "
                  "is installed (call sample::install() at startup)",
                  spec.label().c_str());
        }
        return sampledRunner(spec, cache,
                             sampleThreads == 0 ? 1 : sampleThreads);
    }
    auto t0 = std::chrono::steady_clock::now();

    // Jobs run whole on one thread, so this thread's timer totals
    // before/after the job delimit exactly what the job spent in each
    // instrumented stage.
    const bool obsOn = GDIFF_OBS_ENABLED && obs::enabled();
    uint64_t fillNs0 = 0, simNs0 = 0;
    if (obsOn) {
        const obs::Registry &reg = obs::Registry::local();
        fillNs0 = reg.timerNs("profile.fill") +
                  reg.timerNs("pipeline.fill");
        simNs0 = reg.timerNs("profile.sim") +
                 reg.timerNs("pipeline.sim");
    }

    // Resolve the dynamic stream: replay a shared materialized trace
    // when a cache is supplied, regenerate otherwise. Both streams
    // are record-identical, so the metrics cannot differ.
    std::unique_ptr<workload::TraceSource> src;
    bool replayed = false;
    bool fromDisk = false;
    double generateSeconds = 0.0;
    if (cache) {
        workload::TraceCache::Acquired acq = cache->acquire(
            spec.workload, spec.seed, spec.warmup + spec.instructions);
        src = std::move(acq.source);
        replayed = !acq.generated;
        fromDisk = acq.fromDisk;
        generateSeconds = acq.generateSeconds;
    } else {
        workload::Workload w =
            workload::makeWorkload(spec.workload, spec.seed);
        src = w.makeExecutor();
    }

    JobResult r = spec.mode == JobMode::Profile
                      ? runProfileJob(spec, *src)
                      : runPipelineJob(spec, *src);
    std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    r.wallSeconds = dt.count();
    r.traceReplayed = replayed;
    r.traceFromDisk = fromDisk;
    r.traceGenerateSeconds = generateSeconds;
    if (obsOn) {
        const obs::Registry &reg = obs::Registry::local();
        r.obsFillSeconds =
            static_cast<double>(reg.timerNs("profile.fill") +
                                reg.timerNs("pipeline.fill") -
                                fillNs0) /
            1e9;
        r.obsSimSeconds =
            static_cast<double>(reg.timerNs("profile.sim") +
                                reg.timerNs("pipeline.sim") -
                                simNs0) /
            1e9;
    }
    uint64_t total = spec.instructions + spec.warmup;
    r.instructionsPerSec =
        r.wallSeconds > 0 ? static_cast<double>(total) / r.wallSeconds
                          : 0.0;
    return r;
}

// ------------------------------------------------------ SweepRunner

SweepRunner::SweepRunner(const SweepSpec &spec) : jobList(spec.expand())
{}

SweepRunner::SweepRunner(std::vector<JobSpec> jobs)
    : jobList(std::move(jobs))
{}

void
SweepRunner::addSink(ResultSink &sink)
{
    sinks.push_back(&sink);
}

SweepSummary
SweepRunner::run(const SweepOptions &options)
{
    auto t0 = std::chrono::steady_clock::now();
    SweepSummary summary;
    summary.totalJobs = jobList.size();

    std::unique_ptr<Manifest> manifest;
    if (!options.manifestPath.empty())
        manifest = std::make_unique<Manifest>(options.manifestPath);

    // Decide up front which grid indices still need to run, so the
    // pool's shared queue only contains real work.
    std::vector<size_t> todo;
    todo.reserve(jobList.size());
    for (size_t i = 0; i < jobList.size(); ++i) {
        if (manifest && manifest->contains(jobList[i].key()))
            ++summary.skippedJobs;
        else
            todo.push_back(i);
    }

    workload::TraceCache *cache = nullptr;
    if (options.useTraceCache) {
        cache = &workload::TraceCache::global();
        if (options.traceCacheBytes != 0)
            cache->setMaxBytes(options.traceCacheBytes);
        if (!options.traceCacheDir.empty()) {
            if (options.traceCacheDiskBytes != 0) {
                cache->setDiskRoot(options.traceCacheDir,
                                   options.traceCacheDiskBytes);
            } else {
                cache->setDiskRoot(options.traceCacheDir);
            }
        }
    }

    const bool obsOn = GDIFF_OBS_ENABLED && obs::enabled();
    GDIFF_OBS_SPAN("sweep");

    std::mutex sinkLock;
    std::atomic<size_t> canceled{0};
    ThreadPool pool(options.threads);
    // Sampled jobs can parallelize their measured windows internally.
    // Give them the pool only when the sweep has nothing else to fill
    // it with — jobs and windows contending for the same cores would
    // oversubscribe without speeding anything up.
    unsigned windowThreads =
        todo.size() == 1 ? pool.threads() : 1;
    pool.forEach(todo.size(), [&](size_t t) {
        // Cancellation is checked at dispatch only: a job that
        // already started always finishes and reaches the sinks, so
        // the manifest never records a half-run job.
        if (options.cancel &&
            options.cancel->load(std::memory_order_relaxed)) {
            canceled.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        size_t index = todo[t];
        // Job execution is lock-free and fully isolated (the trace
        // cache shares immutable buffers only); only result delivery
        // serialises.
        uint64_t jobStart = obsOn ? obs::nowNs() : 0;
        JobRecord rec{index, jobList[index],
                      runJob(jobList[index], cache, windowThreads)};
        if (obsOn) {
            // One span per job on the worker's own track, annotated
            // with the job identity and how the trace cache served it.
            uint64_t jobEnd = obs::nowNs();
            obs::Registry &reg = obs::Registry::local();
            reg.addSpan("job", jobStart, jobEnd - jobStart,
                        {{"job", rec.spec.label()},
                         {"trace", rec.result.traceReplayed
                                       ? "replay"
                                       : "generate"}});
            reg.histogram("job.ms")->record(
                (jobEnd - jobStart) / 1'000'000);
        }
        std::lock_guard<std::mutex> guard(sinkLock);
        for (ResultSink *sink : sinks)
            sink->onJob(rec);
        if (manifest)
            manifest->markDone(rec.spec.key());
        ++summary.ranJobs;
        if (rec.result.traceReplayed) {
            ++summary.replayedJobs;
            if (rec.result.traceFromDisk)
                ++summary.diskLoadedJobs;
        } else if (cache) {
            ++summary.generatedTraces;
            summary.generateSeconds +=
                rec.result.traceGenerateSeconds;
        }
    });

    // Sinks still finish on cancellation: buffered sinks (table, CSV)
    // flush what completed, and the jsonl/manifest files were flushed
    // per job already.
    for (ResultSink *sink : sinks)
        sink->finish();

    summary.canceledJobs = canceled.load(std::memory_order_relaxed);
    std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    summary.wallSeconds = dt.count();
    return summary;
}

} // namespace runner
} // namespace gdiff
