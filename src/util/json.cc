#include "util/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace gdiff {
namespace json {

const Value *
Value::find(std::string_view key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[name, value] : object)
        if (name == key)
            return &value;
    return nullptr;
}

const Value &
Value::at(std::string_view key) const
{
    const Value *v = find(key);
    if (!v) {
        panic("json: no member '%s' in %s",
              std::string(key).c_str(),
              type == Type::Object ? "object" : "non-object value");
    }
    return *v;
}

double
Value::asNumber() const
{
    if (type != Type::Number)
        panic("json: value is not a number");
    return number;
}

const std::string &
Value::asString() const
{
    if (type != Type::String)
        panic("json: value is not a string");
    return str;
}

namespace {

/** Recursive-descent parser over a string_view with offset errors. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text(text) {}

    bool
    parseDocument(Value &out, std::string *error)
    {
        bool ok = parseValue(out, 0) && (skipWs(), pos == text.size());
        if (!ok && error) {
            *error = message.empty()
                         ? formatString("trailing garbage at offset "
                                        "%zu",
                                        pos)
                         : message;
        }
        return ok;
    }

  private:
    static constexpr int maxDepth = 64;

    bool
    fail(const char *what)
    {
        if (message.empty())
            message =
                formatString("%s at offset %zu", what, pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            return fail("invalid literal");
        pos += word.size();
        return true;
    }

    bool
    parseValue(Value &out, int depth)
    {
        if (depth > maxDepth)
            return fail("document too deeply nested");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        switch (text[pos]) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out.type = Value::Type::String;
            return parseString(out.str);
          case 't':
            out.type = Value::Type::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.type = Value::Type::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.type = Value::Type::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(Value &out, int depth)
    {
        out.type = Value::Type::Object;
        ++pos; // '{'
        skipWs();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos >= text.size() || text[pos] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos >= text.size() || text[pos] != ':')
                return fail("expected ':'");
            ++pos;
            Value member;
            if (!parseValue(member, depth + 1))
                return false;
            out.object.emplace_back(std::move(key),
                                    std::move(member));
            skipWs();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(Value &out, int depth)
    {
        out.type = Value::Type::Array;
        ++pos; // '['
        skipWs();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            Value element;
            if (!parseValue(element, depth + 1))
                return false;
            out.array.push_back(std::move(element));
            skipWs();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos; // '"'
        out.clear();
        while (pos < text.size()) {
            char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                ++pos;
                continue;
            }
            if (++pos >= text.size())
                return fail("dangling escape");
            char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  if (pos + 4 > text.size())
                      return fail("truncated \\u escape");
                  unsigned code = 0;
                  for (int i = 0; i < 4; ++i) {
                      char h = text[pos + i];
                      if (!std::isxdigit(
                              static_cast<unsigned char>(h)))
                          return fail("bad \\u escape");
                      code = code * 16 +
                             (h <= '9'   ? h - '0'
                              : h <= 'F' ? h - 'A' + 10
                                         : h - 'a' + 10);
                  }
                  pos += 4;
                  // Encode the BMP code point as UTF-8.
                  if (code < 0x80) {
                      out += static_cast<char>(code);
                  } else if (code < 0x800) {
                      out += static_cast<char>(0xC0 | (code >> 6));
                      out += static_cast<char>(0x80 | (code & 0x3F));
                  } else {
                      out += static_cast<char>(0xE0 | (code >> 12));
                      out += static_cast<char>(0x80 |
                                               ((code >> 6) & 0x3F));
                      out += static_cast<char>(0x80 | (code & 0x3F));
                  }
                  break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Value &out)
    {
        size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-')) {
            ++pos;
        }
        if (pos == start)
            return fail("expected a value");
        std::string token(text.substr(start, pos - start));
        char *end = nullptr;
        double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) {
            pos = start;
            return fail("malformed number");
        }
        out.type = Value::Type::Number;
        out.number = v;
        return true;
    }

    std::string_view text;
    size_t pos = 0;
    std::string message;
};

} // anonymous namespace

bool
parse(std::string_view text, Value &out, std::string *error)
{
    return Parser(text).parseDocument(out, error);
}

Value
parseOrDie(std::string_view text)
{
    Value v;
    std::string error;
    if (!parse(text, v, &error))
        fatal("json parse error: %s", error.c_str());
    return v;
}

std::string
escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
            break;
        }
    }
    return out;
}

} // namespace json
} // namespace gdiff
