/**
 * @file
 * A minimal JSON reader/escaper — just enough for the repo's own
 * structured artifacts: the golden-number files under tests/golden/,
 * Chrome trace-event output from src/obs, and the JSON-lines result
 * sink. Strictly a consumer-side convenience; production output paths
 * emit JSON directly (runner/sinks.cc, obs/trace_export.cc).
 *
 * Supported: objects, arrays, strings (with \uXXXX escapes decoded as
 * raw bytes for BMP code points), numbers (parsed as double), true,
 * false, null. Not supported: surrogate pairs, duplicate-key
 * detection, or documents nested deeper than maxDepth.
 */

#ifndef GDIFF_UTIL_JSON_HH
#define GDIFF_UTIL_JSON_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gdiff {
namespace json {

/** A parsed JSON document node. */
struct Value
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> array;
    /// object members in document order (duplicates kept as-is)
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** @return the member named @p key, or nullptr (objects only). */
    const Value *find(std::string_view key) const;

    /** @return the member named @p key; panics when absent or when
     * this node is not an object. */
    const Value &at(std::string_view key) const;

    /** @return the numeric value; panics on non-numbers. */
    double asNumber() const;

    /** @return the string value; panics on non-strings. */
    const std::string &asString() const;
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed,
 * trailing garbage rejected).
 *
 * @param text  the document.
 * @param out   receives the root value on success.
 * @param error receives a message with an offset on failure (may be
 *              nullptr).
 * @return true on success.
 */
bool parse(std::string_view text, Value &out,
           std::string *error = nullptr);

/** Parse @p text; fatal() with the parse error on failure. */
Value parseOrDie(std::string_view text);

/**
 * @return @p s with JSON string escaping applied: quotes, backslash,
 * and control characters become escape sequences; everything else
 * (including UTF-8 bytes) passes through.
 */
std::string escape(std::string_view s);

} // namespace json
} // namespace gdiff

#endif // GDIFF_UTIL_JSON_HH
