#include "util/simd.hh"

#include <cstdlib>
#include <cstring>

#include "util/bits.hh"
#include "util/logging.hh"

#if defined(__x86_64__) || defined(_M_X64)
#define GDIFF_SIMD_X86 1
#include <immintrin.h>
#else
#define GDIFF_SIMD_X86 0
#endif

namespace gdiff {
namespace simd {

// ------------------------------------------------------------ dispatch

bool
cpuSupportsAvx2()
{
#if GDIFF_SIMD_X86 && defined(__GNUC__)
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

namespace {

/** Resolve the initial mode from CPUID + GDIFF_SIMD. */
Mode
resolveMode()
{
    const char *env = std::getenv("GDIFF_SIMD");
    if (env) {
        if (std::strcmp(env, "off") == 0 ||
            std::strcmp(env, "scalar") == 0 ||
            std::strcmp(env, "OFF") == 0) {
            return Mode::Scalar;
        }
        if (std::strcmp(env, "avx2") == 0) {
            if (!cpuSupportsAvx2())
                fatal("GDIFF_SIMD=avx2 but this CPU has no AVX2");
            return Mode::Avx2;
        }
        if (std::strcmp(env, "auto") != 0) {
            fatal("GDIFF_SIMD='%s' not understood (off|scalar|avx2|"
                  "auto)",
                  env);
        }
    }
    return cpuSupportsAvx2() ? Mode::Avx2 : Mode::Scalar;
}

Mode gMode = resolveMode();

} // anonymous namespace

Mode
activeMode()
{
    return gMode;
}

const char *
activeName()
{
    return gMode == Mode::Avx2 ? "simd.avx2" : "simd.scalar";
}

void
setModeForTest(Mode m)
{
    if (m == Mode::Avx2 && !cpuSupportsAvx2())
        fatal("setModeForTest(Avx2) on a CPU without AVX2");
    gMode = m;
}

// ------------------------------------------------------ scalar kernels

namespace {

void
mix64LaneScalar(const uint64_t *in, uint64_t *out, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = mix64(in[i]);
}

void
fold16LaneScalar(const int64_t *in, uint16_t *out, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = static_cast<uint16_t>(
            mix64(static_cast<uint64_t>(in[i])) & 0xffff);
}

void
diffAgainstWindowScalar(int64_t actual, const int64_t *wtop,
                        int64_t *out, size_t n)
{
    for (size_t k = 0; k < n; ++k)
        out[k] = static_cast<int64_t>(static_cast<uint64_t>(actual) -
                                      static_cast<uint64_t>(wtop[-(
                                          static_cast<ptrdiff_t>(k))]));
}

int
firstEqualScalar(const int64_t *a, const int64_t *b, size_t n)
{
    for (size_t k = 0; k < n; ++k) {
        if (a[k] == b[k])
            return static_cast<int>(k);
    }
    return -1;
}

size_t
countSecondDiffZeroScalar(const uint64_t *v, size_t n, size_t L)
{
    size_t count = 0;
    for (size_t i = 2 * L; i < n; ++i)
        count += (v[i] - v[i - L]) == (v[i - L] - v[i - 2 * L]);
    return count;
}

// -------------------------------------------------------- AVX2 kernels

#if GDIFF_SIMD_X86 && defined(__GNUC__)
#define GDIFF_AVX2_FN __attribute__((target("avx2")))

/**
 * Exact 64x64 -> low-64 multiply of four lanes. AVX2 has no 64-bit
 * integer multiply; decompose into 32-bit partial products via
 * _mm256_mul_epu32: lo(a*b) = lo32(a)*lo32(b)
 *                           + ((lo32(a)*hi32(b) + hi32(a)*lo32(b)) << 32).
 */
GDIFF_AVX2_FN inline __m256i
mullo64(__m256i a, __m256i b)
{
    __m256i a_hi = _mm256_srli_epi64(a, 32);
    __m256i b_hi = _mm256_srli_epi64(b, 32);
    __m256i lolo = _mm256_mul_epu32(a, b);
    __m256i lohi = _mm256_mul_epu32(a, b_hi);
    __m256i hilo = _mm256_mul_epu32(a_hi, b);
    __m256i cross = _mm256_add_epi64(lohi, hilo);
    return _mm256_add_epi64(lolo, _mm256_slli_epi64(cross, 32));
}

/** Four-lane mix64 (SplitMix64 finisher), bit-exact vs util/bits.hh. */
GDIFF_AVX2_FN inline __m256i
mix64x4(__m256i z)
{
    const __m256i m1 = _mm256_set1_epi64x(
        static_cast<long long>(0xbf58476d1ce4e5b9ull));
    const __m256i m2 = _mm256_set1_epi64x(
        static_cast<long long>(0x94d049bb133111ebull));
    z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 30));
    z = mullo64(z, m1);
    z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 27));
    z = mullo64(z, m2);
    return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

GDIFF_AVX2_FN void
mix64LaneAvx2(const uint64_t *in, uint64_t *out, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(in + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i),
                            mix64x4(v));
    }
    for (; i < n; ++i)
        out[i] = mix64(in[i]);
}

GDIFF_AVX2_FN void
fold16LaneAvx2(const int64_t *in, uint16_t *out, size_t n)
{
    size_t i = 0;
    alignas(32) uint64_t tmp[4];
    for (; i + 4 <= n; i += 4) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(in + i));
        _mm256_store_si256(reinterpret_cast<__m256i *>(tmp),
                           mix64x4(v));
        out[i + 0] = static_cast<uint16_t>(tmp[0]);
        out[i + 1] = static_cast<uint16_t>(tmp[1]);
        out[i + 2] = static_cast<uint16_t>(tmp[2]);
        out[i + 3] = static_cast<uint16_t>(tmp[3]);
    }
    for (; i < n; ++i)
        out[i] = static_cast<uint16_t>(
            mix64(static_cast<uint64_t>(in[i])) & 0xffff);
}

GDIFF_AVX2_FN void
diffAgainstWindowAvx2(int64_t actual, const int64_t *wtop,
                      int64_t *out, size_t n)
{
    const __m256i va = _mm256_set1_epi64x(actual);
    size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        // Window positions k..k+3 live at wtop[-k-3..-k] ascending;
        // subtract, then reverse lanes so out[k+j] = actual - wtop[-k-j].
        __m256i w = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
            wtop - static_cast<ptrdiff_t>(k) - 3));
        __m256i d = _mm256_sub_epi64(va, w);
        d = _mm256_permute4x64_epi64(d, 0x1b); // lanes 3,2,1,0
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + k), d);
    }
    for (; k < n; ++k)
        out[k] = static_cast<int64_t>(static_cast<uint64_t>(actual) -
                                      static_cast<uint64_t>(wtop[-(
                                          static_cast<ptrdiff_t>(k))]));
}

GDIFF_AVX2_FN int
firstEqualAvx2(const int64_t *a, const int64_t *b, size_t n)
{
    size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + k));
        __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + k));
        int m = _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(va, vb)));
        if (m)
            return static_cast<int>(k) + __builtin_ctz(
                                             static_cast<unsigned>(m));
    }
    for (; k < n; ++k) {
        if (a[k] == b[k])
            return static_cast<int>(k);
    }
    return -1;
}

GDIFF_AVX2_FN size_t
countSecondDiffZeroAvx2(const uint64_t *v, size_t n, size_t L)
{
    if (n <= 2 * L)
        return 0;
    size_t count = 0;
    size_t i = 2 * L;
    for (; i + 4 <= n; i += 4) {
        __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + i));
        __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + i - L));
        __m256i c = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + i - 2 * L));
        __m256i eq = _mm256_cmpeq_epi64(_mm256_sub_epi64(a, b),
                                        _mm256_sub_epi64(b, c));
        count += static_cast<size_t>(__builtin_popcount(
            static_cast<unsigned>(_mm256_movemask_pd(
                _mm256_castsi256_pd(eq)))));
    }
    for (; i < n; ++i)
        count += (v[i] - v[i - L]) == (v[i - L] - v[i - 2 * L]);
    return count;
}

#endif // GDIFF_SIMD_X86 && __GNUC__

} // anonymous namespace

// ---------------------------------------------------- public entries

void
mix64Lane(const uint64_t *in, uint64_t *out, size_t n)
{
#if GDIFF_SIMD_X86 && defined(__GNUC__)
    if (gMode == Mode::Avx2) {
        mix64LaneAvx2(in, out, n);
        return;
    }
#endif
    mix64LaneScalar(in, out, n);
}

void
fold16Lane(const int64_t *in, uint16_t *out, size_t n)
{
#if GDIFF_SIMD_X86 && defined(__GNUC__)
    if (gMode == Mode::Avx2) {
        fold16LaneAvx2(in, out, n);
        return;
    }
#endif
    fold16LaneScalar(in, out, n);
}

void
diffAgainstWindow(int64_t actual, const int64_t *wtop, int64_t *out,
                  size_t n)
{
#if GDIFF_SIMD_X86 && defined(__GNUC__)
    if (gMode == Mode::Avx2) {
        diffAgainstWindowAvx2(actual, wtop, out, n);
        return;
    }
#endif
    diffAgainstWindowScalar(actual, wtop, out, n);
}

int
firstEqual(const int64_t *a, const int64_t *b, size_t n)
{
#if GDIFF_SIMD_X86 && defined(__GNUC__)
    if (gMode == Mode::Avx2)
        return firstEqualAvx2(a, b, n);
#endif
    return firstEqualScalar(a, b, n);
}

size_t
countSecondDiffZero(const uint64_t *v, size_t n, size_t L)
{
    if (n <= 2 * L)
        return 0;
#if GDIFF_SIMD_X86 && defined(__GNUC__)
    if (gMode == Mode::Avx2)
        return countSecondDiffZeroAvx2(v, n, L);
#endif
    return countSecondDiffZeroScalar(v, n, L);
}

} // namespace simd
} // namespace gdiff
