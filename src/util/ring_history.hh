/**
 * @file
 * A fixed-capacity most-recent-first history buffer.
 *
 * This is the storage idiom behind the global value queue (GVQ): a
 * bounded window over a stream where entry 0 is the most recently
 * pushed element and entry k is the element pushed k steps earlier.
 */

#ifndef GDIFF_UTIL_RING_HISTORY_HH
#define GDIFF_UTIL_RING_HISTORY_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "logging.hh"

namespace gdiff {

/**
 * Bounded most-recent-first history of T.
 *
 * push() is O(1); operator[](k) returns the element pushed k pushes
 * ago (0 = newest). Until the buffer fills, out-of-range entries read
 * as value-initialised T (matching hardware tables that power up
 * zeroed).
 */
template <typename T>
class RingHistory
{
  public:
    /** @param capacity maximum number of retained elements (> 0). */
    explicit RingHistory(size_t capacity)
        : buf(capacity), head(0), count(0)
    {
        GDIFF_ASSERT(capacity > 0, "RingHistory needs capacity > 0");
    }

    /** Append a new most-recent element, evicting the oldest. */
    void
    push(const T &v)
    {
        head = (head + 1) % buf.size();
        buf[head] = v;
        if (count < buf.size())
            ++count;
        ++pushes;
    }

    /**
     * @param k age of the requested element (0 = newest).
     * @return the element pushed k pushes ago, or a value-initialised
     *         T if fewer than k+1 elements have ever been pushed.
     */
    T
    operator[](size_t k) const
    {
        if (k >= count)
            return T();
        size_t idx = (head + buf.size() - k) % buf.size();
        return buf[idx];
    }

    /**
     * Overwrite the element of age k in place (used by the hybrid
     * global value queue to replace a speculative fill with the real
     * execution result). Out-of-range ages are ignored: the slot has
     * already been evicted from the window.
     *
     * @param k age of the element to overwrite (0 = newest).
     * @param v replacement value.
     * @return true if the slot was still in the window.
     */
    bool
    replace(size_t k, const T &v)
    {
        if (k >= count)
            return false;
        size_t idx = (head + buf.size() - k) % buf.size();
        buf[idx] = v;
        return true;
    }

    /** @return number of valid elements (<= capacity()). */
    size_t size() const { return count; }

    /** @return the fixed capacity. */
    size_t capacity() const { return buf.size(); }

    /** @return true if no element has been pushed yet. */
    bool empty() const { return count == 0; }

    /**
     * @return the absolute number of pushes so far, usable as a
     * monotonically increasing sequence number for age arithmetic.
     */
    uint64_t totalPushes() const { return pushes; }

    /** Forget all contents (window becomes empty). */
    void
    clear()
    {
        count = 0;
        head = 0;
    }

  private:
    std::vector<T> buf;
    size_t head;
    size_t count;
    uint64_t pushes = 0;
};

} // namespace gdiff

#endif // GDIFF_UTIL_RING_HISTORY_HH
