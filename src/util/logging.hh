/**
 * @file
 * Logging and error-reporting helpers, modelled on gem5's
 * base/logging.hh conventions.
 *
 * Two classes of error exist:
 *  - panic(): an internal invariant was violated (a bug in this
 *    library). Aborts so a debugger/core dump can capture state.
 *  - fatal(): the simulation cannot continue because of a user error
 *    (bad configuration, invalid arguments). Exits with status 1.
 *
 * Informational messages use inform() and warn(); neither stops the
 * simulation.
 */

#ifndef GDIFF_UTIL_LOGGING_HH
#define GDIFF_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace gdiff {

/**
 * Report an internal invariant violation and abort().
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error and exit(1).
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Warn the user that something may not behave as expected.
 * Never terminates the program.
 */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a normal status message to the user. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Enable or disable inform()/warn() output (panic/fatal always print).
 * Useful for keeping test output quiet.
 *
 * @param quiet true suppresses inform() and warn().
 */
void setQuietLogging(bool quiet);

/** @return true if inform()/warn() output is currently suppressed. */
bool quietLogging();

/**
 * Format a printf-style message into a std::string.
 *
 * @param fmt printf-style format string.
 * @param ap  variadic argument list.
 * @return the formatted message.
 */
std::string vformatString(const char *fmt, std::va_list ap);

/** Format a printf-style message into a std::string. */
std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace gdiff

/**
 * Assert-like macro for simulator invariants: evaluates in all build
 * types (unlike assert) and reports through panic() with location info.
 */
#define GDIFF_ASSERT(cond, ...)                                           \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::gdiff::panic("assertion '%s' failed at %s:%d: %s", #cond,   \
                           __FILE__, __LINE__,                            \
                           ::gdiff::formatString(__VA_ARGS__).c_str());   \
        }                                                                 \
    } while (0)

#endif // GDIFF_UTIL_LOGGING_HH
