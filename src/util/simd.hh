/**
 * @file
 * Runtime-dispatched SIMD kernels for the batch prediction paths.
 *
 * The batched predictor implementations (docs/INTERNALS.md §10) lean
 * on a handful of data-parallel passes: hashing a lane of PCs or
 * values with mix64, folding values to 16-bit history items, building
 * a lane of differences against a window, and finding the first
 * matching position among stored differences. Each pass has two
 * implementations:
 *
 *  - a portable scalar loop, always compiled and always tested;
 *  - a hand-rolled AVX2 variant compiled with a per-function target
 *    attribute (no global -mavx2), selected at runtime when the CPU
 *    supports it.
 *
 * Every kernel is pure integer arithmetic, so both variants are
 * bit-identical by construction; tests/test_simd.cc pins that, and
 * the scalar-vs-batch differ (src/check) polices it end to end.
 *
 * Dispatch is process-global and decided once, from CPUID plus the
 * GDIFF_SIMD environment variable:
 *
 *   GDIFF_SIMD=off | scalar   force the scalar kernels
 *   GDIFF_SIMD=avx2           force AVX2 (fatal if unsupported)
 *   GDIFF_SIMD=auto | unset   use AVX2 when the CPU has it
 *
 * Tests may override the decision in-process with setModeForTest().
 */

#ifndef GDIFF_UTIL_SIMD_HH
#define GDIFF_UTIL_SIMD_HH

#include <cstddef>
#include <cstdint>

namespace gdiff {
namespace simd {

/** Selected kernel set. */
enum class Mode
{
    Scalar,
    Avx2,
};

/** @return the active kernel set (env override applied on first call). */
Mode activeMode();

/**
 * @return the active mode as a stable counter/display name:
 * "simd.avx2" or "simd.scalar". Used for the obs dispatch counter and
 * the daemon status endpoint.
 */
const char *activeName();

/** @return true if this CPU can run the AVX2 kernels. */
bool cpuSupportsAvx2();

/**
 * Force a kernel set in-process (tests only; not thread-safe against
 * concurrent kernel calls). Forcing Avx2 on a CPU without AVX2 is
 * fatal.
 */
void setModeForTest(Mode m);

/** mix64 (SplitMix64 finisher) over a lane: out[i] = mix64(in[i]). */
void mix64Lane(const uint64_t *in, uint64_t *out, size_t n);

/**
 * 16-bit history folds over a lane: out[i] = mix64(in[i]) & 0xffff —
 * the per-item fold the FCM-family history hashes are built from
 * (src/predictors/fcm.cc rollHistory, gfcm.hh).
 */
void fold16Lane(const int64_t *in, uint16_t *out, size_t n);

/**
 * Difference lane against a window stored newest-last: with wtop
 * pointing at the newest visible value, out[k] = actual - wtop[-k]
 * (two's-complement wrapping) for k in [0, n). This is gdiff's n-diff
 * reconstruction pass over the batch ext buffer, where window
 * position k is physically at wtop[-k].
 */
void diffAgainstWindow(int64_t actual, const int64_t *wtop,
                       int64_t *out, size_t n);

/**
 * @return the smallest k in [0, n) with a[k] == b[k], or -1 — gdiff's
 * nearest-first difference comparators (paper Fig. 5).
 */
int firstEqual(const int64_t *a, const int64_t *b, size_t n);

/**
 * @return how many i in [2L, n) have a zero lag-@p L second
 * difference: v[i] - v[i-L] == v[i-L] - v[i-2L] (two's-complement
 * wrapping). This is the inner loop of the period scan
 * (workload::detectStridePeriod) that both the v3 codec's encoder
 * and the sampled simulator's profiling pass run once per candidate
 * period — O(maxPeriod x n) scalar work that dominates either caller
 * without the lane kernel. Returns 0 when n <= 2L.
 */
size_t countSecondDiffZero(const uint64_t *v, size_t n, size_t L);

} // namespace simd
} // namespace gdiff

#endif // GDIFF_UTIL_SIMD_HH
