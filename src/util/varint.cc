#include "util/varint.hh"

namespace gdiff {
namespace codec {

void
encodeDeltaVarint(const uint64_t *v, uint32_t n,
                  std::vector<uint8_t> &out)
{
    uint64_t prev = 0;
    for (uint32_t i = 0; i < n; ++i) {
        putVarint(out, zigzagEncode(static_cast<int64_t>(v[i] - prev)));
        prev = v[i];
    }
}

bool
decodeDeltaVarint(const uint8_t *p, size_t bytes, uint64_t *v,
                  uint32_t n)
{
    const uint8_t *end = p + bytes;
    uint64_t prev = 0;
    for (uint32_t i = 0; i < n; ++i) {
        uint64_t zz = 0;
        size_t used = getVarint(p, end, &zz);
        if (used == 0)
            return false;
        p += used;
        prev += static_cast<uint64_t>(zigzagDecode(zz));
        v[i] = prev;
    }
    return p == end;
}

void
encodeDeltaRle(const uint64_t *v, uint32_t n,
               std::vector<uint8_t> &out)
{
    uint64_t prev = 0;
    uint32_t i = 0;
    while (i < n) {
        uint64_t delta = v[i] - prev;
        uint32_t run = 1;
        uint64_t at = v[i];
        while (i + run < n && v[i + run] - at == delta) {
            at = v[i + run];
            ++run;
        }
        putVarint(out, zigzagEncode(static_cast<int64_t>(delta)));
        putVarint(out, run);
        prev = at;
        i += run;
    }
}

bool
decodeDeltaRle(const uint8_t *p, size_t bytes, uint64_t *v,
               uint32_t n)
{
    const uint8_t *end = p + bytes;
    uint64_t prev = 0;
    uint32_t i = 0;
    while (i < n) {
        uint64_t zz = 0, run = 0;
        size_t used = getVarint(p, end, &zz);
        if (used == 0)
            return false;
        p += used;
        used = getVarint(p, end, &run);
        if (used == 0)
            return false;
        p += used;
        // A run that is zero or overshoots the column is corrupt; the
        // check also bounds the loop so hostile input cannot spin.
        if (run == 0 || run > n - i)
            return false;
        uint64_t delta = static_cast<uint64_t>(zigzagDecode(zz));
        for (uint64_t k = 0; k < run; ++k) {
            prev += delta;
            v[i++] = prev;
        }
    }
    return p == end;
}

void
encodeByteRle(const uint8_t *v, uint32_t n, std::vector<uint8_t> &out)
{
    uint32_t i = 0;
    while (i < n) {
        uint8_t byte = v[i];
        uint32_t run = 1;
        while (i + run < n && v[i + run] == byte)
            ++run;
        out.push_back(byte);
        putVarint(out, run);
        i += run;
    }
}

bool
decodeByteRle(const uint8_t *p, size_t bytes, uint8_t *v, uint32_t n)
{
    const uint8_t *end = p + bytes;
    uint32_t i = 0;
    while (i < n) {
        if (p >= end)
            return false;
        uint8_t byte = *p++;
        uint64_t run = 0;
        size_t used = getVarint(p, end, &run);
        if (used == 0)
            return false;
        p += used;
        if (run == 0 || run > n - i)
            return false;
        for (uint64_t k = 0; k < run; ++k)
            v[i++] = byte;
    }
    return p == end;
}

} // namespace codec
} // namespace gdiff
