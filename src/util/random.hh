/**
 * @file
 * Deterministic pseudo-random number generation for workload kernels.
 *
 * All randomness in the simulator flows through Xorshift64Star so that
 * every experiment is exactly reproducible from its seed. The
 * generator is splittable: fork() derives an independent stream, which
 * lets each workload kernel own private randomness without coupling
 * kernels through a shared global stream.
 */

#ifndef GDIFF_UTIL_RANDOM_HH
#define GDIFF_UTIL_RANDOM_HH

#include <cstdint>

namespace gdiff {

/**
 * xorshift64* PRNG (Vigna, 2016). Small, fast, and good enough for
 * workload synthesis; not cryptographic.
 */
class Xorshift64Star
{
  public:
    /** Construct from a seed; a zero seed is remapped (state 0 is a
     * fixed point of xorshift). */
    explicit Xorshift64Star(uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** @return the next raw 64-bit output. */
    uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dull;
    }

    /**
     * @return a uniformly distributed integer in [0, bound).
     * @param bound exclusive upper bound; must be non-zero.
     */
    uint64_t
    below(uint64_t bound)
    {
        // Multiply-shift reduction (Lemire); bias is negligible for
        // the bounds used by the workload kernels.
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** @return a uniform integer in the inclusive range [lo, hi]. */
    int64_t
    inRange(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            below(static_cast<uint64_t>(hi - lo) + 1));
    }

    /** @return true with probability (percent / 100). */
    bool
    chancePercent(unsigned percent)
    {
        return below(100) < percent;
    }

    /** @return a uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /**
     * Derive an independent child generator. The child stream is
     * decorrelated from the parent by a SplitMix64 scramble.
     */
    Xorshift64Star
    fork()
    {
        uint64_t z = next() + 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return Xorshift64Star(z ^ (z >> 31));
    }

    /** @return the raw generator state (for checkpoint/debug). */
    uint64_t rawState() const { return state; }

  private:
    uint64_t state;
};

} // namespace gdiff

#endif // GDIFF_UTIL_RANDOM_HH
